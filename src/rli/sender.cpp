#include "rli/sender.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlir::rli {

RliSender::RliSender(SenderConfig config, const timebase::Clock* clock)
    : config_(config), clock_(clock) {
  if (clock_ == nullptr) throw std::invalid_argument("RliSender: clock must not be null");
  if (config_.static_gap == 0) throw std::invalid_argument("RliSender: static_gap must be > 0");
  if (config_.adaptive_min_gap == 0 || config_.adaptive_max_gap < config_.adaptive_min_gap) {
    throw std::invalid_argument("RliSender: need 0 < adaptive_min_gap <= adaptive_max_gap");
  }
  if (config_.util_window <= timebase::Duration::zero()) {
    throw std::invalid_argument("RliSender: util_window must be positive");
  }
}

void RliSender::update_utilization(const net::Packet& packet) {
  // Tumbling windows: close every window that ended before this packet so a
  // quiet link decays the estimate instead of freezing it.
  while (packet.ts - window_start_ >= config_.util_window) {
    const double window_sec = config_.util_window.sec();
    const double util =
        static_cast<double>(window_bytes_) * 8.0 / (config_.link_bps * window_sec);
    if (!util_seeded_) {
      util_ewma_ = util;
      util_seeded_ = true;
    } else {
      util_ewma_ = config_.util_ewma_alpha * util + (1.0 - config_.util_ewma_alpha) * util_ewma_;
    }
    window_start_ += config_.util_window;
    window_bytes_ = 0;
  }
  window_bytes_ += packet.size_bytes;
}

std::uint32_t RliSender::adaptive_gap() const {
  const double u = std::clamp(util_ewma_, 0.0, 1.0);
  if (u <= config_.util_low) return config_.adaptive_min_gap;
  const double span = 1.0 - config_.util_low;
  const double x = span > 0.0 ? (u - config_.util_low) / span : 1.0;
  const double frac = std::pow(x, config_.adapt_exponent);
  const double gap = config_.adaptive_min_gap +
                     frac * static_cast<double>(config_.adaptive_max_gap -
                                                config_.adaptive_min_gap);
  return static_cast<std::uint32_t>(std::lround(gap));
}

std::uint32_t RliSender::current_gap() const {
  return config_.scheme == InjectionScheme::kStatic ? config_.static_gap : adaptive_gap();
}

std::optional<net::Packet> RliSender::on_regular_packet(const net::Packet& packet) {
  update_utilization(packet);
  ++regular_seen_;
  ++since_last_ref_;

  if (since_last_ref_ < current_gap()) return std::nullopt;
  since_last_ref_ = 0;
  ++refs_injected_;

  // The probe is enqueued directly behind the triggering packet: same wire
  // arrival instant, FIFO order preserved by the caller.
  const timebase::TimePoint now = packet.ts;
  const timebase::TimePoint stamp = clock_->now(now);
  return net::make_reference_packet(config_.id, now, stamp, next_ref_seq_++,
                                    config_.ref_packet_bytes);
}

}  // namespace rlir::rli
