// RLI receiver: turns reference-packet delays into per-packet (and then
// per-flow) latency estimates by linear interpolation (paper Section 2).
//
// Operation: regular packets arriving after a reference packet are buffered
// (the "interpolation buffer" of Figure 2). When the next reference packet
// arrives, its true delay is computed from the carried timestamp and the
// receiver's clock; every buffered packet's delay is then estimated by
// linearly interpolating between the two reference delays at its own arrival
// instant. Estimates accumulate per flow key.
//
// Estimator variants beyond RLI's linear interpolation are provided for the
// ablation bench (left/right anchor only, nearest anchor).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "rli/flow_stats.h"
#include "sim/tap.h"
#include "timebase/clock.h"
#include "timebase/time.h"

namespace rlir::rli {

enum class EstimatorKind : std::uint8_t {
  kLinear,   ///< RLI: interpolate between surrounding reference delays
  kLeft,     ///< use the preceding reference delay only
  kRight,    ///< use the following reference delay only
  kNearest,  ///< use whichever reference arrival is closer in time
};

[[nodiscard]] constexpr const char* to_string(EstimatorKind k) {
  switch (k) {
    case EstimatorKind::kLinear: return "linear";
    case EstimatorKind::kLeft: return "left";
    case EstimatorKind::kRight: return "right";
    case EstimatorKind::kNearest: return "nearest";
  }
  return "?";
}

struct ReceiverConfig {
  EstimatorKind estimator = EstimatorKind::kLinear;
  /// Drop interpolation intervals longer than this (a lost reference packet
  /// stretches the interval; delays decorrelate over long spans). Zero
  /// disables the guard.
  timebase::Duration max_interval = timebase::Duration::zero();
};

class RliReceiver final : public sim::PacketTap {
 public:
  using Filter = std::function<bool(const net::Packet&)>;

  /// `clock` is the receiver's local clock (borrowed; must outlive the
  /// receiver). Reference delay = clock->now(arrival) - packet.ref_stamp, so
  /// clock sync error propagates into estimates exactly as in hardware.
  RliReceiver(ReceiverConfig config, const timebase::Clock* clock);

  /// Restricts which non-reference packets are estimated. The paper's
  /// receiver estimates regular traffic only; in deployment the filter is an
  /// IP-prefix rule, here it defaults to kind == kRegular.
  void set_filter(Filter filter) { filter_ = std::move(filter); }

  void on_packet(const net::Packet& packet, timebase::TimePoint arrival) override;

  /// Epoch-boundary flush: estimates every packet still waiting in the
  /// interpolation buffer using the left anchor alone (the closing reference
  /// hasn't arrived yet) and empties the buffer, so an epoch's export ships
  /// every estimate the receiver can produce. The anchor is kept — later
  /// packets interpolate normally. Returns the number of packets flushed.
  std::size_t flush();

  /// Per-flow accumulated latency estimates.
  [[nodiscard]] const FlowStatsMap& per_flow() const { return per_flow_; }

  /// Per-packet estimate stream (optional hook for tests/ablation and for
  /// the collection tier's exporters).
  struct PacketEstimate {
    net::FiveTuple key;
    timebase::TimePoint arrival;
    double estimate_ns;
  };
  using EstimateSink = std::function<void(const PacketEstimate&)>;
  /// Replaces all registered sinks with `sink`.
  void set_estimate_sink(EstimateSink sink) {
    sinks_.clear();
    add_estimate_sink(std::move(sink));
  }
  /// Registers an additional sink; every estimate is delivered to each sink
  /// in registration order (an ablation probe and a collector exporter can
  /// observe the same stream).
  void add_estimate_sink(EstimateSink sink) {
    if (sink) sinks_.push_back(std::move(sink));
  }

  [[nodiscard]] std::uint64_t references_seen() const { return refs_seen_; }
  [[nodiscard]] std::uint64_t packets_estimated() const { return estimated_; }
  /// Packets that arrived before the first reference (never estimated).
  [[nodiscard]] std::uint64_t packets_unanchored() const { return unanchored_; }
  /// Packets discarded because the interpolation interval exceeded the guard.
  [[nodiscard]] std::uint64_t packets_in_skipped_intervals() const { return skipped_; }
  /// Packets estimated by flush() (left-anchor only, no interpolation).
  [[nodiscard]] std::uint64_t packets_flushed() const { return flushed_; }

 private:
  struct Anchor {
    timebase::TimePoint arrival;
    double delay_ns;
  };
  struct Pending {
    timebase::TimePoint arrival;
    net::FiveTuple key;
  };

  void handle_reference(const net::Packet& packet, timebase::TimePoint arrival);
  void estimate_buffered(const Anchor& left, const Anchor& right);
  [[nodiscard]] double estimate_one(const Pending& p, const Anchor& left,
                                    const Anchor& right) const;

  ReceiverConfig config_;
  const timebase::Clock* clock_;
  Filter filter_;
  std::optional<Anchor> left_;
  std::vector<Pending> buffer_;
  FlowStatsMap per_flow_;
  std::vector<EstimateSink> sinks_;

  std::uint64_t refs_seen_ = 0;
  std::uint64_t estimated_ = 0;
  std::uint64_t unanchored_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t flushed_ = 0;
};

}  // namespace rlir::rli
