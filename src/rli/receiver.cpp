#include "rli/receiver.h"

#include <stdexcept>

namespace rlir::rli {

RliReceiver::RliReceiver(ReceiverConfig config, const timebase::Clock* clock)
    : config_(config),
      clock_(clock),
      filter_([](const net::Packet& p) { return p.kind == net::PacketKind::kRegular; }) {
  if (clock_ == nullptr) throw std::invalid_argument("RliReceiver: clock must not be null");
}

void RliReceiver::on_packet(const net::Packet& packet, timebase::TimePoint arrival) {
  if (packet.is_reference()) {
    handle_reference(packet, arrival);
    return;
  }
  if (!filter_(packet)) return;
  if (!left_) {
    // No preceding reference: this packet can never be interpolated.
    ++unanchored_;
    return;
  }
  buffer_.push_back(Pending{arrival, packet.key});
}

void RliReceiver::handle_reference(const net::Packet& packet, timebase::TimePoint arrival) {
  ++refs_seen_;
  // True one-way delay of the probe, as the receiver can actually compute it:
  // local arrival reading minus the timestamp carried in the packet.
  const double delay_ns =
      static_cast<double>((clock_->now(arrival) - packet.ref_stamp).ns());
  const Anchor right{arrival, delay_ns};

  if (left_) {
    const timebase::Duration interval = right.arrival - left_->arrival;
    if (config_.max_interval > timebase::Duration::zero() && interval > config_.max_interval) {
      skipped_ += buffer_.size();
      buffer_.clear();
    } else {
      estimate_buffered(*left_, right);
    }
  }
  left_ = right;
  buffer_.clear();
}

double RliReceiver::estimate_one(const Pending& p, const Anchor& left,
                                 const Anchor& right) const {
  switch (config_.estimator) {
    case EstimatorKind::kLeft:
      return left.delay_ns;
    case EstimatorKind::kRight:
      return right.delay_ns;
    case EstimatorKind::kNearest:
      return (p.arrival - left.arrival <= right.arrival - p.arrival) ? left.delay_ns
                                                                     : right.delay_ns;
    case EstimatorKind::kLinear:
      break;
  }
  const double span = static_cast<double>((right.arrival - left.arrival).ns());
  if (span <= 0.0) return right.delay_ns;  // coincident references
  const double x = static_cast<double>((p.arrival - left.arrival).ns()) / span;
  return left.delay_ns + x * (right.delay_ns - left.delay_ns);
}

std::size_t RliReceiver::flush() {
  // Buffered packets exist only after a left anchor (on_packet invariant),
  // so every one of them has a usable — if uninterpolated — estimate.
  const std::size_t n = buffer_.size();
  for (const Pending& p : buffer_) {
    const double est = left_->delay_ns;
    per_flow_[p.key].add(est);
    ++estimated_;
    ++flushed_;
    if (!sinks_.empty()) {
      const PacketEstimate pe{p.key, p.arrival, est};
      for (const auto& sink : sinks_) sink(pe);
    }
  }
  buffer_.clear();
  return n;
}

void RliReceiver::estimate_buffered(const Anchor& left, const Anchor& right) {
  for (const Pending& p : buffer_) {
    const double est = estimate_one(p, left, right);
    per_flow_[p.key].add(est);
    ++estimated_;
    if (!sinks_.empty()) {
      const PacketEstimate pe{p.key, p.arrival, est};
      for (const auto& sink : sinks_) sink(pe);
    }
  }
}

}  // namespace rlir::rli
