// RLI sender: injects timestamped reference packets into the regular packet
// stream (paper Section 2).
//
// Two injection schemes (Section 3.2 / 4.1):
//   * static "1-and-n": one reference packet after every n regular packets.
//     RLIR's worst-case fallback uses n = 100 — "the lowest possible rate
//     required for reasonable accuracy" when downstream utilization is
//     unknown;
//   * adaptive: n follows the utilization of the *sender's own* link, varying
//     between 1-and-10 (low utilization) and 1-and-300 (high utilization).
//     Across routers this mis-adapts — the sender cannot see downstream cross
//     traffic — which is exactly the effect Figures 4 and 5 quantify.
//
// The exact utilization→gap map is not printed in the RLIR text; we use a
// monotone curve that reproduces the reported behaviour ("about 22% link
// utilization ... always triggers the highest injection rate (1-and-10)"):
// gap = min_gap below `util_low`, rising polynomially to max_gap at u = 1.
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.h"
#include "sim/injector.h"
#include "timebase/clock.h"
#include "timebase/time.h"

namespace rlir::rli {

enum class InjectionScheme : std::uint8_t { kStatic, kAdaptive };

struct SenderConfig {
  InjectionScheme scheme = InjectionScheme::kStatic;

  /// Static scheme: the n of 1-and-n (RLIR worst-case default: 100).
  std::uint32_t static_gap = 100;

  /// Adaptive scheme bounds (RLI defaults quoted by the paper).
  std::uint32_t adaptive_min_gap = 10;   // highest injection rate
  std::uint32_t adaptive_max_gap = 300;  // lowest injection rate

  /// Utilization at or below which the adaptive scheme stays at min_gap.
  double util_low = 0.3;
  /// Shape of the gap curve above util_low (>= 1; higher = later ramp-up).
  double adapt_exponent = 2.0;

  /// Link rate of the interface the sender monitors for utilization.
  double link_bps = 10e9;
  /// Utilization measurement window; per-window samples are EWMA-smoothed.
  timebase::Duration util_window = timebase::Duration::milliseconds(10);
  double util_ewma_alpha = 0.5;

  net::SenderId id = 1;
  std::uint32_t ref_packet_bytes = 64;
};

class RliSender final : public sim::ReferenceInjector {
 public:
  /// `clock` supplies the timestamps written into reference packets; it is
  /// borrowed and must outlive the sender.
  RliSender(SenderConfig config, const timebase::Clock* clock);

  /// Observes one regular packet at the sender's interface (time order).
  /// Returns the reference packet to enqueue directly behind it, if due.
  [[nodiscard]] std::optional<net::Packet> on_regular_packet(
      const net::Packet& packet) override;

  /// Current 1-and-n gap (static value, or the adaptive scheme's latest).
  [[nodiscard]] std::uint32_t current_gap() const;
  /// EWMA-smoothed utilization estimate of the sender's own link.
  [[nodiscard]] double estimated_utilization() const { return util_ewma_; }
  [[nodiscard]] std::uint64_t references_injected() const { return refs_injected_; }
  [[nodiscard]] std::uint64_t regular_observed() const { return regular_seen_; }
  [[nodiscard]] const SenderConfig& config() const { return config_; }

 private:
  void update_utilization(const net::Packet& packet);
  [[nodiscard]] std::uint32_t adaptive_gap() const;

  SenderConfig config_;
  const timebase::Clock* clock_;

  std::uint32_t since_last_ref_ = 0;
  std::uint64_t refs_injected_ = 0;
  std::uint64_t regular_seen_ = 0;
  std::uint64_t next_ref_seq_ = 0;

  // Utilization estimator state.
  timebase::TimePoint window_start_ = timebase::TimePoint::zero();
  std::uint64_t window_bytes_ = 0;
  double util_ewma_ = 0.0;
  bool util_seeded_ = false;
};

}  // namespace rlir::rli
