// Per-flow latency statistics and estimate-vs-truth accuracy reports.
//
// "Obtaining per-flow measurements now is just a matter of aggregating
// latency estimates across packets that share a given flow key." (Section 2)
// Estimates and ground truth both accumulate into FlowStatsMap; the
// AccuracyReport joins them and produces the relative-error CDFs that
// Figure 4 plots.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "net/flow_key.h"
#include "net/packet.h"
#include "sim/tap.h"
#include "timebase/time.h"

namespace rlir::rli {

using FlowStatsMap = std::unordered_map<net::FiveTuple, common::RunningStats>;

/// Evaluation-side tap that records the *true* per-flow delay distribution
/// (reads Packet::true_delay(), which the measurement stack never touches).
class GroundTruthTap final : public sim::PacketTap {
 public:
  using Filter = std::function<bool(const net::Packet&)>;

  /// Default filter: regular packets only (the paper's receiver "only
  /// produces per-flow latency estimates of regular traffic").
  GroundTruthTap();
  explicit GroundTruthTap(Filter filter);

  void on_packet(const net::Packet& packet, timebase::TimePoint arrival) override;

  [[nodiscard]] const FlowStatsMap& per_flow() const { return per_flow_; }
  [[nodiscard]] std::uint64_t packets_recorded() const { return packets_; }

 private:
  Filter filter_;
  FlowStatsMap per_flow_;
  std::uint64_t packets_ = 0;
};

/// One flow's estimate-vs-truth comparison.
struct ErrorSample {
  net::FiveTuple key;
  std::uint64_t true_packets = 0;
  std::uint64_t est_packets = 0;
  double true_mean = 0.0;   // ns
  double est_mean = 0.0;    // ns
  double true_stddev = 0.0; // ns
  double est_stddev = 0.0;  // ns
  double mean_rel_error = 0.0;
  double stddev_rel_error = 0.0;  // only meaningful when true_stddev > 0
  bool has_stddev_error = false;
};

/// Join of estimated and true per-flow statistics.
class AccuracyReport {
 public:
  /// Joins flows present in both maps with at least `min_packets` true
  /// packets (flows whose packets were all lost or never estimated cannot be
  /// compared; the paper evaluates flows the receiver produced estimates
  /// for).
  static AccuracyReport compare(const FlowStatsMap& truth, const FlowStatsMap& estimates,
                                std::uint64_t min_packets = 1);

  [[nodiscard]] const std::vector<ErrorSample>& samples() const { return samples_; }
  [[nodiscard]] std::size_t flow_count() const { return samples_.size(); }
  /// Flows present in the truth map that produced no estimate at all.
  [[nodiscard]] std::size_t unmatched_flows() const { return unmatched_; }

  /// CDF of per-flow relative error of the mean estimate (Figure 4(a)/(c)).
  [[nodiscard]] common::Cdf mean_error_cdf() const;
  /// CDF of per-flow relative error of the stddev estimate (Figure 4(b)).
  /// Only flows with a defined stddev error contribute.
  [[nodiscard]] common::Cdf stddev_error_cdf() const;

  [[nodiscard]] double median_mean_error() const { return mean_error_cdf().median(); }

 private:
  std::vector<ErrorSample> samples_;
  std::size_t unmatched_ = 0;
};

}  // namespace rlir::rli
