#include "rli/flow_stats.h"

namespace rlir::rli {

GroundTruthTap::GroundTruthTap()
    : filter_([](const net::Packet& p) { return p.kind == net::PacketKind::kRegular; }) {}

GroundTruthTap::GroundTruthTap(Filter filter) : filter_(std::move(filter)) {}

void GroundTruthTap::on_packet(const net::Packet& packet, timebase::TimePoint) {
  if (!filter_(packet)) return;
  per_flow_[packet.key].add(static_cast<double>(packet.true_delay().ns()));
  ++packets_;
}

AccuracyReport AccuracyReport::compare(const FlowStatsMap& truth, const FlowStatsMap& estimates,
                                       std::uint64_t min_packets) {
  AccuracyReport report;
  report.samples_.reserve(truth.size());
  for (const auto& [key, true_stats] : truth) {
    if (true_stats.count() < min_packets) continue;
    const auto it = estimates.find(key);
    if (it == estimates.end() || it->second.empty()) {
      ++report.unmatched_;
      continue;
    }
    const auto& est_stats = it->second;

    ErrorSample s;
    s.key = key;
    s.true_packets = true_stats.count();
    s.est_packets = est_stats.count();
    s.true_mean = true_stats.mean();
    s.est_mean = est_stats.mean();
    s.true_stddev = true_stats.stddev();
    s.est_stddev = est_stats.stddev();

    const auto mean_err = common::relative_error(s.est_mean, s.true_mean);
    if (!mean_err) continue;  // zero true latency: error undefined, skip flow
    s.mean_rel_error = *mean_err;

    if (const auto sd_err = common::relative_error(s.est_stddev, s.true_stddev)) {
      s.stddev_rel_error = *sd_err;
      s.has_stddev_error = true;
    }
    report.samples_.push_back(s);
  }
  return report;
}

common::Cdf AccuracyReport::mean_error_cdf() const {
  std::vector<double> errors;
  errors.reserve(samples_.size());
  for (const auto& s : samples_) errors.push_back(s.mean_rel_error);
  return common::Cdf(std::move(errors));
}

common::Cdf AccuracyReport::stddev_error_cdf() const {
  std::vector<double> errors;
  errors.reserve(samples_.size());
  for (const auto& s : samples_) {
    if (s.has_stddev_error) errors.push_back(s.stddev_rel_error);
  }
  return common::Cdf(std::move(errors));
}

}  // namespace rlir::rli
