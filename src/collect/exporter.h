// Receiver-side record production: folds the per-packet estimate stream of
// one vantage point (an RLI or RLIR receiver) into bounded per-flow latency
// sketches, and drains them as EstimateRecord batches at epoch boundaries.
//
// This is the piece that replaces "keep every estimate" with "keep a sketch
// per flow": memory at the vantage point is O(flows x sketch bins), and the
// drained records are what crosses the network to the sharded collector.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "collect/estimate_record.h"
#include "common/latency_sketch.h"
#include "net/flow_key.h"
#include "rli/receiver.h"
#include "rlir/receiver.h"

namespace rlir::collect {

struct ExporterConfig {
  common::LatencySketchConfig sketch;
  /// Vantage-point identity stamped into every drained record.
  LinkId link = kNoLink;
};

class EstimateExporter {
 public:
  explicit EstimateExporter(ExporterConfig config) : config_(config) {}

  /// Folds one estimate into its flow's sketch. `sender` is provenance only
  /// (recorded per flow; a flow re-anchored by several senders keeps the
  /// last one seen).
  void observe(net::SenderId sender, const rli::RliReceiver::PacketEstimate& estimate);

  /// Subscribes this exporter to a receiver's estimate stream (additional
  /// sink; existing sinks keep working). The exporter must outlive the
  /// receiver's last estimate.
  void attach(rli::RliReceiver& receiver, net::SenderId sender = net::kNoSender);
  void attach(rlir::RlirReceiver& receiver);

  /// Ends the epoch: returns one record per flow observed since the last
  /// drain, stamped with `epoch`, in deterministic (flow-key) order, and
  /// resets the flow table for the next epoch.
  [[nodiscard]] std::vector<EstimateRecord> drain(std::uint32_t epoch);

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t estimates_observed() const { return observed_; }
  [[nodiscard]] const ExporterConfig& config() const { return config_; }

 private:
  struct FlowEntry {
    common::LatencySketch sketch;
    net::SenderId sender = net::kNoSender;
  };

  ExporterConfig config_;
  std::unordered_map<net::FiveTuple, FlowEntry> flows_;
  std::uint64_t observed_ = 0;
};

}  // namespace rlir::collect
