// Receiver-side record production: folds the per-packet estimate stream of
// one vantage point (an RLI or RLIR receiver) into bounded per-flow latency
// sketches, and drains them as EstimateRecord batches at epoch boundaries.
//
// This is the piece that replaces "keep every estimate" with "keep a sketch
// per flow": memory at the vantage point is O(flows x sketch bins), and the
// drained records are what crosses the network to the sharded collector.
//
// Memory is bounded across flows too, not just per flow: `max_flows` caps
// the live table (overflow evicts the least-recently-active flow into a
// pending buffer), and `evict_idle()` lets a scheduler age out flows that
// stopped sending mid-epoch — both evictions ship the flow's sketch rather
// than dropping it, so no estimate is ever lost to a bound. The pending
// buffer itself is emptied by take_pending() (the EpochScheduler calls it
// at every advance) or by the next drain(), so how much it can accumulate
// is set by the scheduling cadence, not by the burst size of new flows.
#pragma once

#include <cstdint>
#include <vector>

#include "collect/estimate_record.h"
#include "common/flat_hash_map.h"
#include "common/latency_sketch.h"
#include "net/flow_key.h"
#include "rli/receiver.h"
#include "rlir/receiver.h"
#include "timebase/time.h"

namespace rlir::collect {

struct ExporterConfig {
  common::LatencySketchConfig sketch;
  /// Vantage-point identity stamped into every drained record.
  LinkId link = kNoLink;
  /// Live flow-table cap; 0 = unbounded. Observing a new flow at the cap
  /// evicts the least-recently-active flow (ties break on flow key) into the
  /// pending-eviction buffer, which the next drain() ships.
  std::size_t max_flows = 0;
};

class EstimateExporter {
 public:
  explicit EstimateExporter(ExporterConfig config) : config_(config) {}

  /// Folds one estimate into its flow's sketch. `sender` is provenance only
  /// (recorded per flow; a flow re-anchored by several senders keeps the
  /// last one seen). The estimate's arrival time stamps the flow's activity
  /// for idle aging and the max_flows LRU.
  void observe(net::SenderId sender, const rli::RliReceiver::PacketEstimate& estimate);

  /// Subscribes this exporter to a receiver's estimate stream (additional
  /// sink; existing sinks keep working). The exporter must outlive the
  /// receiver's last estimate.
  void attach(rli::RliReceiver& receiver, net::SenderId sender = net::kNoSender);
  void attach(rlir::RlirReceiver& receiver);

  /// Ends the epoch: returns one record per flow observed since the last
  /// drain (plus any pending cap evictions), stamped with `epoch`, in
  /// deterministic (flow-key) order, and resets the flow table for the next
  /// epoch. A flow that was cap-evicted and then re-observed yields two
  /// records; collector merge makes that lossless.
  [[nodiscard]] std::vector<EstimateRecord> drain(std::uint32_t epoch);

  /// Ages out flows whose last activity is older than `max_idle` relative to
  /// `now`, returning their records stamped with `epoch` in flow-key order
  /// (so the caller can ship them immediately and the memory is freed).
  /// `max_idle` <= 0 evicts nothing.
  [[nodiscard]] std::vector<EstimateRecord> evict_idle(timebase::TimePoint now,
                                                       timebase::Duration max_idle,
                                                       std::uint32_t epoch);

  /// Takes the pending cap-eviction buffer as records stamped with `epoch`,
  /// in flow-key order, freeing the memory — drain() without touching live
  /// flows. A scheduler calls this every advance so a new-flow burst can't
  /// pile sketches up between epoch boundaries.
  [[nodiscard]] std::vector<EstimateRecord> take_pending(std::uint32_t epoch);

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  /// Cap evictions waiting for the next drain.
  [[nodiscard]] std::size_t pending_eviction_count() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t estimates_observed() const { return observed_; }
  /// Flows evicted by the max_flows cap (lifetime total).
  [[nodiscard]] std::uint64_t flows_cap_evicted() const { return cap_evicted_; }
  /// Flows evicted by evict_idle (lifetime total).
  [[nodiscard]] std::uint64_t flows_aged_out() const { return aged_out_; }
  [[nodiscard]] const ExporterConfig& config() const { return config_; }

 private:
  struct FlowEntry {
    common::LatencySketch sketch;
    net::SenderId sender = net::kNoSender;
    timebase::TimePoint last_arrival;
  };
  /// A cap-evicted flow awaiting the next drain (epoch unknown until then).
  struct PendingRecord {
    net::FiveTuple key;
    net::SenderId sender = net::kNoSender;
    common::LatencySketch sketch;
  };

  void evict_least_recent();

  ExporterConfig config_;
  /// Flat map (common/flat_hash_map.h): observe() is one lookup per
  /// estimate, the hottest exporter path. Iteration order is arbitrary;
  /// every drain path sorts by flow key before returning, as before.
  common::FlatHashMap<net::FiveTuple, FlowEntry> flows_;
  std::vector<PendingRecord> pending_;
  std::uint64_t observed_ = 0;
  std::uint64_t cap_evicted_ = 0;
  std::uint64_t aged_out_ = 0;
};

}  // namespace rlir::collect
