// The estimate-record wire format: how receivers ship per-flow latency
// summaries to the collection tier.
//
// A record is one flow's latency sketch for one epoch as seen from one
// vantage point (a deployed RLIR receiver, identified by LinkId). Records
// travel in batches with a self-describing header, mirroring the trace-file
// conventions (little-endian, magic + version, field-by-field packing):
//
//   batch:   magic "RLES" | u32 version | u64 record count
//   record:  5-tuple (4+4+2+2+1) | u32 link | u16 sender | u32 epoch
//            | f64 relative_accuracy | u32 max_bins
//            | u64 zero_count | f64 sum | f64 min | f64 max
//            | u32 bin_count | bin_count x (i32 index, u64 count)
//
// Decoding rejects bad magic, unsupported versions, truncated input, and
// implausible bin counts (corruption guard) with std::runtime_error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/latency_sketch.h"
#include "net/flow_key.h"
#include "net/packet.h"

namespace rlir::collect {

inline constexpr std::uint32_t kEstimateWireVersion = 1;

/// Vantage-point identifier: which deployed receiver (router interface)
/// produced a record. Assigned by the collection tier at deployment.
using LinkId = std::uint32_t;
inline constexpr LinkId kNoLink = 0xffffffff;

struct EstimateRecord {
  net::FiveTuple key;
  LinkId link = kNoLink;
  /// RLI sender whose references anchored the estimates (provenance).
  net::SenderId sender = net::kNoSender;
  /// Collection epoch the estimates belong to; merging across epochs is the
  /// collector's job.
  std::uint32_t epoch = 0;
  common::LatencySketch sketch;
};

/// Serializes a batch. Throws std::runtime_error on stream failure.
void write_records(std::ostream& out, const std::vector<EstimateRecord>& records);
/// Deserializes a batch. Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<EstimateRecord> read_records(std::istream& in);

/// Byte-buffer conveniences (what an RPC transport would carry).
[[nodiscard]] std::vector<std::uint8_t> encode_records(const std::vector<EstimateRecord>& records);
[[nodiscard]] std::vector<EstimateRecord> decode_records(const std::uint8_t* data,
                                                         std::size_t size);

/// Exact wire size of one record in bytes (memory/bandwidth accounting).
[[nodiscard]] std::size_t wire_size(const EstimateRecord& record);

}  // namespace rlir::collect
