// The estimate-record wire format: how receivers ship per-flow latency
// summaries to the collection tier.
//
// A record is one flow's latency sketch for one epoch as seen from one
// vantage point (a deployed RLIR receiver, identified by LinkId). Records
// travel in batches with a self-describing header, mirroring the trace-file
// conventions (little-endian, magic + version, field-by-field packing):
//
//   batch:   magic "RLES" | u32 version | u64 record count
//   record:  5-tuple (4+4+2+2+1) | u32 link | u16 sender | u32 epoch
//            | f64 relative_accuracy | u32 max_bins
//            | u64 zero_count | f64 sum | f64 min | f64 max
//            | u32 bin_count | bin_count x (i32 index, u64 count)
//
// Decoding rejects bad magic, unsupported versions, truncated input, and
// implausible bin counts (corruption guard) with std::runtime_error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/latency_sketch.h"
#include "net/flow_key.h"
#include "net/packet.h"

namespace rlir::collect {

inline constexpr std::uint32_t kEstimateWireVersion = 1;

/// Vantage-point identifier: which deployed receiver (router interface)
/// produced a record. Assigned by the collection tier at deployment.
using LinkId = std::uint32_t;
inline constexpr LinkId kNoLink = 0xffffffff;

struct EstimateRecord {
  net::FiveTuple key;
  LinkId link = kNoLink;
  /// RLI sender whose references anchored the estimates (provenance).
  net::SenderId sender = net::kNoSender;
  /// Collection epoch the estimates belong to; merging across epochs is the
  /// collector's job.
  std::uint32_t epoch = 0;
  common::LatencySketch sketch;
};

/// Serializes a batch. Throws std::runtime_error on stream failure.
void write_records(std::ostream& out, const std::vector<EstimateRecord>& records);
/// Deserializes a batch. Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<EstimateRecord> read_records(std::istream& in);

/// Byte-buffer conveniences (what an RPC transport would carry).
[[nodiscard]] std::vector<std::uint8_t> encode_records(const std::vector<EstimateRecord>& records);
/// Decodes exactly one batch spanning the whole buffer; trailing bytes are an
/// error. For back-to-back batches use decode_records_prefix.
[[nodiscard]] std::vector<EstimateRecord> decode_records(const std::uint8_t* data,
                                                         std::size_t size);

/// One decoded batch plus where it ended — what a streaming consumer needs
/// to pick up the next batch without re-scanning.
struct DecodedBatch {
  std::vector<EstimateRecord> records;
  /// Bytes of the buffer this batch occupied (header + records); the next
  /// batch, if any, starts at data + bytes_consumed.
  std::size_t bytes_consumed = 0;
};

/// Decodes one batch from the front of the buffer, tolerating trailing bytes
/// (the following batches of a coalesced stream). Throws std::runtime_error
/// on malformed input, same as decode_records.
[[nodiscard]] DecodedBatch decode_records_prefix(const std::uint8_t* data, std::size_t size);

// --- Zero-copy record views ------------------------------------------------
// The ingest hot path never needs an owning EstimateRecord: the collector
// merges each sketch into its own state and drops the record. Views keep the
// bins where they already are — in the frame payload — so decoding a batch
// allocates nothing per record (no LatencySketch, no BinMap nodes) and the
// bins are read exactly once, during the merge itself.

/// A sketch's serialized state, validated but not materialized. Bins remain
/// wire bytes; borrow lifetime is the underlying buffer's (a FrameView's
/// payload: until the decoder's next feed()).
struct SketchView {
  double relative_accuracy = 0.0;
  std::uint32_t max_bins = 0;
  std::uint64_t zero_count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint32_t bin_count = 0;
  /// Sum of all bin counts (computed during decode validation).
  std::uint64_t binned_count = 0;
  /// bin_count x (i32 index, u64 count), little-endian, borrowed.
  const std::uint8_t* bins = nullptr;

  /// Total observations (zero bin + all bins).
  [[nodiscard]] std::uint64_t count() const { return zero_count + binned_count; }
};

/// One record of a batch, keyed fields decoded, sketch left as a view.
struct RecordView {
  net::FiveTuple key;
  LinkId link = kNoLink;
  net::SenderId sender = net::kNoSender;
  std::uint32_t epoch = 0;
  SketchView sketch;
};

/// View-based overload of decode_records_prefix: appends one batch's records
/// to `out` (not cleared — callers reuse it as a scratch arena across
/// batches) and returns the bytes consumed. Performs the same validation and
/// throws the same std::runtime_errors as the owning decoder, including
/// rejecting out-of-range relative accuracies (which the owning path caught
/// via sketch construction). Views borrow `data`; they are invalidated by
/// whatever invalidates it.
std::size_t decode_record_views_prefix(const std::uint8_t* data, std::size_t size,
                                       std::vector<RecordView>& out);

/// Merges a decoded view into `dst` exactly as
/// `dst.merge(decode_sketch(...)-materialized sketch)` would — bin for bin —
/// without building the intermediate. Throws std::invalid_argument on a
/// relative-accuracy mismatch, like merge.
void merge_sketch_view(common::LatencySketch& dst, const SketchView& view);

/// Exact wire size of one record in bytes (memory/bandwidth accounting).
[[nodiscard]] std::size_t wire_size(const EstimateRecord& record);
/// View counterpart (same layout; bins stay serialized, so this is exact).
[[nodiscard]] std::size_t wire_size(const RecordView& record);

// --- Record-body helpers ---------------------------------------------------
// The history store's raw tier logs record bodies back-to-back WITHOUT the
// batch header: each body is self-delimiting (fixed keyed fields plus a
// sketch segment whose bin count says where it ends), so an epoch's log is
// just its appended bodies.

/// Appends one record body (keyed fields + sketch segment) to `out`.
void append_record_body(std::vector<std::uint8_t>& out, const EstimateRecord& record);
/// View overload: the serialized bins are copied verbatim (one memcpy), so
/// logging a decoded view costs no sketch materialization.
void append_record_body(std::vector<std::uint8_t>& out, const RecordView& record);
/// Raw-pointer counterparts: write one body at `out`, which the caller
/// guarantees has wire_size(record) bytes of room. The history store's log
/// appends through these to skip the vector resize's zero-fill.
void encode_record_body(const EstimateRecord& record, std::uint8_t* out);
void encode_record_body(const RecordView& record, std::uint8_t* out);
/// Decodes back-to-back record bodies until the buffer is exhausted,
/// appending views to `out` (not cleared). Same validation and
/// std::runtime_errors as the batch decoder; views borrow `data`.
void decode_record_body_views(const std::uint8_t* data, std::size_t size,
                              std::vector<RecordView>& out);

// --- Sketch segment helpers ------------------------------------------------
// The sketch portion of a record (config, moments, bins) is a format of its
// own, reused by the transport tier's query replies to ship bare sketches.

/// Exact wire size of one sketch's segment in bytes.
[[nodiscard]] std::size_t sketch_wire_size(const common::LatencySketch& sketch);
/// Writes the sketch segment at `p`, advancing it; the caller guarantees
/// sketch_wire_size() bytes of room.
void encode_sketch(std::uint8_t*& p, const common::LatencySketch& sketch);
/// Parses one sketch segment at `p` (advancing it), bounds-checked against
/// `end`. Throws std::runtime_error on truncated/corrupt input.
[[nodiscard]] common::LatencySketch decode_sketch(const std::uint8_t*& p,
                                                  const std::uint8_t* end);

}  // namespace rlir::collect
