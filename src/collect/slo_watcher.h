// Windowed tail-latency SLO watcher over the sketch history store.
//
// The history store answers "what was p99 over [e1, e2]"; the watcher turns
// that into an alarm: each epoch it evaluates every flow's windowed quantile
// against a threshold, and when a flow breaches it localizes the likely
// culprit by feeding the window's per-link distributions to the existing
// RLIR anomaly localizer — the same "which segment shifted" machinery the
// live path uses, now pointed at history. Breaches surface three ways:
// returned SloViolation values, obs kSloViolation trace events (value =
// measured ns, detail = flow key), and rlir_slo_* counters.
//
// Localization works on per-flow RunningStats; a sketch is not a flow list,
// so each link's windowed sketch is summarized as decile probe points
// (quantile(0.05), 0.15, ..., 0.95) presented as pseudo-flows. The
// localizer's median-of-flow-means then sees each link's distribution
// median, which is exactly the cross-link comparison it was built for.
//
// Driving: call check(epoch) directly, poll() to evaluate the newest sealed
// epoch once, or register make_epoch_hook() on the EpochScheduler. Not
// itself thread-safe — drive it from one thread (the scheduler's firing
// thread qualifies; the history store it reads is internally locked).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "collect/history.h"
#include "net/flow_key.h"
#include "obs/instrument.h"
#include "rlir/localization.h"

namespace rlir::collect {

struct SloWatcherConfig {
  /// Quantile evaluated per flow (the "p" in p99-under-threshold). [0, 1].
  double quantile = 0.99;
  /// Breach when the windowed quantile exceeds this. Must be > 0.
  double threshold_ns = 0.0;
  /// Window length in epochs ending at the checked epoch. Must be >= 1.
  std::size_t window_epochs = 8;
  /// Threshold factor handed to the RLIR localizer (segment median vs
  /// cross-segment baseline).
  double localization_factor = 3.0;
  /// Evaluation bound per check: at most this many flows (the window's flow
  /// list is sorted, so truncation is deterministic). Must be >= 1.
  std::size_t max_flows_checked = 4096;
  /// Observability attachment: rlir_slo_checks_total /
  /// rlir_slo_violations_total / rlir_slo_flows_checked_total counters and
  /// kSloViolation trace events.
  obs::Instruments instruments;
};

/// One flow's breach for one checked window, with the localizer's verdict.
struct SloViolation {
  net::FiveTuple key;
  /// Measured windowed quantile (ns).
  double value_ns = 0.0;
  double threshold_ns = 0.0;
  std::uint32_t window_first = 0;
  std::uint32_t window_last = 0;
  /// Per-link findings from the RLIR localizer, one per link seen in the
  /// window (segment name "link<id>"); identical across the violations of
  /// one check (the window is shared).
  std::vector<rlir::LocalizationFinding> findings;
};

class SloWatcher {
 public:
  /// Throws std::invalid_argument on a bad config or null history.
  SloWatcher(SloWatcherConfig config, const SketchHistoryStore* history);

  SloWatcher(const SloWatcher&) = delete;
  SloWatcher& operator=(const SloWatcher&) = delete;

  /// Evaluates the window ending at `epoch` (clamped at epoch 0); returns
  /// every breaching flow, localized.
  std::vector<SloViolation> check(std::uint32_t epoch);

  /// Checks the newest history epoch if it has not been checked yet
  /// (idempotent between epochs); empty when idle.
  std::vector<SloViolation> poll();

  /// Hook for EpochScheduler::add_epoch_hook: checks epoch - 1 (hooks fire
  /// before the new epoch's records drain, so the previous epoch is the
  /// newest sealed one). Violations surface via trace events and counters.
  [[nodiscard]] std::function<void(std::uint32_t)> make_epoch_hook();

  [[nodiscard]] std::uint64_t checks() const { return checks_->value(); }
  [[nodiscard]] std::uint64_t violations() const { return violations_->value(); }
  [[nodiscard]] const SloWatcherConfig& config() const { return config_; }

 private:
  SloWatcherConfig config_;
  const SketchHistoryStore* history_;
  obs::Instrumented obs_;
  obs::Counter* checks_ = nullptr;
  obs::Counter* violations_ = nullptr;
  obs::Counter* flows_checked_ = nullptr;
  bool any_checked_ = false;
  std::uint32_t last_checked_ = 0;
};

}  // namespace rlir::collect
