// Fleet wiring: deploys RLIR receivers as vantage points across a fat-tree
// simulation and pumps their epoch record batches into a ShardedCollector —
// the full paper-to-operator data path in one object:
//
//   taps (FatTreeSim arrivals) -> RlirReceiver streams -> per-packet
//   estimates -> EstimateExporter sketches -> EstimateRecord batches (wire
//   format) -> ShardedCollector shards -> fleet queries.
//
// Epoch batches really do round-trip through the binary wire format, so a
// fleet run exercises exactly what a networked deployment would ship.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "collect/epoch_scheduler.h"
#include "collect/exporter.h"
#include "collect/sharded_collector.h"
#include "rli/receiver.h"
#include "rlir/demux.h"
#include "rlir/receiver.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"

namespace rlir::collect {

struct FleetConfig {
  /// Configuration of every deployed receiver's interpolation streams.
  rli::ReceiverConfig receiver;
  CollectorConfig collector;
};

class FleetCollector {
 public:
  /// `clock` is borrowed by every deployed receiver and must outlive them.
  FleetCollector(FleetConfig config, const timebase::Clock* clock);

  /// Deploys a receiver at `node`'s arrival tap, using `demux` (borrowed) to
  /// attribute regular packets. Call before sim.run(); the FleetCollector
  /// must outlive the simulation. Returns the vantage's LinkId.
  LinkId deploy(topo::FatTreeSim& sim, topo::NodeId node, const rlir::Demultiplexer* demux);

  /// The receiver deployed as `link` (for assertions/extra instrumentation).
  [[nodiscard]] rlir::RlirReceiver& receiver(LinkId link);
  [[nodiscard]] const rlir::RlirReceiver& receiver(LinkId link) const;
  [[nodiscard]] topo::NodeId node(LinkId link) const;
  [[nodiscard]] std::size_t vantage_count() const { return vantages_.size(); }

  /// Ends the epoch fleet-wide: drains every vantage's exporter, ships each
  /// batch through the binary wire format, and ingests it. Returns the
  /// number of records collected.
  std::size_t collect_epoch(std::uint32_t epoch);

  /// Redirects collection away from the in-process collector: when any sink
  /// is registered, collect_epoch and the scheduler sink hand every
  /// (epoch, batch) to EVERY registered sink instead of ingesting locally —
  /// the hookup for shipping batches to a remote CollectorAgent or a
  /// PartitionedClient (transport tier), or any other consumer. Multiple
  /// sinks each see the full batch stream (mirroring: e.g. a partitioned
  /// fleet AND a single-collector oracle fed identically in one run). The
  /// local collector() then stays empty. Register before the first
  /// collection; throws std::logic_error afterwards (split state would make
  /// neither side answer fleet queries correctly).
  void add_batch_sink(EpochScheduler::BatchSink sink);
  /// add_batch_sink, replacing any sinks registered so far (the single-sink
  /// hookup the transport tier's one-agent deployments use).
  void set_batch_sink(EpochScheduler::BatchSink sink);

  /// Hands epoch driving to `scheduler`: registers an epoch hook that
  /// flushes every vantage receiver's interpolation buffer, every vantage
  /// exporter for periodic drain/aging, and a sink that ships each batch
  /// through the wire format into the collector. Vantages deployed later
  /// are registered too. The scheduler is borrowed: both it and the
  /// FleetCollector must outlive the scheduler's last firing. Drive with
  /// scheduler.advance_to(sim.now()) as the simulation runs (see
  /// FatTreeSim::run_until) instead of calling collect_epoch by hand.
  void attach_scheduler(EpochScheduler& scheduler);

  /// Per-flow estimates merged across every vantage the classic way
  /// (unbounded FlowStatsMap union) — the ground truth the collector's
  /// sketched answers are validated against.
  [[nodiscard]] rli::FlowStatsMap unsharded_estimates() const;

  [[nodiscard]] ShardedCollector& collector() { return collector_; }
  [[nodiscard]] const ShardedCollector& collector() const { return collector_; }

 private:
  struct Vantage {
    topo::NodeId node;
    std::unique_ptr<rlir::RlirReceiver> receiver;
    std::unique_ptr<EstimateExporter> exporter;
  };

  /// Where a drained batch goes: every remote sink when any is set,
  /// otherwise the wire round-trip into the local collector.
  void deliver(std::uint32_t epoch, const std::vector<EstimateRecord>& batch);

  FleetConfig config_;
  const timebase::Clock* clock_;
  std::vector<Vantage> vantages_;
  ShardedCollector collector_;
  /// Set by attach_scheduler; deploy() registers later exporters with it.
  EpochScheduler* scheduler_ = nullptr;
  std::vector<EpochScheduler::BatchSink> remote_sinks_;
  /// Guards set_batch_sink-after-collection (see header comment).
  bool collected_any_ = false;
};

}  // namespace rlir::collect
