#include "collect/estimate_record.h"

#include <array>
#include <cmath>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>

#include "common/wire.h"

namespace rlir::collect {

namespace {

using common::wire::put;
using common::wire::put_f64;
using common::wire::take;
using common::wire::take_f64;

constexpr std::array<char, 4> kMagic = {'R', 'L', 'E', 'S'};
constexpr std::size_t kHeaderSize = kMagic.size() + 4 + 8;      // magic, version, count
constexpr std::size_t kKeyedFixedSize = 13 + 4 + 2 + 4;        // key, link, sender, epoch
constexpr std::size_t kSketchFixedSize = 8 + 4 +               // accuracy, max_bins
                                         8 + 8 + 8 + 8 + 4;    // zero, sum, min, max, bin count
constexpr std::size_t kBinSize = 4 + 8;                        // index, count
/// Corruption guard: no honest sketch carries this many bins.
constexpr std::uint32_t kMaxWireBins = 1u << 20;

void encode_record(const EstimateRecord& r, std::uint8_t*& p) {
  put<std::uint32_t>(p, r.key.src.value());
  put<std::uint32_t>(p, r.key.dst.value());
  put<std::uint16_t>(p, r.key.src_port);
  put<std::uint16_t>(p, r.key.dst_port);
  put<std::uint8_t>(p, r.key.proto);
  put<std::uint32_t>(p, r.link);
  put<std::uint16_t>(p, r.sender);
  put<std::uint32_t>(p, r.epoch);
  encode_sketch(p, r.sketch);
}

/// Parses one record at `p`, bounds-checked against `end`. Field offsets and
/// validation rules are specified in docs/WIRE.md ("RLES record batches").
EstimateRecord decode_record(const std::uint8_t*& p, const std::uint8_t* end) {
  if (static_cast<std::size_t>(end - p) < kKeyedFixedSize + kSketchFixedSize) {
    throw std::runtime_error("EstimateRecord: truncated record");
  }
  EstimateRecord r;
  r.key.src = net::Ipv4Address(take<std::uint32_t>(p));
  r.key.dst = net::Ipv4Address(take<std::uint32_t>(p));
  r.key.src_port = take<std::uint16_t>(p);
  r.key.dst_port = take<std::uint16_t>(p);
  r.key.proto = take<std::uint8_t>(p);
  r.link = take<std::uint32_t>(p);
  r.sender = take<std::uint16_t>(p);
  r.epoch = take<std::uint32_t>(p);
  r.sketch = decode_sketch(p, end);
  return r;
}

}  // namespace

std::size_t sketch_wire_size(const common::LatencySketch& sketch) {
  return kSketchFixedSize + sketch.bin_count() * kBinSize;
}

void encode_sketch(std::uint8_t*& p, const common::LatencySketch& sketch) {
  put_f64(p, sketch.config().relative_accuracy);
  put<std::uint32_t>(p, static_cast<std::uint32_t>(sketch.config().max_bins));
  put<std::uint64_t>(p, sketch.zero_count());
  put_f64(p, sketch.sum());
  put_f64(p, sketch.min());
  put_f64(p, sketch.max());
  put<std::uint32_t>(p, static_cast<std::uint32_t>(sketch.bin_count()));
  for (const auto& [index, count] : sketch.bins()) {
    put<std::int32_t>(p, index);
    put<std::uint64_t>(p, count);
  }
}

common::LatencySketch decode_sketch(const std::uint8_t*& p, const std::uint8_t* end) {
  if (static_cast<std::size_t>(end - p) < kSketchFixedSize) {
    throw std::runtime_error("EstimateRecord: truncated sketch");
  }
  common::LatencySketchConfig config;
  config.relative_accuracy = take_f64(p);
  config.max_bins = take<std::uint32_t>(p);
  const auto zero_count = take<std::uint64_t>(p);
  const double sum = take_f64(p);
  const double min = take_f64(p);
  const double max = take_f64(p);
  // A NaN/Inf here would silently poison every aggregate it merges into;
  // honest encoders only ever produce finite moments.
  if (!std::isfinite(sum) || !std::isfinite(min) || !std::isfinite(max)) {
    throw std::runtime_error("EstimateRecord: non-finite sketch moments (corrupt input)");
  }
  const auto bin_count = take<std::uint32_t>(p);
  if (bin_count > kMaxWireBins) {
    throw std::runtime_error("EstimateRecord: implausible bin count (corrupt input)");
  }
  if (static_cast<std::size_t>(end - p) < static_cast<std::size_t>(bin_count) * kBinSize) {
    throw std::runtime_error("EstimateRecord: truncated bins");
  }
  common::LatencySketch::BinMap bins;
  for (std::uint32_t i = 0; i < bin_count; ++i) {
    const auto index = take<std::int32_t>(p);
    const auto count = take<std::uint64_t>(p);
    bins[index] += count;
  }
  try {
    return common::LatencySketch::from_parts(config, zero_count, sum, min, max,
                                             std::move(bins));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("EstimateRecord: corrupt sketch config: ") + e.what());
  }
}

namespace {

/// View counterpart of decode_sketch: same bounds/corruption checks, but
/// bins stay in place. The accuracy-range check stands in for the sketch
/// constructor the owning path ran (same runtime_error verdict).
SketchView decode_sketch_view(const std::uint8_t*& p, const std::uint8_t* end) {
  if (static_cast<std::size_t>(end - p) < kSketchFixedSize) {
    throw std::runtime_error("EstimateRecord: truncated sketch");
  }
  SketchView v;
  v.relative_accuracy = take_f64(p);
  v.max_bins = take<std::uint32_t>(p);
  v.zero_count = take<std::uint64_t>(p);
  v.sum = take_f64(p);
  v.min = take_f64(p);
  v.max = take_f64(p);
  if (!std::isfinite(v.sum) || !std::isfinite(v.min) || !std::isfinite(v.max)) {
    throw std::runtime_error("EstimateRecord: non-finite sketch moments (corrupt input)");
  }
  v.bin_count = take<std::uint32_t>(p);
  if (v.bin_count > kMaxWireBins) {
    throw std::runtime_error("EstimateRecord: implausible bin count (corrupt input)");
  }
  if (static_cast<std::size_t>(end - p) < static_cast<std::size_t>(v.bin_count) * kBinSize) {
    throw std::runtime_error("EstimateRecord: truncated bins");
  }
  // The owning path validated accuracy inside from_parts (after reading the
  // bins); match its verdict and ordering. Same runtime_error → peers with
  // corrupt configs are dropped, not crashed into.
  if (!(v.relative_accuracy > 0.0) || !(v.relative_accuracy < 1.0)) {
    throw std::runtime_error(
        "EstimateRecord: corrupt sketch config: LatencySketch: relative_accuracy must be in (0, 1)");
  }
  v.bins = p;
  // One warm sequential pass for the total; the merge re-reads the bins from
  // cache. (The owning decoder paid a BinMap node per bin here instead.)
  for (std::uint32_t i = 0; i < v.bin_count; ++i) {
    const std::uint8_t* bin = v.bins + static_cast<std::size_t>(i) * kBinSize + 4;
    v.binned_count += take<std::uint64_t>(bin);
  }
  p += static_cast<std::size_t>(v.bin_count) * kBinSize;
  return v;
}

RecordView decode_record_view(const std::uint8_t*& p, const std::uint8_t* end) {
  if (static_cast<std::size_t>(end - p) < kKeyedFixedSize + kSketchFixedSize) {
    throw std::runtime_error("EstimateRecord: truncated record");
  }
  RecordView r;
  r.key.src = net::Ipv4Address(take<std::uint32_t>(p));
  r.key.dst = net::Ipv4Address(take<std::uint32_t>(p));
  r.key.src_port = take<std::uint16_t>(p);
  r.key.dst_port = take<std::uint16_t>(p);
  r.key.proto = take<std::uint8_t>(p);
  r.link = take<std::uint32_t>(p);
  r.sender = take<std::uint16_t>(p);
  r.epoch = take<std::uint32_t>(p);
  r.sketch = decode_sketch_view(p, end);
  return r;
}

}  // namespace

std::size_t decode_record_views_prefix(const std::uint8_t* data, std::size_t size,
                                       std::vector<RecordView>& out) {
  const std::uint8_t* p = data;
  const std::uint8_t* end = data + size;
  if (size < kHeaderSize) throw std::runtime_error("EstimateRecord: truncated header");
  for (char c : kMagic) {
    if (take<std::uint8_t>(p) != static_cast<std::uint8_t>(c)) {
      throw std::runtime_error("EstimateRecord: bad magic");
    }
  }
  const auto version = take<std::uint32_t>(p);
  if (version != kEstimateWireVersion) {
    throw std::runtime_error("EstimateRecord: unsupported version " + std::to_string(version));
  }
  const auto count = take<std::uint64_t>(p);
  if (count < (1u << 20)) out.reserve(out.size() + count);  // don't trust a corrupt count
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(decode_record_view(p, end));
  }
  return static_cast<std::size_t>(p - data);
}

void merge_sketch_view(common::LatencySketch& dst, const SketchView& view) {
  dst.merge_parts(view.relative_accuracy, view.max_bins, view.zero_count, view.binned_count,
                  view.sum, view.min, view.max, view.bin_count, [&view](auto&& emit) {
                    const std::uint8_t* p = view.bins;
                    for (std::uint32_t i = 0; i < view.bin_count; ++i) {
                      const auto index = take<std::int32_t>(p);
                      const auto count = take<std::uint64_t>(p);
                      emit(index, count);
                    }
                  });
}

std::size_t wire_size(const EstimateRecord& record) {
  return kKeyedFixedSize + sketch_wire_size(record.sketch);
}

std::size_t wire_size(const RecordView& record) {
  return kKeyedFixedSize + kSketchFixedSize +
         static_cast<std::size_t>(record.sketch.bin_count) * kBinSize;
}

void append_record_body(std::vector<std::uint8_t>& out, const EstimateRecord& record) {
  const std::size_t n = wire_size(record);
  out.resize(out.size() + n);
  encode_record_body(record, out.data() + (out.size() - n));
}

void append_record_body(std::vector<std::uint8_t>& out, const RecordView& record) {
  const std::size_t n = wire_size(record);
  out.resize(out.size() + n);
  encode_record_body(record, out.data() + (out.size() - n));
}

void encode_record_body(const EstimateRecord& record, std::uint8_t* out) {
  encode_record(record, out);
}

void encode_record_body(const RecordView& record, std::uint8_t* out) {
  const std::size_t bin_bytes = static_cast<std::size_t>(record.sketch.bin_count) * kBinSize;
  std::uint8_t* p = out;
  put<std::uint32_t>(p, record.key.src.value());
  put<std::uint32_t>(p, record.key.dst.value());
  put<std::uint16_t>(p, record.key.src_port);
  put<std::uint16_t>(p, record.key.dst_port);
  put<std::uint8_t>(p, record.key.proto);
  put<std::uint32_t>(p, record.link);
  put<std::uint16_t>(p, record.sender);
  put<std::uint32_t>(p, record.epoch);
  put_f64(p, record.sketch.relative_accuracy);
  put<std::uint32_t>(p, record.sketch.max_bins);
  put<std::uint64_t>(p, record.sketch.zero_count);
  put_f64(p, record.sketch.sum);
  put_f64(p, record.sketch.min);
  put_f64(p, record.sketch.max);
  put<std::uint32_t>(p, record.sketch.bin_count);
  std::memcpy(p, record.sketch.bins, bin_bytes);
}

void decode_record_body_views(const std::uint8_t* data, std::size_t size,
                              std::vector<RecordView>& out) {
  const std::uint8_t* p = data;
  const std::uint8_t* end = data + size;
  while (p != end) out.push_back(decode_record_view(p, end));
}

std::vector<std::uint8_t> encode_records(const std::vector<EstimateRecord>& records) {
  std::size_t total = kHeaderSize;
  for (const auto& r : records) total += wire_size(r);
  std::vector<std::uint8_t> buf(total);
  std::uint8_t* p = buf.data();
  for (char c : kMagic) put<std::uint8_t>(p, static_cast<std::uint8_t>(c));
  put<std::uint32_t>(p, kEstimateWireVersion);
  put<std::uint64_t>(p, records.size());
  for (const auto& r : records) encode_record(r, p);
  return buf;
}

DecodedBatch decode_records_prefix(const std::uint8_t* data, std::size_t size) {
  const std::uint8_t* p = data;
  const std::uint8_t* end = data + size;
  if (size < kHeaderSize) throw std::runtime_error("EstimateRecord: truncated header");
  for (char c : kMagic) {
    if (take<std::uint8_t>(p) != static_cast<std::uint8_t>(c)) {
      throw std::runtime_error("EstimateRecord: bad magic");
    }
  }
  const auto version = take<std::uint32_t>(p);
  if (version != kEstimateWireVersion) {
    throw std::runtime_error("EstimateRecord: unsupported version " + std::to_string(version));
  }
  const auto count = take<std::uint64_t>(p);
  DecodedBatch batch;
  if (count < (1u << 20)) batch.records.reserve(count);  // don't trust a corrupt count
  for (std::uint64_t i = 0; i < count; ++i) {
    batch.records.push_back(decode_record(p, end));
  }
  batch.bytes_consumed = static_cast<std::size_t>(p - data);
  return batch;
}

std::vector<EstimateRecord> decode_records(const std::uint8_t* data, std::size_t size) {
  auto batch = decode_records_prefix(data, size);
  if (batch.bytes_consumed != size) {
    throw std::runtime_error("EstimateRecord: trailing bytes after batch");
  }
  return std::move(batch.records);
}

void write_records(std::ostream& out, const std::vector<EstimateRecord>& records) {
  const auto buf = encode_records(records);
  out.write(reinterpret_cast<const char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
  if (!out) throw std::runtime_error("EstimateRecord: stream write failed");
}

std::vector<EstimateRecord> read_records(std::istream& in) {
  std::vector<std::uint8_t> buf(std::istreambuf_iterator<char>(in), {});
  return decode_records(buf.data(), buf.size());
}

}  // namespace rlir::collect
