#include "collect/epoch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "collect/history.h"
#include "obs/span.h"

namespace rlir::collect {

EpochScheduler::EpochScheduler(EpochSchedulerConfig config)
    : config_(config),
      next_epoch_(config.first_epoch),
      next_boundary_(timebase::TimePoint::zero() + config.period),
      last_advance_(timebase::TimePoint::zero()),
      obs_(config.instruments) {
  if (config_.period <= timebase::Duration::zero()) {
    throw std::invalid_argument("EpochScheduler: period must be > 0");
  }
  auto& r = obs_.registry();
  epochs_fired_ = r.counter("rlir_scheduler_epochs_fired_total", obs_.labels());
  records_delivered_ = r.counter("rlir_scheduler_records_delivered_total", obs_.labels());
  flows_aged_out_ = r.counter("rlir_scheduler_flows_aged_out_total", obs_.labels());
}

EpochScheduler::~EpochScheduler() { stop(); }

void EpochScheduler::add_exporter(EstimateExporter* exporter) {
  if (exporter == nullptr) return;
  const std::lock_guard<std::mutex> lock(mu_);
  exporters_.push_back(exporter);
}

void EpochScheduler::add_sink(BatchSink sink) {
  if (!sink) return;
  const std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

void EpochScheduler::add_epoch_hook(EpochHook hook) {
  if (!hook) return;
  const std::lock_guard<std::mutex> lock(mu_);
  hooks_.push_back(std::move(hook));
}

void EpochScheduler::set_history(SketchHistoryStore* history) {
  const std::lock_guard<std::mutex> lock(mu_);
  history_ = history;
}

void EpochScheduler::deliver_locked(std::uint32_t epoch,
                                    const std::vector<EstimateRecord>& batch) {
  if (batch.empty()) return;
  records_delivered_->add(batch.size());
  for (const auto& sink : sinks_) sink(epoch, batch);
}

std::uint32_t EpochScheduler::fire_locked() {
  obs::SpanTimer seal(obs_.spans(), obs::SpanKind::kEpochSeal);
  const std::uint32_t epoch = next_epoch_++;
  for (const auto& hook : hooks_) hook(epoch);
  // Registration order, not exporter address order: batches are delivered in
  // a deterministic sequence run after run.
  const std::uint64_t before = records_delivered_->value();
  for (auto* exporter : exporters_) deliver_locked(epoch, exporter->drain(epoch));
  // After the drains: the sinks have teed this epoch's records, so sealing
  // the store's clock now can only advance it, never orphan records.
  if (history_ != nullptr) history_->note_epoch(epoch);
  epochs_fired_->increment();
  obs_.trace().record(obs::EventKind::kEpochFlush, records_delivered_->value() - before,
                      "epoch " + std::to_string(epoch));
  seal.set_label("epoch" + std::to_string(epoch));
  return epoch;
}

void EpochScheduler::advance_to(timebase::TimePoint now) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (now <= last_advance_) return;
  last_advance_ = now;
  while (next_boundary_ <= now) {
    fire_locked();
    next_boundary_ += config_.period;
  }
  if (config_.max_flow_idle > timebase::Duration::zero()) {
    // Aged-out flows ship under the in-progress epoch's index so the
    // collector files them with the drain that would otherwise have carried
    // them.
    for (auto* exporter : exporters_) {
      const auto batch = exporter->evict_idle(now, config_.max_flow_idle, next_epoch_);
      flows_aged_out_->add(batch.size());
      deliver_locked(next_epoch_, batch);
    }
  }
  // Ship cap evictions at every advance, not just at boundaries: a burst of
  // new flows evicting into the pending buffer must not accumulate sketches
  // for a whole epoch (the across-flows memory bound).
  for (auto* exporter : exporters_) {
    deliver_locked(next_epoch_, exporter->take_pending(next_epoch_));
  }
}

std::uint32_t EpochScheduler::fire_epoch() {
  const std::lock_guard<std::mutex> lock(mu_);
  return fire_locked();
}

void EpochScheduler::start(timebase::Duration period) {
  if (period <= timebase::Duration::zero()) {
    throw std::invalid_argument("EpochScheduler::start: period must be > 0");
  }
  {
    const std::lock_guard<std::mutex> lock(wall_mu_);
    // wall_stopping_: a concurrent stop() has moved the thread out but not
    // joined it yet — resetting wall_stop_ now would revive the old thread
    // and hang that stop() forever.
    if (wall_thread_.joinable() || wall_stopping_) {
      throw std::logic_error("EpochScheduler::start: already running");
    }
    wall_stop_ = false;
    wall_thread_ = std::thread([this, period] { wall_loop(period); });
  }
}

void EpochScheduler::wall_loop(timebase::Duration period) {
  const auto step = std::chrono::nanoseconds(period.ns());
  auto next = std::chrono::steady_clock::now() + step;
  std::unique_lock<std::mutex> lock(wall_mu_);
  while (!wall_cv_.wait_until(lock, next, [&] { return wall_stop_; })) {
    lock.unlock();
    fire_epoch();
    lock.lock();
    // Clamp instead of pure fixed-rate: after a stall (slow sink, loaded
    // host) we drop the missed boundaries rather than firing a catch-up
    // burst of zero-length epochs at CPU speed.
    next = std::max(next + step, std::chrono::steady_clock::now());
  }
}

void EpochScheduler::stop() {
  std::thread to_join;
  {
    const std::lock_guard<std::mutex> lock(wall_mu_);
    if (!wall_thread_.joinable()) return;
    wall_stop_ = true;
    wall_stopping_ = true;
    to_join = std::move(wall_thread_);
  }
  wall_cv_.notify_all();
  to_join.join();
  const std::lock_guard<std::mutex> lock(wall_mu_);
  wall_stopping_ = false;
}

bool EpochScheduler::running() const {
  const std::lock_guard<std::mutex> lock(wall_mu_);
  return wall_thread_.joinable();
}

std::uint32_t EpochScheduler::next_epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_epoch_;
}

std::uint64_t EpochScheduler::epochs_fired() const { return epochs_fired_->value(); }

std::uint64_t EpochScheduler::records_delivered() const {
  return records_delivered_->value();
}

std::uint64_t EpochScheduler::flows_aged_out() const { return flows_aged_out_->value(); }

}  // namespace rlir::collect
