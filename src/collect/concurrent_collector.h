// Concurrent front-end for the sharded collection tier: line-rate estimate
// streams from many vantage points can be submitted from any thread, while
// per-shard worker threads fold them into collector state in parallel.
//
// Architecture: one "lane" per shard. A lane owns
//   * a bounded MPSC queue (mutex + condvar) that submit() routes records
//     into by flow-key hash — producers only pay an enqueue on the hot path;
//   * a worker thread that drains the queue in batches and merges them into
//     the lane's state;
//   * a single-shard ShardedCollector as that state, guarded by a per-lane
//     mutex — which is also the fallback path: when the queue is full (or
//     the collector is configured queueless), the submitting thread takes
//     the lane mutex and merges inline instead of blocking on the queue.
//
// Because sketch merge is exact and commutative, the interleaving of worker
// and fallback applications is irrelevant: any submission order converges to
// the same state a serial ShardedCollector would reach — tests assert exact
// (bin-for-bin) equality, and quiesce() is the barrier that makes queries
// read a consistent snapshot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "collect/estimate_record.h"
#include "collect/sharded_collector.h"
#include "common/latency_sketch.h"
#include "net/flow_key.h"
#include "obs/instrument.h"

namespace rlir::collect {

struct ConcurrentCollectorConfig {
  /// Lane fan-out: shards, queues, and worker threads all scale with this.
  /// Must be >= 1.
  std::size_t shard_count = 8;
  /// Per-lane queue bound (records). A full queue pushes the submitting
  /// thread onto the mutex fallback path instead of blocking. 0 selects the
  /// queueless mode: no worker threads at all, every submit() merges inline
  /// under the lane mutex (mutex-per-shard sharing, still thread-safe).
  std::size_t queue_capacity = 1024;
  /// Accuracy/budget of the shard-side merged sketches (must match the
  /// exporters', as in ShardedCollector).
  common::LatencySketchConfig sketch;
  /// Quantile the per-lane top-k rank indexes are keyed on.
  double top_k_quantile = 0.99;
  /// Observability attachment (see obs/instrument.h). Null members = the
  /// collector owns a private registry/trace.
  obs::Instruments instruments;
};

/// Thread-safe sharded collector: submit() from any thread, thread-per-shard
/// ingest, quiesce() barrier, and the same query surface as ShardedCollector
/// (every query quiesces first, so it observes all prior submissions).
class ConcurrentShardedCollector {
 public:
  ConcurrentShardedCollector() : ConcurrentShardedCollector(ConcurrentCollectorConfig{}) {}
  /// Throws std::invalid_argument if shard_count is 0 or top_k_quantile is
  /// outside [0, 1]. Spawns shard_count worker threads unless
  /// queue_capacity == 0.
  explicit ConcurrentShardedCollector(ConcurrentCollectorConfig config);
  /// Drains every queue, then stops and joins the workers.
  ~ConcurrentShardedCollector();

  ConcurrentShardedCollector(const ConcurrentShardedCollector&) = delete;
  ConcurrentShardedCollector& operator=(const ConcurrentShardedCollector&) = delete;

  /// Routes one record to its lane. Callable from any thread. Validates the
  /// sketch accuracy on the calling thread (std::invalid_argument), so a bad
  /// record never reaches a worker. Record application may complete after
  /// submit() returns; quiesce() (or any query) is the barrier.
  void submit(EstimateRecord record);
  /// Batch path: partitions by lane and enqueues each lane's share under one
  /// lock (one wake-up per lane instead of per record) — the line-rate entry
  /// point. Validates every record before enqueuing any, so a bad batch is
  /// rejected whole.
  void submit(std::vector<EstimateRecord> batch);

  /// Zero-copy batch ingest: merges decoded RecordViews inline under the
  /// per-lane state locks (views borrow the frame payload, so they cannot
  /// ride a queue past the caller's stack frame; inline application is what
  /// makes borrowing safe). Converges to the same state as submit() of the
  /// materialized records — merge is exact and commutative. Validates every
  /// record before touching any lane (std::invalid_argument on accuracy
  /// mismatch, whole batch rejected). Synchronous: complete when it returns.
  void submit_views(const std::vector<RecordView>& batch);

  /// Blocks until every lane's queue is fully drained — a superset of "all
  /// records submitted before this call are merged". Under sustained
  /// concurrent submission this waits for the later records too; pause the
  /// producers when a point-in-time answer matters. Queries call this
  /// implicitly.
  void quiesce();

  /// Attaches a history store tee to every lane (see
  /// ShardedCollector::set_history); the store is internally synchronized,
  /// so lanes share one safely. Quiesces first, so records submitted before
  /// the call land entirely on the old attachment (or none) and records
  /// submitted after land on the new one. Null detaches.
  void set_history(SketchHistoryStore* history);
  [[nodiscard]] SketchHistoryStore* history();

  // --- Queries (each quiesces, then reads under the lane locks) -----------

  [[nodiscard]] std::optional<double> flow_quantile(const net::FiveTuple& key, double q);
  [[nodiscard]] std::optional<FlowSummary> flow_summary(const net::FiveTuple& key);
  /// One flow's merged sketch by value (the transport tier ships it to a
  /// coordinator, which merges split flows bin-wise); nullopt if unseen.
  [[nodiscard]] std::optional<common::LatencySketch> flow_sketch(const net::FiveTuple& key);
  [[nodiscard]] std::optional<common::LatencySketch> link_distribution(LinkId link);
  [[nodiscard]] std::vector<LinkId> links();
  /// Every link with data and its merged distribution, ascending by link —
  /// one quiesce + one pass instead of links() + a query per link.
  [[nodiscard]] std::vector<std::pair<LinkId, common::LatencySketch>> link_distributions();
  [[nodiscard]] common::LatencySketch fleet();
  /// Exact fleet-wide top-k: per-lane O(k) answers (ingest-maintained rank
  /// indexes) merged and re-truncated — the global top-k is always contained
  /// in the union of per-lane top-k's.
  [[nodiscard]] std::vector<FlowSummary> top_k_flows(std::size_t k, double q = 0.99);
  /// top_k_flows with ranking values attached (what a higher tier or the
  /// transport query plane merges/ships), same O(k·lanes) path.
  [[nodiscard]] std::vector<RankedFlowSummary> top_k_ranked(std::size_t k, double q);

  /// A plain (single-threaded) ShardedCollector holding a merged copy of the
  /// current state — the bridge to the serial query/merge/replica APIs and
  /// the equivalence oracle in tests.
  [[nodiscard]] ShardedCollector snapshot();

  // --- Accounting (quiesced, like the queries) -----------------------------

  [[nodiscard]] std::size_t flow_count();
  [[nodiscard]] std::uint64_t records_ingested();
  [[nodiscard]] std::uint64_t estimates_ingested();
  [[nodiscard]] std::size_t epoch_count();
  [[nodiscard]] std::vector<std::size_t> shard_flow_counts();
  /// Submissions that took the inline mutex path because their lane queue
  /// was full (queue-mode only; backpressure visibility).
  [[nodiscard]] std::uint64_t fallback_ingests() const;
  [[nodiscard]] bool threaded() const { return config_.queue_capacity > 0; }
  [[nodiscard]] const ConcurrentCollectorConfig& config() const { return config_; }

 private:
  // One shard's ingest machinery. queue_mu guards queue/pending/stop;
  // state_mu guards state. Lock order where both are needed: never nested —
  // the worker releases queue_mu before taking state_mu.
  struct Lane {
    std::mutex queue_mu;
    std::condition_variable queue_ready;   // worker wake-up
    std::condition_variable queue_drained; // quiesce wake-up
    std::deque<EstimateRecord> queue;
    /// Records enqueued but not yet merged into state (queue + in-flight
    /// worker batch). quiesce() waits for 0.
    std::size_t pending = 0;
    bool stop = false;

    std::mutex state_mu;
    ShardedCollector state;  // shard_count = 1

    std::thread worker;

    /// Queue-depth gauge (rlir_collect_lane_queue_depth{lane=...}); set
    /// under queue_mu wherever queue.size() changes.
    obs::Gauge* depth = nullptr;

    explicit Lane(const CollectorConfig& cfg) : state(cfg) {}
  };

  [[nodiscard]] Lane& lane_for(const net::FiveTuple& key) {
    return *lanes_[key.hash() % lanes_.size()];
  }
  void worker_loop(Lane& lane);
  void apply(Lane& lane, const EstimateRecord& record);

  ConcurrentCollectorConfig config_;
  obs::Instrumented obs_;
  /// unique_ptr: Lane holds mutexes/condvars and is neither movable nor
  /// copyable, so the vector stores stable heap slots.
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// Registry cells: fallbacks replaces the old private atomic (same relaxed
  /// semantics, now scrapeable); submitted counts records entering submit().
  obs::Counter* fallbacks_ = nullptr;
  obs::Counter* submitted_ = nullptr;
};

}  // namespace rlir::collect
