#include "collect/history.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/span.h"

namespace rlir::collect {

namespace {

/// Fixed accounting charge per retained segment (struct + container nodes);
/// the variable part is the raw log's bytes or the compacted sketches'.
constexpr std::size_t kSegmentOverhead = sizeof(std::uint64_t) * 8 + 128;

[[nodiscard]] std::uint32_t window_id(std::uint32_t epoch, std::size_t window) {
  return epoch / static_cast<std::uint32_t>(window);
}

}  // namespace

SketchHistoryStore::SketchHistoryStore(HistoryConfig config)
    : config_(config), obs_(config.instruments) {
  if (config_.raw_epochs == 0) {
    throw std::invalid_argument("SketchHistoryStore: raw_epochs must be >= 1");
  }
  if (config_.mid_window == 0) {
    throw std::invalid_argument("SketchHistoryStore: mid_window must be >= 1");
  }
  if (config_.mid_segments == 0 || config_.coarse_segments == 0) {
    throw std::invalid_argument("SketchHistoryStore: tier segment counts must be >= 1");
  }
  if (config_.coarse_window == 0 || config_.coarse_window % config_.mid_window != 0) {
    throw std::invalid_argument(
        "SketchHistoryStore: coarse_window must be a positive multiple of mid_window");
  }
  if (config_.max_epoch_jump == 0) {
    throw std::invalid_argument("SketchHistoryStore: max_epoch_jump must be >= 1");
  }
  // Validates the accuracy range the same way every sketch consumer does.
  (void)common::LatencySketch(config_.sketch);

  auto& r = obs_.registry();
  const obs::Labels base = obs_.labels();
  c_.bytes = r.gauge("rlir_history_bytes", base);
  c_.epochs = r.gauge("rlir_history_epochs", base);
  c_.records = r.counter("rlir_history_records_total", base);
  c_.compactions = r.counter("rlir_history_compactions_total", base);
  c_.evictions = r.counter("rlir_history_evictions_total", base);
  c_.late = r.counter("rlir_history_late_records_total", base);
  c_.dropped = r.counter("rlir_history_dropped_records_total", base);
}

common::LatencySketchConfig SketchHistoryStore::compact_config() const {
  common::LatencySketchConfig cfg = config_.sketch;
  if (config_.retained_max_bins != 0) cfg.max_bins = config_.retained_max_bins;
  return cfg;
}

bool SketchHistoryStore::admit_epoch_locked(std::uint32_t epoch) {
  if (!any_) {
    any_ = true;
    last_seen_ = epoch;
    raw_first_ = epoch;
    raw_.emplace_back();
    raw_.back().first = raw_.back().last = epoch;
    raw_.back().bytes = kSegmentOverhead;
    total_bytes_ += kSegmentOverhead;
    return true;
  }
  if (epoch <= last_seen_) {
    // Early records: a store fed by flow-hash spray may see its first record
    // mid-stream, so epochs BELOW the first-seen one can still arrive. Grow
    // the raw window backwards while nothing has ever been folded or evicted
    // — the fleet exactness contract (partitioned agents merge bin-for-bin
    // to one collector's answer) depends on every agent retaining the same
    // epoch range regardless of per-agent arrival order.
    if (epoch < raw_first_ && !discarded_ &&
        static_cast<std::uint64_t>(last_seen_) - epoch < config_.raw_epochs) {
      while (raw_first_ > epoch) {
        raw_first_ -= 1;
        raw_.emplace_front();
        raw_.front().first = raw_.front().last = raw_first_;
        raw_.front().bytes = kSegmentOverhead;
        total_bytes_ += kSegmentOverhead;
      }
      enforce_bytes_locked();  // backfill respects max_bytes like any growth
    }
    return true;
  }
  if (epoch - last_seen_ > config_.max_epoch_jump) return false;
  while (last_seen_ < epoch) {
    ++last_seen_;
    raw_.emplace_back();
    raw_.back().first = raw_.back().last = last_seen_;
    raw_.back().bytes = kSegmentOverhead;
    total_bytes_ += kSegmentOverhead;
    while (raw_.size() > config_.raw_epochs) fold_oldest_raw_locked();
  }
  enforce_bytes_locked();
  flush_cells_locked();  // epoch boundary: publish the deferred cells
  return true;
}

void SketchHistoryStore::fold_oldest_raw_locked() {
  Segment src = std::move(raw_.front());
  raw_.pop_front();
  raw_first_ += 1;
  discarded_ = true;  // the folded epoch's raw log is gone for good
  total_bytes_ -= src.bytes;

  const std::uint32_t w = window_id(src.first, config_.mid_window);
  if (mid_.empty() || window_id(mid_.back().first, config_.mid_window) != w) {
    mid_.emplace_back();
    mid_.back().first = mid_.back().last = src.first;
    mid_.back().bytes = kSegmentOverhead;
    total_bytes_ += kSegmentOverhead;
  }
  Segment& dst = mid_.back();
  if (!src.log.empty()) {
    std::vector<RecordView> views;
    const auto cfg = compact_config();
    for (const auto& chunk : src.log.chunks()) {
      views.clear();
      decode_record_body_views(chunk.data.get(), chunk.used, views);
      for (const auto& v : views) {
        auto [fit, f_new] = dst.flows.try_emplace(v.key, common::LatencySketch(cfg));
        (void)f_new;
        merge_sketch_view(fit->second, v.sketch);
        auto [lit, l_new] = dst.links.try_emplace(v.link, common::LatencySketch(cfg));
        (void)l_new;
        merge_sketch_view(lit->second, v.sketch);
      }
    }
  }
  dst.last = src.last;
  dst.records += src.records;
  total_bytes_ -= dst.bytes;
  dst.bytes = map_segment_bytes_locked(dst);
  total_bytes_ += dst.bytes;
  c_.compactions->increment();

  while (mid_.size() > config_.mid_segments) fold_oldest_mid_locked();
}

void SketchHistoryStore::fold_oldest_mid_locked() {
  Segment src = std::move(mid_.front());
  mid_.pop_front();
  total_bytes_ -= src.bytes;

  const std::uint32_t w = window_id(src.first, config_.coarse_window);
  if (coarse_.empty() || window_id(coarse_.back().first, config_.coarse_window) != w) {
    coarse_.emplace_back();
    coarse_.back().first = coarse_.back().last = src.first;
    coarse_.back().bytes = kSegmentOverhead;
    total_bytes_ += kSegmentOverhead;
  }
  Segment& dst = coarse_.back();
  merge_maps_into_locked(dst, src);
  dst.last = src.last;
  dst.records += src.records;
  total_bytes_ -= dst.bytes;
  dst.bytes = map_segment_bytes_locked(dst);
  total_bytes_ += dst.bytes;
  c_.compactions->increment();

  while (coarse_.size() > config_.coarse_segments) evict_front_locked(coarse_);
}

void SketchHistoryStore::merge_maps_into_locked(Segment& dst, const Segment& src) const {
  const auto cfg = compact_config();
  for (const auto& [key, sketch] : src.flows) {
    auto [it, added] = dst.flows.try_emplace(key, common::LatencySketch(cfg));
    (void)added;
    it->second.merge(sketch);
  }
  for (const auto& [link, sketch] : src.links) {
    auto [it, added] = dst.links.try_emplace(link, common::LatencySketch(cfg));
    (void)added;
    it->second.merge(sketch);
  }
}

void SketchHistoryStore::evict_front_locked(std::deque<Segment>& tier) {
  total_bytes_ -= tier.front().bytes;
  tier.pop_front();
  discarded_ = true;
  c_.evictions->increment();
}

void SketchHistoryStore::enforce_bytes_locked() {
  if (config_.max_bytes == 0) return;
  while (total_bytes_ > config_.max_bytes) {
    if (!coarse_.empty()) {
      evict_front_locked(coarse_);
    } else if (!mid_.empty()) {
      evict_front_locked(mid_);
    } else if (raw_.size() > 1) {
      // Never evict the newest raw epoch (still filling); dropping the
      // oldest keeps retained coverage contiguous.
      total_bytes_ -= raw_.front().bytes;
      raw_.pop_front();
      raw_first_ += 1;
      discarded_ = true;
      c_.evictions->increment();
    } else {
      break;  // a single in-flight epoch may exceed a tiny bound
    }
  }
}

std::size_t SketchHistoryStore::map_segment_bytes_locked(const Segment& seg) const {
  std::size_t bytes = kSegmentOverhead + seg.log.size();
  for (const auto& [key, sketch] : seg.flows) {
    bytes += sizeof(key) + sketch.approx_bytes();
  }
  for (const auto& [link, sketch] : seg.links) {
    bytes += sizeof(link) + sketch.approx_bytes();
  }
  return bytes;
}

std::uint32_t SketchHistoryStore::oldest_retained_locked() const {
  if (!coarse_.empty()) return coarse_.front().first;
  if (!mid_.empty()) return mid_.front().first;
  return raw_first_;
}

void SketchHistoryStore::flush_cells_locked() const {
  if (records_pending_ != 0) {
    c_.records->add(records_pending_);
    records_pending_ = 0;
  }
  c_.bytes->set(static_cast<std::int64_t>(total_bytes_));
  const std::size_t epochs =
      any_ ? static_cast<std::size_t>(last_seen_ - oldest_retained_locked()) + 1 : 0;
  c_.epochs->set(static_cast<std::int64_t>(epochs));
}

// --- Ingest ----------------------------------------------------------------

namespace {

/// Merges one late record into a compacted segment's maps.
template <typename Maps, typename SketchLike, typename MergeFn>
void late_merge(Maps& map, const SketchLike& key_or_link, common::LatencySketchConfig cfg,
                MergeFn&& merge) {
  auto [it, added] = map.try_emplace(key_or_link, common::LatencySketch(cfg));
  (void)added;
  merge(it->second);
}

}  // namespace

void SketchHistoryStore::ingest(const EstimateRecord& record) {
  if (record.sketch.config().relative_accuracy != config_.sketch.relative_accuracy) {
    throw std::invalid_argument(
        "SketchHistoryStore::ingest: record sketch accuracy differs from history config");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!admit_epoch_locked(record.epoch)) {
    c_.dropped->increment();
    return;
  }
  if (record.epoch >= raw_first_) {
    Segment& seg = raw_[record.epoch - raw_first_];
    const std::size_t added = wire_size(record);
    encode_record_body(record, seg.log.append_raw(added));
    seg.bytes += added;
    total_bytes_ += added;
    seg.records += 1;
    records_pending_ += 1;
    enforce_bytes_locked();
  } else {
    Segment* late = nullptr;
    for (auto* tier : {&mid_, &coarse_}) {
      auto it = std::lower_bound(
          tier->begin(), tier->end(), record.epoch,
          [](const Segment& s, std::uint32_t e) { return s.last < e; });
      if (it != tier->end() && it->first <= record.epoch) {
        late = &*it;
        break;
      }
    }
    if (late == nullptr) {
      c_.dropped->increment();  // older than everything retained
    } else {
      const auto cfg = compact_config();
      late_merge(late->flows, record.key, cfg,
                 [&](common::LatencySketch& s) { s.merge(record.sketch); });
      late_merge(late->links, record.link, cfg,
                 [&](common::LatencySketch& s) { s.merge(record.sketch); });
      late->records += 1;
      total_bytes_ -= late->bytes;
      late->bytes = map_segment_bytes_locked(*late);
      total_bytes_ += late->bytes;
      records_pending_ += 1;
      c_.late->increment();
      enforce_bytes_locked();
    }
  }
}

void SketchHistoryStore::ingest(const RecordView& record) {
  if (record.sketch.relative_accuracy != config_.sketch.relative_accuracy) {
    throw std::invalid_argument(
        "SketchHistoryStore::ingest: record sketch accuracy differs from history config");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ingest_view_locked(record);
}

void SketchHistoryStore::ingest_view_locked(const RecordView& record) {
  if (!admit_epoch_locked(record.epoch)) {
    c_.dropped->increment();
    return;
  }
  if (record.epoch >= raw_first_) {
    Segment& seg = raw_[record.epoch - raw_first_];
    const std::size_t added = wire_size(record);
    encode_record_body(record, seg.log.append_raw(added));
    seg.bytes += added;
    total_bytes_ += added;
    seg.records += 1;
    records_pending_ += 1;
    enforce_bytes_locked();
    return;
  }
  Segment* late = nullptr;
  for (auto* tier : {&mid_, &coarse_}) {
    auto it = std::lower_bound(tier->begin(), tier->end(), record.epoch,
                               [](const Segment& s, std::uint32_t e) { return s.last < e; });
    if (it != tier->end() && it->first <= record.epoch) {
      late = &*it;
      break;
    }
  }
  if (late == nullptr) {
    c_.dropped->increment();
    return;
  }
  const auto cfg = compact_config();
  late_merge(late->flows, record.key, cfg,
             [&](common::LatencySketch& s) { merge_sketch_view(s, record.sketch); });
  late_merge(late->links, record.link, cfg,
             [&](common::LatencySketch& s) { merge_sketch_view(s, record.sketch); });
  late->records += 1;
  total_bytes_ -= late->bytes;
  late->bytes = map_segment_bytes_locked(*late);
  total_bytes_ += late->bytes;
  records_pending_ += 1;
  c_.late->increment();
  enforce_bytes_locked();
}

void SketchHistoryStore::ingest_views(const std::vector<RecordView>& batch) {
  for (const auto& record : batch) {
    if (record.sketch.relative_accuracy != config_.sketch.relative_accuracy) {
      throw std::invalid_argument(
          "SketchHistoryStore::ingest: record sketch accuracy differs from history config");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& record : batch) ingest_view_locked(record);
  flush_cells_locked();
}

void SketchHistoryStore::note_epoch(std::uint32_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)admit_epoch_locked(epoch);  // an implausible jump is simply ignored
  flush_cells_locked();
}

// --- Window queries --------------------------------------------------------

template <typename Fn>
WindowCoverage SketchHistoryStore::for_each_covering_locked(std::uint32_t first,
                                                            std::uint32_t last,
                                                            Fn&& fn) const {
  WindowCoverage cov;
  cov.requested_first = first;
  cov.requested_last = last;
  if (!any_) return cov;

  const auto visit = [&](const Segment& seg, bool raw_tier) {
    if (seg.last < first || seg.first > last) return;
    if (!cov.covered) {
      cov.covered = true;
      cov.covered_first = seg.first;
      cov.covered_last = seg.last;
    } else {
      cov.covered_first = std::min(cov.covered_first, seg.first);
      cov.covered_last = std::max(cov.covered_last, seg.last);
    }
    cov.records += seg.records;
    fn(seg, raw_tier);
  };

  for (const auto* tier : {&coarse_, &mid_}) {
    // O(log segments) to find the first candidate; visiting is linear in the
    // segments actually covered.
    auto it = std::lower_bound(tier->begin(), tier->end(), first,
                               [](const Segment& s, std::uint32_t e) { return s.last < e; });
    for (; it != tier->end() && it->first <= last; ++it) visit(*it, false);
  }
  if (!raw_.empty() && last >= raw_first_) {
    const std::uint32_t lo = std::max(first, raw_first_);
    const std::uint32_t hi =
        std::min<std::uint64_t>(last, raw_first_ + (raw_.size() - 1));
    for (std::uint32_t e = lo; e <= hi; ++e) visit(raw_[e - raw_first_], true);
  }

  cov.complete = cov.covered && first >= oldest_retained_locked() && last <= last_seen_;
  return cov;
}

std::optional<common::LatencySketch> SketchHistoryStore::window_flow(
    std::uint32_t epoch_first, std::uint32_t epoch_last, const net::FiveTuple& key,
    WindowCoverage* coverage) const {
  if (epoch_first > epoch_last) std::swap(epoch_first, epoch_last);
  obs::SpanTimer span(obs_.spans(), obs::SpanKind::kHistoryWindow, {}, "flow");
  std::lock_guard<std::mutex> lock(mu_);
  common::LatencySketch out(config_.sketch);
  bool found = false;
  std::vector<RecordView> scratch;
  const auto cov = for_each_covering_locked(
      epoch_first, epoch_last, [&](const Segment& seg, bool raw_tier) {
        if (raw_tier) {
          if (seg.log.empty()) return;
          scratch.clear();
          for (const auto& chunk : seg.log.chunks()) {
            decode_record_body_views(chunk.data.get(), chunk.used, scratch);
          }
          for (const auto& v : scratch) {
            if (!(v.key == key)) continue;
            merge_sketch_view(out, v.sketch);
            found = true;
          }
        } else {
          const auto it = seg.flows.find(key);
          if (it == seg.flows.end()) return;
          out.merge(it->second);
          found = true;
        }
      });
  if (coverage != nullptr) *coverage = cov;
  if (!found) return std::nullopt;
  return out;
}

std::optional<double> SketchHistoryStore::window_flow_quantile(
    std::uint32_t epoch_first, std::uint32_t epoch_last, const net::FiveTuple& key, double q,
    WindowCoverage* coverage) const {
  const auto sketch = window_flow(epoch_first, epoch_last, key, coverage);
  if (!sketch.has_value()) return std::nullopt;
  return sketch->quantile(q);
}

std::optional<common::LatencySketch> SketchHistoryStore::window_link(
    std::uint32_t epoch_first, std::uint32_t epoch_last, LinkId link,
    WindowCoverage* coverage) const {
  if (epoch_first > epoch_last) std::swap(epoch_first, epoch_last);
  obs::SpanTimer span(obs_.spans(), obs::SpanKind::kHistoryWindow, {}, "link");
  std::lock_guard<std::mutex> lock(mu_);
  common::LatencySketch out(config_.sketch);
  bool found = false;
  std::vector<RecordView> scratch;
  const auto cov = for_each_covering_locked(
      epoch_first, epoch_last, [&](const Segment& seg, bool raw_tier) {
        if (raw_tier) {
          if (seg.log.empty()) return;
          scratch.clear();
          for (const auto& chunk : seg.log.chunks()) {
            decode_record_body_views(chunk.data.get(), chunk.used, scratch);
          }
          for (const auto& v : scratch) {
            if (v.link != link) continue;
            merge_sketch_view(out, v.sketch);
            found = true;
          }
        } else {
          const auto it = seg.links.find(link);
          if (it == seg.links.end()) return;
          out.merge(it->second);
          found = true;
        }
      });
  if (coverage != nullptr) *coverage = cov;
  if (!found) return std::nullopt;
  return out;
}

common::LatencySketch SketchHistoryStore::window_fleet(std::uint32_t epoch_first,
                                                       std::uint32_t epoch_last,
                                                       WindowCoverage* coverage) const {
  if (epoch_first > epoch_last) std::swap(epoch_first, epoch_last);
  obs::SpanTimer span(obs_.spans(), obs::SpanKind::kHistoryWindow, {}, "fleet");
  std::lock_guard<std::mutex> lock(mu_);
  common::LatencySketch out(config_.sketch);
  std::vector<RecordView> scratch;
  const auto cov = for_each_covering_locked(
      epoch_first, epoch_last, [&](const Segment& seg, bool raw_tier) {
        if (raw_tier) {
          if (seg.log.empty()) return;
          scratch.clear();
          for (const auto& chunk : seg.log.chunks()) {
            decode_record_body_views(chunk.data.get(), chunk.used, scratch);
          }
          for (const auto& v : scratch) merge_sketch_view(out, v.sketch);
        } else {
          // Every record lands in exactly one link aggregate, so the union
          // over links equals the union over records (the collector's
          // fleet() uses the same identity).
          for (const auto& [link, sketch] : seg.links) {
            (void)link;
            out.merge(sketch);
          }
        }
      });
  if (coverage != nullptr) *coverage = cov;
  return out;
}

std::vector<net::FiveTuple> SketchHistoryStore::window_flows(std::uint32_t epoch_first,
                                                             std::uint32_t epoch_last) const {
  if (epoch_first > epoch_last) std::swap(epoch_first, epoch_last);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<net::FiveTuple> keys;
  std::vector<RecordView> scratch;
  for_each_covering_locked(epoch_first, epoch_last, [&](const Segment& seg, bool raw_tier) {
    if (raw_tier) {
      if (seg.log.empty()) return;
      scratch.clear();
      for (const auto& chunk : seg.log.chunks()) {
        decode_record_body_views(chunk.data.get(), chunk.used, scratch);
      }
      for (const auto& v : scratch) keys.push_back(v.key);
    } else {
      for (const auto& [key, sketch] : seg.flows) {
        (void)sketch;
        keys.push_back(key);
      }
    }
  });
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<std::pair<LinkId, common::LatencySketch>> SketchHistoryStore::window_links(
    std::uint32_t epoch_first, std::uint32_t epoch_last) const {
  if (epoch_first > epoch_last) std::swap(epoch_first, epoch_last);
  std::lock_guard<std::mutex> lock(mu_);
  std::map<LinkId, common::LatencySketch> merged;
  std::vector<RecordView> scratch;
  for_each_covering_locked(epoch_first, epoch_last, [&](const Segment& seg, bool raw_tier) {
    if (raw_tier) {
      if (seg.log.empty()) return;
      scratch.clear();
      for (const auto& chunk : seg.log.chunks()) {
        decode_record_body_views(chunk.data.get(), chunk.used, scratch);
      }
      for (const auto& v : scratch) {
        auto [it, added] = merged.try_emplace(v.link, config_.sketch);
        (void)added;
        merge_sketch_view(it->second, v.sketch);
      }
    } else {
      for (const auto& [link, sketch] : seg.links) {
        auto [it, added] = merged.try_emplace(link, config_.sketch);
        (void)added;
        it->second.merge(sketch);
      }
    }
  });
  return {merged.begin(), merged.end()};
}

// --- Accounting ------------------------------------------------------------

std::size_t SketchHistoryStore::approx_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  flush_cells_locked();
  return total_bytes_;
}

std::size_t SketchHistoryStore::epochs_retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  flush_cells_locked();
  if (!any_) return 0;
  return static_cast<std::size_t>(last_seen_ - oldest_retained_locked()) + 1;
}

std::optional<std::uint32_t> SketchHistoryStore::first_retained_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!any_) return std::nullopt;
  return oldest_retained_locked();
}

std::optional<std::uint32_t> SketchHistoryStore::last_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!any_) return std::nullopt;
  return last_seen_;
}

void SketchHistoryStore::refresh_cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  flush_cells_locked();
}

std::uint64_t SketchHistoryStore::records_ingested() const {
  std::lock_guard<std::mutex> lock(mu_);
  flush_cells_locked();
  return c_.records->value();
}
std::uint64_t SketchHistoryStore::compactions() const { return c_.compactions->value(); }
std::uint64_t SketchHistoryStore::evictions() const { return c_.evictions->value(); }
std::uint64_t SketchHistoryStore::late_records() const { return c_.late->value(); }
std::uint64_t SketchHistoryStore::dropped_records() const { return c_.dropped->value(); }

}  // namespace rlir::collect
