// Self-driving epochs for the collection tier: replaces the by-hand
// "call drain()/collect_epoch() when you remember to" loop with a scheduler
// that fires epoch boundaries on a period, flushes whatever is upstream of
// the exporters (receiver interpolation buffers), drains every registered
// exporter, and hands the record batches to sinks — typically a collector
// ingest, with or without a wire round-trip.
//
// Two driving modes share the same firing path:
//   * sim-clock: the owner calls advance_to(sim_now) as simulated time
//     progresses; boundaries land on the fixed grid period, 2·period, ...,
//     so epoch indices (and therefore batches) are independent of how often
//     advance_to is called — same workload, same period, bit-identical
//     batches.
//   * wall-clock: start() spawns a background thread that fires an epoch
//     every period of real time (deployment shape). Producers that feed the
//     exporters from other threads synchronize with firing via pause().
//
// Between boundaries, advance_to also ages idle flows out of the exporters
// (EstimateExporter::evict_idle), shipping their records immediately — the
// across-flows memory bound for receivers whose flows come and go.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "collect/estimate_record.h"
#include "collect/exporter.h"
#include "obs/instrument.h"
#include "timebase/time.h"

namespace rlir::collect {

class SketchHistoryStore;

struct EpochSchedulerConfig {
  /// Epoch length on the driving clock. Boundaries sit on the grid
  /// period, 2·period, ... (sim mode) or every period of real time (wall
  /// mode). Must be > 0.
  timebase::Duration period = timebase::Duration::milliseconds(10);
  /// Age out exporter flows idle longer than this (checked at every
  /// advance_to). Zero disables aging.
  timebase::Duration max_flow_idle = timebase::Duration::zero();
  /// Index of the first epoch fired.
  std::uint32_t first_epoch = 0;
  /// Observability attachment (see obs/instrument.h). Every fired epoch
  /// leaves a kEpochFlush event carrying the records it delivered.
  obs::Instruments instruments;
};

class EpochScheduler {
 public:
  /// Sinks receive each non-empty drained batch (one per exporter per
  /// boundary, plus aging batches). Sinks run on the firing thread and must
  /// not call back into the scheduler.
  using BatchSink = std::function<void(std::uint32_t epoch, const std::vector<EstimateRecord>&)>;
  /// Hooks run at each boundary before the exporters drain — the place to
  /// flush receiver interpolation buffers so the epoch ships every estimate
  /// the vantage point can produce.
  using EpochHook = std::function<void(std::uint32_t epoch)>;

  /// Throws std::invalid_argument if config.period <= 0.
  explicit EpochScheduler(EpochSchedulerConfig config);
  /// Stops the wall-clock thread if running.
  ~EpochScheduler();

  EpochScheduler(const EpochScheduler&) = delete;
  EpochScheduler& operator=(const EpochScheduler&) = delete;

  /// Registration (borrowed pointers; callers keep ownership and must
  /// outlive the scheduler's last firing).
  void add_exporter(EstimateExporter* exporter);
  void add_sink(BatchSink sink);
  void add_epoch_hook(EpochHook hook);

  /// Attaches a history store (borrowed, null detaches): every fired epoch
  /// calls note_epoch AFTER the exporters drain, so the store's clock
  /// advances through idle epochs and compaction keeps pace even when no
  /// records flow.
  void set_history(SketchHistoryStore* history);

  // --- Sim-clock driving ---------------------------------------------------

  /// Fires every boundary with grid time <= now (epoch i covers
  /// (i·period, (i+1)·period]), then runs idle aging against `now`. Calling
  /// with a non-advancing `now` is a no-op.
  void advance_to(timebase::TimePoint now);

  /// Fires one boundary immediately, off-grid (manual driving; also what the
  /// wall-clock thread calls). Returns the epoch index fired.
  std::uint32_t fire_epoch();

  // --- Wall-clock driving --------------------------------------------------

  /// Spawns the background thread: one fire_epoch() per `period` of real
  /// time. Throws std::logic_error if already running.
  void start(timebase::Duration period);
  /// Stops and joins the background thread (idempotent).
  void stop();
  [[nodiscard]] bool running() const;

  /// Blocks epoch firing while held: wall-clock-mode producers wrap exporter
  /// feeds (receiver pumps, observe() calls) in this lock so drains never
  /// race them. Do not call scheduler methods while holding it.
  [[nodiscard]] std::unique_lock<std::mutex> pause() {
    return std::unique_lock<std::mutex>(mu_);
  }

  // --- Accounting ----------------------------------------------------------

  [[nodiscard]] std::uint32_t next_epoch() const;
  [[nodiscard]] std::uint64_t epochs_fired() const;
  [[nodiscard]] std::uint64_t records_delivered() const;
  [[nodiscard]] std::uint64_t flows_aged_out() const;
  [[nodiscard]] const EpochSchedulerConfig& config() const { return config_; }

 private:
  std::uint32_t fire_locked();
  void deliver_locked(std::uint32_t epoch, const std::vector<EstimateRecord>& batch);
  void wall_loop(timebase::Duration period);

  EpochSchedulerConfig config_;

  /// Guards everything below; taken by every firing path and by pause().
  mutable std::mutex mu_;
  std::vector<EstimateExporter*> exporters_;
  std::vector<BatchSink> sinks_;
  std::vector<EpochHook> hooks_;
  SketchHistoryStore* history_ = nullptr;
  std::uint32_t next_epoch_;
  timebase::TimePoint next_boundary_;
  timebase::TimePoint last_advance_;

  obs::Instrumented obs_;
  /// Counter cells replace the old plain members — same values, now
  /// scrapeable; accessors read them without taking mu_.
  obs::Counter* epochs_fired_ = nullptr;
  obs::Counter* records_delivered_ = nullptr;
  obs::Counter* flows_aged_out_ = nullptr;

  // Wall-clock driver state (separate mutex: stop() must be able to wake the
  // thread even while a firing holds mu_).
  mutable std::mutex wall_mu_;
  std::condition_variable wall_cv_;
  bool wall_stop_ = false;
  /// A stop() is between moving the thread out and joining it; start() must
  /// refuse until the join lands (racing start would revive the old loop).
  bool wall_stopping_ = false;
  std::thread wall_thread_;
};

}  // namespace rlir::collect
