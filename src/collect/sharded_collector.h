// The fleet-side collection tier: ingests estimate-record batches from many
// vantage points and answers latency queries across all of them.
//
// Records are routed by flow-key hash to one of N shards; each shard keeps a
// flow table of merged sketches plus per-link (vantage) aggregates. Because
// sketch merge is exact (bin-wise addition), any grouping of the same
// records — by shard, by epoch, by collector replica — converges to the same
// state, which is what makes the tier horizontally scalable: shards can live
// on different machines and replicas can be merged pairwise.
//
// Query API: per-flow quantiles, per-link latency distributions, fleet-wide
// distribution, and top-k worst-latency flows. Top-k is served from a
// per-shard rank index (each shard keeps its flows ordered worst-first at
// the configured quantile), merged at query time with a bounded heap over
// shard cursors — O(k·shards) per query instead of a full scan that
// re-sketches every flow. The index is rebuilt lazily: ingest only marks the
// shard stale, and the first indexed top-k query after a write re-ranks that
// shard's flows. Collection is millions of records between queries, so
// paying O(flows·log flows) once per query instead of O(log flows) plus a
// quantile walk on EVERY record is the right side of the trade by orders of
// magnitude. Consequence: queries mutate the index — the external
// synchronization this class already requires must treat them as writes
// (the concurrent wrapper's per-lane state lock already does).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "collect/estimate_record.h"
#include "common/flat_hash_map.h"
#include "common/latency_sketch.h"
#include "net/flow_key.h"

namespace rlir::collect {

class SketchHistoryStore;

struct CollectorConfig {
  /// Shard fan-out. More shards = smaller per-shard flow tables (and, in a
  /// distributed deployment, more machines). Must be >= 1.
  std::size_t shard_count = 8;
  /// Accuracy/budget of the shard-side merged sketches. The relative
  /// accuracy must match the exporters' so merges stay exact.
  common::LatencySketchConfig sketch;
  /// Quantile the ingest-maintained top-k rank index is keyed on. Queries at
  /// this quantile are O(k·shards); any other quantile falls back to the
  /// full scan. Must be in [0, 1].
  double top_k_quantile = 0.99;
};

/// One flow's answer to a summary query.
struct FlowSummary {
  net::FiveTuple key;
  std::uint64_t packets = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
};

/// A summary with its top-k ranking value (the flow's quantile-q latency).
using RankedFlowSummary = std::pair<double, FlowSummary>;

/// The worst-first ordering contract every top-k path shares — rank index,
/// full scan, and cross-collector merges: higher value first, flow key as
/// the deterministic tie-break.
[[nodiscard]] inline bool ranked_worse_first(const RankedFlowSummary& a,
                                             const RankedFlowSummary& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second.key < b.second.key;
}

/// Drops the ranking values, keeping order.
[[nodiscard]] std::vector<FlowSummary> strip_ranks(std::vector<RankedFlowSummary>&& ranked);

class ShardedCollector {
 public:
  ShardedCollector() : ShardedCollector(CollectorConfig{}) {}
  /// Throws std::invalid_argument if shard_count is 0 or top_k_quantile is
  /// outside [0, 1].
  explicit ShardedCollector(CollectorConfig config);

  /// Routes one record to its shard and merges it into the flow table and
  /// the record's link aggregate. Throws std::invalid_argument on a
  /// relative-accuracy mismatch with the collector's sketch config.
  void ingest(const EstimateRecord& record);
  void ingest(const std::vector<EstimateRecord>& batch);

  /// Zero-copy ingest: merges a decoded RecordView directly from the wire
  /// bytes it points into — identical end state to ingesting the
  /// materialized EstimateRecord, without building it. Same
  /// std::invalid_argument on an accuracy mismatch.
  void ingest(const RecordView& record);

  /// Merges another collector's entire state (replica/epoch union). Shard
  /// counts need not match; flows are re-routed by this collector's hash.
  void merge(const ShardedCollector& other);

  /// Attaches a history store tee (see collect/history.h): every record
  /// ingested after this call is also appended to `history`'s epoch log.
  /// Borrowed — the store must outlive the last ingest; null detaches.
  /// merge() does NOT tee: a replica union re-plays records some collector
  /// already ingested (and teed), not new ones.
  void set_history(SketchHistoryStore* history) { history_ = history; }
  [[nodiscard]] SketchHistoryStore* history() const { return history_; }

  // --- Queries -------------------------------------------------------------

  /// Merged sketch of one flow across all links/epochs; nullptr if unseen.
  [[nodiscard]] const common::LatencySketch* flow(const net::FiveTuple& key) const;
  /// Quantile of one flow's latency distribution; nullopt if unseen.
  [[nodiscard]] std::optional<double> flow_quantile(const net::FiveTuple& key, double q) const;
  [[nodiscard]] std::optional<FlowSummary> flow_summary(const net::FiveTuple& key) const;

  /// Latency distribution observed at one vantage point (merged across
  /// shards); nullopt if the link never produced a record.
  [[nodiscard]] std::optional<common::LatencySketch> link_distribution(LinkId link) const;
  /// All links with data, ascending.
  [[nodiscard]] std::vector<LinkId> links() const;

  /// Fleet-wide latency distribution (union of every link's sketch).
  [[nodiscard]] common::LatencySketch fleet() const;

  /// The k flows with the highest latency at quantile `q`, worst first.
  /// Ties break on flow key so results are deterministic. When q equals the
  /// configured `top_k_quantile` the answer comes from the per-shard rank
  /// index in O(k·shards); other quantiles use the full scan.
  [[nodiscard]] std::vector<FlowSummary> top_k_flows(std::size_t k, double q = 0.99) const;
  /// top_k_flows with each summary's ranking value attached — what a higher
  /// tier needs to merge top-k answers from several collectors without
  /// re-deriving the sort key.
  [[nodiscard]] std::vector<RankedFlowSummary> top_k_ranked(std::size_t k, double q) const;
  /// Reference implementation: scans and re-sketches every flow. Exposed so
  /// tests (and operators who suspect the index) can cross-check the fast
  /// path; results are identical for q == top_k_quantile.
  [[nodiscard]] std::vector<FlowSummary> top_k_flows_scan(std::size_t k, double q) const;

  // --- Accounting ----------------------------------------------------------

  [[nodiscard]] std::size_t flow_count() const;
  [[nodiscard]] std::uint64_t records_ingested() const { return records_; }
  [[nodiscard]] std::uint64_t estimates_ingested() const { return estimates_; }
  /// Distinct epochs seen in ingested records.
  [[nodiscard]] std::size_t epoch_count() const { return epochs_.size(); }
  /// Epochs seen, ascending (replica union visibility).
  [[nodiscard]] std::vector<std::uint32_t> epochs_seen() const;
  /// Flows per shard (load-balance visibility).
  [[nodiscard]] std::vector<std::size_t> shard_flow_counts() const;
  /// Approximate resident bytes of all flow sketches — O(flows x bins),
  /// independent of how many estimates were ingested.
  [[nodiscard]] std::size_t approx_flow_bytes() const;

  [[nodiscard]] const CollectorConfig& config() const { return config_; }

 private:
  /// Worst-first rank ordering: higher quantile value first, flow key as the
  /// deterministic tie-break — the same order the scan path sorts by.
  struct WorstFirst {
    bool operator()(const std::pair<double, net::FiveTuple>& a,
                    const std::pair<double, net::FiveTuple>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    }
  };
  using RankIndex = std::set<std::pair<double, net::FiveTuple>, WorstFirst>;

  struct Shard {
    /// Flat maps (common/flat_hash_map.h): ingest does one lookup+insert per
    /// record, and the dense layout removes the per-entry heap node and the
    /// bucket-pointer chase unordered_map paid there. Iteration order is
    /// insertion-order-until-erase (not hash order); every query that needs
    /// determinism sorts, as before.
    common::FlatHashMap<net::FiveTuple, common::LatencySketch> flows;
    common::FlatHashMap<LinkId, common::LatencySketch> links;
    /// Lazily rebuilt by top_k_ranked when `rank_stale` — mutable because
    /// the rebuild happens inside const query methods (logical const; see
    /// the class comment for the synchronization contract).
    mutable RankIndex rank;
    mutable bool rank_stale = false;
  };

  [[nodiscard]] std::size_t shard_for(const net::FiveTuple& key) const {
    return key.hash() % config_.shard_count;
  }
  /// Merges `sketch` into `key`'s flow state and marks the shard's rank
  /// index stale (the single mutation path ingest and merge share).
  void merge_into_flow(Shard& shard, const net::FiveTuple& key,
                       const common::LatencySketch& sketch);
  /// View counterpart (merge_sketch_view instead of merge; same staleness).
  void merge_into_flow(Shard& shard, const net::FiveTuple& key, const SketchView& sketch);
  /// Re-ranks a stale shard's flows at the configured top-k quantile.
  void refresh_rank(const Shard& shard) const;
  /// The scan implementation behind top_k_flows_scan and the un-indexed
  /// fallback of top_k_ranked — one copy of the ordering/tie-break rules.
  [[nodiscard]] std::vector<RankedFlowSummary> top_k_ranked_scan(std::size_t k, double q) const;
  [[nodiscard]] FlowSummary summarize(const net::FiveTuple& key,
                                      const common::LatencySketch& sketch) const;

  CollectorConfig config_;
  std::vector<Shard> shards_;
  std::unordered_set<std::uint32_t> epochs_;
  std::uint64_t records_ = 0;
  std::uint64_t estimates_ = 0;
  SketchHistoryStore* history_ = nullptr;
};

}  // namespace rlir::collect
