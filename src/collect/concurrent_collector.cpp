#include "collect/concurrent_collector.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace rlir::collect {

namespace {

CollectorConfig lane_config(const ConcurrentCollectorConfig& config) {
  CollectorConfig cfg;
  cfg.shard_count = 1;  // the lane IS the shard; fan-out lives up here
  cfg.sketch = config.sketch;
  cfg.top_k_quantile = config.top_k_quantile;
  return cfg;
}

}  // namespace

ConcurrentShardedCollector::ConcurrentShardedCollector(ConcurrentCollectorConfig config)
    : config_(config), obs_(config.instruments) {
  if (config_.shard_count == 0) {
    throw std::invalid_argument("ConcurrentShardedCollector: shard_count must be >= 1");
  }
  auto& r = obs_.registry();
  fallbacks_ = r.counter("rlir_collect_fallback_ingests_total", obs_.labels());
  submitted_ = r.counter("rlir_collect_records_submitted_total", obs_.labels());
  // top_k_quantile is validated by the lane ShardedCollector constructors.
  lanes_.reserve(config_.shard_count);
  for (std::size_t i = 0; i < config_.shard_count; ++i) {
    lanes_.push_back(std::make_unique<Lane>(lane_config(config_)));
    lanes_.back()->depth =
        r.gauge("rlir_collect_lane_queue_depth", obs_.labels_with("lane", std::to_string(i)));
  }
  if (threaded()) {
    for (auto& lane : lanes_) {
      lane->worker = std::thread([this, lane = lane.get()] { worker_loop(*lane); });
    }
  }
}

ConcurrentShardedCollector::~ConcurrentShardedCollector() {
  if (!threaded()) return;
  for (auto& lane : lanes_) {
    {
      const std::lock_guard<std::mutex> lock(lane->queue_mu);
      lane->stop = true;
    }
    lane->queue_ready.notify_all();
  }
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
}

void ConcurrentShardedCollector::apply(Lane& lane, const EstimateRecord& record) {
  const std::lock_guard<std::mutex> lock(lane.state_mu);
  lane.state.ingest(record);
}

void ConcurrentShardedCollector::submit(EstimateRecord record) {
  // Validate on the submitting thread so the throw lands where the bug is;
  // workers then merge unconditionally.
  if (record.sketch.config().relative_accuracy != config_.sketch.relative_accuracy) {
    throw std::invalid_argument(
        "ConcurrentShardedCollector::submit: record sketch accuracy differs from config");
  }
  submitted_->increment();
  Lane& lane = lane_for(record.key);
  if (threaded()) {
    {
      std::unique_lock<std::mutex> lock(lane.queue_mu);
      if (lane.queue.size() < config_.queue_capacity) {
        lane.queue.push_back(std::move(record));
        ++lane.pending;
        lane.depth->set(static_cast<std::int64_t>(lane.queue.size()));
        lock.unlock();
        lane.queue_ready.notify_one();
        return;
      }
    }
    // Queue full: backpressure resolves on the submitting thread, which pays
    // for the merge itself instead of blocking the other producers. Ordering
    // vs still-queued records is irrelevant — merge is commutative and exact.
    fallbacks_->increment();
  }
  apply(lane, record);
}

void ConcurrentShardedCollector::submit(std::vector<EstimateRecord> batch) {
  for (const auto& record : batch) {
    if (record.sketch.config().relative_accuracy != config_.sketch.relative_accuracy) {
      throw std::invalid_argument(
          "ConcurrentShardedCollector::submit: record sketch accuracy differs from config");
    }
  }
  submitted_->add(batch.size());
  if (!threaded()) {
    for (auto& record : batch) apply(lane_for(record.key), record);
    return;
  }
  std::vector<std::vector<EstimateRecord>> per_lane(lanes_.size());
  for (auto& record : batch) {
    per_lane[record.key.hash() % lanes_.size()].push_back(std::move(record));
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    auto& chunk = per_lane[i];
    if (chunk.empty()) continue;
    Lane& lane = *lanes_[i];
    std::size_t accepted = 0;
    {
      const std::lock_guard<std::mutex> lock(lane.queue_mu);
      // One critical section admits as much of the chunk as fits.
      while (accepted < chunk.size() && lane.queue.size() < config_.queue_capacity) {
        lane.queue.push_back(std::move(chunk[accepted]));
        ++accepted;
      }
      lane.pending += accepted;
      lane.depth->set(static_cast<std::int64_t>(lane.queue.size()));
    }
    if (accepted > 0) lane.queue_ready.notify_one();
    if (accepted < chunk.size()) {
      // Overflow spills to the inline path in one state-lock session.
      fallbacks_->add(chunk.size() - accepted);
      const std::lock_guard<std::mutex> state_lock(lane.state_mu);
      for (std::size_t r = accepted; r < chunk.size(); ++r) lane.state.ingest(chunk[r]);
    }
  }
}

void ConcurrentShardedCollector::submit_views(const std::vector<RecordView>& batch) {
  for (const auto& record : batch) {
    if (record.sketch.relative_accuracy != config_.sketch.relative_accuracy) {
      throw std::invalid_argument(
          "ConcurrentShardedCollector::submit: record sketch accuracy differs from config");
    }
  }
  if (batch.empty()) return;
  submitted_->add(batch.size());
  // Inline application, holding each record's lane lock only while merging
  // it; consecutive same-lane records reuse the held lock. This is the
  // queue-full fallback path generalized: correct under concurrency because
  // merge is exact and commutative, synchronous because views borrow the
  // caller's buffer.
  std::unique_lock<std::mutex> lock;
  std::size_t locked_lane = lanes_.size();  // sentinel: nothing locked yet
  for (const auto& record : batch) {
    const std::size_t l = record.key.hash() % lanes_.size();
    if (l != locked_lane) {
      // Release before acquiring: two callers must never each hold a lane
      // lock while waiting on the other's.
      if (lock.owns_lock()) lock.unlock();
      lock = std::unique_lock<std::mutex>(lanes_[l]->state_mu);
      locked_lane = l;
    }
    lanes_[l]->state.ingest(record);
  }
}

void ConcurrentShardedCollector::worker_loop(Lane& lane) {
  std::vector<EstimateRecord> local;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(lane.queue_mu);
      lane.queue_ready.wait(lock, [&] { return lane.stop || !lane.queue.empty(); });
      if (lane.queue.empty()) return;  // stop requested and fully drained
      // Batch-drain: one queue critical section per wake-up, merges applied
      // outside it so producers are never blocked behind sketch work.
      local.assign(std::make_move_iterator(lane.queue.begin()),
                   std::make_move_iterator(lane.queue.end()));
      lane.queue.clear();
      lane.depth->set(0);
    }
    {
      const std::lock_guard<std::mutex> state_lock(lane.state_mu);
      for (const auto& record : local) lane.state.ingest(record);
    }
    {
      const std::lock_guard<std::mutex> lock(lane.queue_mu);
      lane.pending -= local.size();
      if (lane.pending == 0) lane.queue_drained.notify_all();
    }
    local.clear();
  }
}

void ConcurrentShardedCollector::quiesce() {
  if (!threaded()) return;  // queueless submits complete synchronously
  for (auto& lane : lanes_) {
    std::unique_lock<std::mutex> lock(lane->queue_mu);
    lane->queue_drained.wait(lock, [&] { return lane->pending == 0; });
  }
}

void ConcurrentShardedCollector::set_history(SketchHistoryStore* history) {
  quiesce();
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    lane->state.set_history(history);
  }
}

SketchHistoryStore* ConcurrentShardedCollector::history() {
  const std::lock_guard<std::mutex> lock(lanes_.front()->state_mu);
  return lanes_.front()->state.history();
}

std::optional<double> ConcurrentShardedCollector::flow_quantile(const net::FiveTuple& key,
                                                                double q) {
  quiesce();
  Lane& lane = lane_for(key);
  const std::lock_guard<std::mutex> lock(lane.state_mu);
  return lane.state.flow_quantile(key, q);
}

std::optional<FlowSummary> ConcurrentShardedCollector::flow_summary(const net::FiveTuple& key) {
  quiesce();
  Lane& lane = lane_for(key);
  const std::lock_guard<std::mutex> lock(lane.state_mu);
  return lane.state.flow_summary(key);
}

std::optional<common::LatencySketch> ConcurrentShardedCollector::flow_sketch(
    const net::FiveTuple& key) {
  quiesce();
  Lane& lane = lane_for(key);
  const std::lock_guard<std::mutex> lock(lane.state_mu);
  const auto* sketch = lane.state.flow(key);
  if (sketch == nullptr) return std::nullopt;
  return *sketch;
}

std::optional<common::LatencySketch> ConcurrentShardedCollector::link_distribution(LinkId link) {
  quiesce();
  common::LatencySketch merged(config_.sketch);
  bool seen = false;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    if (auto dist = lane->state.link_distribution(link)) {
      merged.merge(*dist);
      seen = true;
    }
  }
  if (!seen) return std::nullopt;
  return merged;
}

std::vector<LinkId> ConcurrentShardedCollector::links() {
  quiesce();
  std::vector<LinkId> ids;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    const auto lane_ids = lane->state.links();
    ids.insert(ids.end(), lane_ids.begin(), lane_ids.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<std::pair<LinkId, common::LatencySketch>>
ConcurrentShardedCollector::link_distributions() {
  quiesce();
  std::map<LinkId, common::LatencySketch> merged;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    for (const auto link : lane->state.links()) {
      const auto dist = lane->state.link_distribution(link);
      auto [it, inserted] = merged.try_emplace(link, config_.sketch);
      it->second.merge(*dist);
    }
  }
  return {merged.begin(), merged.end()};
}

common::LatencySketch ConcurrentShardedCollector::fleet() {
  quiesce();
  common::LatencySketch all(config_.sketch);
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    all.merge(lane->state.fleet());
  }
  return all;
}

std::vector<RankedFlowSummary> ConcurrentShardedCollector::top_k_ranked(std::size_t k,
                                                                        double q) {
  quiesce();
  std::vector<RankedFlowSummary> ranked;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    auto lane_top = lane->state.top_k_ranked(k, q);
    ranked.insert(ranked.end(), std::make_move_iterator(lane_top.begin()),
                  std::make_move_iterator(lane_top.end()));
  }
  // Global top-k is contained in the union of per-lane top-k's; re-rank with
  // the shared ordering contract and truncate.
  std::sort(ranked.begin(), ranked.end(), ranked_worse_first);
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::vector<FlowSummary> ConcurrentShardedCollector::top_k_flows(std::size_t k, double q) {
  return strip_ranks(top_k_ranked(k, q));
}

ShardedCollector ConcurrentShardedCollector::snapshot() {
  quiesce();
  CollectorConfig cfg;
  cfg.shard_count = config_.shard_count;
  cfg.sketch = config_.sketch;
  cfg.top_k_quantile = config_.top_k_quantile;
  ShardedCollector merged(cfg);
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    merged.merge(lane->state);
  }
  return merged;
}

std::size_t ConcurrentShardedCollector::flow_count() {
  quiesce();
  std::size_t n = 0;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    n += lane->state.flow_count();
  }
  return n;
}

std::uint64_t ConcurrentShardedCollector::records_ingested() {
  quiesce();
  std::uint64_t n = 0;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    n += lane->state.records_ingested();
  }
  return n;
}

std::uint64_t ConcurrentShardedCollector::estimates_ingested() {
  quiesce();
  std::uint64_t n = 0;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    n += lane->state.estimates_ingested();
  }
  return n;
}

std::size_t ConcurrentShardedCollector::epoch_count() {
  quiesce();
  std::vector<std::uint32_t> epochs;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    const auto seen = lane->state.epochs_seen();
    epochs.insert(epochs.end(), seen.begin(), seen.end());
  }
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  return epochs.size();
}

std::vector<std::size_t> ConcurrentShardedCollector::shard_flow_counts() {
  quiesce();
  std::vector<std::size_t> counts;
  counts.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lock(lane->state_mu);
    counts.push_back(lane->state.flow_count());
  }
  return counts;
}

std::uint64_t ConcurrentShardedCollector::fallback_ingests() const {
  return fallbacks_->value();
}

}  // namespace rlir::collect
