#include "collect/slo_watcher.h"

#include <stdexcept>
#include <string>

#include "common/stats.h"
#include "rli/flow_stats.h"

namespace rlir::collect {

SloWatcher::SloWatcher(SloWatcherConfig config, const SketchHistoryStore* history)
    : config_(std::move(config)), history_(history), obs_(config_.instruments) {
  if (history_ == nullptr) {
    throw std::invalid_argument("SloWatcher: history store must not be null");
  }
  if (!(config_.quantile >= 0.0 && config_.quantile <= 1.0)) {
    throw std::invalid_argument("SloWatcher: quantile must be in [0, 1]");
  }
  if (!(config_.threshold_ns > 0.0)) {
    throw std::invalid_argument("SloWatcher: threshold_ns must be > 0");
  }
  if (config_.window_epochs == 0) {
    throw std::invalid_argument("SloWatcher: window_epochs must be >= 1");
  }
  if (config_.max_flows_checked == 0) {
    throw std::invalid_argument("SloWatcher: max_flows_checked must be >= 1");
  }
  auto& r = obs_.registry();
  const obs::Labels base = obs_.labels();
  checks_ = r.counter("rlir_slo_checks_total", base);
  violations_ = r.counter("rlir_slo_violations_total", base);
  flows_checked_ = r.counter("rlir_slo_flows_checked_total", base);
}

std::vector<SloViolation> SloWatcher::check(std::uint32_t epoch) {
  const std::uint32_t window = static_cast<std::uint32_t>(config_.window_epochs);
  const std::uint32_t first = epoch >= window - 1 ? epoch - (window - 1) : 0;
  checks_->increment();

  std::vector<net::FiveTuple> flows = history_->window_flows(first, epoch);
  if (flows.size() > config_.max_flows_checked) flows.resize(config_.max_flows_checked);

  std::vector<SloViolation> violations;
  for (const auto& key : flows) {
    flows_checked_->increment();
    const auto value = history_->window_flow_quantile(first, epoch, key, config_.quantile);
    if (!value.has_value() || *value <= config_.threshold_ns) continue;
    SloViolation v;
    v.key = key;
    v.value_ns = *value;
    v.threshold_ns = config_.threshold_ns;
    v.window_first = first;
    v.window_last = epoch;
    violations.push_back(std::move(v));
  }
  if (violations.empty()) return violations;

  // Something breached: ask "which link shifted" once for the whole window.
  // Each link's sketch becomes decile probe pseudo-flows so the localizer's
  // median-of-flow-means reads off the link's distribution median.
  rlir::AnomalyLocalizer localizer;
  for (const auto& [link, sketch] : history_->window_links(first, epoch)) {
    if (sketch.empty()) continue;
    rli::FlowStatsMap probes;
    for (int i = 0; i < 10; ++i) {
      net::FiveTuple probe_key;
      probe_key.src_port = static_cast<std::uint16_t>(i);
      common::RunningStats stats;
      stats.add(sketch.quantile(0.05 + 0.1 * i));
      probes.emplace(probe_key, stats);
    }
    localizer.add_segment("link" + std::to_string(link), probes);
  }
  const auto findings = localizer.localize(config_.localization_factor);

  for (auto& v : violations) {
    v.findings = findings;
    violations_->increment();
    obs_.trace().record(obs::EventKind::kSloViolation,
                        static_cast<std::uint64_t>(v.value_ns), v.key.to_string());
  }
  return violations;
}

std::vector<SloViolation> SloWatcher::poll() {
  const auto last = history_->last_epoch();
  if (!last.has_value()) return {};
  if (any_checked_ && *last <= last_checked_) return {};
  any_checked_ = true;
  last_checked_ = *last;
  return check(*last);
}

std::function<void(std::uint32_t)> SloWatcher::make_epoch_hook() {
  return [this](std::uint32_t epoch) {
    if (epoch == 0) return;  // nothing sealed before the first epoch
    const std::uint32_t sealed = epoch - 1;
    if (any_checked_ && sealed <= last_checked_) return;
    any_checked_ = true;
    last_checked_ = sealed;
    (void)check(sealed);
  };
}

}  // namespace rlir::collect
