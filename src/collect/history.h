// Epoch-indexed sketch history: the time-travel store behind the collector.
//
// The live collector answers "what is flow X's latency NOW"; operators ask
// "what was p99 over the last 5 minutes" and "which link's distribution
// shifted at 14:02". This store keeps per-epoch DELTAS — the records each
// epoch contributed, not cumulative state — so any window [e1, e2] can be
// answered by merging exactly the epochs it covers (sketch merge is exact,
// associative, and commutative; see common/latency_sketch.h).
//
// Memory is bounded by two mechanisms working together:
//
//   * tiered epoch compaction: the newest `raw_epochs` epochs are kept as
//     raw record logs (append-only byte vectors of self-delimiting record
//     bodies — the cheapest possible ingest tee); older epochs fold into
//     mid-tier segments of `mid_window` epochs (per-flow/per-link merged
//     sketch maps), which in turn fold into coarse segments of
//     `coarse_window` epochs; the oldest coarse segments evict. Retained
//     coverage is always one contiguous range [oldest, newest].
//   * sketch bin-collapsing: compacted-tier sketches are created with
//     `retained_max_bins` as their bin budget, so folding an epoch into a
//     segment collapses its lowest bins once the budget overflows —
//     degrading only low quantiles, exactly like the live sketches do.
//
// On top of the tiers sits a hard byte bound (`max_bytes`): whenever the
// accounted footprint exceeds it, the oldest segments evict (coarse first,
// then mid, then raw — never the newest raw epoch, which is still filling).
//
// Query semantics: a window query visits every retained segment that
// intersects [e1, e2] — O(log E) to locate the first (binary search over
// the sorted segment deques; raw epochs index arithmetically) — and merges
// their deltas bin-for-bin. Compacted segments snap coverage OUTWARD: a
// window edge falling inside an 8-epoch segment includes the whole segment
// (the per-epoch split no longer exists). The WindowCoverage out-param
// reports what was actually merged, so `query(window) == merge of the
// covered epochs' deltas, bin for bin` — the exactness contract the
// property tests assert.
//
// Thread-safety: all methods are safe to call concurrently (one internal
// mutex). Ingest is designed as a tee riding the collector hot path: one
// lock, one body append (~bytes memcpy), no sketch merge.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "collect/estimate_record.h"
#include "common/flat_hash_map.h"
#include "common/latency_sketch.h"
#include "net/flow_key.h"
#include "obs/instrument.h"

namespace rlir::collect {

struct HistoryConfig {
  /// Newest epochs kept as raw per-epoch record logs (full per-epoch
  /// resolution). Must be >= 1.
  std::size_t raw_epochs = 64;
  /// Epochs per mid-tier segment (raw epochs fold into these). Must be >= 1.
  std::size_t mid_window = 8;
  /// Mid-tier segments retained before the oldest folds to coarse. >= 1.
  std::size_t mid_segments = 16;
  /// Epochs per coarse-tier segment; must be a positive multiple of
  /// mid_window (mid segments nest into coarse windows cleanly).
  std::size_t coarse_window = 64;
  /// Coarse segments retained before the oldest evicts. Must be >= 1.
  std::size_t coarse_segments = 16;
  /// Bin budget of compacted-tier sketches (the bin-collapsing bound).
  /// 0 = inherit the producer budget (`sketch.max_bins`) — compaction then
  /// stays bin-for-bin exact and only the tiering bounds memory.
  std::size_t retained_max_bins = 0;
  /// Hard footprint bound; exceeding it evicts oldest segments. 0 = none.
  std::size_t max_bytes = 64u << 20;
  /// Forward epoch jumps larger than this are rejected as corrupt (one bad
  /// wire epoch must not fast-forward away the whole history). Must be >= 1.
  std::uint32_t max_epoch_jump = 1u << 16;
  /// Accuracy contract: ingest rejects records whose relative accuracy
  /// differs (same rule as the collectors'). max_bins is the producer/query
  /// budget.
  common::LatencySketchConfig sketch;
  /// Observability attachment (see obs/instrument.h): rlir_history_* gauges
  /// and counters — the store's memory watchdog.
  obs::Instruments instruments;
};

/// What a window query actually answered: the retained segments intersecting
/// the request, snapped outward to compacted-segment boundaries.
struct WindowCoverage {
  std::uint32_t requested_first = 0;
  std::uint32_t requested_last = 0;
  /// Bounds of the segments merged (only meaningful when `covered`). May
  /// extend beyond the request when a window edge fell inside a compacted
  /// segment, and may fall short when epochs were evicted or never seen.
  std::uint32_t covered_first = 0;
  std::uint32_t covered_last = 0;
  /// At least one retained segment intersected the request.
  bool covered = false;
  /// Every requested epoch is retained (nothing evicted, nothing in the
  /// future): covered && oldest_retained <= requested_first &&
  /// requested_last <= newest_seen.
  bool complete = false;
  /// Records contributing to the covered segments.
  std::uint64_t records = 0;
};

class SketchHistoryStore {
 public:
  /// Throws std::invalid_argument on an invalid config (see field rules).
  explicit SketchHistoryStore(HistoryConfig config = {});

  SketchHistoryStore(const SketchHistoryStore&) = delete;
  SketchHistoryStore& operator=(const SketchHistoryStore&) = delete;

  // --- Ingest (the collector tee) -----------------------------------------

  /// Appends one record to its epoch's raw log. While nothing has ever been
  /// folded or evicted, the raw window also grows BACKWARDS to admit epochs
  /// below the first-seen one (flow-hash spray delivers each agent a
  /// different first record) — so partitioned stores converge on the same
  /// retained range. Records older than the retained range are dropped
  /// (counted); records landing in an already compacted segment merge into
  /// its maps (counted as late). Throws std::invalid_argument on a
  /// relative-accuracy mismatch.
  void ingest(const EstimateRecord& record);
  void ingest(const RecordView& record);
  /// Batch tee: one lock for the whole batch.
  void ingest_views(const std::vector<RecordView>& batch);

  /// Seals time forward to `epoch` without a record — how the epoch
  /// scheduler keeps compaction advancing through idle epochs. Epochs only
  /// move forward; a stale or absurdly-far epoch is ignored.
  void note_epoch(std::uint32_t epoch);

  // --- Window queries ------------------------------------------------------
  // All take an inclusive epoch range (swapped if reversed) and optionally
  // report coverage. Result sketches use the producer config, so they merge
  // exactly with live collector sketches.

  /// One flow's merged delta over the window; nullopt if the flow appears in
  /// no covered segment.
  [[nodiscard]] std::optional<common::LatencySketch> window_flow(
      std::uint32_t epoch_first, std::uint32_t epoch_last, const net::FiveTuple& key,
      WindowCoverage* coverage = nullptr) const;
  /// Quantile of the window's merged flow sketch; nullopt if unseen.
  [[nodiscard]] std::optional<double> window_flow_quantile(
      std::uint32_t epoch_first, std::uint32_t epoch_last, const net::FiveTuple& key,
      double q, WindowCoverage* coverage = nullptr) const;
  /// One vantage's merged delta over the window; nullopt if unseen.
  [[nodiscard]] std::optional<common::LatencySketch> window_link(
      std::uint32_t epoch_first, std::uint32_t epoch_last, LinkId link,
      WindowCoverage* coverage = nullptr) const;
  /// Union of every record in the window (empty sketch when none).
  [[nodiscard]] common::LatencySketch window_fleet(std::uint32_t epoch_first,
                                                   std::uint32_t epoch_last,
                                                   WindowCoverage* coverage = nullptr) const;
  /// Every flow appearing in the window's covered segments, sorted.
  [[nodiscard]] std::vector<net::FiveTuple> window_flows(std::uint32_t epoch_first,
                                                         std::uint32_t epoch_last) const;
  /// Every link appearing in the window with its merged delta, ascending.
  [[nodiscard]] std::vector<std::pair<LinkId, common::LatencySketch>> window_links(
      std::uint32_t epoch_first, std::uint32_t epoch_last) const;

  // --- Accounting ----------------------------------------------------------

  /// Accounted footprint (raw log bytes + compacted sketch bytes + fixed
  /// per-segment overhead) — the quantity max_bytes bounds, also exported
  /// as the rlir_history_bytes gauge.
  [[nodiscard]] std::size_t approx_bytes() const;
  /// Retained epoch span (contiguous); 0 before the first epoch.
  [[nodiscard]] std::size_t epochs_retained() const;
  [[nodiscard]] std::optional<std::uint32_t> first_retained_epoch() const;
  [[nodiscard]] std::optional<std::uint32_t> last_epoch() const;
  [[nodiscard]] std::uint64_t records_ingested() const;
  /// Segment folds (raw->mid and mid->coarse).
  [[nodiscard]] std::uint64_t compactions() const;
  /// Segments dropped (tier overflow or byte bound).
  [[nodiscard]] std::uint64_t evictions() const;
  /// Records merged into an already-compacted segment.
  [[nodiscard]] std::uint64_t late_records() const;
  /// Records rejected: older than everything retained, or an implausible
  /// forward epoch jump.
  [[nodiscard]] std::uint64_t dropped_records() const;

  [[nodiscard]] const HistoryConfig& config() const { return config_; }

  /// Publishes the deferred hot-path counters into the registry cells.
  /// Ingest defers cell updates to epoch seals (see flush_cells_locked), so
  /// a scrape taken mid-epoch lags by the unsealed tail — call this first
  /// when rendering a snapshot that must reflect every ingested record.
  void refresh_cells() const;

 private:
  /// Append-only record-body log in fixed chunks. A flat byte vector would
  /// double-and-memcpy megabytes per busy epoch and touch ~2x the pages the
  /// data needs — measurable on the collector tee, which rides the ingest
  /// hot path. Chunks never relocate once written; records never straddle
  /// chunks (each body is appended whole into the current chunk).
  class RecordLog {
   public:
    // Below glibc's 128 KiB mmap threshold so chunk churn recycles through
    // the malloc free lists instead of mmap/munmap syscalls.
    static constexpr std::size_t kChunkBytes = 64u << 10;

    /// One fixed-capacity slab of appended record bodies. Raw buffers
    /// (default-initialized, not vectors) so appends never pay a zero-fill
    /// and chunk growth never copies old bodies.
    struct Chunk {
      std::unique_ptr<std::uint8_t[]> data;
      std::size_t used = 0;
      std::size_t cap = 0;
    };

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] const std::vector<Chunk>& chunks() const { return chunks_; }
    /// Reserves `n` contiguous bytes (opening a fresh chunk when the current
    /// one would overflow) and returns where to write them.
    [[nodiscard]] std::uint8_t* append_raw(std::size_t n) {
      if (chunks_.empty() || chunks_.back().used + n > chunks_.back().cap) {
        Chunk chunk;
        chunk.cap = std::max(kChunkBytes, n);
        chunk.data.reset(new std::uint8_t[chunk.cap]);
        chunks_.push_back(std::move(chunk));
      }
      Chunk& tail = chunks_.back();
      std::uint8_t* at = tail.data.get() + tail.used;
      tail.used += n;
      size_ += n;
      return at;
    }

   private:
    std::vector<Chunk> chunks_;
    std::size_t size_ = 0;
  };

  /// One retained slice of history. Raw tier: first == last and the records
  /// live in `log` (appended bodies). Compacted tiers: [first, last] spans
  /// a window and the records live pre-merged in the flow/link maps.
  struct Segment {
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    std::uint64_t records = 0;
    RecordLog log;
    common::FlatHashMap<net::FiveTuple, common::LatencySketch> flows;
    common::FlatHashMap<LinkId, common::LatencySketch> links;
    /// Accounted footprint contribution (kept in sync with total_bytes_).
    std::size_t bytes = 0;
  };

  [[nodiscard]] common::LatencySketchConfig compact_config() const;
  /// True if the record's epoch was admitted (time advanced as needed);
  /// false = rejected jump (counted by the caller).
  bool admit_epoch_locked(std::uint32_t epoch);
  /// The per-record ingest body shared by the scalar and batch view paths
  /// (the scalar one is the collector tee's hot path — no allocations).
  void ingest_view_locked(const RecordView& record);
  void fold_oldest_raw_locked();
  void fold_oldest_mid_locked();
  void merge_maps_into_locked(Segment& dst, const Segment& src) const;
  void evict_front_locked(std::deque<Segment>& tier);
  void enforce_bytes_locked();
  /// Publishes the locked state into the registry cells (gauges + the
  /// deferred record count). Runs at epoch boundaries, queries, and
  /// accessors — NOT per record: the tee rides the collector's hot path,
  /// and three extra atomic cache lines per record are measurable.
  void flush_cells_locked() const;
  [[nodiscard]] std::size_t map_segment_bytes_locked(const Segment& seg) const;
  [[nodiscard]] std::uint32_t oldest_retained_locked() const;
  /// Visits every retained segment intersecting [first, last], oldest tier
  /// first, accumulating coverage. `fn(segment, is_raw)`.
  template <typename Fn>
  WindowCoverage for_each_covering_locked(std::uint32_t first, std::uint32_t last,
                                          Fn&& fn) const;

  HistoryConfig config_;
  obs::Instrumented obs_;

  mutable std::mutex mu_;
  /// Raw tier: contiguous epochs [raw_first_, raw_first_ + raw_.size()).
  std::deque<Segment> raw_;
  std::uint32_t raw_first_ = 0;
  /// Compacted tiers, ascending and disjoint; coarse_ covers the oldest
  /// epochs, mid_ the range between coarse_ and raw_.
  std::deque<Segment> mid_;
  std::deque<Segment> coarse_;
  bool any_ = false;
  std::uint32_t last_seen_ = 0;
  /// True once any epoch has been folded or evicted; gates backward raw
  /// growth (the pre-raw_first_ range is only re-admittable while nothing
  /// that ever covered it has been discarded).
  bool discarded_ = false;
  std::size_t total_bytes_ = 0;
  /// Records ingested since the last flush_cells_locked() (hot-path counter
  /// kept off the shared registry cache lines; mutable so const accessors
  /// can publish before reading the cell).
  mutable std::uint64_t records_pending_ = 0;

  /// Counter cells are the storage (accessors read them); gauges track the
  /// bounded quantities — the memory watchdog surface.
  struct Cells {
    obs::Gauge* bytes = nullptr;
    obs::Gauge* epochs = nullptr;
    obs::Counter* records = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* late = nullptr;
    obs::Counter* dropped = nullptr;
  };
  Cells c_{};
};

}  // namespace rlir::collect
