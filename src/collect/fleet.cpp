#include "collect/fleet.h"

#include <stdexcept>
#include <utility>

namespace rlir::collect {

FleetCollector::FleetCollector(FleetConfig config, const timebase::Clock* clock)
    : config_(config), clock_(clock), collector_(config.collector) {
  if (clock_ == nullptr) {
    throw std::invalid_argument("FleetCollector: clock must not be null");
  }
}

LinkId FleetCollector::deploy(topo::FatTreeSim& sim, topo::NodeId node,
                              const rlir::Demultiplexer* demux) {
  const auto link = static_cast<LinkId>(vantages_.size());
  Vantage v;
  v.node = node;
  v.receiver = std::make_unique<rlir::RlirReceiver>(config_.receiver, clock_, demux);
  v.exporter = std::make_unique<EstimateExporter>(
      ExporterConfig{config_.collector.sketch, link});
  v.exporter->attach(*v.receiver);
  sim.add_arrival_tap(node, v.receiver.get());
  // A vantage deployed after attach_scheduler() must still be drained on
  // the same epochs (the flush hook already sees it via vantages_).
  if (scheduler_ != nullptr) scheduler_->add_exporter(v.exporter.get());
  vantages_.push_back(std::move(v));
  return link;
}

rlir::RlirReceiver& FleetCollector::receiver(LinkId link) {
  return *vantages_.at(link).receiver;
}

const rlir::RlirReceiver& FleetCollector::receiver(LinkId link) const {
  return *vantages_.at(link).receiver;
}

topo::NodeId FleetCollector::node(LinkId link) const { return vantages_.at(link).node; }

void FleetCollector::deliver(std::uint32_t epoch, const std::vector<EstimateRecord>& batch) {
  collected_any_ = true;
  if (!remote_sinks_.empty()) {
    for (const auto& sink : remote_sinks_) sink(epoch, batch);
    return;
  }
  // Round-trip through the wire format: what a networked vantage would
  // transmit is exactly what the collector ingests.
  const auto bytes = encode_records(batch);
  collector_.ingest(decode_records(bytes.data(), bytes.size()));
}

std::size_t FleetCollector::collect_epoch(std::uint32_t epoch) {
  std::size_t collected = 0;
  for (auto& v : vantages_) {
    const auto batch = v.exporter->drain(epoch);
    if (batch.empty()) continue;
    deliver(epoch, batch);
    collected += batch.size();
  }
  return collected;
}

void FleetCollector::add_batch_sink(EpochScheduler::BatchSink sink) {
  if (collected_any_) {
    throw std::logic_error(
        "FleetCollector::add_batch_sink: collection already started in-process");
  }
  if (!sink) {
    throw std::invalid_argument("FleetCollector::add_batch_sink: null sink");
  }
  remote_sinks_.push_back(std::move(sink));
}

void FleetCollector::set_batch_sink(EpochScheduler::BatchSink sink) {
  if (collected_any_) {
    throw std::logic_error(
        "FleetCollector::set_batch_sink: collection already started in-process");
  }
  remote_sinks_.clear();
  if (sink) remote_sinks_.push_back(std::move(sink));
}

void FleetCollector::attach_scheduler(EpochScheduler& scheduler) {
  if (scheduler_ != nullptr) {
    // A second attach would duplicate sinks/hooks and double-ingest every
    // batch from then on — fail loudly instead.
    throw std::logic_error("FleetCollector::attach_scheduler: already attached");
  }
  scheduler.add_epoch_hook([this](std::uint32_t) {
    for (auto& v : vantages_) v.receiver->flush();
  });
  for (auto& v : vantages_) scheduler.add_exporter(v.exporter.get());
  // deploy() keeps later vantages in sync (flush hook already iterates
  // vantages_ live; the exporter registration must match).
  scheduler_ = &scheduler;
  scheduler.add_sink([this](std::uint32_t epoch, const std::vector<EstimateRecord>& batch) {
    // Same delivery as collect_epoch: the wire round-trip into the local
    // collector, or the remote sink when one is set.
    deliver(epoch, batch);
  });
}

rli::FlowStatsMap FleetCollector::unsharded_estimates() const {
  rli::FlowStatsMap merged;
  for (const auto& v : vantages_) {
    for (const auto& [key, stats] : v.receiver->merged_estimates()) {
      merged[key].merge(stats);
    }
  }
  return merged;
}

}  // namespace rlir::collect
