#include "collect/sharded_collector.h"

#include <algorithm>
#include <stdexcept>

namespace rlir::collect {

ShardedCollector::ShardedCollector(CollectorConfig config) : config_(config) {
  if (config_.shard_count == 0) {
    throw std::invalid_argument("ShardedCollector: shard_count must be >= 1");
  }
  shards_.resize(config_.shard_count);
}

void ShardedCollector::ingest(const EstimateRecord& record) {
  // Reject before touching any state, so a mismatched record can't leave
  // phantom empty flow/link entries behind.
  if (record.sketch.config().relative_accuracy != config_.sketch.relative_accuracy) {
    throw std::invalid_argument(
        "ShardedCollector::ingest: record sketch accuracy differs from collector config");
  }
  Shard& shard = shards_[shard_for(record.key)];

  auto [flow_it, inserted] =
      shard.flows.try_emplace(record.key, common::LatencySketch(config_.sketch));
  flow_it->second.merge(record.sketch);

  // A link's records scatter across flow shards, so link aggregates are kept
  // per shard and unioned at query time (exact merge makes that lossless).
  auto [link_it, link_inserted] =
      shard.links.try_emplace(record.link, common::LatencySketch(config_.sketch));
  link_it->second.merge(record.sketch);

  epochs_.insert(record.epoch);
  ++records_;
  estimates_ += record.sketch.count();
}

void ShardedCollector::ingest(const std::vector<EstimateRecord>& batch) {
  for (const auto& record : batch) ingest(record);
}

void ShardedCollector::merge(const ShardedCollector& other) {
  if (&other == this) {
    // Self-merge would re-home link aggregates into shards still pending
    // iteration and count them repeatedly; merging a snapshot gives the
    // clean "every record twice" semantics instead.
    const ShardedCollector snapshot(other);
    merge(snapshot);
    return;
  }
  // Same up-front rejection as ingest(): a mismatched replica must not
  // leave phantom entries behind by throwing mid-merge. (Every sketch in
  // `other` carries its config's accuracy — ingest enforced that.)
  if (other.config_.sketch.relative_accuracy != config_.sketch.relative_accuracy) {
    throw std::invalid_argument(
        "ShardedCollector::merge: replica sketch accuracy differs from collector config");
  }
  for (const auto& shard : other.shards_) {
    for (const auto& [key, sketch] : shard.flows) {
      Shard& mine = shards_[shard_for(key)];
      auto [it, inserted] = mine.flows.try_emplace(key, common::LatencySketch(config_.sketch));
      it->second.merge(sketch);
    }
    for (const auto& [link_id, sketch] : shard.links) {
      // Keep each link aggregate in a single home shard when re-merging so
      // repeated replica unions don't scatter state: home = link % shards.
      Shard& mine = shards_[link_id % config_.shard_count];
      auto [it, inserted] = mine.links.try_emplace(link_id, common::LatencySketch(config_.sketch));
      it->second.merge(sketch);
    }
  }
  epochs_.insert(other.epochs_.begin(), other.epochs_.end());
  records_ += other.records_;
  estimates_ += other.estimates_;
}

const common::LatencySketch* ShardedCollector::flow(const net::FiveTuple& key) const {
  const Shard& shard = shards_[shard_for(key)];
  const auto it = shard.flows.find(key);
  return it == shard.flows.end() ? nullptr : &it->second;
}

std::optional<double> ShardedCollector::flow_quantile(const net::FiveTuple& key, double q) const {
  const auto* sketch = flow(key);
  if (sketch == nullptr) return std::nullopt;
  return sketch->quantile(q);
}

FlowSummary ShardedCollector::summarize(const net::FiveTuple& key,
                                        const common::LatencySketch& sketch) const {
  FlowSummary s;
  s.key = key;
  s.packets = sketch.count();
  s.mean_ns = sketch.mean();
  s.p50_ns = sketch.quantile(0.5);
  s.p99_ns = sketch.quantile(0.99);
  s.max_ns = sketch.max();
  return s;
}

std::optional<FlowSummary> ShardedCollector::flow_summary(const net::FiveTuple& key) const {
  const auto* sketch = flow(key);
  if (sketch == nullptr) return std::nullopt;
  return summarize(key, *sketch);
}

std::optional<common::LatencySketch> ShardedCollector::link_distribution(LinkId link_id) const {
  common::LatencySketch merged(config_.sketch);
  bool seen = false;
  for (const auto& shard : shards_) {
    const auto it = shard.links.find(link_id);
    if (it != shard.links.end()) {
      merged.merge(it->second);
      seen = true;
    }
  }
  if (!seen) return std::nullopt;
  return merged;
}

std::vector<LinkId> ShardedCollector::links() const {
  std::vector<LinkId> ids;
  for (const auto& shard : shards_) {
    for (const auto& [link_id, sketch] : shard.links) ids.push_back(link_id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

common::LatencySketch ShardedCollector::fleet() const {
  common::LatencySketch all(config_.sketch);
  for (const auto& shard : shards_) {
    for (const auto& [link_id, sketch] : shard.links) {
      (void)link_id;
      all.merge(sketch);
    }
  }
  return all;
}

std::vector<FlowSummary> ShardedCollector::top_k_flows(std::size_t k, double q) const {
  std::vector<std::pair<double, FlowSummary>> ranked;
  ranked.reserve(flow_count());
  for (const auto& shard : shards_) {
    for (const auto& [key, sketch] : shard.flows) {
      ranked.emplace_back(sketch.quantile(q), summarize(key, sketch));
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second.key < b.second.key;
  });
  if (ranked.size() > k) ranked.resize(k);
  std::vector<FlowSummary> top;
  top.reserve(ranked.size());
  for (auto& [value, summary] : ranked) {
    (void)value;
    top.push_back(std::move(summary));
  }
  return top;
}

std::size_t ShardedCollector::flow_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.flows.size();
  return n;
}

std::vector<std::size_t> ShardedCollector::shard_flow_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) counts.push_back(shard.flows.size());
  return counts;
}

std::size_t ShardedCollector::approx_flow_bytes() const {
  std::size_t bytes = 0;
  for (const auto& shard : shards_) {
    for (const auto& [key, sketch] : shard.flows) {
      (void)key;
      bytes += sketch.approx_bytes();
    }
  }
  return bytes;
}

}  // namespace rlir::collect
