#include "collect/sharded_collector.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "collect/history.h"

namespace rlir::collect {

ShardedCollector::ShardedCollector(CollectorConfig config) : config_(config) {
  if (config_.shard_count == 0) {
    throw std::invalid_argument("ShardedCollector: shard_count must be >= 1");
  }
  if (config_.top_k_quantile < 0.0 || config_.top_k_quantile > 1.0) {
    throw std::invalid_argument("ShardedCollector: top_k_quantile must be in [0, 1]");
  }
  shards_.resize(config_.shard_count);
}

void ShardedCollector::merge_into_flow(Shard& shard, const net::FiveTuple& key,
                                       const common::LatencySketch& sketch) {
  auto [it, inserted] = shard.flows.try_emplace(key, common::LatencySketch(config_.sketch));
  it->second.merge(sketch);
  shard.rank_stale = true;
}

void ShardedCollector::ingest(const EstimateRecord& record) {
  // Reject before touching any state, so a mismatched record can't leave
  // phantom empty flow/link entries behind.
  if (record.sketch.config().relative_accuracy != config_.sketch.relative_accuracy) {
    throw std::invalid_argument(
        "ShardedCollector::ingest: record sketch accuracy differs from collector config");
  }
  Shard& shard = shards_[shard_for(record.key)];

  merge_into_flow(shard, record.key, record.sketch);

  // A link's records scatter across flow shards, so link aggregates are kept
  // per shard and unioned at query time (exact merge makes that lossless).
  auto [link_it, link_inserted] =
      shard.links.try_emplace(record.link, common::LatencySketch(config_.sketch));
  link_it->second.merge(record.sketch);

  epochs_.insert(record.epoch);
  ++records_;
  estimates_ += record.sketch.count();

  if (history_ != nullptr) history_->ingest(record);
}

void ShardedCollector::ingest(const std::vector<EstimateRecord>& batch) {
  for (const auto& record : batch) ingest(record);
}

void ShardedCollector::merge_into_flow(Shard& shard, const net::FiveTuple& key,
                                       const SketchView& sketch) {
  auto [it, inserted] = shard.flows.try_emplace(key, common::LatencySketch(config_.sketch));
  merge_sketch_view(it->second, sketch);
  shard.rank_stale = true;
}

void ShardedCollector::refresh_rank(const Shard& shard) const {
  if (!shard.rank_stale) return;
  shard.rank.clear();
  for (const auto& [key, sketch] : shard.flows) {
    shard.rank.insert({sketch.quantile(config_.top_k_quantile), key});
  }
  shard.rank_stale = false;
}

void ShardedCollector::ingest(const RecordView& record) {
  // Same state transitions as the owning overload, sourced from the wire
  // bytes the view borrows.
  if (record.sketch.relative_accuracy != config_.sketch.relative_accuracy) {
    throw std::invalid_argument(
        "ShardedCollector::ingest: record sketch accuracy differs from collector config");
  }
  Shard& shard = shards_[shard_for(record.key)];

  merge_into_flow(shard, record.key, record.sketch);

  auto [link_it, link_inserted] =
      shard.links.try_emplace(record.link, common::LatencySketch(config_.sketch));
  merge_sketch_view(link_it->second, record.sketch);

  epochs_.insert(record.epoch);
  ++records_;
  estimates_ += record.sketch.count();

  if (history_ != nullptr) history_->ingest(record);
}

void ShardedCollector::merge(const ShardedCollector& other) {
  if (&other == this) {
    // Self-merge would re-home link aggregates into shards still pending
    // iteration and count them repeatedly; merging a snapshot gives the
    // clean "every record twice" semantics instead.
    const ShardedCollector snapshot(other);
    merge(snapshot);
    return;
  }
  // Same up-front rejection as ingest(): a mismatched replica must not
  // leave phantom entries behind by throwing mid-merge. (Every sketch in
  // `other` carries its config's accuracy — ingest enforced that.)
  if (other.config_.sketch.relative_accuracy != config_.sketch.relative_accuracy) {
    throw std::invalid_argument(
        "ShardedCollector::merge: replica sketch accuracy differs from collector config");
  }
  for (const auto& shard : other.shards_) {
    for (const auto& [key, sketch] : shard.flows) {
      merge_into_flow(shards_[shard_for(key)], key, sketch);
    }
    for (const auto& [link_id, sketch] : shard.links) {
      // Keep each link aggregate in a single home shard when re-merging so
      // repeated replica unions don't scatter state: home = link % shards.
      Shard& mine = shards_[link_id % config_.shard_count];
      auto [it, inserted] = mine.links.try_emplace(link_id, common::LatencySketch(config_.sketch));
      it->second.merge(sketch);
    }
  }
  epochs_.insert(other.epochs_.begin(), other.epochs_.end());
  records_ += other.records_;
  estimates_ += other.estimates_;
}

const common::LatencySketch* ShardedCollector::flow(const net::FiveTuple& key) const {
  const Shard& shard = shards_[shard_for(key)];
  const auto it = shard.flows.find(key);
  return it == shard.flows.end() ? nullptr : &it->second;
}

std::optional<double> ShardedCollector::flow_quantile(const net::FiveTuple& key, double q) const {
  const auto* sketch = flow(key);
  if (sketch == nullptr) return std::nullopt;
  return sketch->quantile(q);
}

FlowSummary ShardedCollector::summarize(const net::FiveTuple& key,
                                        const common::LatencySketch& sketch) const {
  FlowSummary s;
  s.key = key;
  s.packets = sketch.count();
  s.mean_ns = sketch.mean();
  s.p50_ns = sketch.quantile(0.5);
  s.p99_ns = sketch.quantile(0.99);
  s.max_ns = sketch.max();
  return s;
}

std::optional<FlowSummary> ShardedCollector::flow_summary(const net::FiveTuple& key) const {
  const auto* sketch = flow(key);
  if (sketch == nullptr) return std::nullopt;
  return summarize(key, *sketch);
}

std::optional<common::LatencySketch> ShardedCollector::link_distribution(LinkId link_id) const {
  common::LatencySketch merged(config_.sketch);
  bool seen = false;
  for (const auto& shard : shards_) {
    const auto it = shard.links.find(link_id);
    if (it != shard.links.end()) {
      merged.merge(it->second);
      seen = true;
    }
  }
  if (!seen) return std::nullopt;
  return merged;
}

std::vector<LinkId> ShardedCollector::links() const {
  std::vector<LinkId> ids;
  for (const auto& shard : shards_) {
    for (const auto& [link_id, sketch] : shard.links) ids.push_back(link_id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

common::LatencySketch ShardedCollector::fleet() const {
  common::LatencySketch all(config_.sketch);
  for (const auto& shard : shards_) {
    for (const auto& [link_id, sketch] : shard.links) {
      (void)link_id;
      all.merge(sketch);
    }
  }
  return all;
}

std::vector<FlowSummary> strip_ranks(std::vector<RankedFlowSummary>&& ranked) {
  std::vector<FlowSummary> top;
  top.reserve(ranked.size());
  for (auto& [value, summary] : ranked) {
    (void)value;
    top.push_back(std::move(summary));
  }
  return top;
}

std::vector<FlowSummary> ShardedCollector::top_k_flows(std::size_t k, double q) const {
  return strip_ranks(top_k_ranked(k, q));
}

std::vector<RankedFlowSummary> ShardedCollector::top_k_ranked_scan(std::size_t k,
                                                                   double q) const {
  std::vector<RankedFlowSummary> top;
  top.reserve(flow_count());
  for (const auto& shard : shards_) {
    for (const auto& [key, sketch] : shard.flows) {
      top.emplace_back(sketch.quantile(q), summarize(key, sketch));
    }
  }
  std::sort(top.begin(), top.end(), ranked_worse_first);
  if (top.size() > k) top.resize(k);
  return top;
}

std::vector<RankedFlowSummary> ShardedCollector::top_k_ranked(std::size_t k, double q) const {
  // Un-indexed quantile: full scan, but still return the ranking values.
  if (q != config_.top_k_quantile) return top_k_ranked_scan(k, q);

  std::vector<RankedFlowSummary> top;
  // k-way merge of the per-shard rank indexes: a heap of shard cursors,
  // bounded by shard count, pops the globally worst remaining flow k times.
  // Each index is already in WorstFirst order, so the pop sequence is the
  // exact prefix the scan path would produce after its full sort.
  struct Cursor {
    RankIndex::const_iterator it;
    RankIndex::const_iterator end;
    std::size_t shard;
  };
  const auto cursor_after = [](const Cursor& a, const Cursor& b) {
    // priority_queue pops the "largest"; make that the worst-first entry.
    return WorstFirst{}(*b.it, *a.it);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cursor_after)> heads(cursor_after);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    refresh_rank(shards_[s]);
    const RankIndex& rank = shards_[s].rank;
    if (!rank.empty()) heads.push(Cursor{rank.begin(), rank.end(), s});
  }

  top.reserve(std::min(k, flow_count()));
  while (top.size() < k && !heads.empty()) {
    Cursor cur = heads.top();
    heads.pop();
    const auto& [value, key] = *cur.it;
    top.emplace_back(value, summarize(key, shards_[cur.shard].flows.at(key)));
    if (++cur.it != cur.end) heads.push(cur);
  }
  return top;
}

std::vector<FlowSummary> ShardedCollector::top_k_flows_scan(std::size_t k, double q) const {
  return strip_ranks(top_k_ranked_scan(k, q));
}

std::size_t ShardedCollector::flow_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.flows.size();
  return n;
}

std::vector<std::uint32_t> ShardedCollector::epochs_seen() const {
  std::vector<std::uint32_t> out(epochs_.begin(), epochs_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> ShardedCollector::shard_flow_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) counts.push_back(shard.flows.size());
  return counts;
}

std::size_t ShardedCollector::approx_flow_bytes() const {
  std::size_t bytes = 0;
  for (const auto& shard : shards_) {
    for (const auto& [key, sketch] : shard.flows) {
      (void)key;
      bytes += sketch.approx_bytes();
    }
  }
  return bytes;
}

}  // namespace rlir::collect
