#include "collect/exporter.h"

#include <algorithm>

namespace rlir::collect {

void EstimateExporter::observe(net::SenderId sender,
                               const rli::RliReceiver::PacketEstimate& estimate) {
  auto it = flows_.find(estimate.key);
  if (it == flows_.end()) {
    it = flows_.emplace(estimate.key, FlowEntry{common::LatencySketch(config_.sketch), sender})
             .first;
  }
  it->second.sketch.add(estimate.estimate_ns);
  it->second.sender = sender;
  ++observed_;
}

void EstimateExporter::attach(rli::RliReceiver& receiver, net::SenderId sender) {
  receiver.add_estimate_sink(
      [this, sender](const rli::RliReceiver::PacketEstimate& pe) { observe(sender, pe); });
}

void EstimateExporter::attach(rlir::RlirReceiver& receiver) {
  receiver.add_estimate_sink(
      [this](net::SenderId sender, const rli::RliReceiver::PacketEstimate& pe) {
        observe(sender, pe);
      });
}

std::vector<EstimateRecord> EstimateExporter::drain(std::uint32_t epoch) {
  std::vector<EstimateRecord> records;
  records.reserve(flows_.size());
  for (auto& [key, entry] : flows_) {
    records.push_back(EstimateRecord{key, config_.link, entry.sender, epoch,
                                     std::move(entry.sketch)});
  }
  flows_.clear();
  // Flow-key order keeps batches (and everything downstream of them)
  // bit-reproducible across runs despite unordered_map iteration.
  std::sort(records.begin(), records.end(),
            [](const EstimateRecord& a, const EstimateRecord& b) { return a.key < b.key; });
  return records;
}

}  // namespace rlir::collect
