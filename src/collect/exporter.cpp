#include "collect/exporter.h"

#include <algorithm>

namespace rlir::collect {

void EstimateExporter::observe(net::SenderId sender,
                               const rli::RliReceiver::PacketEstimate& estimate) {
  auto it = flows_.find(estimate.key);
  if (it == flows_.end()) {
    if (config_.max_flows > 0 && flows_.size() >= config_.max_flows) evict_least_recent();
    it = flows_
             .try_emplace(estimate.key,
                          FlowEntry{common::LatencySketch(config_.sketch), sender, estimate.arrival})
             .first;
  }
  it->second.sketch.add(estimate.estimate_ns);
  it->second.sender = sender;
  it->second.last_arrival = estimate.arrival;
  ++observed_;
}

void EstimateExporter::evict_least_recent() {
  // O(flows) scan, paid only when the cap is hit; deterministic victim
  // (oldest activity, flow key as tie-break).
  auto victim = flows_.begin();
  for (auto it = std::next(flows_.begin()); it != flows_.end(); ++it) {
    if (it->second.last_arrival < victim->second.last_arrival ||
        (it->second.last_arrival == victim->second.last_arrival && it->first < victim->first)) {
      victim = it;
    }
  }
  pending_.push_back(
      PendingRecord{victim->first, victim->second.sender, std::move(victim->second.sketch)});
  flows_.erase(victim);
  ++cap_evicted_;
}

void EstimateExporter::attach(rli::RliReceiver& receiver, net::SenderId sender) {
  receiver.add_estimate_sink(
      [this, sender](const rli::RliReceiver::PacketEstimate& pe) { observe(sender, pe); });
}

void EstimateExporter::attach(rlir::RlirReceiver& receiver) {
  receiver.add_estimate_sink(
      [this](net::SenderId sender, const rli::RliReceiver::PacketEstimate& pe) {
        observe(sender, pe);
      });
}

std::vector<EstimateRecord> EstimateExporter::take_pending(std::uint32_t epoch) {
  std::vector<EstimateRecord> records;
  records.reserve(pending_.size());
  for (auto& p : pending_) {
    records.push_back(EstimateRecord{p.key, config_.link, p.sender, epoch, std::move(p.sketch)});
  }
  pending_.clear();
  std::sort(records.begin(), records.end(),
            [](const EstimateRecord& a, const EstimateRecord& b) { return a.key < b.key; });
  return records;
}

std::vector<EstimateRecord> EstimateExporter::drain(std::uint32_t epoch) {
  std::vector<EstimateRecord> records = take_pending(epoch);
  records.reserve(records.size() + flows_.size());
  for (auto& [key, entry] : flows_) {
    records.push_back(
        EstimateRecord{key, config_.link, entry.sender, epoch, std::move(entry.sketch)});
  }
  flows_.clear();
  // Flow-key order keeps batches (and everything downstream of them)
  // bit-reproducible across runs despite arbitrary flat-map iteration. stable_sort
  // so a cap-evicted flow's record precedes its re-observed remainder.
  std::stable_sort(records.begin(), records.end(),
                   [](const EstimateRecord& a, const EstimateRecord& b) { return a.key < b.key; });
  return records;
}

std::vector<EstimateRecord> EstimateExporter::evict_idle(timebase::TimePoint now,
                                                         timebase::Duration max_idle,
                                                         std::uint32_t epoch) {
  std::vector<EstimateRecord> records;
  if (max_idle <= timebase::Duration::zero()) return records;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_arrival > max_idle) {
      records.push_back(EstimateRecord{it->first, config_.link, it->second.sender, epoch,
                                       std::move(it->second.sketch)});
      it = flows_.erase(it);
      ++aged_out_;
    } else {
      ++it;
    }
  }
  std::sort(records.begin(), records.end(),
            [](const EstimateRecord& a, const EstimateRecord& b) { return a.key < b.key; });
  return records;
}

}  // namespace rlir::collect
