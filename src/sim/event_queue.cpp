#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace rlir::sim {

void EventQueue::schedule(timebase::TimePoint t, EventFn fn) {
  if (t < now_) {
    throw std::logic_error("EventQueue::schedule: time travel (scheduling before now)");
  }
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(timebase::Duration delay, EventFn fn) {
  schedule(now_ + delay, std::move(fn));
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-adjacent,
  // so copy the small fields and move the closure through a temporary pop.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = e.time;
  ++executed_;
  e.fn();
  return true;
}

void EventQueue::run_until_empty() {
  while (run_next()) {
  }
}

void EventQueue::run_until(timebase::TimePoint deadline) {
  while (!heap_.empty() && heap_.top().time <= deadline) {
    run_next();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace rlir::sim
