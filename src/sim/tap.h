// Observation points along a simulated path.
//
// Measurement instances (RLI/RLIR receivers, baselines, ground-truth
// collectors) implement PacketTap and are attached at a point in the
// pipeline; the simulator calls them for every packet passing that point, in
// arrival-time order.
#pragma once

#include <vector>

#include "common/latency_sketch.h"
#include "net/packet.h"
#include "timebase/time.h"

namespace rlir::sim {

class PacketTap {
 public:
  virtual ~PacketTap() = default;

  /// Called once per packet crossing the tap point. `packet.ts` equals
  /// `arrival`. Implementations must not assume they see dropped packets —
  /// taps observe only what actually arrives.
  virtual void on_packet(const net::Packet& packet, timebase::TimePoint arrival) = 0;
};

/// Fans one tap point out to several observers (e.g. the RLI receiver plus a
/// ground-truth collector at the same interface).
class TapFanout final : public PacketTap {
 public:
  void add(PacketTap* tap) { taps_.push_back(tap); }

  void on_packet(const net::Packet& packet, timebase::TimePoint arrival) override {
    for (PacketTap* t : taps_) t->on_packet(packet, arrival);
  }

 private:
  std::vector<PacketTap*> taps_;  // non-owning; wiring owns the instances
};

/// Evaluation-side tap: folds the *true* delay (Packet::true_delay(), which
/// the measurement stack never reads) of regular packets crossing the tap
/// into a bounded latency sketch. The cheap ground-truth distribution the
/// collection tier's sketched answers are compared against.
class DelaySketchTap final : public PacketTap {
 public:
  DelaySketchTap() = default;
  explicit DelaySketchTap(common::LatencySketchConfig config) : sketch_(config) {}

  void on_packet(const net::Packet& packet, timebase::TimePoint) override {
    if (packet.kind != net::PacketKind::kRegular) return;
    sketch_.add(static_cast<double>(packet.true_delay().ns()));
  }

  [[nodiscard]] const common::LatencySketch& sketch() const { return sketch_; }

 private:
  common::LatencySketch sketch_;
};

/// Records every observed packet; handy in tests.
class RecordingTap final : public PacketTap {
 public:
  void on_packet(const net::Packet& packet, timebase::TimePoint) override {
    packets_.push_back(packet);
  }

  [[nodiscard]] const std::vector<net::Packet>& packets() const { return packets_; }

 private:
  std::vector<net::Packet> packets_;
};

}  // namespace rlir::sim
