// Interface between the simulator and a reference-packet source.
//
// The pipeline calls the injector for every regular packet entering the
// instrumented segment, in time order; the injector may hand back a probe to
// enqueue immediately behind that packet. Keeping this an interface lets the
// simulator stay independent of the measurement stack (rli::RliSender is the
// production implementation).
#pragma once

#include <optional>

#include "net/packet.h"

namespace rlir::sim {

class ReferenceInjector {
 public:
  virtual ~ReferenceInjector() = default;

  /// Observes one regular packet at the sender's interface. Returns a
  /// reference packet to inject right behind it, if the scheme calls for one.
  [[nodiscard]] virtual std::optional<net::Packet> on_regular_packet(
      const net::Packet& packet) = 0;
};

}  // namespace rlir::sim
