#include "sim/cross_traffic.h"

#include <algorithm>
#include <stdexcept>

namespace rlir::sim {

CrossTrafficInjector::CrossTrafficInjector(CrossTrafficConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.selection_probability < 0.0 || config_.selection_probability > 1.0) {
    throw std::invalid_argument("CrossTrafficInjector: selection probability outside [0,1]");
  }
  if (config_.model == CrossModel::kBursty && config_.burst_on <= timebase::Duration::zero()) {
    throw std::invalid_argument("CrossTrafficInjector: bursty model needs positive ON window");
  }
}

bool CrossTrafficInjector::in_burst(timebase::TimePoint ts) const {
  const std::int64_t period = (config_.burst_on + config_.burst_off).ns();
  if (period <= 0) return true;
  const std::int64_t phase = ts.ns() % period;
  return phase < config_.burst_on.ns();
}

bool CrossTrafficInjector::admit(const net::Packet& packet) {
  ++offered_;
  if (config_.model == CrossModel::kBursty && !in_burst(packet.ts)) return false;
  if (!rng_.bernoulli(config_.selection_probability)) return false;
  ++admitted_;
  admitted_bytes_ += packet.size_bytes;
  return true;
}

double CrossTrafficInjector::duty_cycle() const {
  if (config_.model == CrossModel::kUniform) return 1.0;
  const double on = static_cast<double>(config_.burst_on.ns());
  const double off = static_cast<double>(config_.burst_off.ns());
  return on / (on + off);
}

double selection_for_utilization(double target_utilization, double link_bps,
                                 timebase::Duration duration, std::uint64_t regular_bytes,
                                 std::uint64_t cross_bytes) {
  if (cross_bytes == 0) return 0.0;
  const double capacity_bits = link_bps * duration.sec();
  const double regular_bits = static_cast<double>(regular_bytes) * 8.0;
  const double cross_bits = static_cast<double>(cross_bytes) * 8.0;
  const double needed = target_utilization * capacity_bits - regular_bits;
  return std::clamp(needed / cross_bits, 0.0, 1.0);
}

}  // namespace rlir::sim
