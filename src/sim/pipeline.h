// The paper's simulation environment (Figure 3): a two-hop feed-forward
// path.
//
//   regular trace ──▶ [RLI sender] ──▶ Switch1 ──▶─┐
//                                                  ├─▶ Switch2 ──▶ receiver taps
//   cross trace ──▶ [cross-traffic injector] ──▶───┘   (bottleneck)
//
// Regular traffic (and the reference packets injected into it) traverses both
// switches; cross traffic joins at the bottleneck only, raising its
// utilization without being visible to the sender — the exact condition that
// breaks RLI's adaptive injection across routers.
//
// The pipeline exploits the feed-forward structure: each FIFO stage preserves
// time order, so stages are processed as sorted-stream merges rather than via
// the general event scheduler (an order-of-magnitude faster for the
// paper-scale sweeps; the event-driven core drives the multi-hop fat-tree
// simulations instead).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.h"
#include "sim/cross_traffic.h"
#include "sim/injector.h"
#include "sim/queue.h"
#include "sim/tap.h"

namespace rlir::sim {

struct PipelineConfig {
  QueueConfig switch1{.name = "switch1"};
  QueueConfig switch2{.name = "switch2"};
};

/// Per-kind packet accounting for one run.
struct PipelineResult {
  QueueStats switch1;
  QueueStats switch2;

  std::uint64_t regular_offered = 0;
  std::uint64_t regular_delivered = 0;
  std::uint64_t regular_dropped = 0;

  std::uint64_t reference_injected = 0;
  std::uint64_t reference_delivered = 0;
  std::uint64_t reference_dropped = 0;

  std::uint64_t cross_offered = 0;
  std::uint64_t cross_admitted = 0;
  std::uint64_t cross_delivered = 0;
  std::uint64_t cross_dropped = 0;

  timebase::TimePoint last_departure;

  [[nodiscard]] double regular_loss_rate() const {
    return regular_offered == 0 ? 0.0
                                : static_cast<double>(regular_dropped) /
                                      static_cast<double>(regular_offered);
  }
  /// Bottleneck utilization over the run.
  [[nodiscard]] double bottleneck_utilization() const { return bottleneck_utilization_; }

  double bottleneck_utilization_ = 0.0;
};

class TwoHopPipeline {
 public:
  explicit TwoHopPipeline(PipelineConfig config);

  /// Reference-packet source co-located with switch1 (optional; borrowed).
  void set_reference_injector(ReferenceInjector* injector) { injector_ = injector; }
  /// Cross-traffic admission control at the bottleneck (optional; borrowed).
  void set_cross_injector(CrossTrafficInjector* cross) { cross_ = cross; }

  /// Tap at the segment entry, before switch1 (sees regular packets only) —
  /// where sender-side baseline instances (LDA, NetFlow) observe.
  void add_ingress_tap(PacketTap* tap) { ingress_taps_.push_back(tap); }
  /// Tap after switch2 — where the RLI/RLIR receiver sits. Sees everything
  /// that survives: regular, reference, and cross packets, in arrival order.
  void add_egress_tap(PacketTap* tap) { egress_taps_.push_back(tap); }

  /// Runs the pipeline over time-sorted regular and cross packet streams.
  /// Packet `ts` fields must be nondecreasing within each stream.
  PipelineResult run(std::span<const net::Packet> regular,
                     std::span<const net::Packet> cross);

 private:
  PipelineConfig config_;
  ReferenceInjector* injector_ = nullptr;
  CrossTrafficInjector* cross_ = nullptr;
  std::vector<PacketTap*> ingress_taps_;
  std::vector<PacketTap*> egress_taps_;
};

}  // namespace rlir::sim
