// FIFO output-port queue: the delay- and loss-producing element of the
// simulator.
//
// Model (matches the paper's "processing and queueing delays ... governed by
// queue size and packet processing time"):
//   - a packet arriving at time t first pays a fixed per-packet processing
//     delay, then waits for the transmitter, then serializes at the link rate;
//   - departure = max(t + processing, previous departure) + tx_time(size);
//   - tail drop: if the bytes currently awaiting transmission exceed the
//     configured capacity at arrival, the packet is dropped.
//
// The queue requires nondecreasing arrival times (FIFO virtual-time model);
// this holds both under the event-driven scheduler and in the feed-forward
// pipeline. Violations throw, catching composition bugs early.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/packet.h"
#include "timebase/time.h"

namespace rlir::sim {

struct QueueConfig {
  /// Link (service) rate in bits per second. Default: 10GbE-class, standing
  /// in for the paper's OC-192 (9.95 Gb/s) link.
  double link_bps = 10e9;
  /// Fixed per-packet processing (lookup/forwarding) delay.
  timebase::Duration processing_delay = timebase::Duration::nanoseconds(500);
  /// Buffer capacity in bytes of queued-but-not-yet-transmitted data.
  /// Default 500KB ≈ 400µs at 10G — shallow data-center switch buffers.
  std::uint64_t capacity_bytes = 500 * 1000;
  std::string name = "queue";
};

struct QueueStats {
  std::uint64_t arrived_packets = 0;
  std::uint64_t arrived_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t departed_packets = 0;
  /// Total transmitter busy time (serialization only).
  timebase::Duration busy_time{};
  std::uint64_t max_occupancy_bytes = 0;

  [[nodiscard]] double loss_rate() const {
    return arrived_packets == 0
               ? 0.0
               : static_cast<double>(dropped_packets) / static_cast<double>(arrived_packets);
  }
};

class FifoQueue {
 public:
  explicit FifoQueue(QueueConfig config);

  /// Offers a packet arriving at `arrival`. Returns the departure time, or
  /// nullopt if the packet was tail-dropped. Arrival times must be
  /// nondecreasing across calls.
  std::optional<timebase::TimePoint> offer(const net::Packet& packet,
                                           timebase::TimePoint arrival);

  /// Bytes awaiting transmission as of `at` (drains the internal ledger).
  [[nodiscard]] std::uint64_t occupancy_bytes(timebase::TimePoint at);

  /// Transmitter utilization over [0, horizon]: busy time / horizon.
  [[nodiscard]] double utilization(timebase::TimePoint horizon) const;

  [[nodiscard]] const QueueStats& stats() const { return stats_; }
  [[nodiscard]] const QueueConfig& config() const { return config_; }
  [[nodiscard]] timebase::TimePoint last_departure() const { return busy_until_; }

  /// Resets dynamic state, keeping configuration.
  void reset();

 private:
  void drain_departed(timebase::TimePoint now);

  QueueConfig config_;
  timebase::TimePoint busy_until_ = timebase::TimePoint::zero();
  timebase::TimePoint last_arrival_ = timebase::TimePoint::zero();
  /// (departure time, size) of packets still occupying buffer space.
  std::deque<std::pair<timebase::TimePoint, std::uint32_t>> in_flight_;
  std::uint64_t occupancy_ = 0;
  QueueStats stats_;
};

}  // namespace rlir::sim
