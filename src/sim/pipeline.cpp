#include "sim/pipeline.h"

#include <algorithm>

namespace rlir::sim {

TwoHopPipeline::TwoHopPipeline(PipelineConfig config) : config_(std::move(config)) {}

PipelineResult TwoHopPipeline::run(std::span<const net::Packet> regular,
                                   std::span<const net::Packet> cross) {
  FifoQueue sw1(config_.switch1);
  FifoQueue sw2(config_.switch2);
  PipelineResult result;

  // Stage 1: regular packets (with injected references) through switch1.
  // FIFO preserves order, so departures are already time-sorted.
  std::vector<net::Packet> stage2;
  stage2.reserve(regular.size() + regular.size() / 64);

  auto offer_sw1 = [&](net::Packet pkt) {
    const auto departure = sw1.offer(pkt, pkt.ts);
    if (!departure) {
      if (pkt.is_reference()) {
        ++result.reference_dropped;
      } else {
        ++result.regular_dropped;
      }
      return;
    }
    pkt.ts = *departure;
    stage2.push_back(pkt);
  };

  for (const net::Packet& in : regular) {
    net::Packet pkt = in;
    pkt.injected_at = pkt.ts;  // segment entry: ground-truth delay starts here
    ++result.regular_offered;
    for (PacketTap* tap : ingress_taps_) tap->on_packet(pkt, pkt.ts);

    std::optional<net::Packet> ref;
    if (injector_ != nullptr) {
      ref = injector_->on_regular_packet(pkt);
    }
    offer_sw1(pkt);
    if (ref) {
      ++result.reference_injected;
      offer_sw1(*ref);
    }
  }

  // Stage 2: merge switch1 departures with admitted cross traffic by arrival
  // time at the bottleneck, then run switch2.
  std::vector<net::Packet> cross_admitted;
  cross_admitted.reserve(cross.size() / 2);
  for (const net::Packet& in : cross) {
    ++result.cross_offered;
    net::Packet pkt = in;
    pkt.kind = net::PacketKind::kCross;
    pkt.injected_at = pkt.ts;
    if (cross_ == nullptr || cross_->admit(pkt)) {
      ++result.cross_admitted;
      cross_admitted.push_back(pkt);
    }
  }

  std::vector<net::Packet> delivered;
  delivered.reserve(stage2.size() + cross_admitted.size());

  auto offer_sw2 = [&](net::Packet pkt) {
    const auto departure = sw2.offer(pkt, pkt.ts);
    if (!departure) {
      switch (pkt.kind) {
        case net::PacketKind::kRegular: ++result.regular_dropped; break;
        case net::PacketKind::kReference: ++result.reference_dropped; break;
        case net::PacketKind::kCross: ++result.cross_dropped; break;
      }
      return;
    }
    pkt.ts = *departure;
    delivered.push_back(pkt);
  };

  std::size_t i = 0;
  std::size_t j = 0;
  while (i < stage2.size() || j < cross_admitted.size()) {
    const bool take_regular =
        j >= cross_admitted.size() ||
        (i < stage2.size() && stage2[i].ts <= cross_admitted[j].ts);
    if (take_regular) {
      offer_sw2(stage2[i++]);
    } else {
      offer_sw2(cross_admitted[j++]);
    }
  }

  // Delivery: switch2 is FIFO so departures are already in time order, but
  // two same-instant departures can interleave; stable-sort for determinism.
  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const net::Packet& a, const net::Packet& b) { return a.ts < b.ts; });

  for (const net::Packet& pkt : delivered) {
    switch (pkt.kind) {
      case net::PacketKind::kRegular: ++result.regular_delivered; break;
      case net::PacketKind::kReference: ++result.reference_delivered; break;
      case net::PacketKind::kCross: ++result.cross_delivered; break;
    }
    for (PacketTap* tap : egress_taps_) tap->on_packet(pkt, pkt.ts);
    result.last_departure = std::max(result.last_departure, pkt.ts);
  }

  result.switch1 = sw1.stats();
  result.switch2 = sw2.stats();
  result.bottleneck_utilization_ = sw2.utilization(result.last_departure);
  return result;
}

}  // namespace rlir::sim
