// Cross-traffic injector: the Figure-3 block that controls bottleneck-link
// utilization.
//
// "The cross traffic injector provides two types of traffic selection
// models; uniform and bursty models. Uniform model randomly selects cross
// traffic with a given probability ... Bursty model simulates a situation
// where cross traffic arrives in a bursty fashion by controlling cross
// traffic injection duration."
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "net/packet.h"
#include "timebase/time.h"

namespace rlir::sim {

enum class CrossModel : std::uint8_t {
  kUniform,  ///< each cross packet admitted independently with probability p
  kBursty,   ///< admitted (with probability p) only during periodic ON windows
};

struct CrossTrafficConfig {
  CrossModel model = CrossModel::kUniform;
  /// Packet selection probability (within ON windows for the bursty model).
  double selection_probability = 1.0;
  /// Bursty model: ON window length (paper: 10 seconds) and OFF gap.
  timebase::Duration burst_on = timebase::Duration::seconds(10);
  timebase::Duration burst_off = timebase::Duration::seconds(10);
  std::uint64_t seed = 99;
};

class CrossTrafficInjector {
 public:
  explicit CrossTrafficInjector(CrossTrafficConfig config);

  /// Decides whether the cross packet enters the bottleneck queue.
  [[nodiscard]] bool admit(const net::Packet& packet);

  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t admitted_bytes() const { return admitted_bytes_; }
  [[nodiscard]] const CrossTrafficConfig& config() const { return config_; }

  /// Fraction of time the bursty model is ON (1.0 for uniform).
  [[nodiscard]] double duty_cycle() const;

 private:
  [[nodiscard]] bool in_burst(timebase::TimePoint ts) const;

  CrossTrafficConfig config_;
  common::Xoshiro256 rng_;
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t admitted_bytes_ = 0;
};

/// Computes the uniform-model selection probability that yields
/// `target_utilization` at a bottleneck of `link_bps` over `duration`, given
/// the byte volumes of regular traffic (which always traverses the link) and
/// of offered cross traffic. Clamped to [0, 1]. For the bursty model divide
/// by the duty cycle (selection only happens inside ON windows but the target
/// is a whole-run average).
[[nodiscard]] double selection_for_utilization(double target_utilization, double link_bps,
                                               timebase::Duration duration,
                                               std::uint64_t regular_bytes,
                                               std::uint64_t cross_bytes);

}  // namespace rlir::sim
