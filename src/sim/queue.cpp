#include "sim/queue.h"

#include <algorithm>
#include <stdexcept>

namespace rlir::sim {

FifoQueue::FifoQueue(QueueConfig config) : config_(std::move(config)) {
  if (config_.link_bps <= 0.0) {
    throw std::invalid_argument("FifoQueue: link rate must be positive");
  }
}

void FifoQueue::drain_departed(timebase::TimePoint now) {
  while (!in_flight_.empty() && in_flight_.front().first <= now) {
    occupancy_ -= in_flight_.front().second;
    in_flight_.pop_front();
  }
}

std::optional<timebase::TimePoint> FifoQueue::offer(const net::Packet& packet,
                                                    timebase::TimePoint arrival) {
  if (arrival < last_arrival_) {
    throw std::logic_error("FifoQueue[" + config_.name + "]: arrivals must be time-ordered");
  }
  last_arrival_ = arrival;

  drain_departed(arrival);
  ++stats_.arrived_packets;
  stats_.arrived_bytes += packet.size_bytes;

  if (occupancy_ + packet.size_bytes > config_.capacity_bytes) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += packet.size_bytes;
    return std::nullopt;
  }

  const timebase::Duration tx = timebase::transmission_time(packet.size_bytes, config_.link_bps);
  const timebase::TimePoint ready = arrival + config_.processing_delay;
  const timebase::TimePoint start = std::max(ready, busy_until_);
  const timebase::TimePoint departure = start + tx;

  busy_until_ = departure;
  stats_.busy_time += tx;
  ++stats_.departed_packets;

  occupancy_ += packet.size_bytes;
  in_flight_.emplace_back(departure, packet.size_bytes);
  stats_.max_occupancy_bytes = std::max(stats_.max_occupancy_bytes, occupancy_);

  return departure;
}

std::uint64_t FifoQueue::occupancy_bytes(timebase::TimePoint at) {
  drain_departed(at);
  return occupancy_;
}

double FifoQueue::utilization(timebase::TimePoint horizon) const {
  if (horizon.ns() <= 0) return 0.0;
  return static_cast<double>(stats_.busy_time.ns()) / static_cast<double>(horizon.ns());
}

void FifoQueue::reset() {
  busy_until_ = timebase::TimePoint::zero();
  last_arrival_ = timebase::TimePoint::zero();
  in_flight_.clear();
  occupancy_ = 0;
  stats_ = QueueStats{};
}

}  // namespace rlir::sim
