// Discrete-event simulation core: a time-ordered queue of closures.
//
// Determinism contract: events at equal timestamps run in scheduling order
// (FIFO tie-break by sequence number), so a run is exactly reproducible from
// the same inputs and seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "timebase/time.h"

namespace rlir::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`. Scheduling in the past (before the
  /// currently executing event) is a logic error and throws.
  void schedule(timebase::TimePoint t, EventFn fn);

  /// Schedules `fn` at now() + delay.
  void schedule_in(timebase::Duration delay, EventFn fn);

  /// Runs the earliest event. Returns false when the queue is empty.
  bool run_next();

  /// Runs events until the queue is empty.
  void run_until_empty();

  /// Runs events with time <= deadline; later events stay queued.
  void run_until(timebase::TimePoint deadline);

  [[nodiscard]] timebase::TimePoint now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    timebase::TimePoint time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  timebase::TimePoint now_ = timebase::TimePoint::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace rlir::sim
