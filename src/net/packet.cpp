#include "net/packet.h"

#include <sstream>

namespace rlir::net {

std::string Packet::to_string() const {
  std::ostringstream os;
  os << "[" << net::to_string(kind) << " seq=" << seq << " " << key.to_string() << " "
     << size_bytes << "B ts=" << ts.to_string();
  if (kind == PacketKind::kReference) {
    os << " sender=" << sender << " stamp=" << ref_stamp.to_string();
  }
  os << "]";
  return os.str();
}

Packet make_reference_packet(SenderId id, timebase::TimePoint now, timebase::TimePoint stamp,
                             std::uint64_t seq, std::uint32_t size_bytes) {
  Packet p;
  p.ts = now;
  p.injected_at = now;
  p.ref_stamp = stamp;
  p.size_bytes = size_bytes;
  p.kind = PacketKind::kReference;
  p.sender = id;
  p.seq = seq;
  return p;
}

}  // namespace rlir::net
