// Longest-prefix-match table over IPv4 prefixes.
//
// Implemented as an uncompressed binary trie with nodes in a flat vector —
// bounded at 32 steps per lookup, no recursion, cache-friendly enough for the
// table sizes a demultiplexer needs (one entry per ToR block).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace rlir::net {

template <typename T>
class PrefixTable {
 public:
  PrefixTable() { nodes_.emplace_back(); }

  /// Inserts or overwrites the value for a prefix.
  void insert(const Ipv4Prefix& prefix, T value) {
    std::size_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.base().value() >> (31 - depth)) & 1;
      if (nodes_[node].child[bit] < 0) {
        const auto next = static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();  // may reallocate; re-index below
        nodes_[node].child[bit] = next;
      }
      node = static_cast<std::size_t>(nodes_[node].child[bit]);
    }
    if (!nodes_[node].value.has_value()) ++entries_;
    nodes_[node].value = std::move(value);
  }

  /// Longest-prefix match; nullopt when no inserted prefix covers `addr`.
  [[nodiscard]] std::optional<T> lookup(Ipv4Address addr) const {
    const T* p = lookup_ptr(addr);
    if (p == nullptr) return std::nullopt;
    return *p;
  }

  /// Pointer form of lookup (no copy); nullptr when there is no match.
  /// The pointer is invalidated by the next insert.
  [[nodiscard]] const T* lookup_ptr(Ipv4Address addr) const {
    const T* best = nodes_[0].value ? &*nodes_[0].value : nullptr;
    std::size_t node = 0;
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (addr.value() >> (31 - depth)) & 1;
      const std::int32_t child = nodes_[node].child[bit];
      if (child < 0) break;
      node = static_cast<std::size_t>(child);
      if (nodes_[node].value) best = &*nodes_[node].value;
    }
    return best;
  }

  /// Exact-match retrieval of a previously inserted prefix.
  [[nodiscard]] std::optional<T> find_exact(const Ipv4Prefix& prefix) const {
    std::size_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.base().value() >> (31 - depth)) & 1;
      const std::int32_t child = nodes_[node].child[bit];
      if (child < 0) return std::nullopt;
      node = static_cast<std::size_t>(child);
    }
    return nodes_[node].value;
  }

  [[nodiscard]] std::size_t size() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_ == 0; }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::optional<T> value;
  };

  std::vector<Node> nodes_;
  std::size_t entries_ = 0;
};

}  // namespace rlir::net
