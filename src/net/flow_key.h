// The 5-tuple flow key: the unit at which RLI/RLIR report latency statistics
// ("per-flow measurements" throughout the paper).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/hash.h"
#include "net/ipv4.h"

namespace rlir::net {

/// IP protocol numbers we care about; stored as the raw wire value so
/// arbitrary protocols survive round-trips.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Canonical 5-tuple. Plain aggregate by design — flows keys are copied by
/// the million in flow tables and trace records.
struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = static_cast<std::uint8_t>(IpProto::kTcp);

  friend constexpr auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  /// Stable 64-bit hash (mixes all five fields).
  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = (std::uint64_t{src.value()} << 32) | dst.value();
    h = mix64(h);
    h ^= mix64((std::uint64_t{src_port} << 32) | (std::uint64_t{dst_port} << 8) | proto);
    return mix64(h);
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace rlir::net

template <>
struct std::hash<rlir::net::FiveTuple> {
  std::size_t operator()(const rlir::net::FiveTuple& k) const noexcept { return k.hash(); }
};
