// IPv4 addresses and CIDR prefixes.
//
// RLIR's upstream demultiplexing relies on the data-center convention that
// each ToR switch owns a contiguous address block for its hosts, so receivers
// can attribute a regular packet to its origin ToR by longest-prefix match
// (paper Section 3.1, "Upstream").
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rlir::net {

/// An IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
              std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return addr_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(addr_ >> (8 * (3 - i)));
  }

  /// Parses dotted-quad notation ("10.1.2.3"); nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t addr_ = 0;
};

/// A CIDR prefix: base address plus mask length (0..32).
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// The base is canonicalized (host bits cleared).
  constexpr Ipv4Prefix(Ipv4Address base, std::uint8_t length)
      : base_(Ipv4Address(base.value() & mask_for(length))), length_(length) {}

  [[nodiscard]] constexpr Ipv4Address base() const { return base_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const { return mask_for(length_); }

  [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
    return (a.value() & mask()) == base_.value();
  }
  /// True when `other` is fully inside this prefix.
  [[nodiscard]] constexpr bool contains(const Ipv4Prefix& other) const {
    return other.length_ >= length_ && contains(other.base_);
  }

  /// Number of addresses covered (2^(32-length)).
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// The i-th address inside the prefix; i must be < size().
  [[nodiscard]] Ipv4Address address_at(std::uint64_t i) const;

  /// Parses "10.0.0.0/24"; nullopt on malformed input or length > 32.
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  static constexpr std::uint32_t mask_for(std::uint8_t len) {
    return len == 0 ? 0u : (len >= 32 ? ~0u : ~((std::uint32_t{1} << (32 - len)) - 1));
  }

  Ipv4Address base_{};
  std::uint8_t length_ = 0;
};

}  // namespace rlir::net
