// Hash functions used across the stack:
//  - FNV-1a and Jenkins lookup3 for flow tables and LDA bucket selection;
//  - CRC-32C and xor-fold as stand-ins for vendor ECMP hash functions
//    (Section 3.2: receivers that know the upstream routers' hash functions
//    can "reverse" which next hop a packet was assigned to).
//
// All implementations are pure software, deterministic, and endian-stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rlir::net {

/// 64-bit FNV-1a over an arbitrary byte span.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> data,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Convenience overload hashing a trivially copyable value by representation.
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] std::uint64_t fnv1a64_value(const T& value, std::uint64_t seed = 0xcbf29ce484222325ULL) {
  return fnv1a64(std::as_bytes(std::span<const T, 1>(&value, 1)), seed);
}

/// Bob Jenkins' lookup3 ("hashlittle") 32-bit hash.
[[nodiscard]] std::uint32_t jenkins_lookup3(std::span<const std::byte> data,
                                            std::uint32_t seed = 0);

/// CRC-32C (Castagnoli), software table-driven.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed = 0);

/// 16-bit xor-fold of a 32-bit word — the simplest hardware ECMP hash.
[[nodiscard]] constexpr std::uint16_t xor_fold16(std::uint32_t x) {
  return static_cast<std::uint16_t>((x >> 16) ^ (x & 0xffff));
}

/// Mixes a 64-bit value (SplitMix64 finalizer); good avalanche for integers.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace rlir::net
