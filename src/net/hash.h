// Hash functions used across the stack:
//  - FNV-1a and Jenkins lookup3 for flow tables and LDA bucket selection;
//  - CRC-32C for transport-frame integrity (transport/frame, docs/WIRE.md)
//    and, with xor-fold, as stand-ins for vendor ECMP hash functions
//    (Section 3.2: receivers that know the upstream routers' hash functions
//    can "reverse" which next hop a packet was assigned to).
//
// Every function returns the same digest on every platform (deterministic,
// endian-stable). CRC-32C additionally dispatches once at startup to the
// fastest implementation the CPU offers — the SSE4.2 `crc32` instruction on
// x86-64, the ARMv8 CRC extension on aarch64 — with a slice-by-8 software
// table as the always-available fallback and cross-check reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rlir::net {

/// 64-bit FNV-1a over an arbitrary byte span.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> data,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Convenience overload hashing a trivially copyable value by representation.
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] std::uint64_t fnv1a64_value(const T& value, std::uint64_t seed = 0xcbf29ce484222325ULL) {
  return fnv1a64(std::as_bytes(std::span<const T, 1>(&value, 1)), seed);
}

/// Bob Jenkins' lookup3 ("hashlittle") 32-bit hash.
[[nodiscard]] std::uint32_t jenkins_lookup3(std::span<const std::byte> data,
                                            std::uint32_t seed = 0);

/// CRC-32C (Castagnoli). Digests chain: crc32c(a+b) == crc32c(b, crc32c(a)).
/// Served by the engine selected at startup (hardware where available); the
/// digest is identical whichever engine runs.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed = 0);

/// The software (slice-by-8, table-driven) implementation — the fallback on
/// CPUs without a CRC instruction and the reference the hardware paths are
/// cross-checked against in tests.
[[nodiscard]] std::uint32_t crc32c_software(std::span<const std::byte> data,
                                            std::uint32_t seed = 0);

enum class Crc32cEngine : std::uint8_t {
  kAuto,      ///< re-run detection: hardware when available, else software
  kSoftware,  ///< force the table-driven path (CI coverage, A/B checks)
  kHardware,  ///< the CPU CRC instruction; ignored when unavailable
};

/// True when the CPU advertises a CRC-32C instruction this build can use.
[[nodiscard]] bool crc32c_hardware_available();

/// Repoints the function pointer behind crc32c(). Returns the engine now
/// active: asking for kHardware on a CPU without it keeps kSoftware. The
/// startup default is kAuto, overridable by RLIR_CRC32C=software|hardware in
/// the environment (forcing the fallback on CI runners).
Crc32cEngine set_crc32c_engine(Crc32cEngine engine);

/// The engine currently backing crc32c() (kSoftware or kHardware).
[[nodiscard]] Crc32cEngine active_crc32c_engine();

/// 16-bit xor-fold of a 32-bit word — the simplest hardware ECMP hash.
[[nodiscard]] constexpr std::uint16_t xor_fold16(std::uint32_t x) {
  return static_cast<std::uint16_t>((x >> 16) ^ (x & 0xffff));
}

/// Mixes a 64-bit value (SplitMix64 finalizer); good avalanche for integers.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace rlir::net
