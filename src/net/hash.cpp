#include "net/hash.h"

#include <array>
#include <cstring>

namespace rlir::net {

std::uint64_t fnv1a64(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

constexpr std::uint32_t rot(std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

// lookup3 mixing steps (Jenkins, public domain).
void lookup3_mix(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) {
  a -= c; a ^= rot(c, 4);  c += b;
  b -= a; b ^= rot(a, 6);  a += c;
  c -= b; c ^= rot(b, 8);  b += a;
  a -= c; a ^= rot(c, 16); c += b;
  b -= a; b ^= rot(a, 19); a += c;
  c -= b; c ^= rot(b, 4);  b += a;
}

void lookup3_final(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) {
  c ^= b; c -= rot(b, 14);
  a ^= c; a -= rot(c, 11);
  b ^= a; b -= rot(a, 25);
  c ^= b; c -= rot(b, 16);
  a ^= c; a -= rot(c, 4);
  b ^= a; b -= rot(a, 14);
  c ^= b; c -= rot(b, 24);
}

std::uint32_t load_le32(const std::byte* p, std::size_t n) {
  std::uint32_t v = 0;
  unsigned char raw[4] = {0, 0, 0, 0};
  std::memcpy(raw, p, n);
  v = std::uint32_t{raw[0]} | (std::uint32_t{raw[1]} << 8) | (std::uint32_t{raw[2]} << 16) |
      (std::uint32_t{raw[3]} << 24);
  return v;
}

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t poly = 0x82f63b78u;  // reflected CRC-32C polynomial
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ poly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc32cTable = make_crc32c_table();

}  // namespace

std::uint32_t jenkins_lookup3(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t a = 0xdeadbeef + static_cast<std::uint32_t>(data.size()) + seed;
  std::uint32_t b = a;
  std::uint32_t c = a;

  const std::byte* p = data.data();
  std::size_t len = data.size();
  while (len > 12) {
    a += load_le32(p, 4);
    b += load_le32(p + 4, 4);
    c += load_le32(p + 8, 4);
    lookup3_mix(a, b, c);
    p += 12;
    len -= 12;
  }
  if (len == 0) return c;
  if (len > 8) {
    a += load_le32(p, 4);
    b += load_le32(p + 4, 4);
    c += load_le32(p + 8, len - 8);
  } else if (len > 4) {
    a += load_le32(p, 4);
    b += load_le32(p + 4, len - 4);
  } else {
    a += load_le32(p, len);
  }
  lookup3_final(a, b, c);
  return c;
}

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const std::byte b : data) {
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xffu];
  }
  return ~crc;
}

}  // namespace rlir::net
