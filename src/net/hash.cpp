#include "net/hash.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RLIR_CRC32C_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define RLIR_CRC32C_ARM 1
#include <arm_acle.h>
#endif

namespace rlir::net {

std::uint64_t fnv1a64(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

constexpr std::uint32_t rot(std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

// lookup3 mixing steps (Jenkins, public domain).
void lookup3_mix(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) {
  a -= c; a ^= rot(c, 4);  c += b;
  b -= a; b ^= rot(a, 6);  a += c;
  c -= b; c ^= rot(b, 8);  b += a;
  a -= c; a ^= rot(c, 16); c += b;
  b -= a; b ^= rot(a, 19); a += c;
  c -= b; c ^= rot(b, 4);  b += a;
}

void lookup3_final(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) {
  c ^= b; c -= rot(b, 14);
  a ^= c; a -= rot(c, 11);
  b ^= a; b -= rot(a, 25);
  c ^= b; c -= rot(b, 16);
  a ^= c; a -= rot(c, 4);
  b ^= a; b -= rot(a, 14);
  c ^= b; c -= rot(b, 24);
}

std::uint32_t load_le32(const std::byte* p, std::size_t n) {
  std::uint32_t v = 0;
  unsigned char raw[4] = {0, 0, 0, 0};
  std::memcpy(raw, p, n);
  v = std::uint32_t{raw[0]} | (std::uint32_t{raw[1]} << 8) | (std::uint32_t{raw[2]} << 16) |
      (std::uint32_t{raw[3]} << 24);
  return v;
}

// Slice-by-8 CRC-32C tables: table[0] is the classic byte table; table[j]
// advances a byte's contribution j extra bytes through the register, so one
// iteration folds 8 input bytes with 8 independent table lookups instead of
// 8 serial byte steps.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc32c_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  constexpr std::uint32_t poly = 0x82f63b78u;  // reflected CRC-32C polynomial
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ poly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (std::size_t j = 1; j < 8; ++j) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[j][i] = (tables[j - 1][i] >> 8) ^ tables[0][tables[j - 1][i] & 0xffu];
    }
  }
  return tables;
}

constexpr auto kCrc32cTables = make_crc32c_tables();

std::uint32_t crc32c_soft_raw(const std::byte* p, std::size_t len, std::uint32_t crc) {
  const auto& t = kCrc32cTables;
  while (len >= 8) {
    // Byte-composed loads keep the digest endian-stable; compilers fold them
    // into single loads on little-endian hosts.
    const std::uint32_t lo = load_le32(p, 4) ^ crc;
    const std::uint32_t hi = load_le32(p + 4, 4);
    crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^ t[5][(lo >> 16) & 0xffu] ^
          t[4][lo >> 24] ^ t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
          t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ static_cast<std::uint32_t>(*p++)) & 0xffu];
  }
  return crc;
}

std::uint32_t crc32c_soft_impl(const std::byte* p, std::size_t len, std::uint32_t seed) {
  return ~crc32c_soft_raw(p, len, ~seed);
}

#if defined(RLIR_CRC32C_X86)
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw_impl(const std::byte* p,
                                                               std::size_t len,
                                                               std::uint32_t seed) {
  std::uint64_t crc64 = ~seed;
  while (len >= 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, p, 8);  // x86-64 is little-endian; bytes land in stream order
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    len -= 8;
  }
  auto crc = static_cast<std::uint32_t>(crc64);
  while (len-- > 0) {
    crc = _mm_crc32_u8(crc, static_cast<std::uint8_t>(*p++));
  }
  return ~crc;
}

bool crc32c_hw_usable() { return __builtin_cpu_supports("sse4.2") != 0; }
#elif defined(RLIR_CRC32C_ARM)
std::uint32_t crc32c_hw_impl(const std::byte* p, std::size_t len, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  while (len >= 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = __crc32cb(crc, static_cast<std::uint8_t>(*p++));
  }
  return ~crc;
}

// __ARM_FEATURE_CRC32 means the baseline -march already requires the
// extension, so any CPU this binary runs on has it.
bool crc32c_hw_usable() { return true; }
#else
std::uint32_t crc32c_hw_impl(const std::byte* p, std::size_t len, std::uint32_t seed) {
  return crc32c_soft_impl(p, len, seed);
}

bool crc32c_hw_usable() { return false; }
#endif

using CrcFn = std::uint32_t (*)(const std::byte*, std::size_t, std::uint32_t);

CrcFn engine_fn(Crc32cEngine engine) {
  if (engine == Crc32cEngine::kSoftware) return &crc32c_soft_impl;
  if (engine == Crc32cEngine::kHardware && crc32c_hw_usable()) return &crc32c_hw_impl;
  return crc32c_hw_usable() ? &crc32c_hw_impl : &crc32c_soft_impl;  // kAuto
}

CrcFn detect_startup_engine() {
  // RLIR_CRC32C=software|hardware forces an engine (CI exercises the
  // fallback this way); anything else — including unset — is kAuto.
  if (const char* env = std::getenv("RLIR_CRC32C")) {
    const std::string_view want(env);
    if (want == "software") return engine_fn(Crc32cEngine::kSoftware);
    if (want == "hardware") return engine_fn(Crc32cEngine::kHardware);
  }
  return engine_fn(Crc32cEngine::kAuto);
}

/// The one-time dispatch target behind crc32c(); atomic only so tests may
/// flip engines while other threads hash (relaxed: any torn-free value is a
/// valid function, and both produce identical digests).
std::atomic<CrcFn> g_crc32c_fn{detect_startup_engine()};

}  // namespace

std::uint32_t jenkins_lookup3(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t a = 0xdeadbeef + static_cast<std::uint32_t>(data.size()) + seed;
  std::uint32_t b = a;
  std::uint32_t c = a;

  const std::byte* p = data.data();
  std::size_t len = data.size();
  while (len > 12) {
    a += load_le32(p, 4);
    b += load_le32(p + 4, 4);
    c += load_le32(p + 8, 4);
    lookup3_mix(a, b, c);
    p += 12;
    len -= 12;
  }
  if (len == 0) return c;
  if (len > 8) {
    a += load_le32(p, 4);
    b += load_le32(p + 4, 4);
    c += load_le32(p + 8, len - 8);
  } else if (len > 4) {
    a += load_le32(p, 4);
    b += load_le32(p + 4, len - 4);
  } else {
    a += load_le32(p, len);
  }
  lookup3_final(a, b, c);
  return c;
}

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  return g_crc32c_fn.load(std::memory_order_relaxed)(data.data(), data.size(), seed);
}

std::uint32_t crc32c_software(std::span<const std::byte> data, std::uint32_t seed) {
  return crc32c_soft_impl(data.data(), data.size(), seed);
}

bool crc32c_hardware_available() { return crc32c_hw_usable(); }

Crc32cEngine set_crc32c_engine(Crc32cEngine engine) {
  g_crc32c_fn.store(engine_fn(engine), std::memory_order_relaxed);
  return active_crc32c_engine();
}

Crc32cEngine active_crc32c_engine() {
  return g_crc32c_fn.load(std::memory_order_relaxed) == &crc32c_hw_impl
             ? Crc32cEngine::kHardware
             : Crc32cEngine::kSoftware;
}

}  // namespace rlir::net
