// The packet record that flows through the simulator and the measurement
// stack.
//
// This is a metadata record, not a byte buffer: the simulator is
// trace-driven (paper Section 4.1), so only header-derived fields and sizes
// matter. Reference packets (RLI's probe packets) are ordinary records with
// kind == kReference plus the sender-stamped timestamp they carry on the
// wire.
#pragma once

#include <cstdint>
#include <string>

#include "net/flow_key.h"
#include "timebase/time.h"

namespace rlir::net {

/// Role of a packet in an experiment.
enum class PacketKind : std::uint8_t {
  kRegular,    ///< measured traffic traversing the full instrumented segment
  kCross,      ///< cross traffic sharing only part of the path
  kReference,  ///< RLI reference (probe) packet carrying a timestamp
};

[[nodiscard]] constexpr const char* to_string(PacketKind k) {
  switch (k) {
    case PacketKind::kRegular: return "regular";
    case PacketKind::kCross: return "cross";
    case PacketKind::kReference: return "reference";
  }
  return "?";
}

/// Identifier of an RLI sender instance (paper: "RLI sender ID (or IP address
/// of the interface which S1 [is] sitting on)").
using SenderId = std::uint16_t;
inline constexpr SenderId kNoSender = 0xffff;

/// Value of the ToS/DSCP mark used by the packet-marking demultiplexer;
/// 0 means unmarked.
using TosMark = std::uint8_t;

struct Packet {
  /// Current position of the packet on the time axis: mutated by each queue
  /// to the instant the packet leaves that queue; at a receiver tap it is the
  /// arrival instant.
  timebase::TimePoint ts;

  /// True instant the packet entered the measured segment. The simulator's
  /// ground-truth one-way delay is `ts - injected_at`; the measurement stack
  /// never reads this field for regular packets (that would be cheating) —
  /// only the evaluation harness does.
  timebase::TimePoint injected_at;

  /// Timestamp written by the RLI sender's clock into a reference packet.
  /// Meaningful only when kind == kReference. Differs from `injected_at`
  /// when the sender clock has offset/drift.
  timebase::TimePoint ref_stamp;

  FiveTuple key;
  std::uint32_t size_bytes = 0;
  PacketKind kind = PacketKind::kRegular;

  /// Originating RLI sender; set on reference packets at injection, and
  /// assigned to regular packets by a demultiplexer at the receiver.
  SenderId sender = kNoSender;

  /// ToS mark stamped by an intermediate (core) router when the marking
  /// demux strategy is active.
  TosMark tos = 0;

  /// Globally unique sequence number (assigned by generators); gives packets
  /// identity for loss accounting and deterministic tie-breaking.
  std::uint64_t seq = 0;

  [[nodiscard]] bool is_reference() const { return kind == PacketKind::kReference; }

  /// Ground-truth one-way delay accumulated so far.
  [[nodiscard]] timebase::Duration true_delay() const { return ts - injected_at; }

  [[nodiscard]] std::string to_string() const;
};

/// Builds a reference packet as injected by sender `id` at true time `now`
/// with the (possibly skewed) clock reading `stamp`. Reference packets are
/// minimum-size (paper's probes carry only a timestamp).
[[nodiscard]] Packet make_reference_packet(SenderId id, timebase::TimePoint now,
                                           timebase::TimePoint stamp, std::uint64_t seq,
                                           std::uint32_t size_bytes = 64);

}  // namespace rlir::net
