#include "net/flow_key.h"

#include <cstdio>

namespace rlir::net {

std::string FiveTuple::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:%u>%s:%u/%u", src.to_string().c_str(), src_port,
                dst.to_string().c_str(), dst_port, proto);
  return buf;
}

}  // namespace rlir::net
