#include "net/ipv4.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace rlir::net {

namespace {

// Parses one decimal octet from `text` starting at `pos`; advances pos.
std::optional<std::uint8_t> parse_octet(std::string_view text, std::size_t& pos) {
  if (pos >= text.size()) return std::nullopt;
  unsigned value = 0;
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  pos += static_cast<std::size_t>(ptr - begin);
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::size_t pos = 0;
  std::uint32_t addr = 0;
  for (int i = 0; i < 4; ++i) {
    const auto octet = parse_octet(text, pos);
    if (!octet) return std::nullopt;
    addr = (addr << 8) | *octet;
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Address(addr);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
  return buf;
}

Ipv4Address Ipv4Prefix::address_at(std::uint64_t i) const {
  if (i >= size()) {
    throw std::out_of_range("Ipv4Prefix::address_at: index outside prefix");
  }
  return Ipv4Address(base_.value() + static_cast<std::uint32_t>(i));
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned len = 0;
  const char* begin = text.data() + slash + 1;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, len);
  if (ec != std::errc{} || ptr != end || len > 32) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<std::uint8_t>(len));
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace rlir::net
