#include "timebase/clock.h"

#include <cmath>

#include "net/hash.h"

namespace rlir::timebase {

SyncedClock::SyncedClock(Duration sync_interval, Duration residual_bound, double drift_ppb,
                         std::uint64_t seed)
    : sync_interval_(sync_interval),
      residual_bound_(residual_bound),
      drift_ppb_(drift_ppb),
      seed_(seed) {}

TimePoint SyncedClock::now(TimePoint true_time) const {
  // Which sync epoch are we in, and how far into it?
  const std::int64_t interval = sync_interval_.ns();
  const std::int64_t epoch = true_time.ns() >= 0 ? true_time.ns() / interval
                                                 : (true_time.ns() - interval + 1) / interval;
  const std::int64_t into_epoch = true_time.ns() - epoch * interval;

  // Residual offset right after the sync at the start of this epoch:
  // deterministic pseudo-random draw keyed by (seed, epoch), uniform in
  // [-bound, +bound].
  const std::uint64_t h =
      net::mix64(seed_ ^ net::mix64(static_cast<std::uint64_t>(epoch) + 0x9e37u));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  const double residual_ns = (2.0 * unit - 1.0) * static_cast<double>(residual_bound_.ns());

  // Drift accumulated since that sync.
  const double drift_ns = static_cast<double>(into_epoch) * drift_ppb_ * 1e-9;

  return true_time + Duration(static_cast<std::int64_t>(std::llround(residual_ns + drift_ns)));
}

Duration SyncedClock::worst_case_error() const {
  const double drift_ns =
      static_cast<double>(sync_interval_.ns()) * std::abs(drift_ppb_) * 1e-9;
  return residual_bound_ + Duration(static_cast<std::int64_t>(std::ceil(drift_ns)));
}

}  // namespace rlir::timebase
