#include "timebase/time.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rlir::timebase {

Duration Duration::from_seconds(double s) {
  return Duration(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

namespace {

std::string format_ns(std::int64_t ns) {
  const char* unit = "ns";
  double v = static_cast<double>(ns);
  const double a = std::abs(v);
  if (a >= 1e9) {
    v /= 1e9;
    unit = "s";
  } else if (a >= 1e6) {
    v /= 1e6;
    unit = "ms";
  } else if (a >= 1e3) {
    v /= 1e3;
    unit = "us";
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3g%s", v, unit);
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return format_ns(ns_); }

std::string TimePoint::to_string() const { return format_ns(ns_); }

Duration transmission_time(std::uint64_t bytes, double bits_per_sec) {
  if (bits_per_sec <= 0.0) {
    throw std::invalid_argument("transmission_time: link rate must be positive");
  }
  const double seconds = static_cast<double>(bytes) * 8.0 / bits_per_sec;
  return Duration::from_seconds(seconds);
}

}  // namespace rlir::timebase
