// Nanosecond-resolution time types used throughout the simulator and the
// measurement stack.
//
// The simulator runs on a single "true time" axis; clock models
// (timebase/clock.h) map true time to per-device local readings. Using strong
// types instead of raw int64_t prevents the classic bug family of mixing
// durations, absolute times, and unit scales.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace rlir::timebase {

/// A signed span of time with nanosecond resolution.
///
/// Arithmetic is saturating-free (plain int64) — at nanosecond resolution the
/// range covers ±292 years, far beyond any simulation horizon.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  [[nodiscard]] static constexpr Duration nanoseconds(std::int64_t v) { return Duration(v); }
  [[nodiscard]] static constexpr Duration microseconds(std::int64_t v) { return Duration(v * 1'000); }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t v) { return Duration(v * 1'000'000); }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t v) { return Duration(v * 1'000'000'000); }
  /// Converts a floating-point second count, rounding to the nearest ns.
  [[nodiscard]] static Duration from_seconds(double s);
  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }
  [[nodiscard]] static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr Duration& operator+=(Duration rhs) { ns_ += rhs.ns_; return *this; }
  constexpr Duration& operator-=(Duration rhs) { ns_ -= rhs.ns_; return *this; }
  constexpr Duration& operator*=(std::int64_t k) { ns_ *= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.ns_ + b.ns_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.ns_ - b.ns_); }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration(a.ns_ * k); }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration(a.ns_ * k); }
  friend constexpr Duration operator-(Duration a) { return Duration(-a.ns_); }
  /// Integer division; truncates toward zero.
  friend constexpr std::int64_t operator/(Duration a, Duration b) { return a.ns_ / b.ns_; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration(a.ns_ / k); }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "12.3us".
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulation's true-time axis (ns since t=0).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint(0); }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }
  constexpr TimePoint& operator-=(Duration d) { ns_ -= d.ns(); return *this; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint(t.ns_ + d.ns()); }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint(t.ns_ - d.ns()); }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration(a.ns_ - b.ns_); }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// Transmission (serialization) time of `bytes` on a link of `bits_per_sec`.
[[nodiscard]] Duration transmission_time(std::uint64_t bytes, double bits_per_sec);

}  // namespace rlir::timebase
