// Per-device clock models.
//
// RLI assumes time-synchronized sender/receiver pairs ("GPS-based clock
// synchronization or IEEE 1588", paper Section 2). Rather than assume perfect
// sync, we model clocks explicitly: a clock maps the simulator's true time to
// the device's local reading. The residual sync error then propagates into
// reference-delay measurements exactly the way it would in hardware, and
// tests can bound its effect.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "timebase/time.h"

namespace rlir::timebase {

/// Interface: maps true simulation time to this device's local clock reading.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint now(TimePoint true_time) const = 0;
};

/// Ideal clock: local time equals true time. The evaluation default, matching
/// the paper's simulation (which sidesteps sync error entirely).
class PerfectClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now(TimePoint true_time) const override { return true_time; }
};

/// Constant-offset clock (e.g. a GPS-disciplined oscillator with a fixed
/// asymmetry bias).
class FixedOffsetClock final : public Clock {
 public:
  explicit FixedOffsetClock(Duration offset) : offset_(offset) {}
  [[nodiscard]] TimePoint now(TimePoint true_time) const override {
    return true_time + offset_;
  }
  [[nodiscard]] Duration offset() const { return offset_; }

 private:
  Duration offset_;
};

/// Clock with initial offset plus linear frequency error (parts-per-billion).
class DriftingClock final : public Clock {
 public:
  DriftingClock(Duration initial_offset, double drift_ppb)
      : offset_(initial_offset), drift_ppb_(drift_ppb) {}

  [[nodiscard]] TimePoint now(TimePoint true_time) const override {
    const double drift_ns = static_cast<double>(true_time.ns()) * drift_ppb_ * 1e-9;
    return true_time + offset_ + Duration(static_cast<std::int64_t>(drift_ns));
  }

 private:
  Duration offset_;
  double drift_ppb_;
};

/// IEEE-1588-style synchronized clock: between sync epochs the clock drifts;
/// at each sync interval the offset is pulled back to a residual error drawn
/// uniformly from [-residual_bound, +residual_bound]. This reproduces the
/// sawtooth error profile of PTP slaves.
class SyncedClock final : public Clock {
 public:
  SyncedClock(Duration sync_interval, Duration residual_bound, double drift_ppb,
              std::uint64_t seed);

  [[nodiscard]] TimePoint now(TimePoint true_time) const override;

  [[nodiscard]] Duration sync_interval() const { return sync_interval_; }
  [[nodiscard]] Duration residual_bound() const { return residual_bound_; }
  /// Worst-case |local - true| over any instant (residual + drift over one
  /// whole sync interval).
  [[nodiscard]] Duration worst_case_error() const;

 private:
  Duration sync_interval_;
  Duration residual_bound_;
  double drift_ppb_;
  std::uint64_t seed_;
};

}  // namespace rlir::timebase
