#include "transport/messages.h"

#include <cstring>
#include <stdexcept>
#include <string>

#include "collect/estimate_record.h"
#include "common/wire.h"
#include "net/ipv4.h"
#include "obs/exposition.h"

namespace rlir::transport {

namespace {

using common::wire::put;
using common::wire::put_f64;
using common::wire::take;
using common::wire::take_f64;

constexpr std::size_t kTupleSize = 4 + 4 + 2 + 2 + 1;
constexpr std::size_t kQuerySize = 1 + 4 + 8 + kTupleSize + 4 + 4;
/// Optional query trace block: u8 flags(=1) | u64 trace_id | u64 parent.
constexpr std::size_t kTraceBlockSize = 1 + 8 + 8;
constexpr std::size_t kTracedQuerySize = kQuerySize + kTraceBlockSize;
/// Window-reply coverage block: u8 flags | u32 first | u32 last | u64 records.
constexpr std::size_t kWindowInfoSize = 1 + 4 + 4 + 8;
constexpr std::size_t kTopEntrySize = 8 + kTupleSize + 8 + 8 + 8 + 8 + 8;
/// Fixed part of one kTraceSpans span entry (the label bytes follow).
constexpr std::size_t kSpanEntryFixedSize = 8 + 8 + 8 + 1 + 8 + 8 + 2;
/// Corruption guards, mirroring the record format's bin guard.
constexpr std::uint32_t kMaxTopEntries = 1u << 20;
constexpr std::uint32_t kMaxLinkEntries = 1u << 20;
constexpr std::uint32_t kMaxSpanEntries = 1u << 20;

void put_tuple(std::uint8_t*& p, const net::FiveTuple& key) {
  put<std::uint32_t>(p, key.src.value());
  put<std::uint32_t>(p, key.dst.value());
  put<std::uint16_t>(p, key.src_port);
  put<std::uint16_t>(p, key.dst_port);
  put<std::uint8_t>(p, key.proto);
}

net::FiveTuple take_tuple(const std::uint8_t*& p) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(take<std::uint32_t>(p));
  key.dst = net::Ipv4Address(take<std::uint32_t>(p));
  key.src_port = take<std::uint16_t>(p);
  key.dst_port = take<std::uint16_t>(p);
  key.proto = take<std::uint8_t>(p);
  return key;
}

[[nodiscard]] bool known_kind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(QueryKind::kFleet) &&
         k <= static_cast<std::uint8_t>(QueryKind::kTraceSpans);
}

void put_window(std::uint8_t*& p, const WindowInfo& window) {
  std::uint8_t flags = 0;
  if (window.covered) flags |= 1;
  if (window.complete) flags |= 2;
  put<std::uint8_t>(p, flags);
  put<std::uint32_t>(p, window.first);
  put<std::uint32_t>(p, window.last);
  put<std::uint64_t>(p, window.records);
}

[[nodiscard]] WindowInfo take_window(const std::uint8_t*& p, const std::uint8_t* end) {
  if (static_cast<std::size_t>(end - p) < kWindowInfoSize) {
    throw std::runtime_error("QueryReply: truncated window coverage");
  }
  const auto flags = take<std::uint8_t>(p);
  if ((flags & ~0x3u) != 0) {
    throw std::runtime_error("QueryReply: reserved window flag bits set");
  }
  WindowInfo window;
  window.covered = (flags & 1) != 0;
  window.complete = (flags & 2) != 0;
  window.first = take<std::uint32_t>(p);
  window.last = take<std::uint32_t>(p);
  window.records = take<std::uint64_t>(p);
  return window;
}

/// A present flag must be exactly 0 or 1 (reject-don't-guess).
[[nodiscard]] bool take_present(const std::uint8_t*& p, const std::uint8_t* end) {
  if (end - p < 1) throw std::runtime_error("QueryReply: truncated present flag");
  const auto present = take<std::uint8_t>(p);
  if (present > 1) throw std::runtime_error("QueryReply: bad present flag");
  return present == 1;
}

}  // namespace

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kFleet: return "fleet";
    case QueryKind::kTopK: return "top_k";
    case QueryKind::kFlowQuantile: return "flow_quantile";
    case QueryKind::kStats: return "stats";
    case QueryKind::kFlowSketch: return "flow_sketch";
    case QueryKind::kLinks: return "links";
    case QueryKind::kMetrics: return "metrics";
    case QueryKind::kWindowFleet: return "window_fleet";
    case QueryKind::kWindowLink: return "window_link";
    case QueryKind::kWindowFlowQuantile: return "window_flow_quantile";
    case QueryKind::kTraceSpans: return "trace_spans";
  }
  return "?";
}

void append_agent_stats(obs::MetricsSnapshot& snap, const AgentStats& stats,
                        const obs::Labels& base_labels) {
  for (const auto& field : kAgentStatsFields) {
    obs::append_counter(snap, std::string("rlir_agent_") + field.name + "_total",
                        base_labels, stats.*(field.member));
  }
}

std::vector<std::uint8_t> encode_query(const Query& query) {
  const bool traced = query.trace.valid();
  std::vector<std::uint8_t> buf(traced ? kTracedQuerySize : kQuerySize);
  std::uint8_t* p = buf.data();
  put<std::uint8_t>(p, static_cast<std::uint8_t>(query.kind));
  put<std::uint32_t>(p, query.k);
  put_f64(p, query.q);
  put_tuple(p, query.key);
  put<std::uint32_t>(p, query.epoch_first);
  put<std::uint32_t>(p, query.epoch_last);
  if (traced) {
    put<std::uint8_t>(p, 1);  // flags: bit 0 = trace context follows
    put<std::uint64_t>(p, query.trace.trace_id);
    put<std::uint64_t>(p, query.trace.span_id);
  }
  return buf;
}

Query decode_query(const std::uint8_t* data, std::size_t size) {
  if (size != kQuerySize && size != kTracedQuerySize) {
    throw std::runtime_error("Query: wrong payload size");
  }
  const std::uint8_t* p = data;
  Query query;
  const auto kind = take<std::uint8_t>(p);
  if (!known_kind(kind)) {
    throw std::runtime_error("Query: unknown kind " + std::to_string(kind));
  }
  query.kind = static_cast<QueryKind>(kind);
  query.k = take<std::uint32_t>(p);
  query.q = take_f64(p);
  if (!(query.q >= 0.0 && query.q <= 1.0)) {  // also rejects NaN
    throw std::runtime_error("Query: quantile outside [0, 1]");
  }
  query.key = take_tuple(p);
  query.epoch_first = take<std::uint32_t>(p);
  query.epoch_last = take<std::uint32_t>(p);
  if (query.epoch_first > query.epoch_last) {
    throw std::runtime_error("Query: epoch window reversed");
  }
  if (size == kTracedQuerySize) {
    const auto flags = take<std::uint8_t>(p);
    if (flags != 1) throw std::runtime_error("Query: bad trace block flags");
    query.trace.trace_id = take<std::uint64_t>(p);
    query.trace.span_id = take<std::uint64_t>(p);
    if (query.trace.trace_id == 0) {
      throw std::runtime_error("Query: zero trace id in trace block");
    }
  }
  return query;
}

std::vector<std::uint8_t> encode_reply(const QueryReply& reply) {
  std::size_t body = 0;
  switch (reply.kind) {
    case QueryKind::kFleet:
      body = collect::sketch_wire_size(reply.fleet);
      break;
    case QueryKind::kTopK:
      body = 4 + reply.top.size() * kTopEntrySize;
      break;
    case QueryKind::kFlowQuantile:
      body = 1 + 8;
      break;
    case QueryKind::kStats:
      body = kAgentStatsFieldCount * 8;
      break;
    case QueryKind::kFlowSketch:
      body = 1 + (reply.flow_sketch.has_value() ? collect::sketch_wire_size(*reply.flow_sketch)
                                                : 0);
      break;
    case QueryKind::kLinks:
      body = 4;
      for (const auto& [link, sketch] : reply.links) {
        (void)link;
        body += 4 + collect::sketch_wire_size(sketch);
      }
      break;
    case QueryKind::kMetrics:
      body = obs::scrape_wire_size(reply.scrape);
      break;
    case QueryKind::kWindowFleet:
    case QueryKind::kWindowLink:
      body = kWindowInfoSize + 1 +
             (reply.window_sketch.has_value() ? collect::sketch_wire_size(*reply.window_sketch)
                                              : 0);
      break;
    case QueryKind::kWindowFlowQuantile:
      body = kWindowInfoSize + 1 +
             (reply.window_sketch.has_value()
                  ? 8 + collect::sketch_wire_size(*reply.window_sketch)
                  : 0);
      break;
    case QueryKind::kTraceSpans:
      body = 4 + 8 + 8;
      for (const auto& span : reply.spans) body += kSpanEntryFixedSize + span.label.size();
      break;
  }
  std::vector<std::uint8_t> buf(1 + body);
  std::uint8_t* p = buf.data();
  put<std::uint8_t>(p, static_cast<std::uint8_t>(reply.kind));
  switch (reply.kind) {
    case QueryKind::kFleet:
      collect::encode_sketch(p, reply.fleet);
      break;
    case QueryKind::kTopK:
      put<std::uint32_t>(p, static_cast<std::uint32_t>(reply.top.size()));
      for (const auto& [rank, flow] : reply.top) {
        put_f64(p, rank);
        put_tuple(p, flow.key);
        put<std::uint64_t>(p, flow.packets);
        put_f64(p, flow.mean_ns);
        put_f64(p, flow.p50_ns);
        put_f64(p, flow.p99_ns);
        put_f64(p, flow.max_ns);
      }
      break;
    case QueryKind::kFlowQuantile:
      put<std::uint8_t>(p, reply.quantile.has_value() ? 1 : 0);
      put_f64(p, reply.quantile.value_or(0.0));
      break;
    case QueryKind::kStats:
      // Field-table order IS the wire order; see kAgentStatsFields.
      for (const auto& field : kAgentStatsFields) {
        put<std::uint64_t>(p, reply.stats.*(field.member));
      }
      break;
    case QueryKind::kFlowSketch:
      put<std::uint8_t>(p, reply.flow_sketch.has_value() ? 1 : 0);
      if (reply.flow_sketch.has_value()) collect::encode_sketch(p, *reply.flow_sketch);
      break;
    case QueryKind::kLinks:
      put<std::uint32_t>(p, static_cast<std::uint32_t>(reply.links.size()));
      for (const auto& [link, sketch] : reply.links) {
        put<std::uint32_t>(p, link);
        collect::encode_sketch(p, sketch);
      }
      break;
    case QueryKind::kMetrics: {
      // The scrape codec appends to a vector; bridge into the pre-sized
      // frame buffer (scrapes are query-plane-sized, the copy is noise).
      std::vector<std::uint8_t> segment;
      obs::encode_scrape(segment, reply.scrape);
      std::memcpy(p, segment.data(), segment.size());
      p += segment.size();
      break;
    }
    case QueryKind::kWindowFleet:
    case QueryKind::kWindowLink:
      put_window(p, reply.window);
      put<std::uint8_t>(p, reply.window_sketch.has_value() ? 1 : 0);
      if (reply.window_sketch.has_value()) collect::encode_sketch(p, *reply.window_sketch);
      break;
    case QueryKind::kWindowFlowQuantile:
      put_window(p, reply.window);
      put<std::uint8_t>(p, reply.window_sketch.has_value() ? 1 : 0);
      if (reply.window_sketch.has_value()) {
        put_f64(p, reply.quantile.value_or(0.0));
        collect::encode_sketch(p, *reply.window_sketch);
      }
      break;
    case QueryKind::kTraceSpans:
      put<std::uint32_t>(p, static_cast<std::uint32_t>(reply.spans.size()));
      for (const auto& span : reply.spans) {
        put<std::uint64_t>(p, span.trace_id);
        put<std::uint64_t>(p, span.span_id);
        put<std::uint64_t>(p, span.parent_id);
        put<std::uint8_t>(p, static_cast<std::uint8_t>(span.kind));
        put<std::uint64_t>(p, static_cast<std::uint64_t>(span.start_ns));
        put<std::uint64_t>(p, static_cast<std::uint64_t>(span.end_ns));
        put<std::uint16_t>(p, static_cast<std::uint16_t>(span.label.size()));
        std::memcpy(p, span.label.data(), span.label.size());
        p += span.label.size();
      }
      put<std::uint64_t>(p, reply.spans_dropped);
      put<std::uint64_t>(p, reply.spans_total);
      break;
  }
  return buf;
}

QueryReply decode_reply(const std::uint8_t* data, std::size_t size) {
  if (size < 1) throw std::runtime_error("QueryReply: empty payload");
  const std::uint8_t* p = data;
  const std::uint8_t* end = data + size;
  QueryReply reply;
  const auto kind = take<std::uint8_t>(p);
  if (!known_kind(kind)) {
    throw std::runtime_error("QueryReply: unknown kind " + std::to_string(kind));
  }
  reply.kind = static_cast<QueryKind>(kind);
  switch (reply.kind) {
    case QueryKind::kFleet:
      reply.fleet = collect::decode_sketch(p, end);
      break;
    case QueryKind::kTopK: {
      if (end - p < 4) throw std::runtime_error("QueryReply: truncated top-k count");
      const auto count = take<std::uint32_t>(p);
      if (count > kMaxTopEntries) {
        throw std::runtime_error("QueryReply: implausible top-k count");
      }
      if (static_cast<std::size_t>(end - p) < count * kTopEntrySize) {
        throw std::runtime_error("QueryReply: truncated top-k entries");
      }
      reply.top.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const double rank = take_f64(p);
        collect::FlowSummary flow;
        flow.key = take_tuple(p);
        flow.packets = take<std::uint64_t>(p);
        flow.mean_ns = take_f64(p);
        flow.p50_ns = take_f64(p);
        flow.p99_ns = take_f64(p);
        flow.max_ns = take_f64(p);
        reply.top.emplace_back(rank, flow);
      }
      break;
    }
    case QueryKind::kFlowQuantile: {
      if (end - p < 1 + 8) throw std::runtime_error("QueryReply: truncated quantile");
      const auto present = take<std::uint8_t>(p);
      const double value = take_f64(p);
      if (present != 0) reply.quantile = value;
      break;
    }
    case QueryKind::kStats:
      if (static_cast<std::size_t>(end - p) < kAgentStatsFieldCount * 8) {
        throw std::runtime_error("QueryReply: truncated stats");
      }
      for (const auto& field : kAgentStatsFields) {
        reply.stats.*(field.member) = take<std::uint64_t>(p);
      }
      break;
    case QueryKind::kFlowSketch: {
      if (end - p < 1) throw std::runtime_error("QueryReply: truncated flow-sketch flag");
      const auto present = take<std::uint8_t>(p);
      if (present != 0) reply.flow_sketch = collect::decode_sketch(p, end);
      break;
    }
    case QueryKind::kLinks: {
      if (end - p < 4) throw std::runtime_error("QueryReply: truncated link count");
      const auto count = take<std::uint32_t>(p);
      if (count > kMaxLinkEntries) {
        throw std::runtime_error("QueryReply: implausible link count");
      }
      reply.links.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (end - p < 4) throw std::runtime_error("QueryReply: truncated link entry");
        const auto link = take<std::uint32_t>(p);
        reply.links.emplace_back(link, collect::decode_sketch(p, end));
      }
      break;
    }
    case QueryKind::kMetrics:
      reply.scrape = obs::decode_scrape(p, end);
      break;
    case QueryKind::kWindowFleet:
    case QueryKind::kWindowLink:
      reply.window = take_window(p, end);
      if (take_present(p, end)) reply.window_sketch = collect::decode_sketch(p, end);
      break;
    case QueryKind::kWindowFlowQuantile:
      reply.window = take_window(p, end);
      if (take_present(p, end)) {
        if (end - p < 8) throw std::runtime_error("QueryReply: truncated window quantile");
        reply.quantile = take_f64(p);
        reply.window_sketch = collect::decode_sketch(p, end);
      }
      break;
    case QueryKind::kTraceSpans: {
      if (end - p < 4) throw std::runtime_error("QueryReply: truncated span count");
      const auto count = take<std::uint32_t>(p);
      if (count > kMaxSpanEntries) {
        throw std::runtime_error("QueryReply: implausible span count");
      }
      reply.spans.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (static_cast<std::size_t>(end - p) < kSpanEntryFixedSize) {
          throw std::runtime_error("QueryReply: truncated span entry");
        }
        obs::Span span;
        span.trace_id = take<std::uint64_t>(p);
        span.span_id = take<std::uint64_t>(p);
        span.parent_id = take<std::uint64_t>(p);
        const auto kind_byte = take<std::uint8_t>(p);
        if (kind_byte < 1 || kind_byte > obs::kSpanKindCount) {
          throw std::runtime_error("QueryReply: unknown span kind " +
                                   std::to_string(kind_byte));
        }
        span.kind = static_cast<obs::SpanKind>(kind_byte);
        span.start_ns = static_cast<std::int64_t>(take<std::uint64_t>(p));
        span.end_ns = static_cast<std::int64_t>(take<std::uint64_t>(p));
        const auto label_len = take<std::uint16_t>(p);
        if (static_cast<std::size_t>(end - p) < label_len) {
          throw std::runtime_error("QueryReply: truncated span label");
        }
        span.label.assign(reinterpret_cast<const char*>(p), label_len);
        p += label_len;
        if (span.span_id == 0) {
          throw std::runtime_error("QueryReply: zero span id");
        }
        reply.spans.push_back(std::move(span));
      }
      if (end - p < 8 + 8) throw std::runtime_error("QueryReply: truncated span totals");
      reply.spans_dropped = take<std::uint64_t>(p);
      reply.spans_total = take<std::uint64_t>(p);
      break;
    }
  }
  if (p != end) throw std::runtime_error("QueryReply: trailing bytes");
  return reply;
}

void append_trace_trailer(std::vector<std::uint8_t>& buf, obs::TraceContext ctx) {
  const std::size_t at = buf.size();
  buf.resize(at + kTraceTrailerSize);
  std::uint8_t* p = buf.data() + at;
  std::memcpy(p, "RLTC", 4);
  p += 4;
  put<std::uint8_t>(p, kTraceTrailerVersion);
  put<std::uint64_t>(p, ctx.trace_id);
  put<std::uint64_t>(p, ctx.span_id);
}

bool is_trace_trailer(const std::uint8_t* data, std::size_t size) {
  return size >= 4 && std::memcmp(data, "RLTC", 4) == 0;
}

obs::TraceContext decode_trace_trailer(const std::uint8_t* data, std::size_t size) {
  if (size != kTraceTrailerSize || !is_trace_trailer(data, size)) {
    throw std::runtime_error("trace trailer: bad size or magic");
  }
  const std::uint8_t* p = data + 4;
  const auto version = take<std::uint8_t>(p);
  if (version != kTraceTrailerVersion) {
    throw std::runtime_error("trace trailer: unsupported version");
  }
  obs::TraceContext ctx;
  ctx.trace_id = take<std::uint64_t>(p);
  ctx.span_id = take<std::uint64_t>(p);
  if (ctx.trace_id == 0) throw std::runtime_error("trace trailer: zero trace id");
  return ctx;
}

}  // namespace rlir::transport
