#include "transport/partitioned_client.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "net/hash.h"

namespace rlir::transport {

PartitionedClient::PartitionedClient(PartitionedClientConfig config)
    : config_(config), obs_(config.instruments) {
  if (config_.slot_count == 0) {
    throw std::invalid_argument("PartitionedClient: zero slot_count");
  }
  if (config_.down_after_pumps == 0) {
    throw std::invalid_argument("PartitionedClient: zero down_after_pumps");
  }
  auto& r = obs_.registry();
  const obs::Labels base = obs_.labels();
  c_.records_submitted = r.counter("rlir_pc_records_submitted_total", base);
  c_.batches_submitted = r.counter("rlir_pc_batches_submitted_total", base);
  c_.rebalances = r.counter("rlir_pc_rebalances_total", base);
  c_.recoveries = r.counter("rlir_pc_recoveries_total", base);
  c_.slots_reassigned = r.counter("rlir_pc_slots_reassigned_total", base);
}

std::size_t PartitionedClient::add_endpoint(StreamFactory factory) {
  if (sealed_) {
    throw std::logic_error(
        "PartitionedClient: endpoints are fixed after the first submit/pump");
  }
  Endpoint ep;
  // Endpoint clients share the registry/trace under child ids, so one scrape
  // shows every endpoint's counters side by side (rlir_client_*{instance=...}).
  CollectorClientConfig cfg = config_.client;
  cfg.instruments = obs_.child("ep" + std::to_string(endpoints_.size()));
  ep.client = std::make_unique<CollectorClient>(cfg, std::move(factory));
  endpoints_.push_back(std::move(ep));
  return endpoints_.size() - 1;
}

void PartitionedClient::seal() {
  if (sealed_) return;
  if (endpoints_.empty()) {
    throw std::logic_error("PartitionedClient: no endpoints added");
  }
  if (config_.slot_count < endpoints_.size()) {
    throw std::invalid_argument("PartitionedClient: fewer slots than endpoints");
  }
  sealed_ = true;
  slots_.assign(config_.slot_count, 0);
  split_.resize(endpoints_.size());
  // Initial table: every slot at home. recompute_slots() counts changes, so
  // seed the home assignment directly instead of "reassigning" from zero.
  for (std::size_t s = 0; s < slots_.size(); ++s) slots_[s] = s % endpoints_.size();
}

std::size_t PartitionedClient::slot_for(const net::FiveTuple& key) const {
  // One extra mix64 round decorrelates slot selection from the collectors'
  // shard routing (both start from key.hash()): an agent loss must not
  // correlate with any particular shard's flows.
  return net::mix64(key.hash()) % config_.slot_count;
}

std::size_t PartitionedClient::endpoint_for_slot(std::size_t slot) const {
  return slots_.at(slot);
}

std::size_t PartitionedClient::endpoint_for(const net::FiveTuple& key) const {
  return slots_.at(slot_for(key));
}

bool PartitionedClient::endpoint_healthy(std::size_t endpoint) const {
  return endpoints_.at(endpoint).healthy;
}

std::size_t PartitionedClient::healthy_count() const {
  std::size_t n = 0;
  for (const auto& ep : endpoints_) n += ep.healthy ? 1 : 0;
  return n;
}

CollectorClient& PartitionedClient::client(std::size_t endpoint) {
  return *endpoints_.at(endpoint).client;
}

const CollectorClient& PartitionedClient::client(std::size_t endpoint) const {
  return *endpoints_.at(endpoint).client;
}

void PartitionedClient::submit(std::uint32_t epoch,
                               const std::vector<collect::EstimateRecord>& batch) {
  seal();
  if (batch.empty()) return;
  for (const auto& record : batch) {
    split_[slots_[slot_for(record.key)]].push_back(record);
  }
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    if (split_[e].empty()) continue;
    endpoints_[e].client->submit(epoch, split_[e]);
    endpoints_[e].records_routed += split_[e].size();
    split_[e].clear();
  }
  c_.records_submitted->add(batch.size());
  c_.batches_submitted->increment();
}

void PartitionedClient::flush() {
  for (auto& ep : endpoints_) ep.client->flush();
}

std::size_t PartitionedClient::pump() {
  seal();
  std::size_t written = 0;
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    written += endpoints_[e].client->pump();
    update_health(e);
  }
  return written;
}

void PartitionedClient::update_health(std::size_t endpoint) {
  Endpoint& ep = endpoints_[endpoint];
  if (ep.client->connected()) {
    ep.failed_pumps = 0;
    if (!ep.healthy) {
      ep.healthy = true;
      c_.recoveries->increment();
      const std::uint64_t moved = recompute_slots();
      obs_.trace().record(obs::EventKind::kFailBack, moved,
                          "ep" + std::to_string(endpoint));
    }
    return;
  }
  if (!ep.healthy) return;  // already down, the client keeps re-dialing
  ep.failed_pumps += 1;
  if (ep.failed_pumps >= config_.down_after_pumps) {
    ep.healthy = false;
    c_.rebalances->increment();
    const std::uint64_t moved = recompute_slots();
    obs_.trace().record(obs::EventKind::kRebalance, moved,
                        "ep" + std::to_string(endpoint));
  }
}

std::uint64_t PartitionedClient::recompute_slots() {
  std::vector<std::size_t> healthy;
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    if (endpoints_[e].healthy) healthy.push_back(e);
  }
  // All endpoints down: leave the table alone. Records keep queueing in
  // their home clients (bounded by the buffer cap, shed oldest-first) and
  // flow again wherever endpoints come back.
  if (healthy.empty()) return 0;
  std::uint64_t moved = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const std::size_t home = s % endpoints_.size();
    const std::size_t owner =
        endpoints_[home].healthy ? home : healthy[s % healthy.size()];
    if (slots_[s] != owner) {
      slots_[s] = owner;
      moved += 1;
    }
  }
  c_.slots_reassigned->add(moved);
  return moved;
}

bool PartitionedClient::drain(std::size_t max_pumps) {
  seal();
  flush();
  for (std::size_t i = 0; i < max_pumps; ++i) {
    bool pending = false;
    for (const auto& ep : endpoints_) {
      if (ep.healthy && ep.client->buffered_bytes() > 0) pending = true;
    }
    if (!pending) break;
    pump();
  }
  for (const auto& ep : endpoints_) {
    if (ep.healthy && ep.client->buffered_bytes() > 0) return false;
  }
  return true;
}

collect::EpochScheduler::BatchSink PartitionedClient::make_sink() {
  return [this](std::uint32_t epoch, const std::vector<collect::EstimateRecord>& batch) {
    submit(epoch, batch);
    pump();
  };
}

PartitionedClient::Stats PartitionedClient::stats() const {
  Stats s;
  s.records_submitted = c_.records_submitted->value();
  s.batches_submitted = c_.batches_submitted->value();
  s.rebalances = c_.rebalances->value();
  s.recoveries = c_.recoveries->value();
  s.slots_reassigned = c_.slots_reassigned->value();
  return s;
}

std::uint64_t PartitionedClient::records_routed(std::size_t endpoint) const {
  return endpoints_.at(endpoint).records_routed;
}

std::uint64_t PartitionedClient::records_shed() const {
  std::uint64_t shed = 0;
  for (const auto& ep : endpoints_) shed += ep.client->stats().records_shed;
  return shed;
}

std::size_t PartitionedClient::records_inflight() const {
  std::size_t inflight = 0;
  for (const auto& ep : endpoints_) inflight += ep.client->queued_records();
  return inflight;
}

}  // namespace rlir::transport
