// The aggregator side of the transport tier: a CollectorAgent owns one
// shard-group's ConcurrentShardedCollector and serves it over any number of
// ByteStream connections — the "shard-per-process" deployment unit. One
// agent process per shard group, many vantage-point clients streaming
// framed record batches in, fleet queries answered in place.
//
//   connections (sockets / loopback pipes)
//        │ bytes                      ▲ kQueryReply frames
//        ▼                            │
//   FrameDecoder per connection ──────┤   (zero-copy FrameViews)
//        │ kRecordBatch payloads      │ kQuery frames
//        ▼                            │
//   decode_record_views_prefix loop ──┘
//        │ RecordView batches (borrowing the frame payload; docs/WIRE.md)
//        ▼
//   ConcurrentShardedCollector (per-lane inline merge, no materialization)
//
// poll() is the single-threaded reactor step: accept pending connections,
// read every readable byte, process complete frames, flush reply bytes.
// A connection that violates the protocol (bad magic/CRC/length, a frame
// type only agents send) is counted and dropped — on a raw byte stream
// there is no safe resync. run() wraps poll() into a daemon loop.
//
// Threading: poll()/run() from one thread at a time. The collector itself
// is thread-safe, so queries against collector() from other threads are
// fine (they quiesce), as is wiring additional in-process producers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "collect/concurrent_collector.h"
#include "collect/history.h"
#include "obs/instrument.h"
#include "obs/wire.h"
#include "timebase/time.h"
#include "transport/byte_stream.h"
#include "transport/frame.h"
#include "transport/messages.h"

namespace rlir::transport {

struct CollectorAgentConfig {
  /// The shard group this process owns.
  collect::ConcurrentCollectorConfig collector;
  /// Per-connection read granularity per poll(). Sized to swallow a whole
  /// default-coalesce client frame in one read.
  std::size_t io_chunk = 512u << 10;
  /// Cap on a connection's unread reply bytes. A peer that keeps querying
  /// without reading replies is dropped like any other protocol violator —
  /// every other allocation on the untrusted input path is bounded, and
  /// this keeps the outbox from being the exception. Must be > 0.
  std::size_t max_outbox_bytes = 8u << 20;
  /// Observability attachment; shared with the owned collector. Null
  /// members = the agent owns a private registry/trace.
  obs::Instruments instruments;
  /// Attach a history store and serve the kWindow* time-travel queries.
  /// Off by default: the store is a per-record ingest tee plus resident
  /// memory, which a pure live-query deployment should not pay for.
  bool enable_history = false;
  /// Store shape when enabled. sketch and instruments are overwritten with
  /// the collector's sketch config and the agent's shared registry (the
  /// accuracy contract and the single-scrape story both demand it).
  collect::HistoryConfig history;
};

class CollectorAgent {
 public:
  explicit CollectorAgent(CollectorAgentConfig config = {});

  CollectorAgent(const CollectorAgent&) = delete;
  CollectorAgent& operator=(const CollectorAgent&) = delete;

  /// Accept-side hookup (socket deployment). The agent polls it for new
  /// connections on every poll().
  void set_listener(std::unique_ptr<Listener> listener);

  /// Adopts an already-connected stream (loopback tests, in-process tiers).
  void add_connection(std::unique_ptr<ByteStream> stream);

  /// One reactor step: accept, read, process frames, write replies, reap
  /// dead connections. Returns the number of frames processed (0 = idle).
  std::size_t poll();

  /// Daemon loop: poll() until `stop` is set, sleeping `idle_sleep` between
  /// idle polls (busy polls go straight back around).
  void run(const std::atomic<bool>& stop,
           timebase::Duration idle_sleep = timebase::Duration::milliseconds(1));

  /// The shard-group state (thread-safe; queries quiesce ingest).
  [[nodiscard]] collect::ConcurrentShardedCollector& collector() { return collector_; }

  /// The attached history store; nullptr unless config.enable_history.
  /// Thread-safe like the collector (internally locked).
  [[nodiscard]] collect::SketchHistoryStore* history() { return history_.get(); }

  /// Counters served to kStats queries (collector totals + agent protocol
  /// accounting).
  [[nodiscard]] AgentStats stats();

  /// The full observability state a kMetrics reply (or a local --metrics
  /// dump) carries: the registry snapshot, the AgentStats counters as
  /// synthetic rlir_agent_* samples (field table), and the event trace.
  [[nodiscard]] obs::Scrape scrape();

  /// The registry/trace this agent (and its collector) report into.
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return obs_.registry(); }
  [[nodiscard]] obs::EventTrace& events() const { return obs_.trace(); }

  [[nodiscard]] std::size_t connection_count() const { return connections_.size(); }
  [[nodiscard]] std::uint64_t connections_accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t connections_closed() const { return closed_; }
  [[nodiscard]] std::uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  struct Connection {
    std::unique_ptr<ByteStream> stream;
    FrameDecoder decoder;
    /// Reply bytes not yet accepted by the stream.
    std::vector<std::uint8_t> outbox;
    std::size_t outbox_offset = 0;
    bool dead = false;
  };

  /// Reads available bytes and processes the frames they complete; marks the
  /// connection dead on protocol violations.
  std::size_t service(Connection& conn);
  void handle_frame(Connection& conn, const FrameView& frame);
  void flush_outbox(Connection& conn);

  CollectorAgentConfig config_;
  /// Declared before collector_ so the agent's registry/trace exist when
  /// the collector config is patched to share them.
  obs::Instrumented obs_;
  /// Owned history store (enable_history). Declared before collector_: the
  /// collector tees into it from worker threads, so it must be constructed
  /// before ingest can start and destroyed only after ~collector_ has
  /// drained and joined the workers.
  std::unique_ptr<collect::SketchHistoryStore> history_;
  collect::ConcurrentShardedCollector collector_;
  std::unique_ptr<Listener> listener_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Protocol counters stay plain members (single poll thread): they are
  /// served through the AgentStats field table at scrape time, so putting
  /// them in the registry too would create duplicate metric identities.
  std::uint64_t accepted_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t batches_received_ = 0;
  std::uint64_t queries_answered_ = 0;
  std::uint64_t protocol_errors_ = 0;

  struct Cells {
    obs::Gauge* connections;
    obs::Counter* connections_accepted;
    obs::Counter* connections_closed;
    obs::Histogram* batch_records;
  };
  Cells c_{};

  /// Tracing attachment (null = off): decode/ingest spans per record-batch
  /// frame (parented to the client flush via the RLTC trailer), one answer
  /// span per query, and the ring kTraceSpans serves from.
  obs::SpanRecorder* spans_ = nullptr;

  /// Reused across poll()s so the hot path allocates nothing per call: the
  /// read buffer service() fills, and the RecordView scratch each record
  /// batch is decoded into (views borrow the decoder's buffer and are
  /// consumed before the next read). Single poll thread, so plain members.
  std::vector<std::uint8_t> read_chunk_;
  std::vector<collect::RecordView> view_scratch_;
};

}  // namespace rlir::transport
