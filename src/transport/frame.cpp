#include "transport/frame.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "common/wire.h"
#include "net/hash.h"

namespace rlir::transport {

namespace {

using common::wire::put;
using common::wire::take;

constexpr std::array<char, 4> kMagic = {'R', 'L', 'T', 'F'};

[[nodiscard]] std::uint32_t payload_crc(const std::uint8_t* payload, std::size_t size) {
  return net::crc32c(std::as_bytes(std::span<const std::uint8_t>(payload, size)));
}

[[nodiscard]] bool known_type(std::uint8_t t) {
  return t == static_cast<std::uint8_t>(FrameType::kRecordBatch) ||
         t == static_cast<std::uint8_t>(FrameType::kQuery) ||
         t == static_cast<std::uint8_t>(FrameType::kQueryReply);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(FrameType type, const std::uint8_t* payload,
                                       std::size_t size) {
  std::vector<std::uint8_t> buf(kFrameHeaderSize + size);
  std::uint8_t* p = buf.data();
  for (char c : kMagic) put<std::uint8_t>(p, static_cast<std::uint8_t>(c));
  put<std::uint8_t>(p, kFrameVersion);
  put<std::uint8_t>(p, static_cast<std::uint8_t>(type));
  put<std::uint16_t>(p, 0);  // reserved
  put<std::uint32_t>(p, static_cast<std::uint32_t>(size));
  put<std::uint32_t>(p, payload_crc(payload, size));
  std::copy_n(payload, size, p);
  return buf;
}

std::vector<std::uint8_t> encode_frame(FrameType type, const std::vector<std::uint8_t>& payload) {
  return encode_frame(type, payload.data(), payload.size());
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // don't grow the buffer without bound while staying O(1) amortized.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  auto view = next_view();
  if (!view) return std::nullopt;
  Frame frame;
  frame.type = view->type;
  frame.payload.assign(view->payload, view->payload + view->size);
  return frame;
}

// Byte layout, CRC coverage, and the poisoning rules enforced here are
// specified in docs/WIRE.md ("RLTF framing").
std::optional<FrameView> FrameDecoder::next_view() {
  if (poisoned_) throw FrameError("FrameDecoder: stream already failed");
  if (buffer_.size() - consumed_ < kFrameHeaderSize) return std::nullopt;

  const std::uint8_t* p = buffer_.data() + consumed_;
  for (char c : kMagic) {
    if (take<std::uint8_t>(p) != static_cast<std::uint8_t>(c)) {
      poisoned_ = true;
      throw FrameError("Frame: bad magic");
    }
  }
  const auto version = take<std::uint8_t>(p);
  if (version != kFrameVersion) {
    poisoned_ = true;
    throw FrameError("Frame: unsupported version " + std::to_string(version));
  }
  const auto type = take<std::uint8_t>(p);
  if (!known_type(type)) {
    poisoned_ = true;
    throw FrameError("Frame: unknown type " + std::to_string(type));
  }
  const auto reserved = take<std::uint16_t>(p);
  if (reserved != 0) {
    poisoned_ = true;
    throw FrameError("Frame: nonzero reserved field");
  }
  const auto length = take<std::uint32_t>(p);
  if (length > kMaxFramePayload) {
    poisoned_ = true;
    throw FrameError("Frame: implausible payload length " + std::to_string(length));
  }
  const auto crc = take<std::uint32_t>(p);

  if (buffer_.size() - consumed_ < kFrameHeaderSize + length) return std::nullopt;

  if (payload_crc(p, length) != crc) {
    poisoned_ = true;
    throw FrameError("Frame: payload CRC mismatch");
  }
  FrameView view;
  view.type = static_cast<FrameType>(type);
  view.payload = p;
  view.size = length;
  consumed_ += kFrameHeaderSize + length;
  return view;
}

}  // namespace rlir::transport
