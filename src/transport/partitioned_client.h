// Client-side partitioning for a fleet of CollectorAgents: one logical
// export path that sprays EstimateRecord batches across N agent endpoints
// by flow-hash, so every flow's records deterministically land on ONE agent
// and the fleet's per-flow state is disjoint by construction — the property
// that makes a coordinator's top-k/quantile merges exact.
//
//   submit(epoch, batch)
//        │ slot = mix64(flow hash) % slot_count      (net/hash.h)
//        │ owner = slot table[slot]
//        ▼
//   per-endpoint CollectorClient (coalescing, bounded buffer with
//   shedding, reconnect/backoff — all inherited, per endpoint)
//        │ framed batches
//        ▼
//   N CollectorAgent processes
//
// Health and rebalance: every pump() checks each endpoint's connection. An
// endpoint disconnected for `down_after_pumps` consecutive pumps is marked
// down and the slot table is recomputed — its hash slots move to healthy
// endpoints (deterministically, counted in stats) while slots whose home
// endpoint is healthy never move. When a downed endpoint reconnects (its
// client never stops re-dialing), its home slots move back. Records already
// queued inside a downed endpoint's client stay there: they are delivered
// if it returns, shed under the buffer cap, or reported by
// records_inflight() — so conservation is checkable end to end:
//
//   records_submitted == sum(agents ingested) + records_shed()
//                        + records_inflight()   [+ bytes lost in a killed
//                                                 agent's unread stream]
//
// Threading: not thread-safe, same single-owner contract as
// CollectorClient.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "collect/epoch_scheduler.h"
#include "collect/estimate_record.h"
#include "net/flow_key.h"
#include "transport/client.h"

namespace rlir::transport {

struct PartitionedClientConfig {
  /// Hash-slot fan-out. More slots = finer-grained rebalance; must be >=
  /// the endpoint count (and > 0). Slots map to endpoints home-first
  /// (slot % endpoints), so with all endpoints healthy the table is the
  /// plain modulo spray.
  std::size_t slot_count = 64;
  /// Per-endpoint connection behavior (buffering, coalescing, backoff).
  CollectorClientConfig client;
  /// Consecutive disconnected pump()s before an endpoint is declared down
  /// and its slots are reassigned. Counted in pumps (like the client's
  /// backoff) so fault handling is deterministic under test. Must be > 0.
  std::uint32_t down_after_pumps = 4;
  /// Observability attachment (see obs/instrument.h). Endpoint clients
  /// report into the same registry/trace under child ids "ep0", "ep1", ...;
  /// rebalances leave kRebalance / kFailBack events carrying the slot count
  /// that moved.
  obs::Instruments instruments;
};

class PartitionedClient {
 public:
  using StreamFactory = CollectorClient::StreamFactory;

  /// Throws std::invalid_argument on a zero slot_count / down_after_pumps.
  explicit PartitionedClient(PartitionedClientConfig config = {});

  PartitionedClient(const PartitionedClient&) = delete;
  PartitionedClient& operator=(const PartitionedClient&) = delete;

  /// Registers one agent endpoint (dials eagerly, like CollectorClient).
  /// All endpoints must be added before the first submit()/pump() — the
  /// slot table is sized to the endpoint count (std::logic_error after).
  /// Returns the endpoint's index.
  std::size_t add_endpoint(StreamFactory factory);

  // --- Record plane --------------------------------------------------------

  /// Splits the batch by flow-hash slot and submits each endpoint's share
  /// to its client. Throws std::logic_error when no endpoint was added.
  void submit(std::uint32_t epoch, const std::vector<collect::EstimateRecord>& batch);

  /// Seals every endpoint's coalescing buffer (epoch boundary, shutdown).
  void flush();

  /// Pumps every endpoint's connection and updates health/rebalance state.
  /// Returns total bytes written this call.
  std::size_t pump();

  /// flush() + pump() until every endpoint's queue is empty or `max_pumps`
  /// is exhausted. Endpoints currently down don't count against success —
  /// their queued records are the inflight term, not a stalled drain.
  bool drain(std::size_t max_pumps = 1024);

  /// A BatchSink that submits and pumps — plug into EpochScheduler::add_sink
  /// or FleetCollector::add_batch_sink.
  [[nodiscard]] collect::EpochScheduler::BatchSink make_sink();

  // --- Partitioning introspection ------------------------------------------

  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }
  [[nodiscard]] std::size_t slot_count() const { return config_.slot_count; }
  /// The slot a flow hashes to (decorrelated from collector shard routing:
  /// one extra mix64 round on top of the flow-key hash).
  [[nodiscard]] std::size_t slot_for(const net::FiveTuple& key) const;
  /// The endpoint currently owning a slot / a flow's records.
  [[nodiscard]] std::size_t endpoint_for_slot(std::size_t slot) const;
  [[nodiscard]] std::size_t endpoint_for(const net::FiveTuple& key) const;

  /// Endpoint health as of the last pump() (true until proven down).
  [[nodiscard]] bool endpoint_healthy(std::size_t endpoint) const;
  [[nodiscard]] std::size_t healthy_count() const;

  /// The endpoint's underlying client (stats, queued_records, queries).
  [[nodiscard]] CollectorClient& client(std::size_t endpoint);
  [[nodiscard]] const CollectorClient& client(std::size_t endpoint) const;

  // --- Accounting ----------------------------------------------------------

  struct Stats {
    std::uint64_t records_submitted = 0;
    std::uint64_t batches_submitted = 0;
    /// Slot-table recomputes after an endpoint loss / recovery.
    std::uint64_t rebalances = 0;
    std::uint64_t recoveries = 0;
    /// Slot ownership changes across all recomputes.
    std::uint64_t slots_reassigned = 0;
  };
  /// Built from the registry cells (rlir_pc_*) — a view, not stored state.
  [[nodiscard]] Stats stats() const;

  /// The registry/trace this client (and its endpoint clients) report into.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return obs_.registry(); }
  [[nodiscard]] obs::EventTrace& events() { return obs_.trace(); }

  /// Records routed to one endpoint since construction (conservation:
  /// these sum to stats().records_submitted).
  [[nodiscard]] std::uint64_t records_routed(std::size_t endpoint) const;
  /// Sums of the per-endpoint client counters (conservation terms).
  [[nodiscard]] std::uint64_t records_shed() const;
  [[nodiscard]] std::size_t records_inflight() const;

  [[nodiscard]] const PartitionedClientConfig& config() const { return config_; }

 private:
  struct Endpoint {
    std::unique_ptr<CollectorClient> client;
    bool healthy = true;
    /// Consecutive pump()s observed disconnected (resets on connect).
    std::uint32_t failed_pumps = 0;
    std::uint64_t records_routed = 0;
  };

  /// Marks the first submit/pump so add_endpoint can refuse afterwards.
  void seal();
  /// Re-derives the slot table from current endpoint health: a slot lives
  /// with its home endpoint (slot % endpoints) when that is healthy, else
  /// with a deterministic healthy stand-in. Returns ownership changes.
  std::uint64_t recompute_slots();
  void update_health(std::size_t endpoint);

  PartitionedClientConfig config_;
  obs::Instrumented obs_;
  std::vector<Endpoint> endpoints_;
  /// slot -> owning endpoint index.
  std::vector<std::size_t> slots_;
  /// Scratch for submit()'s per-endpoint split (reused across calls).
  std::vector<std::vector<collect::EstimateRecord>> split_;
  bool sealed_ = false;
  /// Registry cells backing Stats (names rlir_pc_<field>_total).
  struct Cells {
    obs::Counter* records_submitted = nullptr;
    obs::Counter* batches_submitted = nullptr;
    obs::Counter* rebalances = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* slots_reassigned = nullptr;
  } c_{};
};

}  // namespace rlir::transport
