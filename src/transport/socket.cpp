#include "transport/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <system_error>
#include <utility>

// send() without SIGPIPE where the platform has the flag; platforms without
// it (macOS) get the equivalent SO_NOSIGPIPE set per-socket in
// suppress_sigpipe() below. Either way a dead peer surfaces as EPIPE, which
// write_some turns into closed().
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace rlir::transport {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

/// Builds the sockaddr for `address`; returns the byte length used.
socklen_t fill_sockaddr(const SocketAddress& address, sockaddr_storage* storage) {
  std::memset(storage, 0, sizeof(*storage));
  if (address.kind == SocketAddress::Kind::kTcp) {
    auto* sin = reinterpret_cast<sockaddr_in*>(storage);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &sin->sin_addr) != 1) {
      throw std::invalid_argument("SocketAddress: bad IPv4 host '" + address.host + "'");
    }
    return sizeof(sockaddr_in);
  }
  auto* sun = reinterpret_cast<sockaddr_un*>(storage);
  sun->sun_family = AF_UNIX;
  if (address.path.empty() || address.path.size() >= sizeof(sun->sun_path)) {
    throw std::invalid_argument("SocketAddress: unix path empty or too long");
  }
  std::memcpy(sun->sun_path, address.path.c_str(), address.path.size() + 1);
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + address.path.size() + 1);
}

/// A connected socket as a nonblocking ByteStream. Errors collapse into
/// closed(): once the fd reports anything but EAGAIN, no byte will move
/// again, which is all the layers above need to know.
class SocketStream final : public ByteStream {
 public:
  explicit SocketStream(int fd) : fd_(fd) {}
  ~SocketStream() override { close(); }

  std::size_t write_some(const std::uint8_t* data, std::size_t size) override {
    if (fd_ < 0 || size == 0) return 0;
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return 0;
    close();  // EPIPE / ECONNRESET / anything else: the stream is done
    return 0;
  }

  std::size_t write_some_vectored(const ConstBuffer* buffers, std::size_t count) override {
    if (fd_ < 0 || count == 0) return 0;
    // RLIR_VECTORED_IO=off falls back to the base one-span-at-a-time loop —
    // the same escape hatch RLIR_CRC32C=software provides for the CRC
    // dispatch: A/B the syscall batching at runtime (docs/PERFORMANCE.md)
    // and sidestep it if a platform's sendmsg misbehaves.
    static const bool disabled = [] {
      const char* env = std::getenv("RLIR_VECTORED_IO");
      return env != nullptr && std::string_view(env) == "off";
    }();
    if (disabled) return ByteStream::write_some_vectored(buffers, count);
    // One sendmsg for the whole queue segment. iovec and ConstBuffer are not
    // layout-compatible (iov_base is non-const void*), so spans are staged
    // into a bounded on-stack array; a queue deeper than kMaxIov just takes
    // another pump() round.
    constexpr std::size_t kMaxIov = 64;
    iovec iov[kMaxIov];
    std::size_t iov_count = 0;
    for (std::size_t i = 0; i < count && iov_count < kMaxIov; ++i) {
      if (buffers[i].size == 0) continue;
      iov[iov_count].iov_base = const_cast<std::uint8_t*>(buffers[i].data);
      iov[iov_count].iov_len = buffers[i].size;
      ++iov_count;
    }
    if (iov_count == 0) return 0;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return 0;
    close();
    return 0;
  }

  std::size_t read_some(std::uint8_t* data, std::size_t size) override {
    if (fd_ < 0 || size == 0) return 0;
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return 0;
    close();  // n == 0 is orderly EOF; n < 0 is an error — same outcome here
    return 0;
  }

  [[nodiscard]] bool closed() const override { return fd_ < 0; }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

void enable_nodelay(int fd) {
  // Epoch batches are latency-relevant telemetry; don't let Nagle pool them.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void suppress_sigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  // No MSG_NOSIGNAL on this platform: writing to a dead peer must degrade
  // to EPIPE/closed(), never kill the process.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

}  // namespace

SocketAddress SocketAddress::tcp(std::string host, std::uint16_t port) {
  SocketAddress a;
  a.kind = Kind::kTcp;
  a.host = std::move(host);
  a.port = port;
  return a;
}

SocketAddress SocketAddress::unix_path(std::string path) {
  SocketAddress a;
  a.kind = Kind::kUnix;
  a.path = std::move(path);
  return a;
}

SocketAddress SocketAddress::parse(const std::string& text) {
  if (text.rfind("unix:", 0) == 0) {
    const auto path = text.substr(5);
    if (path.empty()) throw std::invalid_argument("SocketAddress: empty unix path");
    return unix_path(path);
  }
  if (text.rfind("tcp:", 0) == 0) {
    const auto rest = text.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw std::invalid_argument("SocketAddress: want tcp:HOST:PORT, got '" + text + "'");
    }
    const auto port_text = rest.substr(colon + 1);
    std::size_t pos = 0;
    const auto port = std::stoul(port_text, &pos);
    if (pos != port_text.size() || port > 0xffff) {
      throw std::invalid_argument("SocketAddress: bad port '" + port_text + "'");
    }
    return tcp(rest.substr(0, colon), static_cast<std::uint16_t>(port));
  }
  throw std::invalid_argument("SocketAddress: want tcp:HOST:PORT or unix:PATH, got '" + text +
                              "'");
}

std::string SocketAddress::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

SocketListener::SocketListener(const SocketAddress& address) : address_(address) {
  const int domain = address.kind == SocketAddress::Kind::kTcp ? AF_INET : AF_UNIX;
  fd_ = ::socket(domain, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket()");
  try {
    if (address.kind == SocketAddress::Kind::kTcp) {
      const int one = 1;
      ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    } else {
      // A previous daemon's socket file makes bind fail with EADDRINUSE
      // even though nobody is listening; a fresh bind is the intent.
      ::unlink(address.path.c_str());
    }
    sockaddr_storage storage;
    const auto len = fill_sockaddr(address, &storage);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&storage), len) < 0) {
      throw_errno("bind(" + address.to_string() + ")");
    }
    if (::listen(fd_, SOMAXCONN) < 0) throw_errno("listen(" + address.to_string() + ")");
    set_nonblocking(fd_);
    if (address.kind == SocketAddress::Kind::kTcp && address.port == 0) {
      sockaddr_in bound;
      socklen_t bound_len = sizeof(bound);
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
        throw_errno("getsockname()");
      }
      address_.port = ntohs(bound.sin_port);
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) ::close(fd_);
  if (address_.kind == SocketAddress::Kind::kUnix) ::unlink(address_.path.c_str());
}

std::unique_ptr<ByteStream> SocketListener::accept() {
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return nullptr;  // EAGAIN and transient errors alike: try later
  set_nonblocking(conn);
  suppress_sigpipe(conn);
  if (address_.kind == SocketAddress::Kind::kTcp) enable_nodelay(conn);
  return std::make_unique<SocketStream>(conn);
}

std::unique_ptr<ByteStream> connect_to(const SocketAddress& address) {
  const int domain = address.kind == SocketAddress::Kind::kTcp ? AF_INET : AF_UNIX;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  sockaddr_storage storage;
  socklen_t len = 0;
  try {
    len = fill_sockaddr(address, &storage);
  } catch (...) {
    ::close(fd);
    throw;
  }
  // Blocking connect (bounded by the kernel's own timeout), then nonblocking
  // I/O: the client retries via its backoff machinery, not via EINPROGRESS
  // bookkeeping.
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&storage), len) < 0) {
    ::close(fd);
    return nullptr;
  }
  try {
    set_nonblocking(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  suppress_sigpipe(fd);
  if (address.kind == SocketAddress::Kind::kTcp) enable_nodelay(fd);
  return std::make_unique<SocketStream>(fd);
}

}  // namespace rlir::transport
