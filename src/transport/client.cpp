#include "transport/client.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace rlir::transport {

CollectorClient::CollectorClient(CollectorClientConfig config, StreamFactory factory)
    : config_(config), factory_(std::move(factory)), obs_(config.instruments) {
  if (config_.max_buffered_bytes == 0 || config_.coalesce_bytes == 0) {
    throw std::invalid_argument("CollectorClient: zero buffer/coalesce size");
  }
  if (config_.io_chunk == 0) {
    throw std::invalid_argument("CollectorClient: zero io_chunk");
  }
  if (!factory_) {
    throw std::invalid_argument("CollectorClient: null stream factory");
  }
  reply_chunk_.resize(config_.io_chunk);
  auto& r = obs_.registry();
  const obs::Labels base = obs_.labels();
  c_.batches_submitted = r.counter("rlir_client_batches_submitted_total", base);
  c_.records_submitted = r.counter("rlir_client_records_submitted_total", base);
  c_.frames_queued = r.counter("rlir_client_frames_queued_total", base);
  c_.frames_sent = r.counter("rlir_client_frames_sent_total", base);
  c_.bytes_sent = r.counter("rlir_client_bytes_sent_total", base);
  c_.batch_frames_shed = r.counter("rlir_client_batch_frames_shed_total", base);
  c_.records_shed = r.counter("rlir_client_records_shed_total", base);
  c_.reconnects = r.counter("rlir_client_reconnects_total", base);
  c_.connect_failures = r.counter("rlir_client_connect_failures_total", base);
  c_.queries_sent = r.counter("rlir_client_queries_sent_total", base);
  c_.replies_received = r.counter("rlir_client_replies_received_total", base);
  c_.queries_lost = r.counter("rlir_client_queries_lost_total", base);
  c_.buffered_bytes = r.gauge("rlir_client_buffered_bytes", base);
  c_.frame_bytes = r.histogram("rlir_client_frame_bytes", base);
  spans_ = obs_.spans();
  if (spans_ != nullptr) spans_->bind_metrics(&r, base);
  // Eager first dial so a healthy deployment starts connected; failure just
  // arms the backoff like any later outage.
  ensure_connected();
}

CollectorClient::Stats CollectorClient::stats() const {
  Stats s;
  s.batches_submitted = c_.batches_submitted->value();
  s.records_submitted = c_.records_submitted->value();
  s.frames_queued = c_.frames_queued->value();
  s.frames_sent = c_.frames_sent->value();
  s.bytes_sent = c_.bytes_sent->value();
  s.batch_frames_shed = c_.batch_frames_shed->value();
  s.records_shed = c_.records_shed->value();
  s.reconnects = c_.reconnects->value();
  s.connect_failures = c_.connect_failures->value();
  s.queries_sent = c_.queries_sent->value();
  s.replies_received = c_.replies_received->value();
  s.queries_lost = c_.queries_lost->value();
  return s;
}

void CollectorClient::submit(std::uint32_t epoch,
                             const std::vector<collect::EstimateRecord>& batch) {
  if (batch.empty()) return;
  // Re-stamping the epoch is the caller's business; the batch is encoded
  // as-is. (Exporter batches already carry the epoch in every record.)
  (void)epoch;
  const auto bytes = collect::encode_records(batch);
  coalescing_.insert(coalescing_.end(), bytes.begin(), bytes.end());
  coalescing_records_ += batch.size();
  c_.batches_submitted->increment();
  c_.records_submitted->add(batch.size());
  if (coalescing_.size() >= config_.coalesce_bytes) seal_coalescing();
}

void CollectorClient::flush() { seal_coalescing(); }

void CollectorClient::seal_coalescing() {
  if (coalescing_.empty()) return;
  const std::int64_t t0 = spans_ != nullptr ? obs::SpanRecorder::now_ns() : 0;
  obs::Span flush;
  if (spans_ != nullptr) {
    // Each sealed frame starts its own trace: the trailer carries this
    // span's context, so the agent's decode/ingest spans for THESE bytes
    // parent to the flush that shipped them.
    flush.trace_id = spans_->new_trace_id();
    flush.span_id = spans_->next_span_id();
    flush.kind = obs::SpanKind::kClientFlush;
    flush.start_ns = t0;
    append_trace_trailer(coalescing_, obs::TraceContext{flush.trace_id, flush.span_id});
  }
  QueuedFrame frame;
  frame.bytes = encode_frame(FrameType::kRecordBatch, coalescing_);
  frame.records = coalescing_records_;
  frame.is_batch = true;
  coalescing_.clear();
  coalescing_records_ = 0;
  if (spans_ != nullptr) {
    flush.end_ns = obs::SpanRecorder::now_ns();
    flush.label = std::to_string(frame.records) + " records";
    spans_->record(std::move(flush));
  }
  enqueue(std::move(frame));
}

void CollectorClient::enqueue(QueuedFrame frame) {
  c_.frame_bytes->observe(static_cast<double>(frame.bytes.size()));
  buffered_bytes_ += frame.bytes.size();
  queue_.push_back(std::move(frame));
  c_.frames_queued->increment();
  shed_to_cap();
  c_.buffered_bytes->set(static_cast<std::int64_t>(buffered_bytes_));
}

void CollectorClient::shed_to_cap() {
  // Oldest batch first; the front frame is immune while partially written
  // (dropping sent bytes would desynchronize the framing), and query frames
  // are immune always (tiny, and the reply pairing depends on them).
  std::size_t i = front_offset_ > 0 ? 1 : 0;
  while (buffered_bytes_ > config_.max_buffered_bytes && i < queue_.size()) {
    if (!queue_[i].is_batch) {
      ++i;
      continue;
    }
    buffered_bytes_ -= queue_[i].bytes.size();
    c_.batch_frames_shed->increment();
    c_.records_shed->add(queue_[i].records);
    obs_.trace().record(obs::EventKind::kShed, queue_[i].records);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

bool CollectorClient::ensure_connected() {
  if (stream_ != nullptr && !stream_->closed()) return true;
  if (stream_ != nullptr) {
    // The connection died. Whatever was partially written is gone with it;
    // resend the front frame whole on the next connection.
    stream_.reset();
    front_offset_ = 0;
    obs_.trace().record(obs::EventKind::kDisconnect, 0, obs_.id());
    // A reply can't arrive on a new connection for a query sent on the old
    // one; surface the timeout instead of waiting forever. Queued query
    // frames die with the connection too: resending one would produce a
    // reply the caller no longer waits for, which would then be mis-paired
    // with the next query sent on the new connection.
    reply_decoder_ = FrameDecoder();
    if (query_outstanding_) {
      // One query can be outstanding at a time, so at most one query frame
      // is in the queue (and only while its query is outstanding) — this is
      // exactly one loss however far the frame got.
      query_outstanding_ = false;
      c_.queries_lost->increment();
      finish_query_span("lost");
    }
    for (std::size_t i = 0; i < queue_.size();) {
      if (queue_[i].is_batch) {
        ++i;
        continue;
      }
      buffered_bytes_ -= queue_[i].bytes.size();
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  if (backoff_countdown_ > 0) {
    --backoff_countdown_;
    return false;
  }
  auto stream = factory_();
  if (stream == nullptr || stream->closed()) {
    c_.connect_failures->increment();
    backoff_ = backoff_ == 0 ? config_.reconnect_backoff_initial
                             : std::min(backoff_ * 2, config_.reconnect_backoff_max);
    backoff_countdown_ = backoff_;
    return false;
  }
  if (ever_connected_) {
    c_.reconnects->increment();
    obs_.trace().record(obs::EventKind::kReconnect, 0, obs_.id());
  } else {
    obs_.trace().record(obs::EventKind::kConnect, 0, obs_.id());
  }
  ever_connected_ = true;
  stream_ = std::move(stream);
  backoff_ = 0;
  backoff_countdown_ = 0;
  return true;
}

std::size_t CollectorClient::pump() {
  if (!ensure_connected()) return 0;
  const std::int64_t t0 = spans_ != nullptr ? obs::SpanRecorder::now_ns() : 0;
  std::size_t written = 0;
  while (!queue_.empty()) {
    // Gather up to io_chunk bytes across queued frames — the front frame
    // from its partial-write offset, whole frames after it — into one
    // vectored write. Over a socket that is one writev/sendmsg syscall for
    // the whole segment instead of one send per frame.
    write_spans_.clear();
    std::size_t gathered = 0;
    for (std::size_t i = 0; i < queue_.size() && gathered < config_.io_chunk; ++i) {
      const auto& frame = queue_[i];
      const std::size_t offset = i == 0 ? front_offset_ : 0;
      const std::size_t take = std::min(frame.bytes.size() - offset, config_.io_chunk - gathered);
      write_spans_.push_back(ConstBuffer{frame.bytes.data() + offset, take});
      gathered += take;
    }
    const std::size_t n = stream_->write_some_vectored(write_spans_.data(), write_spans_.size());
    if (n == 0) {
      // Full or died; a died stream is picked up by the next pump's dial.
      break;
    }
    written += n;
    // Advance the queue past the bytes the stream took: complete frames pop,
    // a trailing partial write becomes the new front offset.
    std::size_t advanced = n;
    while (advanced > 0) {
      auto& front = queue_.front();
      const std::size_t remaining = front.bytes.size() - front_offset_;
      if (advanced >= remaining) {
        advanced -= remaining;
        buffered_bytes_ -= front.bytes.size();
        c_.frames_sent->increment();
        queue_.pop_front();
        front_offset_ = 0;
      } else {
        front_offset_ += advanced;
        advanced = 0;
      }
    }
  }
  c_.bytes_sent->add(written);
  c_.buffered_bytes->set(static_cast<std::int64_t>(buffered_bytes_));
  // Only pumps that moved bytes earn a span — an idle pump is the common
  // case in scheduler deployments and would drown the ring.
  if (spans_ != nullptr && written > 0) {
    obs::Span pump_span;
    pump_span.kind = obs::SpanKind::kClientPump;
    pump_span.start_ns = t0;
    pump_span.end_ns = obs::SpanRecorder::now_ns();
    pump_span.label = std::to_string(written) + " bytes";
    spans_->record(std::move(pump_span));
  }
  return written;
}

std::size_t CollectorClient::queued_records() const {
  std::size_t records = coalescing_records_;
  for (const auto& frame : queue_) records += frame.records;
  return records;
}

bool CollectorClient::drain(std::size_t max_pumps) {
  flush();
  for (std::size_t i = 0; i < max_pumps; ++i) {
    if (queue_.empty()) return true;
    pump();
  }
  return queue_.empty();
}

void CollectorClient::send_query(const Query& query) {
  if (query_outstanding_) {
    throw std::logic_error("CollectorClient: a query is already outstanding");
  }
  // Seal first so the reply reflects at least every record submitted before
  // the query (frames are delivered in queue order).
  seal_coalescing();
  Query wire_query = query;
  // Start the round-trip span and splice it into the propagated context, so
  // the agent's answer span parents to THIS hop (not the coordinator leg two
  // hops up). kTraceSpans is the meta-query: never traced, filter untouched.
  if (spans_ != nullptr && query.kind != QueryKind::kTraceSpans) {
    query_span_ = obs::Span{};
    query_span_.trace_id =
        query.trace.valid() ? query.trace.trace_id : spans_->new_trace_id();
    query_span_.span_id = spans_->next_span_id();
    query_span_.parent_id = query.trace.span_id;
    query_span_.kind = obs::SpanKind::kClientQuery;
    query_span_.start_ns = obs::SpanRecorder::now_ns();
    query_span_.label = query_kind_name(query.kind);
    query_span_active_ = true;
    wire_query.trace = obs::TraceContext{query_span_.trace_id, query_span_.span_id};
  }
  QueuedFrame frame;
  frame.bytes = encode_frame(FrameType::kQuery, encode_query(wire_query));
  enqueue(std::move(frame));
  query_outstanding_ = true;
  c_.queries_sent->increment();
}

void CollectorClient::finish_query_span(const char* status) {
  if (!query_span_active_) return;
  query_span_active_ = false;
  query_span_.end_ns = obs::SpanRecorder::now_ns();
  if (status != nullptr) {
    query_span_.label += ' ';
    query_span_.label += status;
  }
  spans_->record(std::move(query_span_));
}

std::optional<QueryReply> CollectorClient::poll_reply() {
  if (!query_outstanding_ || stream_ == nullptr) return std::nullopt;
  for (;;) {
    const std::size_t n = stream_->read_some(reply_chunk_.data(), reply_chunk_.size());
    if (n == 0) break;
    reply_decoder_.feed(reply_chunk_.data(), n);
  }
  std::optional<Frame> frame;
  try {
    frame = reply_decoder_.next();
  } catch (const FrameError&) {
    // A peer speaking garbage is indistinguishable from corruption: drop
    // the connection (reconnect machinery takes over) and rethrow.
    obs_.trace().record(obs::EventKind::kCrcPoison, 0, obs_.id());
    stream_->close();
    throw;
  }
  if (!frame.has_value()) return std::nullopt;
  if (frame->type != FrameType::kQueryReply) {
    stream_->close();
    throw FrameError("CollectorClient: unexpected frame type from agent");
  }
  query_outstanding_ = false;
  c_.replies_received->increment();
  finish_query_span(nullptr);
  return decode_reply(frame->payload.data(), frame->payload.size());
}

std::optional<QueryReply> CollectorClient::query(const Query& q, std::size_t max_pumps) {
  send_query(q);
  for (std::size_t i = 0; i < max_pumps; ++i) {
    pump();
    if (auto reply = poll_reply(); reply.has_value()) return reply;
    if (!query_outstanding_) return std::nullopt;  // connection died, query lost
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  abandon_query();  // else the next send_query would refuse forever
  return std::nullopt;
}

void CollectorClient::abandon_query() {
  if (!query_outstanding_) return;
  // The reply may still be in flight; it must die with the connection (the
  // next pump re-dials). A queued, unsent query frame dies here too.
  if (stream_ != nullptr) stream_->close();
  for (std::size_t i = 0; i < queue_.size();) {
    if (queue_[i].is_batch) {
      ++i;
      continue;
    }
    if (i == 0) front_offset_ = 0;
    buffered_bytes_ -= queue_[i].bytes.size();
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  reply_decoder_ = FrameDecoder();
  query_outstanding_ = false;
  c_.queries_lost->increment();
  finish_query_span("abandoned");
}

collect::EpochScheduler::BatchSink CollectorClient::make_sink() {
  return [this](std::uint32_t epoch, const std::vector<collect::EstimateRecord>& batch) {
    submit(epoch, batch);
    pump();
  };
}

}  // namespace rlir::transport
