// The transport tier's framing: length-prefixed, CRC-guarded messages over
// an untrusted byte stream. A frame is the unit the collector client and
// agent exchange; the payload is opaque here (record batches, queries,
// query replies — see transport/messages.h).
//
//   frame: magic "RLTF" | u8 version | u8 type | u16 reserved (0)
//          | u32 payload length | u32 CRC-32C(payload) | payload bytes
//
// Same conventions as every other wire format in the repo (little-endian,
// field-by-field packing via common/wire.h, magic + version up front,
// corruption guards that reject instead of guessing). The CRC is over the
// payload only — the header fields are each individually validatable, and
// a corrupted length is caught by the length guard before any allocation.
//
// FrameDecoder is incremental: feed it whatever read_some produced, pop
// complete frames as they materialize. Malformed input throws FrameError;
// the only safe recovery on a byte stream with no resync marks is to drop
// the connection, which is what the agent does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace rlir::transport {

inline constexpr std::uint8_t kFrameVersion = 1;

/// Header bytes preceding every payload: magic(4) + version(1) + type(1) +
/// reserved(2) + length(4) + crc(4).
inline constexpr std::size_t kFrameHeaderSize = 4 + 1 + 1 + 2 + 4 + 4;

/// Corruption guard: no honest frame carries more than this. A flipped bit
/// in the length field must not make the decoder allocate gigabytes.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  /// One or more EstimateRecord batches, back-to-back (decode with
  /// collect::decode_records_prefix until the payload is exhausted).
  kRecordBatch = 1,
  /// A fleet query (transport/messages.h encoding).
  kQuery = 2,
  /// The answer to the connection's oldest unanswered kQuery.
  kQueryReply = 3,
};

struct Frame {
  FrameType type = FrameType::kRecordBatch;
  std::vector<std::uint8_t> payload;
};

/// A complete frame whose payload is borrowed from the decoder's buffer
/// (zero-copy). Valid until the decoder's next feed() — consume the frame
/// before buffering more stream bytes, as a poll loop naturally does.
struct FrameView {
  FrameType type = FrameType::kRecordBatch;
  const std::uint8_t* payload = nullptr;
  std::size_t size = 0;
};

/// Thrown on malformed input: bad magic, unsupported version, unknown type,
/// oversized length, or a payload failing its CRC.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes one frame (header + CRC + payload copy).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(FrameType type,
                                                     const std::uint8_t* payload,
                                                     std::size_t size);
[[nodiscard]] std::vector<std::uint8_t> encode_frame(FrameType type,
                                                     const std::vector<std::uint8_t>& payload);

/// Incremental frame parser over an arbitrary chunking of the byte stream.
class FrameDecoder {
 public:
  /// Appends raw stream bytes (any chunk size, including one byte at a
  /// time). Cheap; parsing happens in next().
  void feed(const std::uint8_t* data, std::size_t size);

  /// Pops the next complete frame, or nullopt when the buffered bytes end
  /// mid-frame (feed more). Throws FrameError on malformed input; after a
  /// throw the decoder is poisoned and every later next() rethrows — drop
  /// the connection.
  [[nodiscard]] std::optional<Frame> next();

  /// Zero-copy next(): identical validation and poisoning, but the returned
  /// payload borrows the decoder's buffer instead of copying out of it
  /// (valid until the next feed()). The ingest hot path decodes records
  /// straight out of this borrow.
  [[nodiscard]] std::optional<FrameView> next_view();

  /// Bytes buffered but not yet consumed by a complete frame.
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  /// Prefix of buffer_ already handed out as frames (compacted lazily so
  /// feed() isn't O(buffer) per call).
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace rlir::transport
