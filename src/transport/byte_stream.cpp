#include "transport/byte_stream.h"

#include <algorithm>
#include <deque>
#include <mutex>

namespace rlir::transport {

namespace {

/// Shared state of one loopback pipe: two directions, one lock. The lock is
/// per-pipe (not per-direction) so close() can flip both directions
/// atomically; loopback traffic is test/sim traffic, never a hot path.
struct PipeState {
  std::mutex mu;
  struct Direction {
    std::deque<std::uint8_t> bytes;
    /// The writing end closed; readers drain what's left, then see EOF.
    bool writer_closed = false;
  };
  Direction dir[2];
  std::size_t capacity;

  explicit PipeState(std::size_t cap) : capacity(cap) {}
};

/// One end of the pipe: writes into dir[side], reads from dir[1 - side].
class LoopbackEnd final : public ByteStream {
 public:
  LoopbackEnd(std::shared_ptr<PipeState> state, int side)
      : state_(std::move(state)), side_(side) {}

  ~LoopbackEnd() override { close(); }

  std::size_t write_some(const std::uint8_t* data, std::size_t size) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto& out = state_->dir[side_];
    // Writing after either side's close moves nothing: the reader is gone
    // (or we are), so accepting bytes would fake progress.
    if (out.writer_closed || state_->dir[1 - side_].writer_closed) return 0;
    std::size_t room = size;
    if (state_->capacity > 0) {
      const std::size_t used = out.bytes.size();
      room = used >= state_->capacity ? 0 : std::min(size, state_->capacity - used);
    }
    out.bytes.insert(out.bytes.end(), data, data + room);
    return room;
  }

  std::size_t read_some(std::uint8_t* data, std::size_t size) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto& in = state_->dir[1 - side_];
    const std::size_t n = std::min(size, in.bytes.size());
    std::copy_n(in.bytes.begin(), n, data);
    in.bytes.erase(in.bytes.begin(), in.bytes.begin() + static_cast<std::ptrdiff_t>(n));
    return n;
  }

  [[nodiscard]] bool closed() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    const auto& in = state_->dir[1 - side_];
    return state_->dir[side_].writer_closed || (in.writer_closed && in.bytes.empty());
  }

  void close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    // Our outbound direction ends; anything we already wrote stays readable
    // by the peer (half-close draining, like shutdown(SHUT_WR) + close).
    state_->dir[side_].writer_closed = true;
  }

 private:
  std::shared_ptr<PipeState> state_;
  int side_;
};

}  // namespace

std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>> make_loopback(
    std::size_t capacity) {
  auto state = std::make_shared<PipeState>(capacity);
  return {std::make_unique<LoopbackEnd>(state, 0), std::make_unique<LoopbackEnd>(state, 1)};
}

}  // namespace rlir::transport
