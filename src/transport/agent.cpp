#include "transport/agent.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "collect/estimate_record.h"

namespace rlir::transport {

namespace {

/// The owned collector reports into the agent's registry/trace under the
/// agent's own instance id (its series are named rlir_collect_*, so the
/// shared id never collides).
collect::ConcurrentCollectorConfig shared_obs_collector(
    collect::ConcurrentCollectorConfig cfg, const obs::Instrumented& obs) {
  cfg.instruments = obs.child(obs.id());
  return cfg;
}

}  // namespace

CollectorAgent::CollectorAgent(CollectorAgentConfig config)
    : config_(config),
      obs_(config.instruments),
      collector_(shared_obs_collector(config.collector, obs_)) {
  if (config_.io_chunk == 0) {
    throw std::invalid_argument("CollectorAgent: zero io_chunk");
  }
  if (config_.max_outbox_bytes == 0) {
    throw std::invalid_argument("CollectorAgent: zero max_outbox_bytes");
  }
  read_chunk_.resize(config_.io_chunk);
  auto& r = obs_.registry();
  const obs::Labels base = obs_.labels();
  c_.connections = r.gauge("rlir_agent_connections", base);
  c_.connections_accepted = r.counter("rlir_agent_connections_accepted_total", base);
  c_.connections_closed = r.counter("rlir_agent_connections_closed_total", base);
  c_.batch_records = r.histogram("rlir_agent_batch_records", base);
  spans_ = obs_.spans();
  if (spans_ != nullptr) spans_->bind_metrics(&r, base);

  if (config_.enable_history) {
    collect::HistoryConfig hc = config_.history;
    // The accuracy contract: the store must accept exactly the records the
    // collector accepts. And its gauges/counters belong in this agent's
    // scrape, not a private registry nobody reads.
    hc.sketch = config_.collector.sketch;
    hc.instruments = obs_.child(obs_.id());
    history_ = std::make_unique<collect::SketchHistoryStore>(hc);
    collector_.set_history(history_.get());
  }
}

void CollectorAgent::set_listener(std::unique_ptr<Listener> listener) {
  listener_ = std::move(listener);
}

void CollectorAgent::add_connection(std::unique_ptr<ByteStream> stream) {
  auto conn = std::make_unique<Connection>();
  conn->stream = std::move(stream);
  connections_.push_back(std::move(conn));
  accepted_ += 1;
  c_.connections_accepted->increment();
  c_.connections->set(static_cast<std::int64_t>(connections_.size()));
  obs_.trace().record(obs::EventKind::kConnect, accepted_, obs_.id());
}

std::size_t CollectorAgent::poll() {
  if (listener_ != nullptr) {
    while (auto stream = listener_->accept()) add_connection(std::move(stream));
  }
  std::size_t frames = 0;
  for (auto& conn : connections_) {
    if (!conn->dead) frames += service(*conn);
    if (!conn->dead) flush_outbox(*conn);
    // A closed stream with nothing left to send is finished. (Protocol
    // violations set dead directly.)
    if (conn->stream->closed() && conn->outbox.size() == conn->outbox_offset) {
      conn->dead = true;
    }
  }
  const auto alive_end = std::remove_if(
      connections_.begin(), connections_.end(),
      [this](const std::unique_ptr<Connection>& c) {
        if (c->dead) {
          closed_ += 1;
          c_.connections_closed->increment();
          obs_.trace().record(obs::EventKind::kDisconnect, closed_, obs_.id());
        }
        return c->dead;
      });
  connections_.erase(alive_end, connections_.end());
  c_.connections->set(static_cast<std::int64_t>(connections_.size()));
  return frames;
}

std::size_t CollectorAgent::service(Connection& conn) {
  for (;;) {
    const std::size_t n = conn.stream->read_some(read_chunk_.data(), read_chunk_.size());
    if (n == 0) break;
    conn.decoder.feed(read_chunk_.data(), n);
  }
  std::size_t frames = 0;
  try {
    // Views borrow the decoder's buffer; each is fully consumed by
    // handle_frame before the loop asks for the next (and no feed() happens
    // until the next service call), so the borrow is safe.
    while (auto frame = conn.decoder.next_view()) {
      frames += 1;
      frames_received_ += 1;
      handle_frame(conn, *frame);
    }
  } catch (const FrameError&) {
    // Bad magic/version/type/CRC/length: the stream cannot be resynced.
    protocol_errors_ += 1;
    obs_.trace().record(obs::EventKind::kCrcPoison, protocol_errors_, obs_.id());
    conn.stream->close();
    conn.dead = true;
  } catch (const std::runtime_error&) {
    // Framing was sound but a payload was corrupt (record batch or query
    // that fails its own format checks). Same verdict: drop the peer.
    protocol_errors_ += 1;
    obs_.trace().record(obs::EventKind::kCrcPoison, protocol_errors_, obs_.id());
    conn.stream->close();
    conn.dead = true;
  }
  return frames;
}

void CollectorAgent::handle_frame(Connection& conn, const FrameView& frame) {
  switch (frame.type) {
    case FrameType::kRecordBatch: {
      // One payload carries coalesced batches back-to-back; the prefix
      // decoder walks them without re-scanning. Records are decoded as
      // zero-copy views over the payload bytes (docs/WIRE.md) and merged
      // straight into collector state — no EstimateRecord materialization
      // on the ingest hot path.
      const std::uint8_t* p = frame.payload;
      std::size_t remaining = frame.size;
      // Stage accounting only when tracing is attached — the untraced hot
      // path keeps its exact instruction stream.
      const std::int64_t t0 = spans_ != nullptr ? obs::SpanRecorder::now_ns() : 0;
      std::int64_t decode_ns = 0;
      std::int64_t ingest_ns = 0;
      std::size_t frame_records = 0;
      obs::TraceContext batch_ctx;
      while (remaining > 0) {
        // A traced client appends one RLTC trailer after the last batch;
        // "RLTC" vs "RLES" at a batch boundary is unambiguous.
        if (is_trace_trailer(p, remaining)) {
          batch_ctx = decode_trace_trailer(p, remaining);
          break;
        }
        view_scratch_.clear();
        std::int64_t t = spans_ != nullptr ? obs::SpanRecorder::now_ns() : 0;
        const std::size_t consumed =
            collect::decode_record_views_prefix(p, remaining, view_scratch_);
        if (spans_ != nullptr) decode_ns += obs::SpanRecorder::now_ns() - t;
        p += consumed;
        remaining -= consumed;
        batches_received_ += 1;
        frame_records += view_scratch_.size();
        c_.batch_records->observe(static_cast<double>(view_scratch_.size()));
        if (!view_scratch_.empty()) {
          t = spans_ != nullptr ? obs::SpanRecorder::now_ns() : 0;
          collector_.submit_views(view_scratch_);
          if (spans_ != nullptr) ingest_ns += obs::SpanRecorder::now_ns() - t;
        }
      }
      if (spans_ != nullptr) {
        // Two adjacent intervals, both children of the client flush that
        // shipped the bytes (a trailer-less frame yields process-local
        // spans: trace_id 0, still feeding the stage histograms).
        obs::Span decode_span;
        decode_span.trace_id = batch_ctx.trace_id;
        decode_span.parent_id = batch_ctx.span_id;
        decode_span.kind = obs::SpanKind::kAgentDecode;
        decode_span.start_ns = t0;
        decode_span.end_ns = t0 + decode_ns;
        decode_span.label = std::to_string(frame_records) + " records";
        spans_->record(std::move(decode_span));
        obs::Span ingest_span;
        ingest_span.trace_id = batch_ctx.trace_id;
        ingest_span.parent_id = batch_ctx.span_id;
        ingest_span.kind = obs::SpanKind::kAgentIngest;
        ingest_span.start_ns = t0 + decode_ns;
        ingest_span.end_ns = t0 + decode_ns + ingest_ns;
        ingest_span.label = std::to_string(frame_records) + " records";
        spans_->record(std::move(ingest_span));
      }
      break;
    }
    case FrameType::kQuery: {
      const auto query = decode_query(frame.payload, frame.size);
      // Counted before building the reply so a kStats answer includes the
      // query it is answering.
      queries_answered_ += 1;
      // The answer span parents to whatever context the query carried
      // (client hop, or bare coordinator leg). kTraceSpans is never traced:
      // pulling a trace must not pollute it.
      const bool trace_answer = spans_ != nullptr && query.kind != QueryKind::kTraceSpans;
      const std::int64_t answer_t0 = trace_answer ? obs::SpanRecorder::now_ns() : 0;
      QueryReply reply;
      reply.kind = query.kind;
      switch (query.kind) {
        case QueryKind::kFleet:
          reply.fleet = collector_.fleet();
          break;
        case QueryKind::kTopK:
          // Ranked form so a higher tier can merge several agents' answers;
          // served from the live collector's per-lane rank indexes
          // (O(k·lanes)), not a state copy.
          reply.top = collector_.top_k_ranked(query.k, query.q);
          break;
        case QueryKind::kFlowQuantile:
          reply.quantile = collector_.flow_quantile(query.key, query.q);
          break;
        case QueryKind::kStats:
          reply.stats = stats();
          break;
        case QueryKind::kFlowSketch:
          reply.flow_sketch = collector_.flow_sketch(query.key);
          break;
        case QueryKind::kLinks:
          reply.links = collector_.link_distributions();
          break;
        case QueryKind::kMetrics:
          reply.scrape = scrape();
          break;
        case QueryKind::kWindowFleet:
        case QueryKind::kWindowLink:
        case QueryKind::kWindowFlowQuantile: {
          // No store attached -> covered=false, absent: a fleet can mix
          // history-enabled and plain agents and the coordinator's coverage
          // merge reports the truth.
          if (history_ == nullptr) break;
          // The tee rides ingest, so the quiesce barrier means every record
          // submitted before this query is in the store.
          collector_.quiesce();
          collect::WindowCoverage cov;
          if (query.kind == QueryKind::kWindowFleet) {
            auto sketch = history_->window_fleet(query.epoch_first, query.epoch_last, &cov);
            if (cov.covered) reply.window_sketch = std::move(sketch);
          } else if (query.kind == QueryKind::kWindowLink) {
            reply.window_sketch =
                history_->window_link(query.epoch_first, query.epoch_last, query.k, &cov);
          } else {
            reply.window_sketch =
                history_->window_flow(query.epoch_first, query.epoch_last, query.key, &cov);
            if (reply.window_sketch.has_value()) {
              reply.quantile = reply.window_sketch->quantile(query.q);
            }
          }
          reply.window.covered = cov.covered;
          reply.window.complete = cov.complete;
          reply.window.first = cov.covered_first;
          reply.window.last = cov.covered_last;
          reply.window.records = cov.records;
          break;
        }
        case QueryKind::kTraceSpans: {
          // No recorder attached -> empty ring, honestly: count 0, total 0.
          if (spans_ == nullptr) break;
          obs::SpanRecorderSnapshot snap = spans_->snapshot();
          if (query.trace.valid()) {
            std::erase_if(snap.spans, [&](const obs::Span& s) {
              return s.trace_id != query.trace.trace_id;
            });
          }
          reply.spans = std::move(snap.spans);
          reply.spans_dropped = snap.dropped;
          reply.spans_total = snap.total;
          break;
        }
      }
      if (trace_answer) {
        obs::Span answer;
        answer.trace_id = query.trace.trace_id;
        answer.parent_id = query.trace.span_id;
        answer.kind = obs::SpanKind::kAgentAnswer;
        answer.start_ns = answer_t0;
        answer.end_ns = obs::SpanRecorder::now_ns();
        answer.label = query_kind_name(query.kind);
        spans_->record(std::move(answer));
      }
      const auto bytes = encode_frame(FrameType::kQueryReply, encode_reply(reply));
      if (conn.outbox.size() - conn.outbox_offset + bytes.size() > config_.max_outbox_bytes) {
        // The peer queries but never reads: unread replies are the only
        // allocation a client could otherwise grow without bound.
        throw FrameError("CollectorAgent: reply outbox overflow (peer not reading)");
      }
      conn.outbox.insert(conn.outbox.end(), bytes.begin(), bytes.end());
      break;
    }
    case FrameType::kQueryReply:
      // Only agents produce replies; receiving one is a protocol violation.
      throw FrameError("CollectorAgent: unexpected kQueryReply frame");
  }
}

void CollectorAgent::flush_outbox(Connection& conn) {
  while (conn.outbox_offset < conn.outbox.size()) {
    const std::size_t n = conn.stream->write_some(conn.outbox.data() + conn.outbox_offset,
                                                  conn.outbox.size() - conn.outbox_offset);
    if (n == 0) {
      // Slow reader: compact the written prefix so the buffer's footprint
      // tracks the UNREAD bytes (which max_outbox_bytes bounds), not the
      // connection's lifetime traffic.
      if (conn.outbox_offset >= conn.outbox.size() / 2) {
        conn.outbox.erase(conn.outbox.begin(),
                          conn.outbox.begin() + static_cast<std::ptrdiff_t>(conn.outbox_offset));
        conn.outbox_offset = 0;
      }
      return;
    }
    conn.outbox_offset += n;
  }
  conn.outbox.clear();
  conn.outbox_offset = 0;
}

obs::Scrape CollectorAgent::scrape() {
  obs::Scrape s;
  // The history store defers its cell updates to epoch seals; publish the
  // unsealed tail so the scrape's record counter matches the collector's.
  if (history_ != nullptr) history_->refresh_cells();
  s.metrics = obs_.registry().snapshot();
  // The AgentStats counters ride along as synthetic samples (field table):
  // they live outside the registry, so this is their only identity — a
  // coordinator merge sums them exactly like registry counters.
  append_agent_stats(s.metrics, stats(), obs_.labels());
  s.events = obs_.trace().snapshot();
  return s;
}

AgentStats CollectorAgent::stats() {
  AgentStats s;
  s.records_ingested = collector_.records_ingested();
  s.estimates_ingested = collector_.estimates_ingested();
  s.flows = collector_.flow_count();
  s.epochs = collector_.epoch_count();
  s.frames_received = frames_received_;
  s.batches_received = batches_received_;
  s.queries_answered = queries_answered_;
  s.protocol_errors = protocol_errors_;
  return s;
}

void CollectorAgent::run(const std::atomic<bool>& stop, timebase::Duration idle_sleep) {
  const auto sleep_ns = std::chrono::nanoseconds(idle_sleep.ns());
  while (!stop.load(std::memory_order_relaxed)) {
    if (poll() == 0) std::this_thread::sleep_for(sleep_ns);
  }
  // Final sweep so frames that raced the stop flag still land.
  poll();
}

}  // namespace rlir::transport
