#include "transport/coordinator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

namespace rlir::transport {

// --- Merge helpers ---------------------------------------------------------

common::LatencySketch merge_fleet_sketches(const std::vector<common::LatencySketch>& parts) {
  if (parts.empty()) return common::LatencySketch{};
  common::LatencySketch merged(parts.front().config());
  for (const auto& part : parts) merged.merge(part);
  return merged;
}

collect::FlowSummary summarize_flow(const net::FiveTuple& key,
                                    const common::LatencySketch& sketch) {
  collect::FlowSummary s;
  s.key = key;
  s.packets = sketch.count();
  s.mean_ns = sketch.mean();
  s.p50_ns = sketch.quantile(0.5);
  s.p99_ns = sketch.quantile(0.99);
  s.max_ns = sketch.max();
  return s;
}

std::vector<collect::RankedFlowSummary> merge_ranked_top_k(
    const std::vector<std::vector<collect::RankedFlowSummary>>& parts, std::size_t k,
    const FlowResolver& resolve) {
  // k is small and each part is at most k entries: gather-and-sort beats a
  // cursor heap in clarity at the same practical cost. Duplicates (one key
  // in several parts — partitions overlapped) are re-resolved exactly from
  // the merged flow sketch when a resolver is given.
  std::unordered_map<net::FiveTuple, collect::RankedFlowSummary> by_key;
  for (const auto& part : parts) {
    for (const auto& entry : part) {
      auto [it, inserted] = by_key.try_emplace(entry.second.key, entry);
      if (inserted) continue;
      if (resolve) {
        if (auto resolved = resolve(entry.second.key)) it->second = *resolved;
      } else if (collect::ranked_worse_first(entry, it->second)) {
        // No resolver: deterministic but approximate — keep the worse rank.
        it->second = entry;
      }
    }
  }
  std::vector<collect::RankedFlowSummary> merged;
  merged.reserve(by_key.size());
  for (auto& [key, entry] : by_key) merged.push_back(std::move(entry));
  std::sort(merged.begin(), merged.end(), collect::ranked_worse_first);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

AgentStats merge_agent_stats(const std::vector<AgentStats>& parts) {
  AgentStats total;
  for (const auto& part : parts) {
    for (const auto& field : kAgentStatsFields) {
      total.*(field.member) = saturating_add(total.*(field.member), part.*(field.member));
    }
  }
  return total;
}

obs::Scrape merge_scrapes(const std::vector<obs::Scrape>& parts) {
  obs::Scrape merged;
  std::vector<obs::MetricsSnapshot> snaps;
  snaps.reserve(parts.size());
  for (const auto& part : parts) {
    snaps.push_back(part.metrics);
    for (std::size_t i = 0; i < obs::kEventKindCount; ++i) {
      merged.events.counts[i] = saturating_add(merged.events.counts[i], part.events.counts[i]);
    }
    merged.events.dropped = saturating_add(merged.events.dropped, part.events.dropped);
  }
  merged.metrics = obs::merge_snapshots(snaps);
  return merged;
}

WindowInfo merge_window_info(const std::vector<std::optional<QueryReply>>& parts) {
  WindowInfo merged;
  bool all_complete = !parts.empty();
  for (const auto& part : parts) {
    if (!part.has_value()) {
      all_complete = false;  // a missed agent is unknown coverage: incomplete
      continue;
    }
    const WindowInfo& w = part->window;
    if (!w.complete) all_complete = false;
    if (!w.covered) continue;
    if (!merged.covered) {
      merged.covered = true;
      merged.first = w.first;
      merged.last = w.last;
    } else {
      merged.first = std::min(merged.first, w.first);
      merged.last = std::max(merged.last, w.last);
    }
    merged.records = saturating_add(merged.records, w.records);
  }
  merged.complete = merged.covered && all_complete;
  return merged;
}

// --- The coordinator -------------------------------------------------------

std::vector<obs::Span> AssembledTrace::sorted_spans() const {
  std::vector<obs::Span> all;
  all.reserve(size());
  for (const auto& [name, spans] : processes) {
    all.insert(all.end(), spans.begin(), spans.end());
  }
  std::sort(all.begin(), all.end(), [](const obs::Span& a, const obs::Span& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.span_id < b.span_id;
  });
  return all;
}

std::size_t AssembledTrace::size() const {
  std::size_t n = 0;
  for (const auto& [name, spans] : processes) n += spans.size();
  return n;
}

QueryCoordinator::QueryCoordinator(QueryCoordinatorConfig config)
    : config_(config), obs_(config.instruments) {
  if (config_.reply_rounds == 0) {
    throw std::invalid_argument("QueryCoordinator: zero reply_rounds");
  }
  auto& r = obs_.registry();
  const obs::Labels base = obs_.labels();
  c_.queries_sent = r.counter("rlir_coord_queries_sent_total", base);
  c_.replies_merged = r.counter("rlir_coord_replies_merged_total", base);
  c_.agent_failures = r.counter("rlir_coord_agent_failures_total", base);
  spans_ = obs_.spans();
  if (spans_ != nullptr) spans_->bind_metrics(&r, base);
}

std::size_t QueryCoordinator::add_agent(StreamFactory factory) {
  // Agent-facing clients share the coordinator's registry/trace under child
  // ids, so the coordinator's own scrape shows per-agent-link health.
  CollectorClientConfig cfg = config_.client;
  cfg.instruments = obs_.child("agent" + std::to_string(clients_.size()));
  clients_.push_back(std::make_unique<CollectorClient>(cfg, std::move(factory)));
  return clients_.size() - 1;
}

void QueryCoordinator::set_drive(std::function<void()> drive) { drive_ = std::move(drive); }

std::size_t QueryCoordinator::connected_count() const {
  std::size_t n = 0;
  for (const auto& client : clients_) n += client->connected() ? 1 : 0;
  return n;
}

CollectorClient& QueryCoordinator::client(std::size_t agent) { return *clients_.at(agent); }

std::optional<QueryReply> QueryCoordinator::ask(std::size_t agent, const Query& query) {
  CollectorClient& c = *clients_[agent];
  c_.queries_sent->increment();
  c.send_query(query);
  for (std::size_t round = 0; round < config_.reply_rounds; ++round) {
    c.pump();
    if (drive_) drive_();
    std::optional<QueryReply> reply;
    try {
      reply = c.poll_reply();
    } catch (const std::runtime_error&) {
      // Corrupt/unexpected reply bytes: poll_reply already dropped the
      // connection (reconnect machinery takes over); this fan-out misses
      // the agent. Abandon so the next fan-out can send a fresh query.
      c.abandon_query();
      c_.agent_failures->increment();
      return std::nullopt;
    }
    if (reply.has_value()) {
      c_.replies_merged->increment();
      return reply;
    }
    if (!c.query_outstanding()) {
      // The connection died under the query; the client discarded it.
      c_.agent_failures->increment();
      return std::nullopt;
    }
    if (!drive_) std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // Reply never came: abandon (drops the connection so a late reply can't
  // mis-pair with the next fan-out's query) and report the miss.
  c.abandon_query();
  c_.agent_failures->increment();
  return std::nullopt;
}

std::vector<std::optional<QueryReply>> QueryCoordinator::fan_out(const Query& query) {
  // Sequential fan-out: queries are tiny and agents answer in one poll, so
  // pipelining across connections would buy little and cost the
  // one-outstanding-query simplicity.
  std::vector<std::optional<QueryReply>> replies;
  replies.reserve(clients_.size());
  if (spans_ == nullptr || query.kind == QueryKind::kTraceSpans) {
    // Untraced, or the meta-query (pulling a trace must not pollute it).
    for (std::size_t i = 0; i < clients_.size(); ++i) replies.push_back(ask(i, query));
    return replies;
  }
  // One merge span roots the fan-out; each agent gets a leg span whose
  // context rides the query (the client hop re-parents beneath it, the
  // agent's answer span beneath that).
  obs::Span merge;
  merge.trace_id = query.trace.valid() ? query.trace.trace_id : spans_->new_trace_id();
  merge.span_id = spans_->next_span_id();
  merge.parent_id = query.trace.span_id;
  merge.kind = obs::SpanKind::kCoordMerge;
  merge.start_ns = obs::SpanRecorder::now_ns();
  merge.label = query_kind_name(query.kind);
  last_trace_id_ = merge.trace_id;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    obs::Span leg;
    leg.trace_id = merge.trace_id;
    leg.span_id = spans_->next_span_id();
    leg.parent_id = merge.span_id;
    leg.kind = obs::SpanKind::kCoordLeg;
    leg.start_ns = obs::SpanRecorder::now_ns();
    leg.label = "agent" + std::to_string(i);
    Query traced = query;
    traced.trace = obs::TraceContext{leg.trace_id, leg.span_id};
    replies.push_back(ask(i, traced));
    leg.end_ns = obs::SpanRecorder::now_ns();
    if (!replies.back().has_value()) leg.label += " miss";
    spans_->record(std::move(leg));
  }
  merge.end_ns = obs::SpanRecorder::now_ns();
  spans_->record(std::move(merge));
  return replies;
}

AssembledTrace QueryCoordinator::collect_trace(std::uint64_t trace_id) {
  if (trace_id == 0) trace_id = last_trace_id_;
  AssembledTrace out;
  out.trace_id = trace_id;
  Query q;
  q.kind = QueryKind::kTraceSpans;
  if (trace_id != 0) q.trace = obs::TraceContext{trace_id, 0};
  auto replies = fan_out(q);
  // The coordinator's own ring holds the trace's merge, leg, and client-hop
  // spans (clients share this recorder). The pull above added nothing to it:
  // kTraceSpans is untraced end to end.
  if (spans_ != nullptr) {
    out.processes.emplace_back(
        "coordinator", trace_id != 0 ? spans_->for_trace(trace_id) : spans_->snapshot().spans);
  }
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (!replies[i].has_value()) continue;
    out.agents_answered += 1;
    out.spans_dropped = saturating_add(out.spans_dropped, replies[i]->spans_dropped);
    out.processes.emplace_back("agent" + std::to_string(i), std::move(replies[i]->spans));
  }
  return out;
}

common::LatencySketch QueryCoordinator::fleet() {
  Query q;
  q.kind = QueryKind::kFleet;
  std::vector<common::LatencySketch> parts;
  for (auto& reply : fan_out(q)) {
    if (reply.has_value()) parts.push_back(std::move(reply->fleet));
  }
  return merge_fleet_sketches(parts);
}

std::vector<collect::RankedFlowSummary> QueryCoordinator::top_k_ranked(std::size_t k,
                                                                       double q) {
  Query query;
  query.kind = QueryKind::kTopK;
  query.k = static_cast<std::uint32_t>(std::min<std::size_t>(k, ~std::uint32_t{0}));
  query.q = q;
  std::vector<std::vector<collect::RankedFlowSummary>> parts;
  for (auto& reply : fan_out(query)) {
    if (reply.has_value()) parts.push_back(std::move(reply->top));
  }
  // Duplicates (a flow with records on several agents) are resolved from
  // the flow's exact merged sketch — never double-counted.
  return merge_ranked_top_k(parts, k,
                            [this, q](const net::FiveTuple& key)
                                -> std::optional<collect::RankedFlowSummary> {
                              auto sketch = flow_sketch(key);
                              if (!sketch.has_value()) return std::nullopt;
                              return collect::RankedFlowSummary{sketch->quantile(q),
                                                                summarize_flow(key, *sketch)};
                            });
}

std::vector<collect::FlowSummary> QueryCoordinator::top_k_flows(std::size_t k, double q) {
  return collect::strip_ranks(top_k_ranked(k, q));
}

std::optional<common::LatencySketch> QueryCoordinator::flow_sketch(
    const net::FiveTuple& key) {
  Query q;
  q.kind = QueryKind::kFlowSketch;
  q.key = key;
  std::vector<common::LatencySketch> parts;
  for (auto& reply : fan_out(q)) {
    if (reply.has_value() && reply->flow_sketch.has_value()) {
      parts.push_back(std::move(*reply->flow_sketch));
    }
  }
  if (parts.empty()) return std::nullopt;
  return merge_fleet_sketches(parts);
}

std::optional<double> QueryCoordinator::flow_quantile(const net::FiveTuple& key, double q) {
  const auto sketch = flow_sketch(key);
  if (!sketch.has_value()) return std::nullopt;
  return sketch->quantile(q);
}

std::vector<std::pair<collect::LinkId, common::LatencySketch>>
QueryCoordinator::link_distributions() {
  Query q;
  q.kind = QueryKind::kLinks;
  std::map<collect::LinkId, common::LatencySketch> merged;
  for (auto& reply : fan_out(q)) {
    if (!reply.has_value()) continue;
    for (auto& [link, sketch] : reply->links) {
      auto [it, inserted] = merged.try_emplace(link, sketch.config());
      it->second.merge(sketch);
    }
  }
  return {merged.begin(), merged.end()};
}

namespace {

/// Shared tail of every window fan-out: coverage union + exact sketch merge
/// (empty sketches skipped — they carry no bins and merging one whose
/// accuracy differs would throw where ignoring it is exact).
[[nodiscard]] WindowResult merge_window_replies(
    const std::vector<std::optional<QueryReply>>& replies) {
  WindowResult out;
  out.window = merge_window_info(replies);
  std::vector<common::LatencySketch> parts;
  for (const auto& reply : replies) {
    if (!reply.has_value() || !reply->window_sketch.has_value()) continue;
    if (reply->window_sketch->empty()) continue;
    parts.push_back(*reply->window_sketch);
  }
  if (!parts.empty()) out.sketch = merge_fleet_sketches(parts);
  return out;
}

}  // namespace

WindowResult QueryCoordinator::window_fleet(std::uint32_t epoch_first,
                                            std::uint32_t epoch_last) {
  if (epoch_first > epoch_last) std::swap(epoch_first, epoch_last);
  Query q;
  q.kind = QueryKind::kWindowFleet;
  q.epoch_first = epoch_first;
  q.epoch_last = epoch_last;
  return merge_window_replies(fan_out(q));
}

WindowResult QueryCoordinator::window_link(collect::LinkId link, std::uint32_t epoch_first,
                                           std::uint32_t epoch_last) {
  if (epoch_first > epoch_last) std::swap(epoch_first, epoch_last);
  Query q;
  q.kind = QueryKind::kWindowLink;
  q.k = link;
  q.epoch_first = epoch_first;
  q.epoch_last = epoch_last;
  return merge_window_replies(fan_out(q));
}

WindowResult QueryCoordinator::window_flow_sketch(const net::FiveTuple& key,
                                                  std::uint32_t epoch_first,
                                                  std::uint32_t epoch_last) {
  if (epoch_first > epoch_last) std::swap(epoch_first, epoch_last);
  Query q;
  q.kind = QueryKind::kWindowFlowQuantile;
  q.key = key;
  q.epoch_first = epoch_first;
  q.epoch_last = epoch_last;
  return merge_window_replies(fan_out(q));
}

std::optional<double> QueryCoordinator::window_flow_quantile(const net::FiveTuple& key,
                                                             double q,
                                                             std::uint32_t epoch_first,
                                                             std::uint32_t epoch_last,
                                                             WindowInfo* window) {
  const auto result = window_flow_sketch(key, epoch_first, epoch_last);
  if (window != nullptr) *window = result.window;
  if (!result.sketch.has_value()) return std::nullopt;
  return result.sketch->quantile(q);
}

std::vector<std::optional<AgentStats>> QueryCoordinator::per_agent_stats() {
  Query q;
  q.kind = QueryKind::kStats;
  std::vector<std::optional<AgentStats>> stats;
  for (auto& reply : fan_out(q)) {
    if (reply.has_value()) {
      stats.push_back(reply->stats);
    } else {
      stats.push_back(std::nullopt);
    }
  }
  return stats;
}

AgentStats QueryCoordinator::fleet_stats() {
  std::vector<AgentStats> parts;
  for (const auto& stats : per_agent_stats()) {
    if (stats.has_value()) parts.push_back(*stats);
  }
  return merge_agent_stats(parts);
}

std::vector<std::optional<obs::Scrape>> QueryCoordinator::per_agent_scrapes() {
  Query q;
  q.kind = QueryKind::kMetrics;
  std::vector<std::optional<obs::Scrape>> scrapes;
  for (auto& reply : fan_out(q)) {
    if (reply.has_value()) {
      scrapes.push_back(std::move(reply->scrape));
    } else {
      scrapes.push_back(std::nullopt);
    }
  }
  return scrapes;
}

obs::Scrape QueryCoordinator::fleet_metrics() {
  std::vector<obs::Scrape> parts;
  for (auto& scrape : per_agent_scrapes()) {
    if (scrape.has_value()) parts.push_back(std::move(*scrape));
  }
  return merge_scrapes(parts);
}

QueryCoordinator::Stats QueryCoordinator::stats() const {
  Stats s;
  s.queries_sent = c_.queries_sent->value();
  s.replies_merged = c_.replies_merged->value();
  s.agent_failures = c_.agent_failures->value();
  return s;
}

}  // namespace rlir::transport
