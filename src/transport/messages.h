// Payload encodings for the transport tier's query plane: what travels in
// kQuery / kQueryReply frames between a CollectorClient and a
// CollectorAgent. Record batches need no definitions here — a kRecordBatch
// payload is just back-to-back collect::EstimateRecord batches.
//
// Same wire conventions as everything else (little-endian, field-by-field,
// reject-don't-guess); the sketch segments reuse the estimate-record
// helpers so a sketch has exactly one byte layout in the whole system.
//
//   query:  u8 kind | u32 k | f64 q | 5-tuple (13 bytes)
//           | u32 epoch_first | u32 epoch_last
//           [| u8 flags(=1) | u64 trace_id | u64 parent_span_id]
//           (the optional 17-byte trace-context block: absent = untraced,
//           bit-identical to the pre-tracing payload, so old peers and old
//           captures stay valid; present = exactly these 17 bytes)
//   reply:  u8 kind | kind-specific body:
//     kFleet        -> sketch segment
//     kTopK         -> u32 count | count x (f64 rank | 5-tuple | u64 packets
//                      | f64 mean | f64 p50 | f64 p99 | f64 max)
//     kFlowQuantile -> u8 present | f64 value
//     kStats        -> 8 x u64 (see AgentStats; field order = the field
//                      table, kAgentStatsFields)
//     kFlowSketch   -> u8 present | sketch segment (when present)
//     kLinks        -> u32 count | count x (u32 link | sketch segment)
//     kMetrics      -> obs scrape segment (see obs/wire.h)
//     kWindowFleet / kWindowLink
//                   -> coverage block (u8 flags | u32 first | u32 last
//                      | u64 records) | u8 present | sketch segment (when
//                      present)
//     kWindowFlowQuantile
//                   -> coverage block | u8 present | f64 value
//                      | sketch segment (when present; the sketch rides
//                      along so a coordinator can merge split flows exactly
//                      and re-derive the quantile)
//     kTraceSpans   -> u32 count | count x span | u64 dropped | u64 total
//                      (span = u64 trace_id | u64 span_id | u64 parent_id
//                       | u8 kind | i64 start_ns | i64 end_ns
//                       | u16 label_len | label bytes)
// docs/WIRE.md carries the byte-level offset tables and validation rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <vector>

#include "collect/sharded_collector.h"
#include "common/latency_sketch.h"
#include "net/flow_key.h"
#include "obs/span.h"
#include "obs/wire.h"

namespace rlir::transport {

enum class QueryKind : std::uint8_t {
  /// Fleet-wide latency distribution (the collector's fleet() sketch).
  kFleet = 1,
  /// Top-k worst flows at quantile q, with ranking values so a higher tier
  /// can merge answers from several agents.
  kTopK = 2,
  /// One flow's latency quantile (absent if the flow is unseen).
  kFlowQuantile = 3,
  /// Agent/collector counters (liveness + conservation checks).
  kStats = 4,
  /// One flow's full merged sketch (absent if unseen) — what a coordinator
  /// needs to merge a flow whose records landed on several agents exactly
  /// (quantiles don't merge; bins do).
  kFlowSketch = 5,
  /// Every vantage (link) with data, each with its merged distribution.
  kLinks = 6,
  /// The agent's full observability scrape: registry metrics (incl. the
  /// AgentStats counters as synthetic samples), plus the event trace —
  /// what a remote scraper or a coordinator roll-up reads.
  kMetrics = 7,
  /// Time-travel: the fleet-wide distribution merged over the epoch window
  /// [epoch_first, epoch_last] from the agent's history store.
  kWindowFleet = 8,
  /// Time-travel: one vantage's distribution over the window (link id in
  /// `k`; absent if the link is unseen there).
  kWindowLink = 9,
  /// Time-travel: one flow's quantile over the window, with the merged
  /// window sketch riding along for exact cross-agent merging.
  kWindowFlowQuantile = 10,
  /// Tracing: the agent's span ring. The trace-context block doubles as the
  /// filter — present means "only spans of trace_id", absent means the
  /// whole ring. Meta-rule: kTraceSpans itself is never traced (no span on
  /// any hop), so pulling a trace cannot pollute it. A coordinator unions
  /// these rings to assemble a cross-process trace.
  kTraceSpans = 11,
};

/// Stable exposition name for a query kind ("fleet", "top_k", ...), used as
/// span labels and in trace dumps.
[[nodiscard]] const char* query_kind_name(QueryKind kind);

struct Query {
  QueryKind kind = QueryKind::kFleet;
  /// kTopK: how many flows. kWindowLink: the link id.
  std::uint32_t k = 0;
  /// kTopK / kFlowQuantile / kWindowFlowQuantile: the quantile.
  double q = 0.99;
  /// kFlowQuantile / kFlowSketch / kWindowFlowQuantile: the flow.
  net::FiveTuple key;
  /// kWindow*: inclusive epoch range. Decoding rejects first > last
  /// (reject-don't-guess, like every other validation here).
  std::uint32_t epoch_first = 0;
  std::uint32_t epoch_last = 0;
  /// Distributed-trace context. Invalid (trace_id == 0) encodes to the
  /// legacy 34-byte payload; valid appends the 17-byte trace block. For
  /// kTraceSpans it is the ring filter instead (see QueryKind).
  obs::TraceContext trace;
};

/// What a window reply's merged answer actually covers — the wire form of
/// collect::WindowCoverage (requested bounds stay with the asker).
struct WindowInfo {
  bool covered = false;   ///< at least one retained segment intersected
  bool complete = false;  ///< every requested epoch was retained
  /// Bounds of the segments merged (compaction snaps outward; eviction and
  /// the future snap inward). Meaningful only when covered.
  std::uint32_t first = 0;
  std::uint32_t last = 0;
  /// Records contributing to the covered segments.
  std::uint64_t records = 0;
};

/// The agent-side counters a kStats reply carries.
struct AgentStats {
  std::uint64_t records_ingested = 0;
  std::uint64_t estimates_ingested = 0;
  std::uint64_t flows = 0;
  std::uint64_t epochs = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t batches_received = 0;
  std::uint64_t queries_answered = 0;
  std::uint64_t protocol_errors = 0;
};

/// One AgentStats field: its exposition name stem and member pointer.
struct AgentStatsField {
  const char* name;
  std::uint64_t AgentStats::* member;
};

/// THE field table — single source of truth for every AgentStats consumer:
/// the kStats wire codec, the coordinator's merge_agent_stats, and the
/// exposition writer all iterate this, so adding a field to AgentStats
/// means adding exactly one row here (the static_asserts below refuse to
/// compile a struct/table mismatch).
inline constexpr AgentStatsField kAgentStatsFields[] = {
    {"records_ingested", &AgentStats::records_ingested},
    {"estimates_ingested", &AgentStats::estimates_ingested},
    {"flows", &AgentStats::flows},
    {"epochs", &AgentStats::epochs},
    {"frames_received", &AgentStats::frames_received},
    {"batches_received", &AgentStats::batches_received},
    {"queries_answered", &AgentStats::queries_answered},
    {"protocol_errors", &AgentStats::protocol_errors},
};
inline constexpr std::size_t kAgentStatsFieldCount = std::size(kAgentStatsFields);
/// Every field is a u64 and every u64 is in the table — a new member that
/// misses the table changes sizeof and fails here.
static_assert(sizeof(AgentStats) == kAgentStatsFieldCount * sizeof(std::uint64_t),
              "AgentStats has a field missing from kAgentStatsFields");

/// Folds the stats into a snapshot as synthetic counters named
/// rlir_agent_<field>_total — the scrape-time bridge that keeps these
/// counters out of the registry (no duplicate identity) while still
/// merging fleet-wide like registry counters.
void append_agent_stats(obs::MetricsSnapshot& snap, const AgentStats& stats,
                        const obs::Labels& base_labels = {});

struct QueryReply {
  QueryKind kind = QueryKind::kFleet;
  common::LatencySketch fleet;                      // kFleet
  std::vector<collect::RankedFlowSummary> top;      // kTopK, worst first
  std::optional<double> quantile;                   // kFlowQuantile
  AgentStats stats;                                 // kStats
  std::optional<common::LatencySketch> flow_sketch; // kFlowSketch
  /// kLinks: link id -> merged distribution, ascending by link.
  std::vector<std::pair<collect::LinkId, common::LatencySketch>> links;
  obs::Scrape scrape;                               // kMetrics
  WindowInfo window;                                // kWindow*
  /// kWindowFleet / kWindowLink / kWindowFlowQuantile: the window's merged
  /// sketch. Absent when nothing was covered (or, for kWindowLink /
  /// kWindowFlowQuantile, the target never appeared in the window). An
  /// agent without a history store answers covered=false, absent.
  std::optional<common::LatencySketch> window_sketch;
  /// kTraceSpans: the answering process's retained spans (filtered to the
  /// requested trace when the query carried one), oldest first, plus the
  /// ring's eviction accounting so an assembler can flag gaps.
  std::vector<obs::Span> spans;
  std::uint64_t spans_dropped = 0;                  // kTraceSpans
  std::uint64_t spans_total = 0;                    // kTraceSpans
};

[[nodiscard]] std::vector<std::uint8_t> encode_query(const Query& query);
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Query decode_query(const std::uint8_t* data, std::size_t size);

[[nodiscard]] std::vector<std::uint8_t> encode_reply(const QueryReply& reply);
/// Throws std::runtime_error on malformed input.
[[nodiscard]] QueryReply decode_reply(const std::uint8_t* data, std::size_t size);

// --- Record-batch trace trailer --------------------------------------------
// A traced client appends one 21-byte trailer after the last RLES batch in a
// kRecordBatch payload: "RLTC" | u8 version(1) | u64 trace_id | u64 span_id.
// The agent peeks the 4-byte magic at each batch boundary (unambiguous vs
// "RLES"), so untraced payloads are bit-identical to before and an agent that
// predates tracing rejects the trailer like any other corrupt batch — which
// is why clients only emit it when tracing is attached (version-gated
// deployment rule in docs/WIRE.md).

inline constexpr std::size_t kTraceTrailerSize = 4 + 1 + 8 + 8;
inline constexpr std::uint8_t kTraceTrailerVersion = 1;

/// Appends the trailer for `ctx` (which must be valid) to `buf`.
void append_trace_trailer(std::vector<std::uint8_t>& buf, obs::TraceContext ctx);

/// Does `data` start with the trailer magic? (A cheap boundary peek; does
/// not validate the rest.)
[[nodiscard]] bool is_trace_trailer(const std::uint8_t* data, std::size_t size);

/// Decodes a trailer that must occupy exactly [data, data+size). Throws
/// std::runtime_error on bad version, zero trace id, or size mismatch.
[[nodiscard]] obs::TraceContext decode_trace_trailer(const std::uint8_t* data,
                                                     std::size_t size);

}  // namespace rlir::transport
