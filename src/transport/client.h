// The vantage-point side of the transport tier: a CollectorClient takes the
// EstimateRecord batches an exporter/scheduler produces, coalesces them
// into framed kRecordBatch messages, and ships them over a ByteStream to a
// CollectorAgent — with the failure handling a real deployment needs:
//
//   * bounded send buffering: queued-but-unsent frames never exceed
//     max_buffered_bytes; overflow sheds the OLDEST queued batch frame
//     (newest telemetry is worth the most) and counts what was dropped;
//   * batch coalescing: small per-exporter batches accumulate until
//     coalesce_bytes (or a flush), so one frame carries many batches
//     back-to-back — the agent splits them with decode_records_prefix;
//   * reconnect with backoff: a dead stream is re-dialed via the stream
//     factory after a doubling number of pump() calls; a frame that was
//     partially written when the connection died is resent from its first
//     byte (the agent discarded the partial frame with the connection).
//
// Threading: not thread-safe. One owner drives submit()/pump()/queries —
// in scheduler deployments that is the scheduler's firing thread (make_sink
// runs submit+pump inline).
//
// Delivery contract: at-most-once. Bytes acknowledged by the kernel/pipe
// can still die with a connection; the collection tier's sketches tolerate
// gaps by design (an epoch gap is missing data, not corruption).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "collect/epoch_scheduler.h"
#include "collect/estimate_record.h"
#include "obs/instrument.h"
#include "transport/byte_stream.h"
#include "transport/frame.h"
#include "transport/messages.h"

namespace rlir::transport {

struct CollectorClientConfig {
  /// Cap on queued-but-unsent frame bytes. Exceeding it sheds the oldest
  /// complete (not partially written) batch frame until back under the cap.
  /// Must be > 0.
  std::size_t max_buffered_bytes = 4u << 20;
  /// Seal the coalescing buffer into a frame once it holds this many payload
  /// bytes. Smaller = lower latency, larger = fewer frames (fewer CRC
  /// finalizations and header decodes per record on the agent side). Must
  /// be > 0.
  std::size_t coalesce_bytes = 256u << 10;
  /// pump() calls to wait before the first reconnect attempt after a dial
  /// failure; doubles per failure up to reconnect_backoff_max. Counted in
  /// pump() calls (not wall time) so backoff is deterministic under test
  /// and paces with the driving cadence in deployment.
  std::uint32_t reconnect_backoff_initial = 1;
  std::uint32_t reconnect_backoff_max = 64;
  /// Per-pump() I/O granularity: the byte cap of one gather write (and the
  /// reply read-chunk size). Sized to hold a whole default-coalesce frame so
  /// the common case is one syscall per sealed frame.
  std::size_t io_chunk = 512u << 10;
  /// Observability attachment (see obs/instrument.h). Null members = the
  /// client owns a private registry/trace; stats() works either way.
  obs::Instruments instruments;
};

class CollectorClient {
 public:
  /// Dials (and re-dials) the agent. Returning nullptr = attempt failed,
  /// consume backoff and retry later.
  using StreamFactory = std::function<std::unique_ptr<ByteStream>()>;

  /// Throws std::invalid_argument on a zero cap/coalesce size or a null
  /// factory. Dials eagerly; a failed first dial just starts the backoff.
  CollectorClient(CollectorClientConfig config, StreamFactory factory);

  CollectorClient(const CollectorClient&) = delete;
  CollectorClient& operator=(const CollectorClient&) = delete;

  // --- Record plane --------------------------------------------------------

  /// Adds one epoch batch to the coalescing buffer (empty batches are
  /// dropped); seals a frame when coalesce_bytes is reached. Does no I/O —
  /// pair with pump().
  void submit(std::uint32_t epoch, const std::vector<collect::EstimateRecord>& batch);

  /// Seals the coalescing buffer into a queued frame now (epoch boundary,
  /// shutdown). No-op when empty.
  void flush();

  /// Drives the connection: dial/backoff if dead, then write queued frames
  /// until the stream stops taking bytes. Returns bytes written this call.
  std::size_t pump();

  /// flush() + pump() until everything queued is on the wire or `max_pumps`
  /// is exhausted (stalled peer / shed-to-empty). True if fully drained.
  bool drain(std::size_t max_pumps = 1024);

  // --- Query plane ---------------------------------------------------------

  /// Sends a query frame (jumps the record queue's coalescing buffer but not
  /// queued record frames — replies reflect everything sent before them on
  /// this connection). One outstanding query at a time; a new send_query
  /// while one is pending throws std::logic_error.
  void send_query(const Query& query);

  /// Nonblocking: reads reply bytes if any arrived; returns the decoded
  /// reply once complete. Malformed reply bytes throw FrameError /
  /// std::runtime_error (the stream is then closed).
  [[nodiscard]] std::optional<QueryReply> poll_reply();

  /// Convenience loop for live (socket) deployments: send, then pump +
  /// poll_reply up to `max_pumps` times, sleeping ~100us between rounds.
  /// nullopt = no reply in time (the query is abandoned — see below). For
  /// single-threaded loopback setups drive the agent yourself and use
  /// send_query/poll_reply directly.
  [[nodiscard]] std::optional<QueryReply> query(const Query& query, std::size_t max_pumps = 20000);

  /// Gives up on the outstanding query (timeout policy lives with the
  /// caller). Drops the connection — a reply still in flight must die with
  /// it, or it would be mis-paired with the next query — and counts the
  /// query in stats().queries_lost. No-op when none is outstanding.
  void abandon_query();

  // --- Introspection -------------------------------------------------------

  /// A BatchSink that submits and pumps — plug into EpochScheduler::add_sink
  /// (or FleetCollector::set_batch_sink). The client must outlive the
  /// scheduler's last firing.
  [[nodiscard]] collect::EpochScheduler::BatchSink make_sink();

  [[nodiscard]] bool connected() const { return stream_ != nullptr && !stream_->closed(); }
  /// True while a sent query awaits its reply. Cleared by the reply — or by
  /// a connection loss, which is how a caller driving send_query/poll_reply
  /// by hand learns the query died (stats().queries_lost counts it).
  [[nodiscard]] bool query_outstanding() const { return query_outstanding_; }
  /// Queued-but-unsent frame bytes (excludes the coalescing buffer).
  [[nodiscard]] std::size_t buffered_bytes() const { return buffered_bytes_; }
  /// Records sitting in the coalescing buffer (not yet framed).
  [[nodiscard]] std::size_t coalescing_records() const { return coalescing_records_; }
  /// Records not yet on the wire: coalescing buffer + queued batch frames.
  /// With at-most-once delivery this is the "inflight-lost" term of a
  /// conservation check against an endpoint that never comes back.
  [[nodiscard]] std::size_t queued_records() const;

  struct Stats {
    std::uint64_t batches_submitted = 0;
    std::uint64_t records_submitted = 0;
    std::uint64_t frames_queued = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    /// Oldest-first shedding under the buffer cap.
    std::uint64_t batch_frames_shed = 0;
    std::uint64_t records_shed = 0;
    /// Successful re-dials after a dead stream (the first dial is not one).
    std::uint64_t reconnects = 0;
    std::uint64_t connect_failures = 0;
    std::uint64_t queries_sent = 0;
    std::uint64_t replies_received = 0;
    /// Queries whose connection died before the reply arrived (the queued
    /// query frame is discarded — a reply to a resent query on a NEW
    /// connection would be mis-paired with the next query sent there).
    std::uint64_t queries_lost = 0;
  };
  /// A view over the registry cells (the registry is the single source of
  /// truth; the struct exists for test ergonomics and API continuity).
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const CollectorClientConfig& config() const { return config_; }

  /// The registry/trace this client reports into (its own unless shared via
  /// config().instruments) — what a scraper reads.
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return obs_.registry(); }
  [[nodiscard]] obs::EventTrace& events() const { return obs_.trace(); }

 private:
  /// One queued frame; `records` lets shedding report what was lost.
  struct QueuedFrame {
    std::vector<std::uint8_t> bytes;
    std::size_t records = 0;
    bool is_batch = false;
  };

  void seal_coalescing();
  void enqueue(QueuedFrame frame);
  void shed_to_cap();
  /// True when a usable stream exists after dial/backoff bookkeeping.
  bool ensure_connected();
  /// Closes the pending kClientQuery span (reply arrived, or the query died
  /// with the connection). `status` is appended to the span label when the
  /// query was lost. No-op when tracing is off or no span is pending.
  void finish_query_span(const char* status);

  CollectorClientConfig config_;
  StreamFactory factory_;
  std::unique_ptr<ByteStream> stream_;
  bool ever_connected_ = false;

  /// Doubling backoff state: pumps to skip before the next dial attempt.
  std::uint32_t backoff_ = 0;
  std::uint32_t backoff_countdown_ = 0;

  /// Coalescing buffer: encoded batches back-to-back (one future payload).
  std::vector<std::uint8_t> coalescing_;
  std::size_t coalescing_records_ = 0;

  std::deque<QueuedFrame> queue_;
  std::size_t buffered_bytes_ = 0;
  /// Bytes of queue_.front() already written (resets on reconnect: the dead
  /// connection took the partial frame with it).
  std::size_t front_offset_ = 0;

  FrameDecoder reply_decoder_;
  bool query_outstanding_ = false;

  /// Reused scratch: pump()'s gather-write span list and poll_reply()'s read
  /// chunk — neither path allocates per call.
  std::vector<ConstBuffer> write_spans_;
  std::vector<std::uint8_t> reply_chunk_;

  obs::Instrumented obs_;
  /// Tracing attachment (null = off). The pending query span lives here
  /// between send_query and its reply/loss — queries are one-outstanding,
  /// so one slot suffices.
  obs::SpanRecorder* spans_ = nullptr;
  obs::Span query_span_;
  bool query_span_active_ = false;

  /// Registry cells (stable pointers). Hot-path updates are one relaxed
  /// atomic op each; stats() reads them back.
  struct Cells {
    obs::Counter* batches_submitted;
    obs::Counter* records_submitted;
    obs::Counter* frames_queued;
    obs::Counter* frames_sent;
    obs::Counter* bytes_sent;
    obs::Counter* batch_frames_shed;
    obs::Counter* records_shed;
    obs::Counter* reconnects;
    obs::Counter* connect_failures;
    obs::Counter* queries_sent;
    obs::Counter* replies_received;
    obs::Counter* queries_lost;
    obs::Gauge* buffered_bytes;
    obs::Histogram* frame_bytes;
  };
  Cells c_{};
};

}  // namespace rlir::transport
