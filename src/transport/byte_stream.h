// The transport tier's byte-moving contract: a nonblocking, ordered,
// reliable-until-closed duplex byte stream. Everything above it (framing,
// the collector client/agent) is written against this interface, so the
// same protocol code runs over an in-memory loopback pipe (deterministic,
// for tests and simulation) and over real POSIX sockets (deployment).
//
// Semantics every backend must honor:
//   * write_some/read_some never block: they move as many bytes as the
//     backend can take/give right now and return the count (0 = try later).
//   * Bytes arrive in order and unmodified until the stream closes.
//   * closed() means no byte will ever move again in either direction —
//     peer gone *and* nothing left to read. Data written before a peer's
//     close stays readable (socket-like half-close draining).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace rlir::transport {

/// One span of a gather write (see ByteStream::write_some_vectored).
struct ConstBuffer {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Appends up to `size` bytes to the stream; returns how many were
  /// accepted (0 when the backend is full or the stream is closed).
  virtual std::size_t write_some(const std::uint8_t* data, std::size_t size) = 0;

  /// Gather write: appends the spans back-to-back, as if write_some were
  /// called on their concatenation, and returns the total bytes accepted
  /// (which may end mid-span — partial writes keep byte, not span,
  /// granularity). The default walks the spans with write_some and stops at
  /// the first short write; socket backends override it with one writev
  /// syscall so a queue of small frames doesn't pay a syscall each.
  virtual std::size_t write_some_vectored(const ConstBuffer* buffers, std::size_t count) {
    std::size_t written = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (buffers[i].size == 0) continue;
      const std::size_t n = write_some(buffers[i].data, buffers[i].size);
      written += n;
      if (n < buffers[i].size) break;  // backend full (or closed): stop here
    }
    return written;
  }

  /// Reads up to `size` bytes into `data`; returns how many arrived
  /// (0 when nothing is available right now or the stream is closed).
  virtual std::size_t read_some(std::uint8_t* data, std::size_t size) = 0;

  /// True once the stream is finished: locally closed, or the peer closed
  /// and every byte it sent has been read.
  [[nodiscard]] virtual bool closed() const = 0;

  /// Tears the stream down locally (idempotent). The peer observes EOF
  /// after draining whatever was already written.
  virtual void close() = 0;
};

/// Accept side of a connection-oriented backend: hands out one ByteStream
/// per incoming connection, nonblockingly.
class Listener {
 public:
  virtual ~Listener() = default;
  /// The next pending connection, or nullptr when none is waiting.
  [[nodiscard]] virtual std::unique_ptr<ByteStream> accept() = 0;
};

/// Creates a connected in-memory duplex pipe: bytes written to one end are
/// read from the other. `capacity` bounds each direction's in-flight bytes
/// (0 = unbounded); a full direction makes write_some take fewer bytes —
/// the deterministic stand-in for socket backpressure. Both ends are
/// thread-safe against each other, so a client and an agent may run on
/// different threads.
[[nodiscard]] std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>> make_loopback(
    std::size_t capacity = 0);

}  // namespace rlir::transport
