// The fleet-of-agents query tier: a QueryCoordinator holds one
// CollectorClient connection per CollectorAgent, fans every query out to
// all of them, and merges the replies EXACTLY:
//
//   * fleet / link / flow sketches  -> LatencySketch::merge (bin-wise
//     addition — associative, commutative, exact);
//   * ranked top-k                  -> merge of the per-agent ranked lists
//     under the shared worst-first ordering; a flow that (exceptionally)
//     appears in several agents' lists is re-resolved from its merged
//     flow sketch instead of double-counted;
//   * flow quantiles                -> computed from the MERGED flow sketch
//     (quantiles don't merge; bins do), so a flow split across agents
//     still answers exactly;
//   * stats                         -> saturating sums of agent counters.
//
// Exactness contract: answers are bin-for-bin identical to a single
// collector that ingested every record the queried agents ingested. For
// top-k the global answer is additionally guaranteed to be contained in
// the union of per-agent top-k lists when each flow's records live on one
// agent — the invariant PartitionedClient maintains (and the reason the
// duplicate-resolution path is a rebalance-edge-case, not the common one).
//
// Agents that are down answer nothing: the merge covers the reachable
// fleet (counted in stats().agent_failures per fan-out), which is the
// operator-correct degradation — partial truth, never double counting.
//
// Threading: not thread-safe; one owner drives queries. For single-thread
// deployments (loopback tests, simulations) set_drive() installs a hook
// pumped between poll rounds — typically "poll every agent".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "collect/estimate_record.h"
#include "collect/sharded_collector.h"
#include "common/latency_sketch.h"
#include "net/flow_key.h"
#include "obs/instrument.h"
#include "obs/wire.h"
#include "transport/client.h"
#include "transport/messages.h"

namespace rlir::transport {

// --- Merge helpers (the coordinator's math, exposed for property tests) ----

/// Exact union of sketch parts (empty input -> empty default sketch).
/// Throws std::invalid_argument on a relative-accuracy mismatch.
[[nodiscard]] common::LatencySketch merge_fleet_sketches(
    const std::vector<common::LatencySketch>& parts);

/// Re-derives one flow's ranked summary when it shows up in several parts:
/// given the flow's exact merged sketch, returns the entry the single
/// collector would have produced. nullopt = leave the duplicate unresolved.
using FlowResolver =
    std::function<std::optional<collect::RankedFlowSummary>(const net::FiveTuple&)>;

/// Merges per-partition ranked top-k lists (each worst-first) into the
/// global worst-first top-k. Keys appearing in several parts are resolved
/// through `resolve` (exact, via the merged flow sketch); without a
/// resolver the worst-ranked duplicate wins (approximate — only reachable
/// when partitions overlap, which partitioned export prevents).
[[nodiscard]] std::vector<collect::RankedFlowSummary> merge_ranked_top_k(
    const std::vector<std::vector<collect::RankedFlowSummary>>& parts, std::size_t k,
    const FlowResolver& resolve = {});

/// The summary a collector derives from a flow's merged sketch (same field
/// derivations as ShardedCollector, so re-resolved entries are identical).
[[nodiscard]] collect::FlowSummary summarize_flow(const net::FiveTuple& key,
                                                  const common::LatencySketch& sketch);

/// a + b clamped to the maximum (fleet counter sums must not wrap).
[[nodiscard]] constexpr std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return sum < a ? ~std::uint64_t{0} : sum;
}

/// Field-wise saturating sum of agent counter replies. Driven by the
/// kAgentStatsFields table (messages.h), so a field added there merges —
/// and round-trips the kStats codec — without touching this function.
[[nodiscard]] AgentStats merge_agent_stats(const std::vector<AgentStats>& parts);

/// Fleet roll-up of per-agent scrapes: counters sum (saturating), gauges
/// max, histograms sketch-union (obs::merge_snapshots); event COUNTS and
/// drops sum element-wise, while the merged `events.events` list stays
/// empty — per-event detail belongs to the per-agent breakdown, not the
/// roll-up.
[[nodiscard]] obs::Scrape merge_scrapes(const std::vector<obs::Scrape>& parts);

/// Coverage union over one window fan-out: covered = any agent covered,
/// bounds = union of covered bounds, records = saturating sum, and
/// complete = EVERY agent answered AND answered complete — a missed agent
/// or an evicted epoch anywhere makes the fleet answer incomplete, which
/// is the honest signal (partial truth, clearly labeled). Empty input is
/// uncovered and incomplete.
[[nodiscard]] WindowInfo merge_window_info(const std::vector<std::optional<QueryReply>>& parts);

/// A window query's merged fleet answer: the exact bin-for-bin union of
/// the agents' window sketches plus what that union actually covered.
struct WindowResult {
  /// Absent when no reachable agent had covered data (or the flow/link
  /// never appeared in the window).
  std::optional<common::LatencySketch> sketch;
  WindowInfo window;
};

/// A cross-process trace reassembled by QueryCoordinator::collect_trace:
/// the coordinator's own spans (merge, legs, and its agent-facing clients'
/// query spans — they share the coordinator's recorder) plus every
/// reachable agent's ring, pulled via kTraceSpans.
struct AssembledTrace {
  std::uint64_t trace_id = 0;
  /// (process name, its spans): "coordinator" first (when the coordinator
  /// has a recorder), then "agentN" for each agent that answered — the
  /// exact shape obs::to_chrome_trace takes.
  std::vector<std::pair<std::string, std::vector<obs::Span>>> processes;
  /// Agents that answered the kTraceSpans fan-out.
  std::size_t agents_answered = 0;
  /// Sum of the answering rings' evictions — nonzero means the assembly may
  /// have gaps (spans aged out before the pull).
  std::uint64_t spans_dropped = 0;

  /// Union of every process's spans, sorted by (start_ns, span_id).
  [[nodiscard]] std::vector<obs::Span> sorted_spans() const;
  /// Total spans across processes.
  [[nodiscard]] std::size_t size() const;
};

// --- The coordinator -------------------------------------------------------

struct QueryCoordinatorConfig {
  /// Per-agent connection behavior. Record-plane fields are irrelevant
  /// (the coordinator never ships batches); reconnect/backoff apply.
  CollectorClientConfig client;
  /// Pump/poll rounds to wait per agent reply before declaring the agent
  /// unreachable for this fan-out. With a drive hook each round is one
  /// drive; without one each round sleeps ~100us (socket deployments).
  std::size_t reply_rounds = 20000;
  /// Observability attachment (see obs/instrument.h). Agent-facing clients
  /// report into the same registry/trace under child ids "agent0", ...
  obs::Instruments instruments;
};

class QueryCoordinator {
 public:
  using StreamFactory = CollectorClient::StreamFactory;

  /// Throws std::invalid_argument if reply_rounds is 0.
  explicit QueryCoordinator(QueryCoordinatorConfig config = {});

  QueryCoordinator(const QueryCoordinator&) = delete;
  QueryCoordinator& operator=(const QueryCoordinator&) = delete;

  /// Registers one agent (dials eagerly; a failed dial starts the client's
  /// backoff). Returns the agent's index.
  std::size_t add_agent(StreamFactory factory);

  /// Hook run between poll rounds while waiting for replies — single-thread
  /// deployments poll their agents here; socket deployments leave it unset
  /// (the agents run their own threads/processes) and rounds sleep instead.
  void set_drive(std::function<void()> drive);

  // --- Fleet queries (each fans out to every agent and merges) ------------

  /// Fleet-wide latency distribution: exact union of agent fleet sketches.
  [[nodiscard]] common::LatencySketch fleet();

  /// Global worst-first top-k at quantile q with ranking values.
  [[nodiscard]] std::vector<collect::RankedFlowSummary> top_k_ranked(std::size_t k, double q);
  [[nodiscard]] std::vector<collect::FlowSummary> top_k_flows(std::size_t k, double q = 0.99);

  /// One flow's merged sketch across the fleet; nullopt if no reachable
  /// agent has seen it.
  [[nodiscard]] std::optional<common::LatencySketch> flow_sketch(const net::FiveTuple& key);
  /// Quantile of the merged sketch (exact even for a flow split across
  /// agents); nullopt if unseen.
  [[nodiscard]] std::optional<double> flow_quantile(const net::FiveTuple& key, double q);

  /// Every vantage with data and its distribution, ascending by link,
  /// merged across agents (a vantage's records spread over all of them).
  [[nodiscard]] std::vector<std::pair<collect::LinkId, common::LatencySketch>>
  link_distributions();

  // --- Time-travel window queries (kWindow* fan-out over agent history) ---
  // Inclusive epoch ranges, swapped if reversed. Exactness contract as
  // above: the merged sketch is bin-for-bin what a single history store
  // holding every agent's records would answer over the union coverage.

  /// Fleet-wide distribution over [epoch_first, epoch_last].
  [[nodiscard]] WindowResult window_fleet(std::uint32_t epoch_first, std::uint32_t epoch_last);
  /// One vantage's distribution over the window, merged across agents.
  [[nodiscard]] WindowResult window_link(collect::LinkId link, std::uint32_t epoch_first,
                                         std::uint32_t epoch_last);
  /// One flow's merged window sketch across the fleet.
  [[nodiscard]] WindowResult window_flow_sketch(const net::FiveTuple& key,
                                                std::uint32_t epoch_first,
                                                std::uint32_t epoch_last);
  /// Quantile of the merged window sketch (exact even for a flow split
  /// across agents); nullopt if unseen. Coverage via the out-param.
  [[nodiscard]] std::optional<double> window_flow_quantile(const net::FiveTuple& key, double q,
                                                           std::uint32_t epoch_first,
                                                           std::uint32_t epoch_last,
                                                           WindowInfo* window = nullptr);

  /// Per-agent counters; nullopt for agents that didn't answer.
  [[nodiscard]] std::vector<std::optional<AgentStats>> per_agent_stats();
  /// Saturating field-wise sum over the agents that answered.
  [[nodiscard]] AgentStats fleet_stats();

  // --- Tracing (kTraceSpans fan-out over agent span rings) -----------------

  /// Pulls every agent's span ring (filtered to `trace_id` when nonzero;
  /// 0 = the last traced fan-out, falling back to whole rings when no
  /// fan-out was traced) and unions it with the coordinator's own ring into
  /// one cross-process trace. The pull itself is never traced.
  [[nodiscard]] AssembledTrace collect_trace(std::uint64_t trace_id = 0);

  /// Trace id of the most recent traced fan-out (0 before the first one, or
  /// when tracing is off).
  [[nodiscard]] std::uint64_t last_trace_id() const { return last_trace_id_; }

  /// Per-agent metric/event scrapes (kMetrics fan-out); nullopt for agents
  /// that didn't answer.
  [[nodiscard]] std::vector<std::optional<obs::Scrape>> per_agent_scrapes();
  /// The reachable fleet's merged scrape (merge_scrapes over the answers):
  /// counters sum, gauges max, histograms union bin-for-bin, event counts
  /// sum. Equals the element-wise merge of per_agent_scrapes().
  [[nodiscard]] obs::Scrape fleet_metrics();

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] std::size_t agent_count() const { return clients_.size(); }
  [[nodiscard]] std::size_t connected_count() const;
  [[nodiscard]] CollectorClient& client(std::size_t agent);

  struct Stats {
    std::uint64_t queries_sent = 0;
    std::uint64_t replies_merged = 0;
    /// Per-fan-out agent misses: unreachable, reply timeout, or a protocol
    /// error on the reply path (the connection is dropped and re-dialed).
    std::uint64_t agent_failures = 0;
  };
  /// Built from the registry cells (rlir_coord_*) — a view, not stored state.
  [[nodiscard]] Stats stats() const;

  /// The coordinator's OWN registry/trace (its fan-out counters and the
  /// agent-facing clients' series) — distinct from fleet_metrics(), which
  /// scrapes the agents.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return obs_.registry(); }
  [[nodiscard]] obs::EventTrace& events() { return obs_.trace(); }

  [[nodiscard]] const QueryCoordinatorConfig& config() const { return config_; }

 private:
  /// One agent's answer to one query, or nullopt (failure counted).
  [[nodiscard]] std::optional<QueryReply> ask(std::size_t agent, const Query& query);
  /// Fans `query` to every agent; replies in agent order, nullopt for
  /// agents that failed this fan-out.
  [[nodiscard]] std::vector<std::optional<QueryReply>> fan_out(const Query& query);

  QueryCoordinatorConfig config_;
  obs::Instrumented obs_;
  /// Tracing attachment (null = off); shared with the agent-facing clients
  /// via child(), so their query spans land in the same ring as the
  /// coordinator's merge/leg spans.
  obs::SpanRecorder* spans_ = nullptr;
  std::uint64_t last_trace_id_ = 0;
  std::vector<std::unique_ptr<CollectorClient>> clients_;
  std::function<void()> drive_;
  /// Registry cells backing Stats (names rlir_coord_<field>_total).
  struct Cells {
    obs::Counter* queries_sent = nullptr;
    obs::Counter* replies_merged = nullptr;
    obs::Counter* agent_failures = nullptr;
  } c_{};
};

}  // namespace rlir::transport
