// The deployment byte-stream backend: nonblocking POSIX sockets, TCP
// (loopback or across machines) and Unix-domain (same-host shard daemons).
//
// Everything speaks the ByteStream/Listener interfaces from
// transport/byte_stream.h, so the protocol and collector code cannot tell a
// socket from a loopback pipe. Failure surface:
//   * listen_on/connect_to report unusable endpoints by throwing
//     std::system_error (bad path, refused connection, sandboxed bind);
//   * once connected, errors degrade to closed() — exactly how the peer
//     dying mid-stream looks — and the client's reconnect logic takes over.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "transport/byte_stream.h"

namespace rlir::transport {

/// A TCP or Unix-domain endpoint.
struct SocketAddress {
  enum class Kind : std::uint8_t { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  /// kTcp: dotted-quad host. Only numeric addresses — name resolution is a
  /// deployment concern the transport tier stays out of.
  std::string host = "127.0.0.1";
  /// kTcp: port; 0 asks the kernel for an ephemeral port (see
  /// SocketListener::address() for what was bound).
  std::uint16_t port = 0;
  /// kUnix: filesystem path of the socket.
  std::string path;

  [[nodiscard]] static SocketAddress tcp(std::string host, std::uint16_t port);
  [[nodiscard]] static SocketAddress unix_path(std::string path);

  /// Parses "tcp:HOST:PORT" or "unix:PATH" (the daemon/example CLI syntax).
  /// Throws std::invalid_argument on anything else.
  [[nodiscard]] static SocketAddress parse(const std::string& text);

  /// The CLI syntax back ("tcp:127.0.0.1:9000", "unix:/tmp/rlir.sock").
  [[nodiscard]] std::string to_string() const;
};

class SocketListener final : public Listener {
 public:
  /// Binds + listens, nonblocking. Throws std::system_error on failure. A
  /// stale Unix socket path is unlinked first (daemon restart ergonomics).
  explicit SocketListener(const SocketAddress& address);
  ~SocketListener() override;

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// The next pending connection as a nonblocking stream, or nullptr when
  /// none is waiting.
  [[nodiscard]] std::unique_ptr<ByteStream> accept() override;

  /// The bound address — with the kernel-assigned port filled in when the
  /// caller asked for port 0.
  [[nodiscard]] const SocketAddress& address() const { return address_; }

 private:
  SocketAddress address_;
  int fd_ = -1;
};

/// Connects to a listening agent; returns the nonblocking stream, or nullptr
/// when the endpoint exists but refuses/times out (the retryable case — what
/// the client's reconnect backoff consumes). Throws std::system_error only
/// for non-retryable local failures (e.g. socket() itself failing).
[[nodiscard]] std::unique_ptr<ByteStream> connect_to(const SocketAddress& address);

}  // namespace rlir::transport
