// Minimal HTTP/1.x GET responder for Prometheus-style scrapes.
//
// PR 7's exposition built the text format (obs/exposition.h); until now it
// left the daemons only two ways to serve it — an RLTF kMetrics query or a
// stderr dump. Real scrapers speak HTTP, so this is the missing last inch: a
// GET-only responder over the existing Listener/ByteStream layer (socket or
// loopback — tests drive it deterministically through an in-memory pipe).
//
// Deliberately NOT a web server: a handful of fixed routes (`/metrics`
// always; daemons add `/healthz` and `/trace`; query strings ignored), GET
// only, no keep-alive (every response carries `Connection: close` and the
// stream closes after the flush), requests capped at 8 KiB. Anything else
// gets the matching error status: 405 for other methods, 404 for other
// targets, 400 for a malformed request line, 431 when the cap trips. Each
// route's body is re-rendered per request by a caller `BodyFn` — typically
// obs::render_prometheus over the daemon's registry.
//
// Driving: poll() is nonblocking and cooperative, made for the daemons'
// existing single-threaded service loops (accept new connections, advance
// each in flight, reap the finished). Not thread-safe; one owner drives it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/instrument.h"
#include "transport/byte_stream.h"

namespace rlir::transport {

struct HttpMetricsConfig {
  /// Largest request accepted (request line + headers). Longer ones answer
  /// 431 and close. Must be >= 1.
  std::size_t max_request_bytes = 8 * 1024;
  /// Open connections beyond this are accepted and immediately closed
  /// (overload shed). Must be >= 1.
  std::size_t max_connections = 64;
  /// Observability attachment: rlir_http_requests_total (200s) and
  /// rlir_http_rejected_total (everything else, including shed connections).
  obs::Instruments instruments;
};

class HttpMetricsServer {
 public:
  /// Renders one route's body (called once per 200 response).
  using BodyFn = std::function<std::string()>;

  /// Takes ownership of the listener; `body` becomes the `/metrics` route
  /// (Prometheus text content type). Throws std::invalid_argument on a null
  /// listener, a null body fn, or zero limits.
  HttpMetricsServer(std::unique_ptr<Listener> listener, BodyFn body,
                    HttpMetricsConfig config = {});

  HttpMetricsServer(const HttpMetricsServer&) = delete;
  HttpMetricsServer& operator=(const HttpMetricsServer&) = delete;

  /// Registers (or replaces) a GET route. `path` is matched exactly after
  /// the query string is stripped. Throws std::invalid_argument on an empty
  /// or non-"/" path or a null body fn.
  void add_route(std::string path, BodyFn body,
                 std::string content_type = "application/json");

  /// One cooperative service pass: accepts pending connections, reads/parses
  /// requests, writes responses, closes finished streams. Returns the number
  /// of responses completed this pass.
  std::size_t poll();

  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }
  [[nodiscard]] std::uint64_t requests_served() const;
  [[nodiscard]] std::uint64_t requests_rejected() const;
  [[nodiscard]] const HttpMetricsConfig& config() const { return config_; }

 private:
  struct Conn {
    std::unique_ptr<ByteStream> stream;
    std::vector<std::uint8_t> inbox;
    std::string outbox;
    std::size_t sent = 0;
    bool responding = false;
  };

  /// Parses the buffered request head and stages the response; true once the
  /// connection is in the responding state.
  bool stage_response(Conn& conn);
  void count_response(int code);

  struct Route {
    std::string path;
    BodyFn body;
    std::string content_type;
  };
  /// Exact-match route table; linear scan (a daemon registers 2–3 routes).
  std::vector<Route> routes_;

  HttpMetricsConfig config_;
  std::unique_ptr<Listener> listener_;
  obs::Instrumented obs_;
  obs::Counter* served_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  std::vector<Conn> conns_;
};

}  // namespace rlir::transport
