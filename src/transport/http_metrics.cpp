#include "transport/http_metrics.h"

#include <algorithm>
#include <stdexcept>
#include <string_view>

namespace rlir::transport {

namespace {

constexpr std::size_t kReadChunk = 1024;

[[nodiscard]] std::string make_response(int code, const char* reason, const std::string& body,
                                        const char* content_type, const char* extra_header) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(code);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n";
  if (extra_header != nullptr) {
    out += extra_header;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

/// Offset one past the end of the request head, or npos while incomplete.
[[nodiscard]] std::size_t find_head_end(const std::vector<std::uint8_t>& inbox) {
  const std::string_view text(reinterpret_cast<const char*>(inbox.data()), inbox.size());
  const std::size_t crlf = text.find("\r\n\r\n");
  const std::size_t lf = text.find("\n\n");
  if (crlf == std::string_view::npos && lf == std::string_view::npos) {
    return std::string_view::npos;
  }
  if (crlf == std::string_view::npos) return lf + 2;
  if (lf == std::string_view::npos) return crlf + 4;
  return std::min(crlf + 4, lf + 2);
}

}  // namespace

HttpMetricsServer::HttpMetricsServer(std::unique_ptr<Listener> listener, BodyFn body,
                                     HttpMetricsConfig config)
    : config_(config), listener_(std::move(listener)), obs_(config.instruments) {
  if (listener_ == nullptr) {
    throw std::invalid_argument("HttpMetricsServer: listener must not be null");
  }
  if (config_.max_request_bytes == 0 || config_.max_connections == 0) {
    throw std::invalid_argument("HttpMetricsServer: limits must be >= 1");
  }
  add_route("/metrics", std::move(body), "text/plain; version=0.0.4; charset=utf-8");
  auto& r = obs_.registry();
  served_ = r.counter("rlir_http_requests_total", obs_.labels());
  rejected_ = r.counter("rlir_http_rejected_total", obs_.labels());
}

void HttpMetricsServer::add_route(std::string path, BodyFn body, std::string content_type) {
  if (path.empty() || path.front() != '/') {
    throw std::invalid_argument("HttpMetricsServer: route path must start with '/'");
  }
  if (!body) {
    throw std::invalid_argument("HttpMetricsServer: body fn must not be null");
  }
  for (auto& route : routes_) {
    if (route.path == path) {
      route.body = std::move(body);
      route.content_type = std::move(content_type);
      return;
    }
  }
  routes_.push_back(Route{std::move(path), std::move(body), std::move(content_type)});
}

void HttpMetricsServer::count_response(int code) {
  if (code == 200) {
    served_->increment();
  } else {
    rejected_->increment();
  }
}

bool HttpMetricsServer::stage_response(Conn& conn) {
  if (conn.inbox.size() > config_.max_request_bytes) {
    conn.outbox = make_response(431, "Request Header Fields Too Large",
                                "request too large\n", "text/plain", nullptr);
    count_response(431);
    conn.responding = true;
    return true;
  }
  const std::size_t head_end = find_head_end(conn.inbox);
  if (head_end == std::string_view::npos) return false;  // keep reading

  const std::string_view head(reinterpret_cast<const char*>(conn.inbox.data()), head_end);
  const std::string_view line = head.substr(0, head.find_first_of("\r\n"));
  // METHOD SP TARGET [SP VERSION] — a bare "GET /metrics" (HTTP/0.9 shape)
  // is accepted; a one-token line is not a request.
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    conn.outbox = make_response(400, "Bad Request", "malformed request line\n",
                                "text/plain", nullptr);
    count_response(400);
    conn.responding = true;
    return true;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1);
  const std::size_t sp2 = target.find(' ');
  if (sp2 != std::string_view::npos) target = target.substr(0, sp2);
  if (method != "GET") {
    conn.outbox = make_response(405, "Method Not Allowed", "GET only\n", "text/plain",
                                "Allow: GET");
    count_response(405);
    conn.responding = true;
    return true;
  }
  const std::size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  if (target.empty()) {
    conn.outbox = make_response(400, "Bad Request", "malformed request line\n",
                                "text/plain", nullptr);
    count_response(400);
  } else {
    const Route* route = nullptr;
    for (const auto& candidate : routes_) {
      if (target == candidate.path) {
        route = &candidate;
        break;
      }
    }
    if (route != nullptr) {
      conn.outbox = make_response(200, "OK", route->body(), route->content_type.c_str(),
                                  nullptr);
      count_response(200);
    } else {
      conn.outbox = make_response(404, "Not Found", "try /metrics\n", "text/plain", nullptr);
      count_response(404);
    }
  }
  conn.responding = true;
  return true;
}

std::size_t HttpMetricsServer::poll() {
  // Accept everything pending; connections over the cap close immediately.
  while (auto stream = listener_->accept()) {
    if (conns_.size() >= config_.max_connections) {
      stream->close();
      rejected_->increment();
      continue;
    }
    Conn conn;
    conn.stream = std::move(stream);
    conns_.push_back(std::move(conn));
  }

  std::size_t completed = 0;
  for (auto& conn : conns_) {
    if (!conn.responding) {
      std::uint8_t chunk[kReadChunk];
      while (true) {
        const std::size_t n = conn.stream->read_some(chunk, sizeof chunk);
        if (n == 0) break;
        conn.inbox.insert(conn.inbox.end(), chunk, chunk + n);
        if (conn.inbox.size() > config_.max_request_bytes) break;
      }
      if (!stage_response(conn) && conn.stream->closed()) {
        conn.stream->close();  // peer gone before a full request: just drop
        continue;
      }
    }
    if (conn.responding && !conn.stream->closed()) {
      conn.sent += conn.stream->write_some(
          reinterpret_cast<const std::uint8_t*>(conn.outbox.data()) + conn.sent,
          conn.outbox.size() - conn.sent);
      if (conn.sent == conn.outbox.size()) {
        conn.stream->close();
        completed += 1;
      }
    }
  }
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const Conn& c) { return c.stream->closed(); }),
               conns_.end());
  return completed;
}

std::uint64_t HttpMetricsServer::requests_served() const { return served_->value(); }
std::uint64_t HttpMetricsServer::requests_rejected() const { return rejected_->value(); }

}  // namespace rlir::transport
