// Traffic demultiplexing — the heart of RLIR (paper Section 3.1).
//
// Across routers, a receiver sees an interleaving of flows from many origins
// and many ECMP paths. Interpolation is only valid between reference packets
// that shared the regular packet's path, so the receiver must attribute
// every regular packet to the RLI sender whose probes anchored that path.
// The paper proposes three mechanisms, all implemented here behind one
// interface:
//
//   * PrefixDemux      — upstream case: the origin ToR (and hence the
//                        sender at its uplink) is recovered by IP-prefix
//                        matching on the source address;
//   * MarkingDemux     — downstream case, option (i): intermediate (core)
//                        routers stamp the ToS field; the mark identifies
//                        the core whose sender re-anchored the packet;
//   * ReverseEcmpDemux — downstream case, option (ii): the receiver knows
//                        the upstream routers' ECMP hash functions and
//                        recomputes which core the flow was hashed through
//                        ("reverse ECMP computation") — no router firmware
//                        changes needed.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/packet.h"
#include "net/prefix_table.h"
#include "topo/ecmp.h"
#include "topo/fattree.h"

namespace rlir::rlir {

/// Maps a regular packet to the RLI sender whose reference packets anchor
/// its path segment. nullopt = unattributable (the receiver must not
/// interpolate such packets — doing so is exactly the error mode RLIR fixes).
class Demultiplexer {
 public:
  virtual ~Demultiplexer() = default;
  [[nodiscard]] virtual std::optional<net::SenderId> classify(
      const net::Packet& packet) const = 0;
};

/// Upstream demux: source-prefix → sender at the origin ToR's uplink.
/// "the origin of regular packets can be easily identified by IP address
/// block assigned for hosts in each ToR switch".
class PrefixDemux final : public Demultiplexer {
 public:
  void add_origin(const net::Ipv4Prefix& prefix, net::SenderId sender) {
    table_.insert(prefix, sender);
  }

  [[nodiscard]] std::optional<net::SenderId> classify(
      const net::Packet& packet) const override {
    return table_.lookup(packet.key.src);
  }

  [[nodiscard]] std::size_t rule_count() const { return table_.size(); }

 private:
  net::PrefixTable<net::SenderId> table_;
};

/// Downstream demux via packet marking: core routers stamp the ToS field
/// with their identity; the receiver maps marks to the senders at those
/// cores. "requires some native packet marking support from core routers".
class MarkingDemux final : public Demultiplexer {
 public:
  void map_mark(net::TosMark mark, net::SenderId sender) { by_mark_[mark] = sender; }

  [[nodiscard]] std::optional<net::SenderId> classify(
      const net::Packet& packet) const override {
    const auto it = by_mark_.find(packet.tos);
    if (it == by_mark_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::unordered_map<net::TosMark, net::SenderId> by_mark_;
};

/// Downstream demux via reverse-ECMP computation: knowing the fabric's hash
/// functions, the receiver recomputes which core the flow traversed and
/// attributes the packet to that core's sender. Origin ToRs in the
/// receiver's own pod never cross a core; they are attributed via the
/// optional upstream table (the paper's R3 also handles upstream sender S5).
class ReverseEcmpDemux final : public Demultiplexer {
 public:
  /// `topo` and `hasher` are borrowed and must outlive the demux.
  /// `receiver_tor` is the ToR hosting this receiver.
  ReverseEcmpDemux(const topo::FatTree* topo, const topo::EcmpHasher* hasher,
                   topo::NodeId receiver_tor);

  /// Registers the sender instance at a core switch.
  void set_sender_at_core(int core_index, net::SenderId sender);
  /// Registers an upstream (same-pod) origin prefix -> sender mapping.
  void add_same_pod_origin(const net::Ipv4Prefix& prefix, net::SenderId sender);

  [[nodiscard]] std::optional<net::SenderId> classify(
      const net::Packet& packet) const override;

 private:
  const topo::FatTree* topo_;
  const topo::EcmpHasher* hasher_;
  topo::NodeId receiver_tor_;
  std::unordered_map<int, net::SenderId> sender_at_core_;
  net::PrefixTable<net::SenderId> same_pod_origins_;
};

/// Degenerate demux that attributes everything to one sender — the "no
/// demultiplexing" strawman whose failure under traffic multiplexing the
/// ablation bench quantifies ("per-flow latency estimates at the receivers
/// can be totally wrong").
class SingleSenderDemux final : public Demultiplexer {
 public:
  explicit SingleSenderDemux(net::SenderId sender) : sender_(sender) {}

  [[nodiscard]] std::optional<net::SenderId> classify(const net::Packet&) const override {
    return sender_;
  }

 private:
  net::SenderId sender_;
};

}  // namespace rlir::rlir
