#include "rlir/receiver.h"

#include <stdexcept>

namespace rlir::rlir {

RlirReceiver::RlirReceiver(rli::ReceiverConfig per_sender_config, const timebase::Clock* clock,
                           const Demultiplexer* demux)
    : per_sender_config_(per_sender_config), clock_(clock), demux_(demux) {
  if (clock_ == nullptr || demux_ == nullptr) {
    throw std::invalid_argument("RlirReceiver: clock and demux must not be null");
  }
}

rli::RliReceiver& RlirReceiver::stream_for(net::SenderId sender) {
  auto it = streams_.find(sender);
  if (it == streams_.end()) {
    auto receiver = std::make_unique<rli::RliReceiver>(per_sender_config_, clock_);
    // Stream membership is decided by this RlirReceiver's demux; the inner
    // receivers must accept whatever is routed to them.
    receiver->set_filter([](const net::Packet&) { return true; });
    for (const auto& sink : sinks_) {
      receiver->add_estimate_sink(
          [sender, &sink](const rli::RliReceiver::PacketEstimate& pe) { sink(sender, pe); });
    }
    it = streams_.emplace(sender, std::move(receiver)).first;
  }
  return *it->second;
}

void RlirReceiver::add_estimate_sink(StreamEstimateSink sink) {
  if (!sink) return;
  sinks_.push_back(std::move(sink));
  const StreamEstimateSink& stored = sinks_.back();
  for (auto& [sender, receiver] : streams_) {
    const net::SenderId sid = sender;
    receiver->add_estimate_sink(
        [sid, &stored](const rli::RliReceiver::PacketEstimate& pe) { stored(sid, pe); });
  }
}

void RlirReceiver::on_packet(const net::Packet& packet, timebase::TimePoint arrival) {
  if (packet.is_reference()) {
    // "The RLI receiver can identify reference packets' origin easily via an
    // RLI sender ID."
    stream_for(packet.sender).on_packet(packet, arrival);
    return;
  }
  if (packet.kind != net::PacketKind::kRegular) return;

  const auto sender = demux_->classify(packet);
  if (!sender) {
    ++unclassified_;
    return;
  }
  ++classified_;
  stream_for(*sender).on_packet(packet, arrival);
}

std::size_t RlirReceiver::flush() {
  std::size_t flushed = 0;
  for (auto& [sender, receiver] : streams_) {
    (void)sender;
    flushed += receiver->flush();
  }
  return flushed;
}

const rli::RliReceiver* RlirReceiver::stream(net::SenderId sender) const {
  const auto it = streams_.find(sender);
  return it == streams_.end() ? nullptr : it->second.get();
}

rli::FlowStatsMap RlirReceiver::merged_estimates() const {
  rli::FlowStatsMap merged;
  for (const auto& [sender, receiver] : streams_) {
    for (const auto& [key, stats] : receiver->per_flow()) {
      merged[key].merge(stats);
    }
  }
  return merged;
}

}  // namespace rlir::rlir
