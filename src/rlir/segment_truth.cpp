#include "rlir/segment_truth.h"

namespace rlir::rlir {

SegmentTruth::SegmentTruth()
    : filter_([](const net::Packet& p) { return p.kind == net::PacketKind::kRegular; }) {}

SegmentTruth::SegmentTruth(Filter filter) : filter_(std::move(filter)) {}

void SegmentTruth::EntryTap::on_packet(const net::Packet& packet,
                                       timebase::TimePoint arrival) {
  if (!owner_->filter_(packet)) return;
  owner_->entries_[packet.seq] = arrival;
}

void SegmentTruth::ExitTap::on_packet(const net::Packet& packet,
                                      timebase::TimePoint arrival) {
  if (!owner_->filter_(packet)) return;
  const auto it = owner_->entries_.find(packet.seq);
  if (it == owner_->entries_.end()) {
    ++owner_->unmatched_exits_;
    return;
  }
  const timebase::Duration delay = arrival - it->second;
  owner_->entries_.erase(it);
  owner_->per_flow_[packet.key].add(static_cast<double>(delay.ns()));
  ++owner_->matched_;
}

}  // namespace rlir::rlir
