#include "rlir/localization.h"

#include <algorithm>

#include "common/stats.h"

namespace rlir::rlir {

void AnomalyLocalizer::add_segment(std::string name,
                                   const rli::FlowStatsMap& per_flow_estimates) {
  std::vector<double> flow_means;
  flow_means.reserve(per_flow_estimates.size());
  common::RunningStats all;
  for (const auto& [key, stats] : per_flow_estimates) {
    if (stats.empty()) continue;
    flow_means.push_back(stats.mean());
    all.add(stats.mean());
  }

  SegmentReport report;
  report.name = std::move(name);
  report.flows = flow_means.size();
  if (!flow_means.empty()) {
    const common::Cdf cdf(std::move(flow_means));
    report.median_flow_delay_ns = cdf.median();
    report.p90_flow_delay_ns = cdf.quantile(0.9);
    report.mean_flow_delay_ns = all.mean();
  }
  segments_.push_back(std::move(report));
}

double AnomalyLocalizer::baseline_ns() const {
  std::vector<double> medians;
  medians.reserve(segments_.size());
  for (const auto& s : segments_) {
    if (s.flows > 0) medians.push_back(s.median_flow_delay_ns);
  }
  if (medians.empty()) return 0.0;
  return common::Cdf(std::move(medians)).median();
}

std::vector<LocalizationFinding> AnomalyLocalizer::localize(double threshold_factor) const {
  std::vector<LocalizationFinding> findings;
  const double baseline = baseline_ns();
  findings.reserve(segments_.size());
  for (const auto& s : segments_) {
    LocalizationFinding f;
    f.segment = s.name;
    f.score = baseline > 0.0 ? s.median_flow_delay_ns / baseline : 0.0;
    f.anomalous = s.flows > 0 && f.score >= threshold_factor;
    findings.push_back(std::move(f));
  }
  std::sort(findings.begin(), findings.end(),
            [](const LocalizationFinding& a, const LocalizationFinding& b) {
              return a.score > b.score;
            });
  return findings;
}

}  // namespace rlir::rlir
