#include "rlir/sender_agent.h"

#include <algorithm>
#include <stdexcept>

namespace rlir::rlir {

TorSenderAgent::TorSenderAgent(rli::SenderConfig config, const timebase::Clock* clock,
                               std::vector<topo::NodeId> core_targets)
    : sender_(config, clock), targets_(std::move(core_targets)) {
  for (const auto& t : targets_) {
    if (t.tier != topo::Tier::kCore) {
      throw std::invalid_argument("TorSenderAgent: targets must be core switches");
    }
  }
}

void TorSenderAgent::on_arrival(const net::Packet& packet, topo::NodeId node,
                                topo::FatTreeSim& sim) {
  if (packet.kind != net::PacketKind::kRegular) return;
  // Only traffic leaving the ToR crosses this sender's uplink interface.
  const auto dst_tor = sim.topology().tor_for_address(packet.key.dst);
  if (dst_tor && *dst_tor == node) return;

  const auto probe = sender_.on_regular_packet(packet);
  if (!probe) return;

  // One probe per receiver: each pinned ToR->core path gets its own anchor.
  for (const auto& target : targets_) {
    net::Packet ref = *probe;
    ref.seq = sim.allocate_ref_seq();
    sim.inject_reference(ref, node, target);
    ++probes_sent_;
  }
}

CoreSenderAgent::CoreSenderAgent(rli::SenderConfig config, const timebase::Clock* clock,
                                 std::vector<topo::NodeId> tor_targets)
    : config_(config), clock_(clock), targets_(std::move(tor_targets)) {
  if (clock_ == nullptr) throw std::invalid_argument("CoreSenderAgent: clock must not be null");
  for (const auto& t : targets_) {
    if (t.tier != topo::Tier::kTor) {
      throw std::invalid_argument("CoreSenderAgent: targets must be ToR switches");
    }
  }
}

void CoreSenderAgent::on_arrival(const net::Packet& packet, topo::NodeId node,
                                 topo::FatTreeSim& sim) {
  if (packet.kind != net::PacketKind::kRegular) return;
  const auto dst_tor = sim.topology().tor_for_address(packet.key.dst);
  if (!dst_tor) return;
  if (std::find(targets_.begin(), targets_.end(), *dst_tor) == targets_.end()) return;

  const std::size_t key = sim.topology().flat_index(*dst_tor);
  auto it = per_target_.find(key);
  if (it == per_target_.end()) {
    it = per_target_.emplace(key, std::make_unique<rli::RliSender>(config_, clock_)).first;
  }
  const auto probe = it->second->on_regular_packet(packet);
  if (!probe) return;

  net::Packet ref = *probe;
  ref.seq = sim.allocate_ref_seq();
  sim.inject_reference(ref, node, *dst_tor);
  ++probes_sent_;
}

}  // namespace rlir::rlir
