#include "rlir/demux.h"

#include <stdexcept>

namespace rlir::rlir {

ReverseEcmpDemux::ReverseEcmpDemux(const topo::FatTree* topo, const topo::EcmpHasher* hasher,
                                   topo::NodeId receiver_tor)
    : topo_(topo), hasher_(hasher), receiver_tor_(receiver_tor) {
  if (topo_ == nullptr || hasher_ == nullptr) {
    throw std::invalid_argument("ReverseEcmpDemux: topology and hasher must not be null");
  }
  if (receiver_tor_.tier != topo::Tier::kTor) {
    throw std::invalid_argument("ReverseEcmpDemux: receiver must sit at a ToR switch");
  }
}

void ReverseEcmpDemux::set_sender_at_core(int core_index, net::SenderId sender) {
  if (core_index < 0 || core_index >= topo_->core_count()) {
    throw std::out_of_range("ReverseEcmpDemux::set_sender_at_core: bad core index");
  }
  sender_at_core_[core_index] = sender;
}

void ReverseEcmpDemux::add_same_pod_origin(const net::Ipv4Prefix& prefix,
                                           net::SenderId sender) {
  same_pod_origins_.insert(prefix, sender);
}

std::optional<net::SenderId> ReverseEcmpDemux::classify(const net::Packet& packet) const {
  const auto origin = topo_->tor_for_address(packet.key.src);
  if (!origin) return std::nullopt;

  if (origin->pod == receiver_tor_.pod) {
    // Same-pod traffic never crosses a core: upstream prefix rule applies.
    return same_pod_origins_.lookup(packet.key.src);
  }

  // "R3 uses the hash functions of edge routers connected to core routers to
  // determine to which core router a particular packet is forwarded."
  const topo::NodeId core =
      topo::reverse_ecmp_core(*topo_, *hasher_, packet.key, *origin, receiver_tor_);
  const auto it = sender_at_core_.find(core.index);
  if (it == sender_at_core_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rlir::rlir
