// RLIR sender instances for the fat-tree fabric.
//
// "each sender sends reference packets to all intermediate receivers through
// which its packets may cross. For example, S1 must send reference packets
// to both R1 and R2." (Section 3.1)
//
// Two placements, matching the paper's Figure 1:
//   * TorSenderAgent  — at a ToR uplink (S1/S2): counts regular packets
//     leaving the ToR and injects probes to every core hosting a receiver;
//   * CoreSenderAgent — at a core switch (S3/S4): re-anchors the downstream
//     segment by counting transit packets per destination ToR and injecting
//     probes down to the receivers there.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "rli/sender.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"

namespace rlir::rlir {

class TorSenderAgent final : public topo::NodeAgent {
 public:
  /// `clock` is the sender-side clock used to stamp probes (borrowed).
  /// `core_targets` are the cores hosting receivers for this sender's
  /// upstream segments.
  TorSenderAgent(rli::SenderConfig config, const timebase::Clock* clock,
                 std::vector<topo::NodeId> core_targets);

  void on_arrival(const net::Packet& packet, topo::NodeId node,
                  topo::FatTreeSim& sim) override;

  [[nodiscard]] const rli::RliSender& sender() const { return sender_; }
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  rli::RliSender sender_;
  std::vector<topo::NodeId> targets_;
  std::uint64_t probes_sent_ = 0;
};

class CoreSenderAgent final : public topo::NodeAgent {
 public:
  /// `tor_targets` are the destination ToRs hosting receivers downstream of
  /// this core. Packet counting (and hence probe pacing) is independent per
  /// target, so each receiver's anchor density follows its own traffic.
  CoreSenderAgent(rli::SenderConfig config, const timebase::Clock* clock,
                  std::vector<topo::NodeId> tor_targets);

  void on_arrival(const net::Packet& packet, topo::NodeId node,
                  topo::FatTreeSim& sim) override;

  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] net::SenderId id() const { return config_.id; }

 private:
  rli::SenderConfig config_;
  const timebase::Clock* clock_;
  std::vector<topo::NodeId> targets_;
  /// Independent pacing state per destination ToR (keyed by flat index).
  std::map<std::size_t, std::unique_ptr<rli::RliSender>> per_target_;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace rlir::rlir
