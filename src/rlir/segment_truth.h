// Ground-truth per-flow delay over an arbitrary path segment.
//
// The evaluation needs the *true* delay between two instrumented switches
// (e.g. T1 -> C1, then C1 -> T7) to score RLIR's estimates. A SegmentTruth
// installs an entry tap at the upstream node (recording each packet's
// arrival by sequence number) and an exit tap at the downstream node
// (computing arrival-difference delays and accumulating per-flow stats).
// Packets that never reach the exit (ECMP'd elsewhere, dropped, or destined
// to the entry node itself) simply stay unmatched — exactly mirroring what a
// physical probe pair would see.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/packet.h"
#include "rli/flow_stats.h"
#include "sim/tap.h"
#include "timebase/time.h"

namespace rlir::rlir {

class SegmentTruth {
 public:
  using Filter = std::function<bool(const net::Packet&)>;

  /// Default filter: regular packets only.
  SegmentTruth();
  explicit SegmentTruth(Filter filter);

  /// Tap to install at the segment's upstream node.
  [[nodiscard]] sim::PacketTap& entry_tap() { return entry_; }
  /// Tap to install at the segment's downstream node.
  [[nodiscard]] sim::PacketTap& exit_tap() { return exit_; }

  /// True per-flow delay over the segment (exit arrival - entry arrival).
  [[nodiscard]] const rli::FlowStatsMap& per_flow() const { return per_flow_; }

  [[nodiscard]] std::uint64_t matched_packets() const { return matched_; }
  /// Packets seen at the exit without a recorded entry (e.g. tap installed
  /// mid-run); these are not counted.
  [[nodiscard]] std::uint64_t unmatched_exits() const { return unmatched_exits_; }
  /// Entries never matched (packet took another path or was dropped).
  [[nodiscard]] std::uint64_t pending_entries() const { return entries_.size(); }

 private:
  class EntryTap final : public sim::PacketTap {
   public:
    explicit EntryTap(SegmentTruth* owner) : owner_(owner) {}
    void on_packet(const net::Packet& packet, timebase::TimePoint arrival) override;

   private:
    SegmentTruth* owner_;
  };
  class ExitTap final : public sim::PacketTap {
   public:
    explicit ExitTap(SegmentTruth* owner) : owner_(owner) {}
    void on_packet(const net::Packet& packet, timebase::TimePoint arrival) override;

   private:
    SegmentTruth* owner_;
  };

  Filter filter_;
  EntryTap entry_{this};
  ExitTap exit_{this};
  std::unordered_map<std::uint64_t, timebase::TimePoint> entries_;
  rli::FlowStatsMap per_flow_;
  std::uint64_t matched_ = 0;
  std::uint64_t unmatched_exits_ = 0;
};

}  // namespace rlir::rlir
