// RLIR receiver: an RLI receiver that serves many senders at once.
//
// "many RLI senders need to associate with a given RLI receiver, and the
// receiver needs a mechanism to distinguish both regular and reference
// packets to isolate the streams" (Section 3.1). Reference packets identify
// their sender explicitly (sender ID); regular packets are attributed by the
// configured Demultiplexer. Each sender gets its own interpolation buffer
// (an rli::RliReceiver); per-flow estimates are kept per stream and can be
// merged.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "net/packet.h"
#include "rli/flow_stats.h"
#include "rli/receiver.h"
#include "rlir/demux.h"
#include "sim/tap.h"
#include "timebase/clock.h"

namespace rlir::rlir {

class RlirReceiver final : public sim::PacketTap {
 public:
  /// `clock` and `demux` are borrowed and must outlive the receiver.
  /// `per_sender_config` configures each per-sender interpolation stream.
  RlirReceiver(rli::ReceiverConfig per_sender_config, const timebase::Clock* clock,
               const Demultiplexer* demux);

  void on_packet(const net::Packet& packet, timebase::TimePoint arrival) override;

  /// Epoch-boundary flush of every sender stream's interpolation buffer
  /// (rli::RliReceiver::flush). Returns the total packets flushed.
  std::size_t flush();

  /// Per-flow estimates from one sender's stream (nullptr if none seen).
  [[nodiscard]] const rli::RliReceiver* stream(net::SenderId sender) const;

  /// Per-flow estimates merged across all senders. In a correctly
  /// demultiplexed deployment each flow appears in exactly one stream;
  /// duplicated keys are merged by statistic union.
  [[nodiscard]] rli::FlowStatsMap merged_estimates() const;

  /// Per-packet estimate stream across every sender's interpolation stream,
  /// tagged with the stream's sender (the collection tier's export hook).
  /// Applies to streams that already exist and to streams created later.
  using StreamEstimateSink =
      std::function<void(net::SenderId, const rli::RliReceiver::PacketEstimate&)>;
  void add_estimate_sink(StreamEstimateSink sink);

  [[nodiscard]] std::uint64_t unclassified_packets() const { return unclassified_; }
  [[nodiscard]] std::uint64_t classified_packets() const { return classified_; }
  [[nodiscard]] std::size_t stream_count() const { return streams_.size(); }

 private:
  rli::RliReceiver& stream_for(net::SenderId sender);

  rli::ReceiverConfig per_sender_config_;
  const timebase::Clock* clock_;
  const Demultiplexer* demux_;
  /// Ordered map for deterministic merged iteration.
  std::map<net::SenderId, std::unique_ptr<rli::RliReceiver>> streams_;
  /// Deque: per-stream adapter lambdas hold references to elements, and
  /// deque end-insertion never invalidates them.
  std::deque<StreamEstimateSink> sinks_;
  std::uint64_t unclassified_ = 0;
  std::uint64_t classified_ = 0;
};

}  // namespace rlir::rlir
