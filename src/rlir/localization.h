// Latency-anomaly localization over RLIR segments.
//
// The operational goal of the whole architecture: "detecting and localizing
// latency anomalies of all flows traversing paths between a pair of
// interfaces" with per-segment granularity (T1-C1, C1-T7, ...). Each RLIR
// receiver yields per-flow latency statistics for its segment; the localizer
// compares segments against each other and flags the ones whose delay
// distribution is anomalously high — the switch/router group the operator
// should investigate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rli/flow_stats.h"

namespace rlir::rlir {

/// Summary of one instrumented segment.
struct SegmentReport {
  std::string name;
  std::size_t flows = 0;
  double median_flow_delay_ns = 0.0;  ///< median over per-flow mean delays
  double mean_flow_delay_ns = 0.0;
  double p90_flow_delay_ns = 0.0;
};

struct LocalizationFinding {
  std::string segment;
  /// Segment median / cross-segment baseline median.
  double score = 0.0;
  bool anomalous = false;
};

class AnomalyLocalizer {
 public:
  /// Registers a segment's per-flow delay estimates (from an RLIR receiver
  /// stream or a merged estimate map).
  void add_segment(std::string name, const rli::FlowStatsMap& per_flow_estimates);

  /// Flags segments whose median per-flow delay exceeds `threshold_factor`
  /// times the baseline (median of all segment medians). With >= 2 healthy
  /// segments the baseline is robust to a single anomaly.
  [[nodiscard]] std::vector<LocalizationFinding> localize(
      double threshold_factor = 3.0) const;

  [[nodiscard]] const std::vector<SegmentReport>& segments() const { return segments_; }
  /// Baseline (median of segment medians); 0 if no segments.
  [[nodiscard]] double baseline_ns() const;

 private:
  std::vector<SegmentReport> segments_;
};

}  // namespace rlir::rlir
