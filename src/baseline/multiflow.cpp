#include "baseline/multiflow.h"

#include <stdexcept>

namespace rlir::baseline {

NetflowTap::NetflowTap(trace::FlowmeterConfig config, const timebase::Clock* clock)
    : meter_(config), clock_(clock) {
  if (clock_ == nullptr) throw std::invalid_argument("NetflowTap: clock must not be null");
  meter_.set_export_sink([this](const trace::FlowRecord& rec) {
    // Keep the first export per flow key (NetFlow would emit several records
    // for long flows; the two-sample estimator uses matching records, and
    // first-export matching on both sides is consistent).
    records_.try_emplace(rec.key, rec);
  });
}

void NetflowTap::on_packet(const net::Packet& packet, timebase::TimePoint arrival) {
  if (packet.kind != net::PacketKind::kRegular) return;
  net::Packet stamped = packet;
  stamped.ts = clock_->now(arrival);
  meter_.observe(stamped);
}

const std::unordered_map<net::FiveTuple, trace::FlowRecord>& NetflowTap::records() {
  if (!finalized_) {
    meter_.flush();
    finalized_ = true;
  }
  return records_;
}

MultiflowResult multiflow_estimate(
    const std::unordered_map<net::FiveTuple, trace::FlowRecord>& sender_records,
    const std::unordered_map<net::FiveTuple, trace::FlowRecord>& receiver_records) {
  MultiflowResult result;
  for (const auto& [key, send] : sender_records) {
    const auto it = receiver_records.find(key);
    if (it == receiver_records.end()) {
      ++result.unmatched_flows;
      continue;
    }
    const trace::FlowRecord& recv = it->second;
    const double first_delta = static_cast<double>((recv.first_ts - send.first_ts).ns());
    const double last_delta = static_cast<double>((recv.last_ts - send.last_ts).ns());
    const double estimate = (first_delta + last_delta) / 2.0;
    result.estimates[key].add(estimate);
    ++result.matched_flows;
  }
  return result;
}

}  // namespace rlir::baseline
