// Multiflow estimator — Lee, Duffield & Kompella, INFOCOM 2010 ("Two
// Samples are Enough: Opportunistic Flow-level Latency Estimation using
// NetFlow").
//
// The related-work baseline the RLIR paper cites for crude per-flow latency:
// NetFlow already stores two timestamps per flow (first and last packet).
// With NetFlow running at both ends of a segment, a flow's delay can be
// estimated from just those two samples:
//
//   delay ≈ ((first_recv - first_send) + (last_recv - last_send)) / 2
//
// It needs no probes and no per-packet state, but collapses the entire flow
// to two samples — the accuracy gap to RLI/RLIR is the point of comparison.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/flow_key.h"
#include "net/packet.h"
#include "rli/flow_stats.h"
#include "sim/tap.h"
#include "timebase/clock.h"
#include "trace/flowmeter.h"

namespace rlir::baseline {

/// NetFlow-style observation point: runs a flowmeter over the packets
/// crossing one interface, reading timestamps from the local clock.
class NetflowTap final : public sim::PacketTap {
 public:
  NetflowTap(trace::FlowmeterConfig config, const timebase::Clock* clock);

  void on_packet(const net::Packet& packet, timebase::TimePoint arrival) override;

  /// Finalizes and returns per-flow first/last timestamp records.
  [[nodiscard]] const std::unordered_map<net::FiveTuple, trace::FlowRecord>& records();

 private:
  trace::Flowmeter meter_;
  const timebase::Clock* clock_;
  std::unordered_map<net::FiveTuple, trace::FlowRecord> records_;
  bool finalized_ = false;
};

/// Per-flow delay estimate from two NetFlow observation points.
struct MultiflowResult {
  /// Flow -> estimated mean delay (a single two-sample estimate per flow,
  /// represented as a one-observation RunningStats for report compatibility).
  rli::FlowStatsMap estimates;
  std::uint64_t matched_flows = 0;
  std::uint64_t unmatched_flows = 0;  ///< at sender but never at receiver
};

/// Joins sender- and receiver-side flow records and applies the two-sample
/// estimator. Flows missing on either side are skipped (counted unmatched).
[[nodiscard]] MultiflowResult multiflow_estimate(
    const std::unordered_map<net::FiveTuple, trace::FlowRecord>& sender_records,
    const std::unordered_map<net::FiveTuple, trace::FlowRecord>& receiver_records);

}  // namespace rlir::baseline
