// Lossy Difference Aggregator (LDA) — Kompella, Levchenko, Snoeren &
// Varghese, SIGCOMM 2009 ("Every Microsecond Counts").
//
// The paper positions RLI/RLIR against LDA: LDA measures *aggregate* latency
// between two points with tiny state and no probes, but cannot produce
// per-flow statistics. We implement it as the comparison baseline.
//
// Mechanism: sender and receiver keep identical arrays of (packet count,
// timestamp sum) buckets, organized in B banks with geometrically decreasing
// sampling probabilities. Each packet is hashed to (at most) one bucket per
// bank and adds its local timestamp. Buckets whose counts agree on both
// sides ("usable") lost no packets; the timestamp-sum difference divided by
// the count is the average delay of those packets. Banks with lower sampling
// rates survive higher loss.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/tap.h"
#include "timebase/clock.h"
#include "timebase/time.h"

namespace rlir::baseline {

struct LdaConfig {
  std::size_t banks = 4;
  std::size_t buckets_per_bank = 1024;
  /// Sampling probability of bank b is sample_base^-b (bank 0 keeps all).
  double sample_base = 8.0;
  std::uint64_t seed = 0x1dabeef;
};

/// One measurement-interval sketch at one observation point.
class LdaSketch {
 public:
  explicit LdaSketch(LdaConfig config);

  /// Records a packet observed at local time `ts` (as read from `clock`).
  void record(const net::Packet& packet, timebase::TimePoint ts);

  [[nodiscard]] const LdaConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t packets_recorded() const { return recorded_; }

  struct Bucket {
    std::uint64_t count = 0;
    std::int64_t ts_sum_ns = 0;
  };
  [[nodiscard]] const Bucket& bucket(std::size_t bank, std::size_t index) const;

  /// State size in bytes (the headline economy of LDA).
  [[nodiscard]] std::size_t state_bytes() const;

 private:
  friend struct LdaEstimate;
  LdaConfig config_;
  std::vector<Bucket> buckets_;  // banks * buckets_per_bank, bank-major
  std::uint64_t recorded_ = 0;
};

/// Aggregate estimate from a matched sender/receiver sketch pair.
struct LdaEstimate {
  double mean_delay_ns = 0.0;
  std::uint64_t usable_packets = 0;   ///< packets in usable buckets
  std::uint64_t usable_buckets = 0;
  std::uint64_t unusable_buckets = 0; ///< count mismatch (loss detected)
  /// Effective sample fraction: usable packets / packets sent.
  double coverage = 0.0;

  /// Computes the estimate; the sketches must share a configuration.
  [[nodiscard]] static std::optional<LdaEstimate> compute(const LdaSketch& sender,
                                                          const LdaSketch& receiver);
};

/// Tap adapter: an LDA observation point at a pipeline interface.
class LdaTap final : public sim::PacketTap {
 public:
  LdaTap(LdaConfig config, const timebase::Clock* clock);

  void on_packet(const net::Packet& packet, timebase::TimePoint arrival) override;

  [[nodiscard]] const LdaSketch& sketch() const { return sketch_; }

 private:
  LdaSketch sketch_;
  const timebase::Clock* clock_;
};

}  // namespace rlir::baseline
