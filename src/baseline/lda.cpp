#include "baseline/lda.h"

#include <cmath>
#include <stdexcept>

#include "net/hash.h"

namespace rlir::baseline {

LdaSketch::LdaSketch(LdaConfig config) : config_(config) {
  if (config_.banks == 0 || config_.buckets_per_bank == 0) {
    throw std::invalid_argument("LdaSketch: banks and buckets_per_bank must be positive");
  }
  if (config_.sample_base < 1.0) {
    throw std::invalid_argument("LdaSketch: sample_base must be >= 1");
  }
  buckets_.assign(config_.banks * config_.buckets_per_bank, Bucket{});
}

void LdaSketch::record(const net::Packet& packet, timebase::TimePoint ts) {
  ++recorded_;
  // Both sides must make identical sampling and placement decisions for the
  // same packet, using only invariant packet content — we hash the flow key
  // and the packet's sequence number (standing in for the invariant bytes a
  // hardware LDA hashes).
  const std::uint64_t id = net::mix64(packet.key.hash() ^ net::mix64(packet.seq));

  for (std::size_t bank = 0; bank < config_.banks; ++bank) {
    // Sampling: bank b keeps a sample_base^-b fraction of packets, judged on
    // a per-bank slice of the id hash mapped to [0,1). (A uint64 threshold
    // comparison would overflow for the keep-everything bank.)
    const std::uint64_t gate = net::mix64(id ^ (config_.seed + bank * 0x9e37u));
    const double keep = std::pow(config_.sample_base, -static_cast<double>(bank));
    const double unit = static_cast<double>(gate >> 11) * 0x1.0p-53;  // [0,1)
    if (unit >= keep) continue;

    const std::size_t index =
        net::mix64(id ^ net::mix64(config_.seed ^ (bank + 1))) % config_.buckets_per_bank;
    Bucket& b = buckets_[bank * config_.buckets_per_bank + index];
    b.count += 1;
    b.ts_sum_ns += ts.ns();
  }
}

const LdaSketch::Bucket& LdaSketch::bucket(std::size_t bank, std::size_t index) const {
  return buckets_.at(bank * config_.buckets_per_bank + index);
}

std::size_t LdaSketch::state_bytes() const {
  return buckets_.size() * sizeof(Bucket);
}

std::optional<LdaEstimate> LdaEstimate::compute(const LdaSketch& sender,
                                                const LdaSketch& receiver) {
  const auto& cfg = sender.config_;
  if (cfg.banks != receiver.config_.banks ||
      cfg.buckets_per_bank != receiver.config_.buckets_per_bank ||
      cfg.seed != receiver.config_.seed) {
    throw std::invalid_argument("LdaEstimate: sketch configurations differ");
  }

  LdaEstimate est;
  std::int64_t delay_sum = 0;
  for (std::size_t i = 0; i < sender.buckets_.size(); ++i) {
    const auto& s = sender.buckets_[i];
    const auto& r = receiver.buckets_[i];
    if (s.count == 0 && r.count == 0) continue;
    if (s.count != r.count) {
      ++est.unusable_buckets;
      continue;
    }
    ++est.usable_buckets;
    est.usable_packets += s.count;
    delay_sum += r.ts_sum_ns - s.ts_sum_ns;
  }
  if (est.usable_packets == 0) return std::nullopt;
  est.mean_delay_ns = static_cast<double>(delay_sum) / static_cast<double>(est.usable_packets);
  est.coverage = sender.recorded_ == 0
                     ? 0.0
                     : static_cast<double>(est.usable_packets) /
                           static_cast<double>(sender.recorded_);
  return est;
}

LdaTap::LdaTap(LdaConfig config, const timebase::Clock* clock)
    : sketch_(config), clock_(clock) {
  if (clock_ == nullptr) throw std::invalid_argument("LdaTap: clock must not be null");
}

void LdaTap::on_packet(const net::Packet& packet, timebase::TimePoint arrival) {
  if (packet.kind != net::PacketKind::kRegular) return;
  sketch_.record(packet, clock_->now(arrival));
}

}  // namespace rlir::baseline
