// Reusable experiment drivers for the paper's evaluation (Section 4).
//
// Each bench binary regenerates one figure/table; they all share this
// harness so the simulated environment is identical across experiments:
// the Figure-3 two-hop pipeline, the synthetic OC-192-like traces, the
// calibrated cross-traffic injector, and the RLI sender/receiver pair.
#pragma once

#include <cstdint>
#include <string>

#include "rli/flow_stats.h"
#include "rli/receiver.h"
#include "rli/sender.h"
#include "sim/cross_traffic.h"
#include "sim/pipeline.h"
#include "timebase/time.h"
#include "trace/synthetic.h"

namespace rlir::exp {

struct ExperimentConfig {
  /// Trace horizon. The paper replays 60 s traces; the default regenerates
  /// the same regimes at 10G in a few hundred ms of simulated time (scale up
  /// freely — everything is O(packets)).
  timebase::Duration duration = timebase::Duration::milliseconds(400);
  double link_bps = 10e9;

  /// Offered regular load as a fraction of the link (paper: ~22%, which
  /// keeps the adaptive scheme at its highest rate, 1-and-10).
  double regular_utilization = 0.22;
  /// Offered (pre-thinning) cross load as a fraction of the link; must
  /// exceed target - regular so the injector can reach the target.
  double cross_offered_utilization = 1.0;
  /// Bottleneck (switch2) utilization the cross injector is calibrated to.
  double target_utilization = 0.67;

  sim::CrossModel cross_model = sim::CrossModel::kUniform;
  /// Bursty model: cross traffic is concentrated into ON windows running the
  /// bottleneck at `burst_peak_utilization`, with the duty cycle chosen so
  /// the whole-run average still meets `target_utilization` — the paper's
  /// "controlling cross traffic injection duration" (10 s bursts in a 60 s
  /// trace), which is what produces persistent congestion events and its
  /// 117 us average delay at a 67% average utilization.
  double burst_peak_utilization = 0.98;
  timebase::Duration burst_period = timebase::Duration::milliseconds(100);

  rli::InjectionScheme scheme = rli::InjectionScheme::kStatic;
  std::uint32_t static_gap = 100;  ///< the paper's worst-case 1-and-100
  rli::EstimatorKind estimator = rli::EstimatorKind::kLinear;

  /// When false, no reference packets are injected (the Figure-5 baseline
  /// run for measuring probe-induced loss).
  bool inject_references = true;

  /// Bottleneck buffer; 500KB ≈ 400us at 10G.
  std::uint64_t queue_capacity_bytes = 500 * 1000;

  /// Residual clock-synchronization error bound at the receiver (0 =
  /// perfectly synchronized, the paper's implicit assumption). Non-zero
  /// values emulate an IEEE-1588 slave whose offset is re-pulled into
  /// [-bound, +bound] every `sync_interval` — the error propagates into
  /// every reference-delay measurement, exactly as it would in hardware.
  timebase::Duration sync_residual = timebase::Duration::zero();
  timebase::Duration sync_interval = timebase::Duration::milliseconds(10);

  std::uint64_t seed = 1;

  [[nodiscard]] std::string label() const;
};

struct ExperimentResult {
  sim::PipelineResult pipeline;
  /// Estimate-vs-truth per-flow accuracy (empty when inject_references is
  /// false).
  rli::AccuracyReport report;

  std::uint64_t references_injected = 0;
  std::uint64_t regular_packets = 0;
  std::uint64_t regular_flows = 0;
  std::uint64_t cross_packets_offered = 0;

  /// Ground-truth average/stddev of regular-packet delay across the segment
  /// (the paper quotes 3.0us @67%, 83us @93%, 117us bursty @67%).
  double true_mean_latency_ns = 0.0;
  double true_stddev_latency_ns = 0.0;

  /// Regular-packet loss rate (Figure 5's quantity of interest).
  double regular_loss_rate = 0.0;
  /// Measured bottleneck utilization (sanity check against the target).
  double measured_utilization = 0.0;
};

/// Runs one Figure-3 experiment.
[[nodiscard]] ExperimentResult run_two_hop_experiment(const ExperimentConfig& config);

/// Demux strategy for the fat-tree downstream experiment.
enum class DemuxStrategy : std::uint8_t {
  kReverseEcmp,   ///< RLIR, Section 3.1 option (ii)
  kMarking,       ///< RLIR, Section 3.1 option (i) — needs core support
  kNone,          ///< strawman: interpolate everything against one stream
};

[[nodiscard]] constexpr const char* to_string(DemuxStrategy s) {
  switch (s) {
    case DemuxStrategy::kReverseEcmp: return "reverse-ecmp";
    case DemuxStrategy::kMarking: return "marking";
    case DemuxStrategy::kNone: return "none";
  }
  return "?";
}

struct FatTreeExperimentConfig {
  int k = 4;
  timebase::Duration duration = timebase::Duration::milliseconds(40);
  /// Offered load per source ToR.
  double per_tor_offered_bps = 1.5e9;
  /// Number of source ToRs in remote pods sending to the receiver ToR.
  int source_tors = 2;
  DemuxStrategy demux = DemuxStrategy::kReverseEcmp;
  std::uint32_t static_gap = 50;
  /// Per-core forwarding-delay heterogeneity: core c forwards with an extra
  /// c * core_delay_step. Zero = symmetric fabric. Asymmetry is what makes
  /// demultiplexing matter: with symmetric paths, interpolating against the
  /// wrong core's references is (coincidentally) harmless.
  timebase::Duration core_delay_step = timebase::Duration::zero();
  std::uint64_t seed = 1;
};

struct FatTreeExperimentResult {
  rli::AccuracyReport report;
  std::uint64_t unclassified_packets = 0;
  std::uint64_t classified_packets = 0;
  std::size_t streams = 0;
};

/// Runs the downstream (core -> destination ToR) RLIR measurement on a
/// fat-tree with the chosen demux strategy. The kNone strategy reproduces
/// the failure mode motivating Section 3.1 ("per-flow latency estimates at
/// the receivers can be totally wrong").
[[nodiscard]] FatTreeExperimentResult run_fattree_downstream_experiment(
    const FatTreeExperimentConfig& config);

}  // namespace rlir::exp
