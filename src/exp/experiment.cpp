#include "exp/experiment.h"

#include <memory>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "rlir/demux.h"
#include "rlir/receiver.h"
#include "rlir/segment_truth.h"
#include "rlir/sender_agent.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"

namespace rlir::exp {

std::string ExperimentConfig::label() const {
  std::ostringstream os;
  os << (scheme == rli::InjectionScheme::kAdaptive ? "adaptive" : "static") << ", "
     << (cross_model == sim::CrossModel::kBursty ? "bursty" : "random") << ", "
     << static_cast<int>(target_utilization * 100.0 + 0.5) << "%";
  return os.str();
}

ExperimentResult run_two_hop_experiment(const ExperimentConfig& config) {
  // --- Workload -------------------------------------------------------
  trace::SyntheticConfig regular_cfg;
  regular_cfg.duration = config.duration;
  regular_cfg.offered_bps = config.regular_utilization * config.link_bps;
  regular_cfg.src_pool = net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 16);
  regular_cfg.seed = config.seed;

  trace::SyntheticConfig cross_cfg;
  cross_cfg.duration = config.duration;
  cross_cfg.offered_bps = config.cross_offered_utilization * config.link_bps;
  cross_cfg.src_pool = net::Ipv4Prefix(net::Ipv4Address(172, 16, 0, 0), 16);
  cross_cfg.kind = net::PacketKind::kCross;
  cross_cfg.seed = config.seed + 0x0c0ffee;
  cross_cfg.first_seq = std::uint64_t{1} << 40;

  // Heavy-tailed flows are cut at the horizon, so a short trace realizes
  // less volume than configured (see SyntheticConfig::offered_bps). One
  // calibration retry rescales offered load to land on the intended rate.
  const auto generate_calibrated = [&](trace::SyntheticConfig cfg, std::uint64_t* bytes_out) {
    const double target_bits = cfg.offered_bps * cfg.duration.sec();
    auto packets = trace::SyntheticTraceGenerator(cfg).generate_all();
    std::uint64_t bytes = 0;
    for (const auto& p : packets) bytes += p.size_bytes;
    const double achieved_bits = static_cast<double>(bytes) * 8.0;
    if (achieved_bits < 0.95 * target_bits && achieved_bits > 0.0) {
      cfg.offered_bps *= target_bits / achieved_bits;
      packets = trace::SyntheticTraceGenerator(cfg).generate_all();
      bytes = 0;
      for (const auto& p : packets) bytes += p.size_bytes;
    }
    *bytes_out = bytes;
    return packets;
  };

  std::uint64_t regular_bytes = 0;
  const auto regular = generate_calibrated(regular_cfg, &regular_bytes);
  std::uint64_t cross_bytes = 0;
  const auto cross = generate_calibrated(cross_cfg, &cross_bytes);

  std::unordered_set<std::uint64_t> distinct_flows;
  for (const auto& p : regular) distinct_flows.insert(p.key.hash());

  // --- Cross-traffic calibration --------------------------------------
  sim::CrossTrafficConfig injector_cfg;
  injector_cfg.model = config.cross_model;
  injector_cfg.seed = config.seed + 0xc105;
  if (config.cross_model == sim::CrossModel::kUniform) {
    injector_cfg.selection_probability =
        sim::selection_for_utilization(config.target_utilization, config.link_bps,
                                       config.duration, regular_bytes, cross_bytes);
  } else {
    // Bursty: within ON windows the bottleneck runs at burst_peak_utilization;
    // the duty cycle delivers the target as a whole-run average.
    const double regular_util = static_cast<double>(regular_bytes) * 8.0 /
                                (config.link_bps * config.duration.sec());
    const double peak = std::max(config.burst_peak_utilization, regular_util + 0.01);
    double duty = (config.target_utilization - regular_util) / (peak - regular_util);
    duty = std::clamp(duty, 0.02, 1.0);
    const auto on_ns =
        static_cast<std::int64_t>(duty * static_cast<double>(config.burst_period.ns()));
    injector_cfg.burst_on = timebase::Duration(on_ns);
    injector_cfg.burst_off = config.burst_period - injector_cfg.burst_on;
    injector_cfg.selection_probability = sim::selection_for_utilization(
        peak, config.link_bps, config.duration, regular_bytes, cross_bytes);
  }
  sim::CrossTrafficInjector injector(injector_cfg);

  // --- Measurement stack -----------------------------------------------
  // The sender stamps with an ideal clock; receiver-side sync error models
  // the *relative* offset of the pair, which is all that matters for
  // one-way delay.
  timebase::PerfectClock sender_clock;
  std::unique_ptr<timebase::Clock> receiver_clock;
  if (config.sync_residual > timebase::Duration::zero()) {
    receiver_clock = std::make_unique<timebase::SyncedClock>(
        config.sync_interval, config.sync_residual, /*drift_ppb=*/0.0,
        config.seed + 0x51c);
  } else {
    receiver_clock = std::make_unique<timebase::PerfectClock>();
  }

  rli::SenderConfig sender_cfg;
  sender_cfg.scheme = config.scheme;
  sender_cfg.static_gap = config.static_gap;
  sender_cfg.link_bps = config.link_bps;
  rli::RliSender sender(sender_cfg, &sender_clock);

  rli::ReceiverConfig receiver_cfg;
  receiver_cfg.estimator = config.estimator;
  rli::RliReceiver receiver(receiver_cfg, receiver_clock.get());
  rli::GroundTruthTap truth;

  sim::PipelineConfig pipe_cfg;
  pipe_cfg.switch1.link_bps = config.link_bps;
  pipe_cfg.switch2.link_bps = config.link_bps;
  pipe_cfg.switch1.capacity_bytes = config.queue_capacity_bytes;
  pipe_cfg.switch2.capacity_bytes = config.queue_capacity_bytes;
  sim::TwoHopPipeline pipeline(pipe_cfg);
  if (config.inject_references) pipeline.set_reference_injector(&sender);
  pipeline.set_cross_injector(&injector);
  pipeline.add_egress_tap(&receiver);
  pipeline.add_egress_tap(&truth);

  // --- Run & score ------------------------------------------------------
  ExperimentResult result;
  result.pipeline = pipeline.run(regular, cross);
  result.references_injected = sender.references_injected();
  result.regular_packets = regular.size();
  result.cross_packets_offered = cross.size();
  result.regular_flows = distinct_flows.size();
  result.regular_loss_rate = result.pipeline.regular_loss_rate();
  result.measured_utilization = result.pipeline.bottleneck_utilization();

  common::RunningStats overall_truth;
  for (const auto& [key, stats] : truth.per_flow()) overall_truth.merge(stats);
  result.true_mean_latency_ns = overall_truth.mean();
  result.true_stddev_latency_ns = overall_truth.stddev();

  if (config.inject_references) {
    result.report = rli::AccuracyReport::compare(truth.per_flow(), receiver.per_flow());
  }
  return result;
}

FatTreeExperimentResult run_fattree_downstream_experiment(
    const FatTreeExperimentConfig& config) {
  topo::FatTree topo(config.k);
  topo::Crc32EcmpHasher hasher;
  timebase::PerfectClock clock;

  topo::FatTreeSimConfig sim_cfg;
  sim_cfg.core_marking = (config.demux == DemuxStrategy::kMarking);
  topo::FatTreeSim sim(&topo, sim_cfg, &hasher);

  const topo::NodeId dst_tor = topo.tor(config.k - 1, 0);

  if (config.core_delay_step > timebase::Duration::zero()) {
    for (int c = 0; c < topo.core_count(); ++c) {
      sim.add_extra_delay(topo.core(c), config.core_delay_step * c);
    }
  }

  // Sender agents at every core, targeting the receiver ToR.
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> senders;
  for (int c = 0; c < topo.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(100 + c);
    cfg.static_gap = config.static_gap;
    senders.push_back(std::make_unique<rlir::CoreSenderAgent>(
        cfg, &clock, std::vector<topo::NodeId>{dst_tor}));
    sim.add_agent(topo.core(c), senders.back().get());
  }

  // Demux strategy under test.
  std::unique_ptr<rlir::Demultiplexer> demux;
  switch (config.demux) {
    case DemuxStrategy::kReverseEcmp: {
      auto d = std::make_unique<rlir::ReverseEcmpDemux>(&topo, &hasher, dst_tor);
      for (int c = 0; c < topo.core_count(); ++c) {
        d->set_sender_at_core(c, static_cast<net::SenderId>(100 + c));
      }
      demux = std::move(d);
      break;
    }
    case DemuxStrategy::kMarking: {
      auto d = std::make_unique<rlir::MarkingDemux>();
      for (int c = 0; c < topo.core_count(); ++c) {
        d->map_mark(static_cast<net::TosMark>(c + 1), static_cast<net::SenderId>(100 + c));
      }
      demux = std::move(d);
      break;
    }
    case DemuxStrategy::kNone:
      // Everything lands in sender 100's stream, references from all cores
      // and regular packets from all paths interleaved — the failure mode.
      demux = std::make_unique<rlir::SingleSenderDemux>(100);
      break;
  }

  rlir::RlirReceiver receiver(rli::ReceiverConfig{}, &clock, demux.get());
  sim.add_arrival_tap(dst_tor, &receiver);

  // Ground truth per core segment (merged).
  std::vector<std::unique_ptr<rlir::SegmentTruth>> truths;
  for (int c = 0; c < topo.core_count(); ++c) {
    truths.push_back(std::make_unique<rlir::SegmentTruth>());
    sim.add_arrival_tap(topo.core(c), &truths.back()->entry_tap());
    sim.add_arrival_tap(dst_tor, &truths.back()->exit_tap());
  }

  // Traffic: `source_tors` ToRs from pods other than the receiver's.
  int placed = 0;
  std::uint64_t seed = config.seed;
  for (int pod = 0; pod < config.k - 1 && placed < config.source_tors; ++pod) {
    for (int t = 0; t < topo.tors_per_pod() && placed < config.source_tors; ++t) {
      trace::SyntheticConfig tcfg;
      tcfg.duration = config.duration;
      tcfg.offered_bps = config.per_tor_offered_bps;
      tcfg.seed = ++seed;
      tcfg.src_pool = topo.host_prefix(topo.tor(pod, t));
      tcfg.dst_pool = topo.host_prefix(dst_tor);
      tcfg.first_seq = static_cast<std::uint64_t>(placed + 1) * 100'000'000ULL;
      for (const auto& pkt : trace::SyntheticTraceGenerator(tcfg).generate_all()) {
        sim.inject_from_host(pkt);
      }
      ++placed;
    }
  }
  sim.run();

  rli::FlowStatsMap truth_all;
  for (auto& t : truths) {
    for (const auto& [key, stats] : t->per_flow()) truth_all[key].merge(stats);
  }

  FatTreeExperimentResult result;
  result.report = rli::AccuracyReport::compare(truth_all, receiver.merged_estimates());
  result.unclassified_packets = receiver.unclassified_packets();
  result.classified_packets = receiver.classified_packets();
  result.streams = receiver.stream_count();
  return result;
}

}  // namespace rlir::exp
