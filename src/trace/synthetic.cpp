#include "trace/synthetic.h"

#include <cmath>
#include <stdexcept>

namespace rlir::trace {

double SyntheticConfig::mean_packet_bytes() const {
  double total_w = 0.0;
  double total = 0.0;
  for (const auto& p : size_mix) {
    total_w += p.weight;
    total += p.weight * p.bytes;
  }
  if (total_w <= 0.0) throw std::invalid_argument("size_mix weights must be positive");
  return total / total_w;
}

double SyntheticConfig::flow_arrival_rate() const {
  const double bytes_per_flow = mean_flow_packets * mean_packet_bytes();
  return offered_bps / (bytes_per_flow * 8.0);
}

SyntheticTraceGenerator::SyntheticTraceGenerator(SyntheticConfig config)
    : config_(std::move(config)), rng_(config_.seed), next_seq_(config_.first_seq) {
  if (config_.duration <= timebase::Duration::zero()) {
    throw std::invalid_argument("SyntheticTraceGenerator: duration must be positive");
  }
  if (config_.mean_flow_packets < 1.0) {
    throw std::invalid_argument("SyntheticTraceGenerator: mean_flow_packets must be >= 1");
  }
  if (config_.pareto_alpha <= 1.0) {
    throw std::invalid_argument(
        "SyntheticTraceGenerator: pareto_alpha must exceed 1 (finite mean)");
  }
  // Precompute the cumulative weights of the size mix for O(log n) draws.
  double cum = 0.0;
  for (const auto& p : config_.size_mix) {
    cum += p.weight;
    size_cdf_.push_back(cum);
  }
  for (auto& c : size_cdf_) c /= cum;

  // Solve for the Pareto scale xm such that the *capped* mean matches the
  // configured mean flow size: E[min(X, cap)] for Pareto(alpha, xm) is
  //   xm * (1 + (1/(alpha-1)) * (1 - (xm/cap)^(alpha-1))),
  // monotone in xm, so bisection converges fast. Without this correction the
  // cap silently shrinks flows (~40% volume loss at the defaults).
  {
    const double alpha = config_.pareto_alpha;
    const double cap = static_cast<double>(config_.max_flow_packets);
    const auto capped_mean = [&](double xm) {
      return xm * (1.0 + (1.0 / (alpha - 1.0)) *
                             (1.0 - std::pow(xm / cap, alpha - 1.0)));
    };
    double lo = 0.0;
    double hi = config_.mean_flow_packets;
    for (int i = 0; i < 60; ++i) {
      const double mid = 0.5 * (lo + hi);
      (capped_mean(mid) < config_.mean_flow_packets ? lo : hi) = mid;
    }
    pareto_xm_ = std::max(0.5 * (lo + hi), 1.0);
  }

  flow_rate_per_ns_ = config_.flow_arrival_rate() / 1e9;
  // First flow arrives after an exponential delay from t=0.
  next_flow_arrival_ =
      timebase::TimePoint::zero() +
      timebase::Duration(static_cast<std::int64_t>(rng_.exponential(flow_rate_per_ns_)));
}

std::uint32_t SyntheticTraceGenerator::draw_packet_size() {
  const double u = rng_.uniform();
  for (std::size_t i = 0; i < size_cdf_.size(); ++i) {
    if (u <= size_cdf_[i]) return config_.size_mix[i].bytes;
  }
  return config_.size_mix.back().bytes;
}

net::FiveTuple SyntheticTraceGenerator::draw_flow_key() {
  net::FiveTuple key;
  key.src = config_.src_pool.address_at(rng_.uniform_u64(config_.src_pool.size()));
  key.dst = config_.dst_pool.address_at(rng_.uniform_u64(config_.dst_pool.size()));
  key.src_port = static_cast<std::uint16_t>(1024 + rng_.uniform_u64(64512));
  key.dst_port = static_cast<std::uint16_t>(rng_.bernoulli(0.5) ? 80 : 443);
  key.proto = static_cast<std::uint8_t>(rng_.bernoulli(config_.tcp_fraction)
                                            ? net::IpProto::kTcp
                                            : net::IpProto::kUdp);
  return key;
}

timebase::Duration SyntheticTraceGenerator::draw_gap() {
  if (config_.burst_probability > 0.0 && rng_.bernoulli(config_.burst_probability)) {
    return config_.burst_gap;
  }
  const double mean_ns = static_cast<double>(config_.mean_packet_gap.ns());
  return timebase::Duration(static_cast<std::int64_t>(rng_.exponential(1.0 / mean_ns)));
}

void SyntheticTraceGenerator::start_next_flow() {
  auto count = static_cast<std::uint64_t>(
      std::llround(rng_.pareto(config_.pareto_alpha, pareto_xm_)));
  count = std::max<std::uint64_t>(1, std::min(count, config_.max_flow_packets));

  ActiveFlow flow;
  flow.next_packet = next_flow_arrival_;
  flow.remaining = count;
  flow.key = draw_flow_key();
  flow.id = flows_started_++;
  active_.push(flow);

  next_flow_arrival_ +=
      timebase::Duration(static_cast<std::int64_t>(rng_.exponential(flow_rate_per_ns_)));
}

std::optional<net::Packet> SyntheticTraceGenerator::next() {
  const timebase::TimePoint horizon = timebase::TimePoint::zero() + config_.duration;
  for (;;) {
    // Admit flow arrivals that precede the earliest pending packet.
    while (next_flow_arrival_ <= horizon &&
           (active_.empty() || next_flow_arrival_ <= active_.top().next_packet)) {
      start_next_flow();
    }
    if (active_.empty()) return std::nullopt;

    ActiveFlow flow = active_.top();
    active_.pop();
    if (flow.next_packet > horizon) {
      // This flow's next packet falls past the end of the trace; the flow is
      // cut (do not reschedule). Loop to check the remaining flows.
      continue;
    }

    net::Packet p;
    p.ts = flow.next_packet;
    p.injected_at = flow.next_packet;
    p.key = flow.key;
    p.size_bytes = draw_packet_size();
    p.kind = config_.kind;
    p.seq = next_seq_++;
    ++packets_emitted_;

    if (--flow.remaining > 0) {
      flow.next_packet += draw_gap();
      active_.push(flow);
    }
    return p;
  }
}

std::vector<net::Packet> SyntheticTraceGenerator::generate_all() {
  std::vector<net::Packet> out;
  while (auto p = next()) out.push_back(*p);
  return out;
}

}  // namespace rlir::trace
