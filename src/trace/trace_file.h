// Binary trace file format, so generated workloads can be persisted and
// replayed bit-identically (the paper replays fixed 1-minute traces; we offer
// the same repeatability without shipping CAIDA data).
//
// Layout (little-endian):
//   header:  magic "RLTR" | u32 version | u64 packet count
//   records: one fixed-size PacketRecord per packet, in file order
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.h"

namespace rlir::trace {

inline constexpr std::uint32_t kTraceFileVersion = 1;

/// Serializes packets to a stream/file. Throws std::runtime_error on I/O
/// failure.
class TraceWriter {
 public:
  static void write(std::ostream& out, const std::vector<net::Packet>& packets);
  static void write_file(const std::string& path, const std::vector<net::Packet>& packets);
};

/// Deserializes packets. Throws std::runtime_error on malformed input
/// (bad magic, version mismatch, truncated records).
class TraceReader {
 public:
  [[nodiscard]] static std::vector<net::Packet> read(std::istream& in);
  [[nodiscard]] static std::vector<net::Packet> read_file(const std::string& path);

  /// Streaming read: invokes `fn` once per packet in file order without
  /// materializing the trace (memory stays O(1) however large the file —
  /// the ingest path for replay and collector benchmarks). Returns the
  /// number of packets visited. Same error behavior as read().
  using PacketFn = std::function<void(const net::Packet&)>;
  static std::uint64_t for_each(std::istream& in, const PacketFn& fn);
  static std::uint64_t for_each_file(const std::string& path, const PacketFn& fn);
};

}  // namespace rlir::trace
