// Binary trace file format, so generated workloads can be persisted and
// replayed bit-identically (the paper replays fixed 1-minute traces; we offer
// the same repeatability without shipping CAIDA data).
//
// Layout (little-endian):
//   header:  magic "RLTR" | u32 version | u64 packet count
//   records: one fixed-size PacketRecord per packet, in file order
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.h"

namespace rlir::trace {

inline constexpr std::uint32_t kTraceFileVersion = 1;

/// Serializes packets to a stream/file. Throws std::runtime_error on I/O
/// failure.
class TraceWriter {
 public:
  static void write(std::ostream& out, const std::vector<net::Packet>& packets);
  static void write_file(const std::string& path, const std::vector<net::Packet>& packets);
};

/// Deserializes packets. Throws std::runtime_error on malformed input
/// (bad magic, version mismatch, truncated records).
class TraceReader {
 public:
  [[nodiscard]] static std::vector<net::Packet> read(std::istream& in);
  [[nodiscard]] static std::vector<net::Packet> read_file(const std::string& path);
};

}  // namespace rlir::trace
