// YAF-like flowmeter: aggregates a packet stream into flow records.
//
// The paper's in-house simulator is "based on an open-source NetFlow
// software—YAF". We use the flowmeter for (a) trace statistics (packet/flow
// counts for the Section 4.1 table) and (b) the Multiflow baseline, which
// needs NetFlow's per-flow first/last timestamps at two observation points.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/flow_key.h"
#include "net/packet.h"
#include "timebase/time.h"

namespace rlir::trace {

struct FlowRecord {
  net::FiveTuple key;
  timebase::TimePoint first_ts;
  timebase::TimePoint last_ts;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] timebase::Duration duration() const { return last_ts - first_ts; }
};

struct FlowmeterConfig {
  /// A flow is exported when no packet has been seen for this long.
  timebase::Duration idle_timeout = timebase::Duration::seconds(30);
  /// A flow is force-exported (and restarted) after this long, YAF-style.
  timebase::Duration active_timeout = timebase::Duration::seconds(300);
};

class Flowmeter {
 public:
  using ExportSink = std::function<void(const FlowRecord&)>;

  explicit Flowmeter(FlowmeterConfig config = {});

  /// Optional callback invoked for every exported record (on timeout and on
  /// flush). Without a sink, exported records accumulate internally.
  void set_export_sink(ExportSink sink) { sink_ = std::move(sink); }

  /// Feeds one packet. Timestamps must be nondecreasing.
  void observe(const net::Packet& packet);

  /// Exports all still-active flows (end of trace).
  void flush();

  /// Records exported so far (only populated when no sink is set).
  [[nodiscard]] const std::vector<FlowRecord>& exported() const { return exported_; }

  [[nodiscard]] std::size_t active_flows() const { return table_.size(); }
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_flows_exported() const { return flows_exported_; }

 private:
  void export_record(const FlowRecord& rec);
  void evict_idle(timebase::TimePoint now);

  FlowmeterConfig config_;
  std::unordered_map<net::FiveTuple, FlowRecord> table_;
  std::vector<FlowRecord> exported_;
  ExportSink sink_;
  timebase::TimePoint last_seen_ = timebase::TimePoint::zero();
  timebase::TimePoint last_eviction_scan_ = timebase::TimePoint::zero();
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t flows_exported_ = 0;
};

}  // namespace rlir::trace
