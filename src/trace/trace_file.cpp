#include "trace/trace_file.h"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/wire.h"

namespace rlir::trace {

namespace {

using common::wire::put;
using common::wire::take;

constexpr std::array<char, 4> kMagic = {'R', 'L', 'T', 'R'};

// On-disk packet record. Packed manually into a byte buffer field by field —
// no struct memcpy — so the format is independent of compiler padding.
constexpr std::size_t kRecordSize = 8 + 8 + 8 +      // ts, injected_at, ref_stamp
                                    4 + 4 + 2 + 2 +  // src, dst, sport, dport
                                    1 + 1 + 2 + 1 +  // proto, kind, sender, tos
                                    4 + 8;           // size_bytes, seq

void encode(const net::Packet& pkt, std::uint8_t* buf) {
  std::uint8_t* p = buf;
  put<std::int64_t>(p, pkt.ts.ns());
  put<std::int64_t>(p, pkt.injected_at.ns());
  put<std::int64_t>(p, pkt.ref_stamp.ns());
  put<std::uint32_t>(p, pkt.key.src.value());
  put<std::uint32_t>(p, pkt.key.dst.value());
  put<std::uint16_t>(p, pkt.key.src_port);
  put<std::uint16_t>(p, pkt.key.dst_port);
  put<std::uint8_t>(p, pkt.key.proto);
  put<std::uint8_t>(p, static_cast<std::uint8_t>(pkt.kind));
  put<std::uint16_t>(p, pkt.sender);
  put<std::uint8_t>(p, pkt.tos);
  put<std::uint32_t>(p, pkt.size_bytes);
  put<std::uint64_t>(p, pkt.seq);
}

net::Packet decode(const std::uint8_t* buf) {
  const std::uint8_t* p = buf;
  net::Packet pkt;
  pkt.ts = timebase::TimePoint(take<std::int64_t>(p));
  pkt.injected_at = timebase::TimePoint(take<std::int64_t>(p));
  pkt.ref_stamp = timebase::TimePoint(take<std::int64_t>(p));
  pkt.key.src = net::Ipv4Address(take<std::uint32_t>(p));
  pkt.key.dst = net::Ipv4Address(take<std::uint32_t>(p));
  pkt.key.src_port = take<std::uint16_t>(p);
  pkt.key.dst_port = take<std::uint16_t>(p);
  pkt.key.proto = take<std::uint8_t>(p);
  pkt.kind = static_cast<net::PacketKind>(take<std::uint8_t>(p));
  pkt.sender = take<std::uint16_t>(p);
  pkt.tos = take<std::uint8_t>(p);
  pkt.size_bytes = take<std::uint32_t>(p);
  pkt.seq = take<std::uint64_t>(p);
  return pkt;
}

}  // namespace

void TraceWriter::write(std::ostream& out, const std::vector<net::Packet>& packets) {
  out.write(kMagic.data(), kMagic.size());
  std::uint8_t header[12];
  std::uint8_t* p = header;
  put<std::uint32_t>(p, kTraceFileVersion);
  put<std::uint64_t>(p, packets.size());
  out.write(reinterpret_cast<const char*>(header), sizeof(header));

  std::uint8_t record[kRecordSize];
  for (const auto& pkt : packets) {
    encode(pkt, record);
    out.write(reinterpret_cast<const char*>(record), sizeof(record));
  }
  if (!out) throw std::runtime_error("TraceWriter: stream write failed");
}

void TraceWriter::write_file(const std::string& path, const std::vector<net::Packet>& packets) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("TraceWriter: cannot open " + path);
  write(out, packets);
}

namespace {

/// Validates magic + version and returns the declared record count.
std::uint64_t read_trace_header(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw std::runtime_error("TraceReader: bad magic");

  std::uint8_t header[12];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in) throw std::runtime_error("TraceReader: truncated header");
  const std::uint8_t* hp = header;
  const auto version = take<std::uint32_t>(hp);
  const auto count = take<std::uint64_t>(hp);
  if (version != kTraceFileVersion) {
    throw std::runtime_error("TraceReader: unsupported version " + std::to_string(version));
  }
  return count;
}

}  // namespace

std::uint64_t TraceReader::for_each(std::istream& in, const PacketFn& fn) {
  const auto count = read_trace_header(in);
  std::uint8_t record[kRecordSize];
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(record), sizeof(record));
    if (!in) throw std::runtime_error("TraceReader: truncated record");
    fn(decode(record));
  }
  return count;
}

std::uint64_t TraceReader::for_each_file(const std::string& path, const PacketFn& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("TraceReader: cannot open " + path);
  return for_each(in, fn);
}

std::vector<net::Packet> TraceReader::read(std::istream& in) {
  const auto count = read_trace_header(in);
  std::vector<net::Packet> packets;
  packets.reserve(count);
  std::uint8_t record[kRecordSize];
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(record), sizeof(record));
    if (!in) throw std::runtime_error("TraceReader: truncated record");
    packets.push_back(decode(record));
  }
  return packets;
}

std::vector<net::Packet> TraceReader::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("TraceReader: cannot open " + path);
  return read(in);
}

}  // namespace rlir::trace
