#include "trace/flowmeter.h"

#include <stdexcept>

namespace rlir::trace {

Flowmeter::Flowmeter(FlowmeterConfig config) : config_(config) {}

void Flowmeter::export_record(const FlowRecord& rec) {
  ++flows_exported_;
  if (sink_) {
    sink_(rec);
  } else {
    exported_.push_back(rec);
  }
}

void Flowmeter::evict_idle(timebase::TimePoint now) {
  // Amortized scan: walk the table at most once per idle_timeout period.
  if (now - last_eviction_scan_ < config_.idle_timeout) return;
  last_eviction_scan_ = now;
  for (auto it = table_.begin(); it != table_.end();) {
    if (now - it->second.last_ts >= config_.idle_timeout) {
      export_record(it->second);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

void Flowmeter::observe(const net::Packet& packet) {
  if (packet.ts < last_seen_) {
    throw std::logic_error("Flowmeter::observe: timestamps must be nondecreasing");
  }
  last_seen_ = packet.ts;
  evict_idle(packet.ts);

  ++total_packets_;
  total_bytes_ += packet.size_bytes;

  auto [it, inserted] = table_.try_emplace(packet.key);
  FlowRecord& rec = it->second;
  if (inserted) {
    rec.key = packet.key;
    rec.first_ts = packet.ts;
  } else if (packet.ts - rec.first_ts >= config_.active_timeout) {
    // Active timeout: export the long-lived flow and restart it, as YAF does.
    export_record(rec);
    rec = FlowRecord{};
    rec.key = packet.key;
    rec.first_ts = packet.ts;
  }
  rec.last_ts = packet.ts;
  ++rec.packets;
  rec.bytes += packet.size_bytes;
}

void Flowmeter::flush() {
  for (const auto& [key, rec] : table_) export_record(rec);
  table_.clear();
}

}  // namespace rlir::trace
