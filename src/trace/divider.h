// Traffic divider: the first block of the paper's Figure-3 simulator.
//
// "The simulator reads a packet trace and classifies packets as either
// regular traffic ones or cross traffic ones based on IP addresses."
#pragma once

#include "net/ipv4.h"
#include "net/packet.h"
#include "net/prefix_table.h"

namespace rlir::trace {

class TrafficDivider {
 public:
  /// Registers a source-address block carrying regular (measured) traffic.
  void add_regular(const net::Ipv4Prefix& prefix) {
    table_.insert(prefix, net::PacketKind::kRegular);
  }

  /// Registers a source-address block carrying cross traffic.
  void add_cross(const net::Ipv4Prefix& prefix) {
    table_.insert(prefix, net::PacketKind::kCross);
  }

  /// Classifies by longest-prefix match on the source address; packets from
  /// unregistered blocks default to cross traffic (they are not measured).
  [[nodiscard]] net::PacketKind classify(const net::Packet& packet) const {
    const auto kind = table_.lookup(packet.key.src);
    return kind.value_or(net::PacketKind::kCross);
  }

  /// Classifies and stamps the packet's kind field.
  [[nodiscard]] net::Packet divide(net::Packet packet) const {
    packet.kind = classify(packet);
    return packet;
  }

  [[nodiscard]] std::size_t rule_count() const { return table_.size(); }

 private:
  net::PrefixTable<net::PacketKind> table_;
};

}  // namespace rlir::trace
