#include "topo/ecmp.h"

#include <array>
#include <stdexcept>

namespace rlir::topo {

namespace {

/// Canonical byte representation of a flow key for hashing: fixed layout,
/// little-endian, salted by prepending the router salt.
std::array<std::byte, 21> key_bytes(const net::FiveTuple& key, std::uint64_t salt) {
  std::array<std::byte, 21> buf{};
  auto put32 = [&](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf[at + i] = static_cast<std::byte>(v >> (8 * i));
  };
  auto put16 = [&](std::size_t at, std::uint16_t v) {
    for (int i = 0; i < 2; ++i) buf[at + i] = static_cast<std::byte>(v >> (8 * i));
  };
  put32(0, static_cast<std::uint32_t>(salt));
  put32(4, static_cast<std::uint32_t>(salt >> 32));
  put32(8, key.src.value());
  put32(12, key.dst.value());
  put16(16, key.src_port);
  put16(18, key.dst_port);
  buf[20] = static_cast<std::byte>(key.proto);
  return buf;
}

}  // namespace

std::uint32_t Crc32EcmpHasher::hash(const net::FiveTuple& key, std::uint64_t salt) const {
  // CRC alone polarizes: CRC is linear, so crc(salt_a || key) and
  // crc(salt_b || key) differ by a key-independent constant and two routers
  // make perfectly correlated ECMP choices (real fabrics hit exactly this).
  // Hardware implementations therefore mix the seed nonlinearly after the
  // CRC stage; we do the same.
  const auto bytes = key_bytes(key, salt);
  const std::uint32_t crc = net::crc32c(bytes);
  return static_cast<std::uint32_t>(net::mix64(static_cast<std::uint64_t>(crc) ^ salt));
}

std::uint32_t JenkinsEcmpHasher::hash(const net::FiveTuple& key, std::uint64_t salt) const {
  const auto bytes = key_bytes(key, salt);
  return net::jenkins_lookup3(bytes);
}

std::uint32_t XorFoldEcmpHasher::hash(const net::FiveTuple& key, std::uint64_t salt) const {
  // Hardware-style: fold addresses and ports, xor with a folded salt.
  const std::uint32_t folded_salt =
      static_cast<std::uint32_t>(salt) ^ static_cast<std::uint32_t>(salt >> 32);
  std::uint32_t h = key.src.value() ^ key.dst.value() ^ folded_salt;
  h ^= (std::uint32_t{key.src_port} << 16) | key.dst_port;
  h ^= key.proto;
  return net::xor_fold16(h);
}

std::uint64_t router_salt(const FatTree& topo, NodeId node) {
  return net::mix64(0x5a175a17ULL ^ topo.flat_index(node));
}

std::vector<NodeId> ecmp_route(const FatTree& topo, const EcmpHasher& hasher,
                               const net::FiveTuple& key, NodeId src_tor, NodeId dst_tor) {
  const int half = topo.k() / 2;
  if (src_tor == dst_tor) return {src_tor};

  const std::uint32_t edge_pos =
      hasher.select(key, router_salt(topo, src_tor), static_cast<std::uint32_t>(half));
  const NodeId up_edge = topo.edge(src_tor.pod, static_cast<int>(edge_pos));

  if (src_tor.pod == dst_tor.pod) {
    return {src_tor, up_edge, dst_tor};
  }

  const std::uint32_t core_off =
      hasher.select(key, router_salt(topo, up_edge), static_cast<std::uint32_t>(half));
  const NodeId via_core = topo.core_for(static_cast<int>(edge_pos), static_cast<int>(core_off));
  const NodeId down_edge = topo.edge(dst_tor.pod, static_cast<int>(edge_pos));
  return {src_tor, up_edge, via_core, down_edge, dst_tor};
}

NodeId reverse_ecmp_core(const FatTree& topo, const EcmpHasher& hasher,
                         const net::FiveTuple& key, NodeId src_tor, NodeId dst_tor) {
  if (src_tor.pod == dst_tor.pod) {
    throw std::invalid_argument("reverse_ecmp_core: same-pod flows do not cross a core");
  }
  const auto route = ecmp_route(topo, hasher, key, src_tor, dst_tor);
  return route.at(2);  // {src_tor, edge, core, edge, dst_tor}
}

}  // namespace rlir::topo
