#include "topo/fattree.h"

#include <stdexcept>

namespace rlir::topo {

std::string NodeId::name(int k) const {
  const int half = k / 2;
  switch (tier) {
    case Tier::kTor: return "T" + std::to_string(pod * half + index + 1);
    case Tier::kEdge: return "E" + std::to_string(pod * half + index + 1);
    case Tier::kCore: return "C" + std::to_string(index + 1);
  }
  return "?";
}

FatTree::FatTree(int k) : k_(k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("FatTree: k must be even and >= 2");
  }
  if (k > 254) {
    throw std::invalid_argument("FatTree: k too large for 10.pod.tor.0/24 addressing");
  }
}

NodeId FatTree::tor(int pod, int index) const {
  if (pod < 0 || pod >= pods() || index < 0 || index >= tors_per_pod()) {
    throw std::out_of_range("FatTree::tor: pod/index out of range");
  }
  return NodeId{Tier::kTor, static_cast<std::uint16_t>(pod), static_cast<std::uint16_t>(index)};
}

NodeId FatTree::edge(int pod, int index) const {
  if (pod < 0 || pod >= pods() || index < 0 || index >= edges_per_pod()) {
    throw std::out_of_range("FatTree::edge: pod/index out of range");
  }
  return NodeId{Tier::kEdge, static_cast<std::uint16_t>(pod), static_cast<std::uint16_t>(index)};
}

NodeId FatTree::core(int index) const {
  if (index < 0 || index >= core_count()) {
    throw std::out_of_range("FatTree::core: index out of range");
  }
  return NodeId{Tier::kCore, 0, static_cast<std::uint16_t>(index)};
}

std::vector<NodeId> FatTree::cores() const {
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(core_count()));
  for (int c = 0; c < core_count(); ++c) nodes.push_back(core(c));
  return nodes;
}

std::vector<NodeId> FatTree::switches() const {
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(switch_count()));
  for (std::size_t flat = 0; flat < static_cast<std::size_t>(switch_count()); ++flat) {
    nodes.push_back(from_flat_index(flat));
  }
  return nodes;
}

NodeId FatTree::core_for(int edge_index, int j) const {
  const int half = k_ / 2;
  if (edge_index < 0 || edge_index >= half || j < 0 || j >= half) {
    throw std::out_of_range("FatTree::core_for: edge_index/j out of range");
  }
  return core(edge_index * half + j);
}

int FatTree::edge_position_for_core(int core_index) const {
  if (core_index < 0 || core_index >= core_count()) {
    throw std::out_of_range("FatTree::edge_position_for_core: index out of range");
  }
  return core_index / (k_ / 2);
}

std::size_t FatTree::flat_index(NodeId node) const {
  const int half = k_ / 2;
  switch (node.tier) {
    case Tier::kTor:
      return static_cast<std::size_t>(node.pod) * half + node.index;
    case Tier::kEdge:
      return static_cast<std::size_t>(tor_count()) +
             static_cast<std::size_t>(node.pod) * half + node.index;
    case Tier::kCore:
      return static_cast<std::size_t>(tor_count()) + edge_count() + node.index;
  }
  throw std::logic_error("FatTree::flat_index: bad tier");
}

NodeId FatTree::from_flat_index(std::size_t flat) const {
  const int half = k_ / 2;
  if (flat < static_cast<std::size_t>(tor_count())) {
    return NodeId{Tier::kTor, static_cast<std::uint16_t>(flat / half),
                  static_cast<std::uint16_t>(flat % half)};
  }
  flat -= tor_count();
  if (flat < static_cast<std::size_t>(edge_count())) {
    return NodeId{Tier::kEdge, static_cast<std::uint16_t>(flat / half),
                  static_cast<std::uint16_t>(flat % half)};
  }
  flat -= edge_count();
  if (flat < static_cast<std::size_t>(core_count())) {
    return NodeId{Tier::kCore, 0, static_cast<std::uint16_t>(flat)};
  }
  throw std::out_of_range("FatTree::from_flat_index: index out of range");
}

void FatTree::check_tor(NodeId n, const char* who) const {
  if (n.tier != Tier::kTor || n.pod >= pods() || n.index >= tors_per_pod()) {
    throw std::invalid_argument(std::string(who) + ": not a valid ToR node");
  }
}

void FatTree::check_core(NodeId n, const char* who) const {
  if (n.tier != Tier::kCore || n.index >= core_count()) {
    throw std::invalid_argument(std::string(who) + ": not a valid core node");
  }
}

net::Ipv4Prefix FatTree::host_prefix(NodeId tor_node) const {
  check_tor(tor_node, "FatTree::host_prefix");
  return net::Ipv4Prefix(
      net::Ipv4Address(10, static_cast<std::uint8_t>(tor_node.pod),
                       static_cast<std::uint8_t>(tor_node.index), 0),
      24);
}

net::Ipv4Address FatTree::host_address(NodeId tor_node, int host) const {
  check_tor(tor_node, "FatTree::host_address");
  if (host < 0 || host > 253) {
    throw std::out_of_range("FatTree::host_address: host out of range");
  }
  return net::Ipv4Address(10, static_cast<std::uint8_t>(tor_node.pod),
                          static_cast<std::uint8_t>(tor_node.index),
                          static_cast<std::uint8_t>(host + 1));
}

std::optional<NodeId> FatTree::tor_for_address(net::Ipv4Address addr) const {
  if (addr.octet(0) != 10) return std::nullopt;
  const int pod = addr.octet(1);
  const int index = addr.octet(2);
  if (pod >= pods() || index >= tors_per_pod()) return std::nullopt;
  return tor(pod, index);
}

bool FatTree::adjacent(NodeId a, NodeId b) const {
  if (a.tier > b.tier) std::swap(a, b);
  if (a.tier == Tier::kTor && b.tier == Tier::kEdge) {
    return a.pod == b.pod;  // full bipartite within a pod
  }
  if (a.tier == Tier::kEdge && b.tier == Tier::kCore) {
    return edge_position_for_core(b.index) == a.index;
  }
  return false;
}

std::vector<NodeId> FatTree::neighbors(NodeId node) const {
  const int half = k_ / 2;
  std::vector<NodeId> out;
  switch (node.tier) {
    case Tier::kTor:
      out.reserve(half);
      for (int e = 0; e < half; ++e) out.push_back(edge(node.pod, e));
      break;
    case Tier::kEdge:
      out.reserve(k_);
      for (int t = 0; t < half; ++t) out.push_back(tor(node.pod, t));
      for (int j = 0; j < half; ++j) out.push_back(core_for(node.index, j));
      break;
    case Tier::kCore:
      out.reserve(k_);
      for (int p = 0; p < k_; ++p) {
        out.push_back(edge(p, edge_position_for_core(node.index)));
      }
      break;
  }
  return out;
}

std::vector<std::vector<NodeId>> FatTree::paths_between(NodeId src_tor, NodeId dst_tor) const {
  check_tor(src_tor, "FatTree::paths_between(src)");
  check_tor(dst_tor, "FatTree::paths_between(dst)");
  const int half = k_ / 2;
  std::vector<std::vector<NodeId>> paths;

  if (src_tor == dst_tor) {
    paths.push_back({src_tor});
    return paths;
  }
  if (src_tor.pod == dst_tor.pod) {
    for (int e = 0; e < half; ++e) {
      paths.push_back({src_tor, edge(src_tor.pod, e), dst_tor});
    }
    return paths;
  }
  for (int e = 0; e < half; ++e) {
    for (int j = 0; j < half; ++j) {
      paths.push_back({src_tor, edge(src_tor.pod, e), core_for(e, j),
                       edge(dst_tor.pod, e), dst_tor});
    }
  }
  return paths;
}

std::vector<NodeId> FatTree::upward_path(NodeId src_tor, NodeId core_node) const {
  check_tor(src_tor, "FatTree::upward_path");
  check_core(core_node, "FatTree::upward_path");
  const int e = edge_position_for_core(core_node.index);
  return {src_tor, edge(src_tor.pod, e), core_node};
}

std::vector<NodeId> FatTree::downward_path(NodeId core_node, NodeId dst_tor) const {
  check_tor(dst_tor, "FatTree::downward_path");
  check_core(core_node, "FatTree::downward_path");
  const int e = edge_position_for_core(core_node.index);
  return {core_node, edge(dst_tor.pod, e), dst_tor};
}

}  // namespace rlir::topo
