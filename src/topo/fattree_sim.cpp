#include "topo/fattree_sim.h"

#include <stdexcept>

namespace rlir::topo {

FatTreeSim::FatTreeSim(const FatTree* topo, FatTreeSimConfig config, const EcmpHasher* hasher)
    : topo_(topo), config_(config), hasher_(hasher) {
  if (topo_ == nullptr || hasher_ == nullptr) {
    throw std::invalid_argument("FatTreeSim: topology and hasher must not be null");
  }
}

void FatTreeSim::add_arrival_tap(NodeId node, sim::PacketTap* tap) {
  taps_[topo_->flat_index(node)].push_back(tap);
}

void FatTreeSim::add_agent(NodeId node, NodeAgent* agent) {
  agents_[topo_->flat_index(node)].push_back(agent);
}

void FatTreeSim::add_extra_delay(NodeId node, timebase::Duration extra) {
  extra_delay_[topo_->flat_index(node)] += extra;
}

sim::FifoQueue& FatTreeSim::link_queue(NodeId from, NodeId to) {
  const LinkKey key{topo_->flat_index(from), topo_->flat_index(to)};
  auto it = links_.find(key);
  if (it == links_.end()) {
    if (!topo_->adjacent(from, to)) {
      throw std::logic_error("FatTreeSim: forwarding over non-existent link " +
                             from.name(topo_->k()) + "->" + to.name(topo_->k()));
    }
    sim::QueueConfig qc = config_.link_queue;
    qc.name = from.name(topo_->k()) + "->" + to.name(topo_->k());
    // A slow node (injected anomaly) adds forwarding delay on all its egress
    // queues.
    if (const auto extra = extra_delay_.find(key.first); extra != extra_delay_.end()) {
      qc.processing_delay += extra->second;
    }
    it = links_.emplace(key, sim::FifoQueue(qc)).first;
  }
  return it->second;
}

const sim::QueueStats* FatTreeSim::link_stats(NodeId from, NodeId to) const {
  const LinkKey key{topo_->flat_index(from), topo_->flat_index(to)};
  const auto it = links_.find(key);
  return it == links_.end() ? nullptr : &it->second.stats();
}

void FatTreeSim::inject_from_host(net::Packet packet) {
  const auto src_tor = topo_->tor_for_address(packet.key.src);
  if (!src_tor) {
    throw std::invalid_argument("FatTreeSim::inject_from_host: source address " +
                                packet.key.src.to_string() + " is not under any ToR");
  }
  packet.injected_at = packet.ts;
  ++stats_.injected;
  const NodeId node = *src_tor;
  events_.schedule(packet.ts, [this, packet, node] { handle_arrival(packet, node); });
}

void FatTreeSim::inject_reference(net::Packet packet, NodeId from, NodeId to) {
  ExplicitRoute route;
  if (from.tier == Tier::kTor && to.tier == Tier::kCore) {
    route.path = topo_->upward_path(from, to);
  } else if (from.tier == Tier::kCore && to.tier == Tier::kTor) {
    route.path = topo_->downward_path(from, to);
  } else {
    throw std::invalid_argument(
        "FatTreeSim::inject_reference: only ToR->core and core->ToR probes are supported");
  }
  explicit_routes_[packet.seq] = std::move(route);
  ++stats_.injected;

  // The probe starts its journey at `from`: it enters that node's egress
  // queue immediately (behind whatever regular packet triggered it).
  const NodeId next = explicit_routes_[packet.seq].path.at(1);
  explicit_routes_[packet.seq].position = 1;
  if (events_.now() >= packet.ts) {
    forward(packet, from, next);
  } else {
    events_.schedule(packet.ts, [this, packet, from, next] { forward(packet, from, next); });
  }
}

NodeId FatTreeSim::route_next_hop(const net::Packet& packet, NodeId node) const {
  const int half = topo_->k() / 2;
  const auto dst_tor = topo_->tor_for_address(packet.key.dst);
  if (!dst_tor) {
    throw std::logic_error("FatTreeSim: destination " + packet.key.dst.to_string() +
                           " is not under any ToR");
  }

  switch (node.tier) {
    case Tier::kTor: {
      // Upward: the ToR hashes the flow over its k/2 edge uplinks.
      const auto pos = hasher_->select(packet.key, router_salt(*topo_, node),
                                       static_cast<std::uint32_t>(half));
      return topo_->edge(node.pod, static_cast<int>(pos));
    }
    case Tier::kEdge: {
      if (dst_tor->pod == node.pod) {
        return *dst_tor;  // downward within the pod
      }
      // Upward: the edge hashes the flow over its k/2 core uplinks.
      const auto j = hasher_->select(packet.key, router_salt(*topo_, node),
                                     static_cast<std::uint32_t>(half));
      return topo_->core_for(node.index, static_cast<int>(j));
    }
    case Tier::kCore:
      // Downward: deterministic — the edge at this core's position in the
      // destination pod.
      return topo_->edge(dst_tor->pod, topo_->edge_position_for_core(node.index));
  }
  throw std::logic_error("FatTreeSim::route_next_hop: bad tier");
}

void FatTreeSim::forward(net::Packet packet, NodeId from, NodeId to) {
  auto& queue = link_queue(from, to);
  const auto departure = queue.offer(packet, packet.ts);
  if (!departure) {
    ++stats_.dropped;
    explicit_routes_.erase(packet.seq);
    return;
  }
  ++stats_.forwarded_hops;
  packet.ts = *departure + config_.propagation;
  events_.schedule(packet.ts, [this, packet, to] { handle_arrival(packet, to); });
}

void FatTreeSim::handle_arrival(net::Packet packet, NodeId node) {
  // Core marking (ToS demux strategy): the core stamps its identity.
  if (config_.core_marking && node.tier == Tier::kCore &&
      packet.kind == net::PacketKind::kRegular) {
    packet.tos = static_cast<net::TosMark>(node.index + 1);
  }

  const std::size_t flat = topo_->flat_index(node);
  if (const auto taps = taps_.find(flat); taps != taps_.end()) {
    for (sim::PacketTap* tap : taps->second) tap->on_packet(packet, packet.ts);
  }
  if (const auto agents = agents_.find(flat); agents != agents_.end()) {
    for (NodeAgent* agent : agents->second) agent->on_arrival(packet, node, *this);
  }

  // Reference packets follow their pinned route and are consumed at its end.
  if (const auto route_it = explicit_routes_.find(packet.seq);
      packet.is_reference() && route_it != explicit_routes_.end()) {
    ExplicitRoute& route = route_it->second;
    if (route.position + 1 >= route.path.size()) {
      ++stats_.delivered_reference;
      explicit_routes_.erase(route_it);
      return;
    }
    const NodeId next = route.path[++route.position];
    forward(packet, node, next);
    return;
  }

  // Regular/cross packets: delivered once they reach the destination ToR.
  const auto dst_tor = topo_->tor_for_address(packet.key.dst);
  if (dst_tor && node == *dst_tor) {
    ++stats_.delivered_regular;
    return;
  }
  forward(packet, node, route_next_hop(packet, node));
}

void FatTreeSim::run() { events_.run_until_empty(); }

void FatTreeSim::run_until(timebase::TimePoint deadline) { events_.run_until(deadline); }

}  // namespace rlir::topo
