// Deployment-cost model for RLIR (paper Section 3.1, "Partial Placement
// Complexity").
//
// The paper counts measurement instances (each instance can play the dual
// role of sender and receiver) for a k-ary fat-tree at three RLIR
// granularities, against full RLI deployment:
//
//   granularity                      instances
//   one pair of ToR interfaces       k + 2           (2 per core's relevant
//                                                     interfaces at k/2 cores
//                                                     + 1 at each ToR)
//   one pair of ToR switches         k(k+2)/2
//   every pair of ToR switches       (k/2)^2 (k+1)   ((k/2)^2 k at cores +
//                                                     (k/2)^2 at ToRs)
//   full RLI deployment              O(k^4)          (two instances per pair
//                                                     of interfaces in every
//                                                     switch)
//
// Formulas are implemented exactly as printed; full deployment is also
// counted exactly from the topology (every switch has k ports; two instances
// per unordered interface pair) so tests can verify the O(k^4) claim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/fattree.h"

namespace rlir::topo {

/// Measurement granularity the operator wants (Section 3.1's three cases).
enum class DeploymentGranularity : std::uint8_t {
  kInterfacePair,  ///< one (sender interface, receiver interface) ToR pair
  kTorPair,        ///< all interface pairs between two ToR switches
  kAllTorPairs,    ///< per-flow latency between every pair of ToR switches
};

[[nodiscard]] constexpr const char* to_string(DeploymentGranularity g) {
  switch (g) {
    case DeploymentGranularity::kInterfacePair: return "interface-pair";
    case DeploymentGranularity::kTorPair: return "tor-pair";
    case DeploymentGranularity::kAllTorPairs: return "all-tor-pairs";
  }
  return "?";
}

/// RLIR instance count at a granularity (paper formulas).
[[nodiscard]] std::uint64_t rlir_instances(int k, DeploymentGranularity g);

/// Exact full-deployment instance count: two instances per unordered pair of
/// interfaces, in every ToR/edge/core switch (each has k interfaces).
[[nodiscard]] std::uint64_t full_deployment_instances(int k);

/// One row of the Section 3.1 comparison.
struct PlacementRow {
  int k = 0;
  std::uint64_t interface_pair = 0;
  std::uint64_t tor_pair = 0;
  std::uint64_t all_tor_pairs = 0;
  std::uint64_t full_deployment = 0;
  /// all_tor_pairs / full_deployment: the cost reduction RLIR buys.
  [[nodiscard]] double savings_ratio() const;
};

[[nodiscard]] PlacementRow placement_row(int k);

/// A concrete plan: which switches host instances for a measurement between
/// two ToRs (paper example: S1 at T1, R3 at T7, dual-role instances at every
/// core). Derived from the topology, not the closed forms, so the two can be
/// cross-checked.
struct PlacementPlan {
  NodeId src_tor;
  NodeId dst_tor;
  std::vector<NodeId> instance_nodes;  ///< ToRs + cores hosting instances
  std::uint64_t instance_count = 0;    ///< interface-level instance count
  /// Segments the path is split into, e.g. "T1-C1" and "C1-T7".
  std::vector<std::string> segments;
};

/// Plan for measuring one pair of ToR interfaces across all feasible cores.
[[nodiscard]] PlacementPlan plan_interface_pair(const FatTree& topo, NodeId src_tor,
                                                NodeId dst_tor);

}  // namespace rlir::topo
