// k-ary fat-tree topology (the data-center fabric of the paper's Figure 1:
// ToR, edge/aggregation, and core tiers).
//
// Structure for even k:
//   * k pods; each pod has k/2 ToR switches and k/2 edge (aggregation)
//     switches; every ToR connects to every edge switch in its pod;
//   * (k/2)^2 core switches; edge switch at position i in each pod connects
//     to cores [i*k/2, (i+1)*k/2);
//   * each ToR serves k/2 hosts (not modeled individually; a ToR owns an IP
//     block, which is what RLIR's prefix demultiplexer keys on).
//
// A consequence RLIR exploits: the path ToR -> specific core is *unique*
// (ToR -> edge i -> core (i,j)); all ECMP ambiguity is in which core a flow
// hashes to. Receivers at cores therefore see path-unambiguous upstream
// segments, and the downstream demultiplexer only has to recover the core.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace rlir::topo {

enum class Tier : std::uint8_t { kTor, kEdge, kCore };

[[nodiscard]] constexpr const char* to_string(Tier t) {
  switch (t) {
    case Tier::kTor: return "tor";
    case Tier::kEdge: return "edge";
    case Tier::kCore: return "core";
  }
  return "?";
}

/// Dense node identifier: tier + position. For ToR/edge, `pod` and `index`
/// (position within pod); for core, `index` alone (pod is 0).
struct NodeId {
  Tier tier = Tier::kTor;
  std::uint16_t pod = 0;
  std::uint16_t index = 0;

  friend constexpr auto operator<=>(const NodeId&, const NodeId&) = default;

  /// Paper-style name: T1..T8, E1..E8, C1..C4 (1-based across pods).
  [[nodiscard]] std::string name(int k) const;
};

class FatTree {
 public:
  /// k must be even and >= 2.
  explicit FatTree(int k);

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int pods() const { return k_; }
  [[nodiscard]] int tors_per_pod() const { return k_ / 2; }
  [[nodiscard]] int edges_per_pod() const { return k_ / 2; }
  [[nodiscard]] int tor_count() const { return k_ * k_ / 2; }
  [[nodiscard]] int edge_count() const { return k_ * k_ / 2; }
  [[nodiscard]] int core_count() const { return (k_ / 2) * (k_ / 2); }
  [[nodiscard]] int switch_count() const { return tor_count() + edge_count() + core_count(); }
  [[nodiscard]] int hosts_per_tor() const { return k_ / 2; }
  [[nodiscard]] int host_count() const { return tor_count() * hosts_per_tor(); }

  [[nodiscard]] NodeId tor(int pod, int index) const;
  [[nodiscard]] NodeId edge(int pod, int index) const;
  [[nodiscard]] NodeId core(int index) const;
  /// All core switches in index order (fleet deployment loops).
  [[nodiscard]] std::vector<NodeId> cores() const;
  /// Every switch, in flat-index order (ToRs, then edges, then cores) —
  /// "deploy a vantage at every router in the data center".
  [[nodiscard]] std::vector<NodeId> switches() const;
  /// Core connected to edge-position `edge_index` at offset `j` (j < k/2).
  [[nodiscard]] NodeId core_for(int edge_index, int j) const;
  /// The edge position every path to core `core_index` must use.
  [[nodiscard]] int edge_position_for_core(int core_index) const;

  /// Flat dense index over all switches (for vectors keyed by node).
  [[nodiscard]] std::size_t flat_index(NodeId node) const;
  [[nodiscard]] NodeId from_flat_index(std::size_t flat) const;

  /// Address block owned by a ToR: 10.pod.tor.0/24.
  [[nodiscard]] net::Ipv4Prefix host_prefix(NodeId tor) const;
  /// i-th host address under a ToR.
  [[nodiscard]] net::Ipv4Address host_address(NodeId tor, int host) const;
  /// ToR owning an address, if it is inside 10.0.0.0/8 and in range.
  [[nodiscard]] std::optional<NodeId> tor_for_address(net::Ipv4Address addr) const;

  /// True if `a` and `b` are directly linked.
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const;
  /// Neighbors of a node, in deterministic order (down-links then up-links).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node) const;

  /// All distinct ToR-to-ToR paths (sequences of switches, inclusive).
  /// Same pod: k/2 paths (via each edge switch); cross pod: (k/2)^2 paths.
  [[nodiscard]] std::vector<std::vector<NodeId>> paths_between(NodeId src_tor,
                                                               NodeId dst_tor) const;

  /// Unique upward path ToR -> core (via the single feasible edge switch).
  [[nodiscard]] std::vector<NodeId> upward_path(NodeId src_tor, NodeId core) const;
  /// Unique downward path core -> ToR.
  [[nodiscard]] std::vector<NodeId> downward_path(NodeId core, NodeId dst_tor) const;

 private:
  void check_tor(NodeId n, const char* who) const;
  void check_core(NodeId n, const char* who) const;

  int k_;
};

}  // namespace rlir::topo
