#include "topo/placement.h"

#include <stdexcept>

namespace rlir::topo {

namespace {

void check_k(int k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("placement: k must be even and >= 2");
  }
}

}  // namespace

std::uint64_t rlir_instances(int k, DeploymentGranularity g) {
  check_k(k);
  const std::uint64_t uk = static_cast<std::uint64_t>(k);
  const std::uint64_t half = uk / 2;
  switch (g) {
    case DeploymentGranularity::kInterfacePair:
      // "two measurement instances at k/2 core routers and an instance at
      // each ToR switch ... In total, we need k + 2 instances."
      return uk + 2;
    case DeploymentGranularity::kTorPair:
      // "k(k+2)/2 instances (k^2/2 at core routers and k at ToR switches)"
      return uk * (uk + 2) / 2;
    case DeploymentGranularity::kAllTorPairs:
      // "(k/2)^2 k instances at all core routers ... and k/2 ToR switches
      // need to install k/2 measurement instances, totaling (k/2)^2 (k+1)"
      return half * half * (uk + 1);
  }
  throw std::logic_error("rlir_instances: bad granularity");
}

std::uint64_t full_deployment_instances(int k) {
  check_k(k);
  const FatTree topo(k);
  // Every switch has k interfaces; full RLI instruments every pair of
  // interfaces along a forwarding path with a sender and a receiver:
  // 2 * C(k,2) = k(k-1) instances per switch.
  const std::uint64_t per_switch = static_cast<std::uint64_t>(k) * (k - 1);
  return per_switch * static_cast<std::uint64_t>(topo.switch_count());
}

double PlacementRow::savings_ratio() const {
  if (full_deployment == 0) return 0.0;
  return static_cast<double>(all_tor_pairs) / static_cast<double>(full_deployment);
}

PlacementRow placement_row(int k) {
  PlacementRow row;
  row.k = k;
  row.interface_pair = rlir_instances(k, DeploymentGranularity::kInterfacePair);
  row.tor_pair = rlir_instances(k, DeploymentGranularity::kTorPair);
  row.all_tor_pairs = rlir_instances(k, DeploymentGranularity::kAllTorPairs);
  row.full_deployment = full_deployment_instances(k);
  return row;
}

PlacementPlan plan_interface_pair(const FatTree& topo, NodeId src_tor, NodeId dst_tor) {
  if (src_tor.tier != Tier::kTor || dst_tor.tier != Tier::kTor) {
    throw std::invalid_argument("plan_interface_pair: endpoints must be ToR switches");
  }
  if (src_tor.pod == dst_tor.pod) {
    throw std::invalid_argument(
        "plan_interface_pair: same-pod pairs do not traverse cores; "
        "place instances at the pod's edge switches instead");
  }

  PlacementPlan plan;
  plan.src_tor = src_tor;
  plan.dst_tor = dst_tor;
  plan.instance_nodes.push_back(src_tor);
  plan.instance_nodes.push_back(dst_tor);

  // A flow between the pair can hash to any edge position and any core under
  // it; with receivers at every core the upstream segment is path-unique.
  // Interface-level count per the paper: 2 instances (dual-role) at each of
  // the k/2 cores reachable via one chosen edge position... the paper's k+2
  // counts k/2 cores * 2 + 2 ToR instances.
  const int half = topo.k() / 2;
  for (int j = 0; j < half; ++j) {
    // Paper's Figure-1 example pins the sender interface, hence one edge
    // position; cores under that position.
    plan.instance_nodes.push_back(topo.core_for(0, j));
  }
  plan.instance_count = static_cast<std::uint64_t>(topo.k()) + 2;

  for (int j = 0; j < half; ++j) {
    const NodeId c = topo.core_for(0, j);
    plan.segments.push_back(src_tor.name(topo.k()) + "-" + c.name(topo.k()));
    plan.segments.push_back(c.name(topo.k()) + "-" + dst_tor.name(topo.k()));
  }
  return plan;
}

}  // namespace rlir::topo
