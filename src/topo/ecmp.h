// ECMP next-hop selection and its receiver-side inversion.
//
// "routers typically use ECMP forwarding where a packet's source and
// destination IP addresses are typically hashed to identify the next hop ...
// we can 'reverse' engineer the intermediate router through which a packet
// may have originated" (Section 3.1, Downstream).
//
// Vendors do not publish their hash functions; the mechanism only needs a
// deterministic per-router function the receiver can evaluate. We provide
// several (CRC-32C, Jenkins lookup3, xor-fold) behind one interface, each
// salted per router so different routers make independent choices — as in
// real fabrics, where per-router hash seeds avoid polarization.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/flow_key.h"
#include "net/hash.h"
#include "topo/fattree.h"

namespace rlir::topo {

class EcmpHasher {
 public:
  virtual ~EcmpHasher() = default;

  /// Raw hash of a flow key, salted with a per-router seed.
  [[nodiscard]] virtual std::uint32_t hash(const net::FiveTuple& key,
                                           std::uint64_t router_salt) const = 0;

  /// Next-hop choice among `fanout` equal-cost links.
  [[nodiscard]] std::uint32_t select(const net::FiveTuple& key, std::uint64_t router_salt,
                                     std::uint32_t fanout) const {
    return fanout == 0 ? 0 : hash(key, router_salt) % fanout;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// CRC-32C over the canonicalized 5-tuple bytes with a nonlinear per-router
/// seed finalizer (typical hardware hash; the finalizer prevents the CRC
/// linearity polarization documented in the .cpp). The recommended default.
class Crc32EcmpHasher final : public EcmpHasher {
 public:
  [[nodiscard]] std::uint32_t hash(const net::FiveTuple& key,
                                   std::uint64_t router_salt) const override;
  [[nodiscard]] std::string name() const override { return "crc32c"; }
};

/// Jenkins lookup3.
class JenkinsEcmpHasher final : public EcmpHasher {
 public:
  [[nodiscard]] std::uint32_t hash(const net::FiveTuple& key,
                                   std::uint64_t router_salt) const override;
  [[nodiscard]] std::string name() const override { return "jenkins"; }
};

/// Xor-fold of src/dst/ports — the weakest and cheapest hardware option.
/// Deliberately kept linear in the salt: consecutive tiers using it make
/// perfectly correlated choices ("hash polarization"), so traffic collapses
/// onto a subset of cores. Tests use it to demonstrate the pathology; do not
/// use it as a fabric default.
class XorFoldEcmpHasher final : public EcmpHasher {
 public:
  [[nodiscard]] std::uint32_t hash(const net::FiveTuple& key,
                                   std::uint64_t router_salt) const override;
  [[nodiscard]] std::string name() const override { return "xorfold"; }
};

/// Per-router salt derived from topology position.
[[nodiscard]] std::uint64_t router_salt(const FatTree& topo, NodeId node);

/// Deterministic ECMP route of a flow between two ToRs:
/// the full switch path src_tor ... dst_tor chosen by per-hop hashing.
/// Same pod: via edge chosen by the ToR. Cross pod: ToR picks the edge
/// position, the edge picks the core.
[[nodiscard]] std::vector<NodeId> ecmp_route(const FatTree& topo, const EcmpHasher& hasher,
                                             const net::FiveTuple& key, NodeId src_tor,
                                             NodeId dst_tor);

/// Receiver-side inversion: which core does flow `key` from `src_tor` to
/// `dst_tor` traverse? Requires cross-pod src/dst; this is the computation
/// an RLIR downstream receiver runs when it knows the upstream hash
/// functions. Returns the core node.
[[nodiscard]] NodeId reverse_ecmp_core(const FatTree& topo, const EcmpHasher& hasher,
                                       const net::FiveTuple& key, NodeId src_tor,
                                       NodeId dst_tor);

}  // namespace rlir::topo
