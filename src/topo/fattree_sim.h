// Event-driven packet simulation over a k-ary fat-tree.
//
// Every directed link has a FIFO output queue (sim::FifoQueue); packets
// traverse ToR -> edge -> core -> edge -> ToR paths chosen by per-router ECMP
// hashing; events are processed in global time order by sim::EventQueue.
//
// Measurement hooks:
//   * arrival taps per node — RLIR receivers and ground-truth trackers
//     observe every packet arriving at a switch;
//   * node agents — active instances (RLIR senders) that may inject
//     reference packets at a node in reaction to passing traffic;
//   * explicit-route packets — reference probes travel a pinned path between
//     their sender and receiver and are consumed at the receiver;
//   * per-node extra forwarding delay — latency-anomaly injection for
//     localization experiments;
//   * optional core marking — cores stamp the ToS field with their identity
//     (the paper's packet-marking demux strategy, Section 3.1).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/event_queue.h"
#include "sim/queue.h"
#include "sim/tap.h"
#include "timebase/time.h"
#include "topo/ecmp.h"
#include "topo/fattree.h"

namespace rlir::topo {

class FatTreeSim;

/// Active instance attached to a switch; called for every packet arriving
/// there (after taps). May inject reference packets via the sim reference to
/// FatTreeSim::inject_reference.
class NodeAgent {
 public:
  virtual ~NodeAgent() = default;
  virtual void on_arrival(const net::Packet& packet, NodeId node, FatTreeSim& sim) = 0;
};

struct FatTreeSimConfig {
  /// Template for every directed link's output queue.
  sim::QueueConfig link_queue{.link_bps = 10e9,
                              .processing_delay = timebase::Duration::nanoseconds(500),
                              .capacity_bytes = 500 * 1000,
                              .name = "link"};
  /// Per-link propagation delay (short DC cables).
  timebase::Duration propagation = timebase::Duration::nanoseconds(500);
  /// When true, core switches stamp packet.tos = core index + 1 on arrival
  /// (the packet-marking demux strategy).
  bool core_marking = false;
};

struct FatTreeSimStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered_regular = 0;
  std::uint64_t delivered_reference = 0;
  std::uint64_t dropped = 0;
  std::uint64_t forwarded_hops = 0;
};

class FatTreeSim {
 public:
  FatTreeSim(const FatTree* topo, FatTreeSimConfig config, const EcmpHasher* hasher);

  /// Observation/injection wiring; must be completed before run().
  void add_arrival_tap(NodeId node, sim::PacketTap* tap);
  void add_agent(NodeId node, NodeAgent* agent);
  /// Adds `extra` forwarding delay at every egress queue of `node`
  /// (latency-anomaly injection). Must be called before any packet transits
  /// the node.
  void add_extra_delay(NodeId node, timebase::Duration extra);

  /// Schedules a host packet entering the fabric at its source ToR
  /// (derived from packet.key.src) at time packet.ts.
  void inject_from_host(net::Packet packet);

  /// Injects a reference packet at `from`, pinned to the unique up/down path
  /// to `to` (ToR -> core or core -> ToR). The probe is consumed at `to`.
  /// Called by node agents during the run, or before it.
  void inject_reference(net::Packet packet, NodeId from, NodeId to);

  /// Runs until all events drain.
  void run();

  /// Runs events with time <= deadline; later events stay queued. The
  /// stepping primitive for epoch-scheduled collection: alternate
  /// run_until(t) with EpochScheduler::advance_to(t).
  void run_until(timebase::TimePoint deadline);
  /// Events still queued (true while a stepped run is unfinished).
  [[nodiscard]] bool events_pending() const { return !events_.empty(); }

  [[nodiscard]] const FatTreeSimStats& stats() const { return stats_; }
  [[nodiscard]] timebase::TimePoint now() const { return events_.now(); }
  [[nodiscard]] const FatTree& topology() const { return *topo_; }

  /// Allocates a sequence number for a reference packet. Probe seqs live in
  /// a reserved high range so they can never collide with trace packets (the
  /// pinned-route table is keyed by seq).
  [[nodiscard]] std::uint64_t allocate_ref_seq() { return next_ref_seq_++; }

  /// Queue statistics of a directed link, if any traffic used it.
  [[nodiscard]] const sim::QueueStats* link_stats(NodeId from, NodeId to) const;

 private:
  void handle_arrival(net::Packet packet, NodeId node);
  void forward(net::Packet packet, NodeId from, NodeId to);
  [[nodiscard]] NodeId route_next_hop(const net::Packet& packet, NodeId node) const;
  [[nodiscard]] sim::FifoQueue& link_queue(NodeId from, NodeId to);

  const FatTree* topo_;
  FatTreeSimConfig config_;
  const EcmpHasher* hasher_;
  sim::EventQueue events_;

  using LinkKey = std::pair<std::size_t, std::size_t>;
  std::map<LinkKey, sim::FifoQueue> links_;

  std::unordered_map<std::size_t, std::vector<sim::PacketTap*>> taps_;
  std::unordered_map<std::size_t, std::vector<NodeAgent*>> agents_;
  std::unordered_map<std::size_t, timebase::Duration> extra_delay_;

  /// Pinned routes of in-flight reference packets, keyed by packet seq.
  struct ExplicitRoute {
    std::vector<NodeId> path;
    std::size_t position = 0;
  };
  std::unordered_map<std::uint64_t, ExplicitRoute> explicit_routes_;

  std::uint64_t next_ref_seq_ = std::uint64_t{1} << 62;
  FatTreeSimStats stats_;
};

}  // namespace rlir::topo
