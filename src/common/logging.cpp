#include "common/logging.h"

namespace rlir::common {

namespace detail {

std::atomic<int>& log_threshold_storage() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

void log_line(LogLevel level, std::string_view msg) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: return;
  }
  // Single formatted insertion per line: interleaved-thread output stays
  // line-atomic in practice (the stream write is one call).
  std::ostringstream line;
  line << "[" << tag << "] " << msg << "\n";
  std::cerr << line.str();
}

}  // namespace detail

}  // namespace rlir::common
