#include "common/logging.h"

#include <mutex>
#include <utility>

namespace rlir::common {

namespace {

std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_storage() {
  static LogSink sink;
  return sink;
}

}  // namespace

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_storage() = std::move(sink);
}

namespace detail {

std::atomic<int>& log_threshold_storage() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

void log_line(LogLevel level, std::string_view msg) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: return;
  }
  // Single formatted insertion per line: interleaved-thread output stays
  // line-atomic in practice (the stream write is one call).
  std::ostringstream line;
  line << "[" << tag << "] " << msg << "\n";
  std::cerr << line.str();

  // Sink runs under the mutex so uninstalling (set_log_sink({})) cannot
  // race a call in flight — the sink's targets may be mid-destruction.
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (sink_storage()) sink_storage()(level, msg);
}

}  // namespace detail

}  // namespace rlir::common
