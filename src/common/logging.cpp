#include "common/logging.h"

namespace rlir::common {

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace detail {

void log_line(LogLevel level, std::string_view msg) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: return;
  }
  std::cerr << "[" << tag << "] " << msg << "\n";
}

}  // namespace detail

}  // namespace rlir::common
