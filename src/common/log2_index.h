// Log-free logarithmic bin indexing.
//
// Both LatencySketch (ceil(ln v / ln gamma)) and LogHistogram
// ((log10 v - log10 lo) / width) spend a libm transcendental call per
// observation — the single largest per-record cost in the collector ingest
// path. This header replaces that call with bit arithmetic: a double already
// stores its own log2 (exponent field plus a mantissa in [1,2)), so
//
//   log2(v) = exponent + log2_table[top mantissa bits] + poly(residual)
//
// where the 128-entry correction table anchors the mantissa and a short
// Taylor polynomial covers the residual r in [0, 1/128] (remainder < 1e-11).
//
// The indexers below are *bin-for-bin identical* to the exact libm formulas
// by construction, not merely close: the fast path's absolute error is
// bounded, so whenever the scaled log lands within a guard band of an integer
// bin boundary — the only place a bounded error can flip the answer — the
// indexer falls back to the original libm expression. Everywhere else the
// fast and exact paths provably round to the same bin. The oracle tests in
// tests/test_log2_index.cpp sweep random values and exact bin boundaries to
// hold this contract.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rlir::common {

/// Approximate log2 for a positive, finite, normal double; absolute error
/// < kFastLog2MaxError. Callers must route other inputs (checked via
/// fast_log2_usable) to an exact path.
[[nodiscard]] double fast_log2(double v);

/// Conservative bound on |fast_log2(v) - log2(v)|.
inline constexpr double kFastLog2MaxError = 1e-10;

/// True when `v` is positive, finite, and normal — the domain fast_log2
/// handles. Subnormals, zeros, negatives, infinities, and NaNs return false.
[[nodiscard]] bool fast_log2_usable(double v);

/// Drop-in replacement for `ceil(log(value) / log_gamma)` (the DDSketch bin
/// index): identical result for every input, log-free for all but the
/// boundary-adjacent sliver of values.
class LogGammaCeilIndexer {
 public:
  LogGammaCeilIndexer() = default;
  explicit LogGammaCeilIndexer(double log_gamma);

  /// Exactly `static_cast<int32_t>(ceil(log(value) / log_gamma))`.
  [[nodiscard]] std::int32_t index(double value) const;

 private:
  [[nodiscard]] std::int32_t exact_index(double value) const;

  double log_gamma_ = 1.0;
  double bins_per_octave_ = 0.0;  // ln(2) / log_gamma: scales log2 to bins
  double guard_ = 0.0;            // half-width of the exact-fallback band
};

/// Drop-in replacement for
/// `static_cast<size_t>((log10(value) - log_lo) / width)` (the LogHistogram
/// bucket index). Caller guarantees value >= the histogram's lower edge, as
/// LogHistogram::record does.
class Log10BucketIndexer {
 public:
  Log10BucketIndexer() = default;
  Log10BucketIndexer(double log_lo, double width);

  /// Exactly `static_cast<size_t>((log10(value) - log_lo) / width)`.
  [[nodiscard]] std::size_t index(double value) const;

 private:
  [[nodiscard]] std::size_t exact_index(double value) const;

  double log_lo_ = 0.0;
  double width_ = 1.0;
  double guard_ = 0.0;
};

}  // namespace rlir::common
