#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace rlir::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double Cdf::fraction_at_or_below(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }

double Cdf::max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }

double Cdf::mean() const {
  if (sorted_.empty()) return 0.0;
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

std::vector<Cdf::Point> Cdf::curve(std::size_t points) const {
  std::vector<Point> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = (points == 1) ? 1.0
                                   : static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(Point{quantile(q), q});
  }
  return out;
}

std::optional<double> relative_error(double estimate, double truth) {
  if (truth == 0.0) return std::nullopt;
  return std::abs(estimate - truth) / std::abs(truth);
}

std::string format_cdf_table(const Cdf& cdf, const std::string& label, std::size_t points) {
  std::ostringstream os;
  os << "# CDF: " << label << " (n=" << cdf.size() << ")\n";
  os << "#        value     fraction\n";
  char buf[80];
  for (const auto& p : cdf.curve(points)) {
    std::snprintf(buf, sizeof(buf), "  %12.6g  %10.4f\n", p.value, p.fraction);
    os << buf;
  }
  return os.str();
}

}  // namespace rlir::common
