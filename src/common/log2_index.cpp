#include "common/log2_index.h"

#include <array>
#include <bit>
#include <cmath>

namespace rlir::common {

namespace {

constexpr int kTableBits = 7;  // 128 anchors across the mantissa range [1, 2)
constexpr int kTableSize = 1 << kTableBits;

constexpr double kLn2 = 0x1.62e42fefa39efp-1;      // ln(2)
constexpr double kLog2E = 0x1.71547652b82fep+0;    // log2(e)
constexpr double kLog10Of2 = 0x1.34413509f79ffp-2; // log10(2)

/// ln(m) for m in [1, 2], evaluable in constant expressions (std::log is not
/// constexpr until C++26): 2*atanh((m-1)/(m+1)), whose argument is <= 1/3 so
/// 28 series terms reach full double precision.
constexpr double constexpr_ln(double m) {
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  double power = z;
  double sum = 0.0;
  for (int n = 0; n < 28; ++n) {
    sum += power / static_cast<double>(2 * n + 1);
    power *= z2;
  }
  return 2.0 * sum;
}

struct Tables {
  std::array<double, kTableSize> log2;  // log2(anchor_k)
  std::array<double, kTableSize> inv;   // 1 / anchor_k
};

constexpr Tables make_tables() {
  Tables t{};
  for (int k = 0; k < kTableSize; ++k) {
    const double anchor = 1.0 + static_cast<double>(k) / kTableSize;
    t.inv[k] = 1.0 / anchor;
    t.log2[k] = constexpr_ln(anchor) * kLog2E;
  }
  return t;
}

constexpr Tables kTables = make_tables();

constexpr std::uint64_t kMantissaMask = (std::uint64_t{1} << 52) - 1;

/// Guard bands: the fast path's absolute log2 error (kFastLog2MaxError) is
/// amplified by the caller's scale factor; add a fixed floor that dwarfs the
/// few-ulp disagreement between the fast product/division and the libm
/// original. Falling back inside the band costs one libm call for a ~1e-7
/// sliver of inputs — noise — while everything outside provably agrees.
constexpr double kGuardFloor = 1e-7;

}  // namespace

bool fast_log2_usable(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  const std::uint64_t exponent = (bits >> 52) & 0x7ff;
  // Sign set, subnormal/zero (exponent 0), or inf/NaN (exponent 0x7ff).
  return (bits >> 63) == 0 && exponent != 0 && exponent != 0x7ff;
}

double fast_log2(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  const auto exponent = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  const std::uint64_t mantissa = bits & kMantissaMask;
  // Re-bias to [1, 2) and split against the nearest-below table anchor.
  const double m = std::bit_cast<double>(mantissa | (std::uint64_t{0x3ff} << 52));
  const auto k = static_cast<std::size_t>(mantissa >> (52 - kTableBits));
  const double r = m * kTables.inv[k] - 1.0;  // in [0, 1/128]
  // ln(1+r) to four terms; the r^5/5 remainder is < 6e-12.
  const double poly = r * (1.0 + r * (-0.5 + r * ((1.0 / 3.0) + r * -0.25)));
  return static_cast<double>(exponent) + kTables.log2[k] + poly * kLog2E;
}

LogGammaCeilIndexer::LogGammaCeilIndexer(double log_gamma)
    : log_gamma_(log_gamma),
      bins_per_octave_(kLn2 / log_gamma),
      guard_(kGuardFloor + std::abs(bins_per_octave_) * 4.0 * kFastLog2MaxError) {}

std::int32_t LogGammaCeilIndexer::index(double value) const {
  if (!fast_log2_usable(value)) return exact_index(value);
  const double x = fast_log2(value) * bins_per_octave_;
  if (std::abs(x - std::round(x)) <= guard_) return exact_index(value);
  return static_cast<std::int32_t>(std::ceil(x));
}

std::int32_t LogGammaCeilIndexer::exact_index(double value) const {
  return static_cast<std::int32_t>(std::ceil(std::log(value) / log_gamma_));
}

Log10BucketIndexer::Log10BucketIndexer(double log_lo, double width)
    : log_lo_(log_lo),
      width_(width),
      guard_(kGuardFloor + 4.0 * kFastLog2MaxError / std::abs(width)) {}

std::size_t Log10BucketIndexer::index(double value) const {
  if (!fast_log2_usable(value)) return exact_index(value);
  const double x = (fast_log2(value) * kLog10Of2 - log_lo_) / width_;
  if (std::abs(x - std::round(x)) <= guard_) return exact_index(value);
  return static_cast<std::size_t>(x);
}

std::size_t Log10BucketIndexer::exact_index(double value) const {
  return static_cast<std::size_t>((std::log10(value) - log_lo_) / width_);
}

}  // namespace rlir::common
