// Logarithmically bucketed histogram for latency-like quantities that span
// several orders of magnitude (ns .. ms). Constant memory, O(1) record.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log2_index.h"

namespace rlir::common {

/// Buckets are geometric: [lo * g^i, lo * g^(i+1)). Values below `lo` land in
/// an underflow bucket, values at or above the top in an overflow bucket.
class LogHistogram {
 public:
  /// `lo` — lower edge of the first regular bucket (must be > 0);
  /// `hi` — upper edge of the last regular bucket (must be > lo);
  /// `buckets_per_decade` — resolution (e.g. 10 → ~25% wide buckets).
  LogHistogram(double lo, double hi, std::size_t buckets_per_decade);

  void record(double value);
  void record(double value, std::uint64_t weight);

  [[nodiscard]] std::uint64_t total_count() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const { return counts_.at(i); }
  /// Geometric midpoint of bucket i.
  [[nodiscard]] double bucket_mid(std::size_t i) const;
  [[nodiscard]] double bucket_lower(std::size_t i) const;

  /// Quantile estimated from bucket midpoints; q in [0,1].
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line "value count" text rendering of non-empty buckets.
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::size_t index_for(double value) const;

  double lo_;
  double log_lo_;
  double log_ratio_;  // log of bucket growth factor
  Log10BucketIndexer indexer_;  // log-free bucket index, identical to the libm formula
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace rlir::common
