// Deterministic, seedable random number generation.
//
// Simulations must be exactly reproducible from a seed, so we ship our own
// small generators instead of relying on implementation-defined std::
// distributions. Xoshiro256** is the workhorse; SplitMix64 expands seeds.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace rlir::common {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into the
/// state of a larger generator. Passes BigCrush when used directly as well.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator, so
/// it can drive std:: distributions where convenient; prefer the member
/// helpers for reproducibility across standard libraries.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound). Uses rejection to avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) {
    // Guard against log(0); uniform() < 1 always, so 1-u > 0.
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Pareto variate with shape alpha and minimum xm (heavy-tailed sizes).
  double pareto(double alpha, double xm) {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Geometric: number of failures before first success, p in (0,1].
  std::uint64_t geometric(double p) {
    if (p >= 1.0) return 0;
    return static_cast<std::uint64_t>(std::log(1.0 - uniform()) / std::log(1.0 - p));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace rlir::common
