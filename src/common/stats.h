// Streaming and batch statistics used by both the measurement stack (per-flow
// latency accumulation) and the evaluation harness (relative-error CDFs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rlir::common {

/// Numerically stable streaming moments (Welford). Mergeable, so per-shard
/// statistics can be combined.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of the observations; 0 when empty.
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n); 0 when fewer than 2 observations.
  [[nodiscard]] double variance() const;
  /// Population standard deviation.
  [[nodiscard]] double stddev() const;
  /// Sample variance (divide by n-1); 0 when fewer than 2 observations.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a batch of samples. Construction sorts a copy; queries
/// are O(log n).
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Quantile by linear interpolation between order statistics, q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  /// Fraction of samples <= x.
  [[nodiscard]] double fraction_at_or_below(double x) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// Evenly spaced (value, cumulative fraction) points for plotting/printing.
  struct Point {
    double value;
    double fraction;
  };
  [[nodiscard]] std::vector<Point> curve(std::size_t points) const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// |estimate - truth| / truth. Returns nullopt when truth is zero (the error
/// is undefined; callers typically skip such flows, as the paper does for
/// zero-latency flows).
[[nodiscard]] std::optional<double> relative_error(double estimate, double truth);

/// Renders a CDF as a fixed-width text table, one row per curve point —
/// the form the bench harnesses print for each figure series.
[[nodiscard]] std::string format_cdf_table(const Cdf& cdf, const std::string& label,
                                           std::size_t points = 20);

}  // namespace rlir::common
