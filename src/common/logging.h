// Minimal leveled logging. Benches and examples print results to stdout;
// diagnostics go through here to stderr so output stays machine-parseable.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace rlir::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Not thread-safe by
/// design — the simulator is single-threaded.
LogLevel& log_threshold();

namespace detail {
void log_line(LogLevel level, std::string_view msg);

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_threshold()) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) { detail::log(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { detail::log(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { detail::log(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { detail::log(LogLevel::kError, args...); }

}  // namespace rlir::common
