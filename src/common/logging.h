// Minimal leveled logging. Benches and examples print results to stdout;
// diagnostics go through here to stderr so output stays machine-parseable.
#pragma once

#include <atomic>
#include <functional>
#include <iostream>
#include <sstream>
#include <string_view>

namespace rlir::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
/// Global threshold storage. Atomic: the collection tier logs from worker
/// and scheduler threads, so reads/writes must not race.
std::atomic<int>& log_threshold_storage();

void log_line(LogLevel level, std::string_view msg);

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (static_cast<int>(level) < log_threshold_storage().load(std::memory_order_relaxed)) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

/// Messages below the threshold are dropped. Thread-safe.
[[nodiscard]] inline LogLevel log_threshold() {
  return static_cast<LogLevel>(detail::log_threshold_storage().load(std::memory_order_relaxed));
}
inline void set_log_threshold(LogLevel level) {
  detail::log_threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

/// Observer for every emitted line (post-threshold), called with the level
/// and unformatted message in addition to the stderr write. One global slot:
/// installing replaces the previous sink, an empty function uninstalls.
/// Invoked under an internal mutex — the sink must not log. Thread-safe;
/// see obs::LogBridge for the standard registry/event-trace sink.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void set_log_sink(LogSink sink);

template <typename... Args>
void log_debug(const Args&... args) { detail::log(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { detail::log(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { detail::log(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { detail::log(LogLevel::kError, args...); }

}  // namespace rlir::common
