#include "common/latency_sketch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlir::common {

namespace {

/// Values below this (in ns) are indistinguishable from zero latency; they
/// share the zero bin so the log mapping never sees a non-positive input.
constexpr double kMinTrackable = 1e-3;

}  // namespace

LatencySketch::LatencySketch(LatencySketchConfig config) : config_(config) {
  if (!(config_.relative_accuracy > 0.0) || !(config_.relative_accuracy < 1.0)) {
    throw std::invalid_argument("LatencySketch: relative_accuracy must be in (0, 1)");
  }
  const double a = config_.relative_accuracy;
  log_gamma_ = std::log((1.0 + a) / (1.0 - a));
  indexer_ = LogGammaCeilIndexer(log_gamma_);
}

std::int32_t LatencySketch::index_for(double value) const {
  // ceil(log_gamma(value)): every value in (gamma^(i-1), gamma^i] maps to i,
  // so the bin's representative value is within relative_accuracy of it.
  // Computed log-free (common/log2_index.h), bin-for-bin identical to
  // ceil(log(value) / log_gamma_).
  return indexer_.index(value);
}

double LatencySketch::value_for(std::int32_t index) const {
  // Midpoint 2*gamma^i / (gamma + 1) minimizes the worst-case relative error
  // over the bin (the standard DDSketch representative).
  const double gamma = std::exp(log_gamma_);
  return 2.0 * std::exp(static_cast<double>(index) * log_gamma_) / (gamma + 1.0);
}

void LatencySketch::add(double value, std::uint64_t count) {
  // Non-finite values are estimator artifacts with no usable magnitude:
  // recording them would poison sum/max and (for +inf) overflow the int32
  // bin index. Dropped, not zero-binned, so counts stay honest.
  if (count == 0 || !std::isfinite(value)) return;
  if (empty()) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value * static_cast<double>(count);
  if (value < kMinTrackable) {  // negatives included
    zero_count_ += count;
    return;
  }
  bins_.add(index_for(value), count);
  binned_count_ += count;
  collapse_if_needed();
}

void LatencySketch::collapse_if_needed() {
  if (config_.max_bins == 0) return;
  while (bins_.size() > config_.max_bins) {
    // Fold the lowest bin into its neighbor above: only quantiles below the
    // surviving bin's range lose accuracy, preserving the tail.
    bins_.fold_lowest();
    ++collapses_;
  }
}

void LatencySketch::merge(const LatencySketch& other) {
  if (other.config_.relative_accuracy != config_.relative_accuracy) {
    throw std::invalid_argument("LatencySketch::merge: relative accuracies differ");
  }
  if (other.empty()) return;
  if (empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  binned_count_ += other.binned_count_;
  for (const auto& [index, count] : other.bins_) bins_.add(index, count);
  collapse_if_needed();
}

double LatencySketch::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target the 0-based order statistic floor(q * (n-1)); return the
  // representative value of the bin containing it.
  const double rank = q * static_cast<double>(n - 1);
  std::uint64_t cum = zero_count_;
  if (static_cast<double>(cum) > rank) return 0.0;
  for (const auto& [index, bin_count_v] : bins_) {
    cum += bin_count_v;
    if (static_cast<double>(cum) > rank) return value_for(index);
  }
  return max_;  // unreachable unless rank == n-1 lands on the last element
}

std::size_t LatencySketch::approx_bytes() const {
  // Flat bin array: what the vector actually reserved, plus the object.
  return sizeof(LatencySketch) + bins_.capacity_bytes();
}

LatencySketch LatencySketch::from_parts(LatencySketchConfig config, std::uint64_t zero_count,
                                        double sum, double min, double max, const BinMap& bins) {
  BinStore store;
  // Ascending map order hits the store's append fast path throughout.
  for (const auto& [index, count] : bins) store.add(index, count);
  return from_parts(config, zero_count, sum, min, max, std::move(store));
}

LatencySketch LatencySketch::from_parts(LatencySketchConfig config, std::uint64_t zero_count,
                                        double sum, double min, double max, BinStore bins) {
  LatencySketch s(config);
  s.zero_count_ = zero_count;
  s.sum_ = sum;
  s.min_ = min;
  s.max_ = max;
  s.bins_ = std::move(bins);
  for (const auto& [index, count] : s.bins_) {
    (void)index;
    s.binned_count_ += count;
  }
  s.collapse_if_needed();
  return s;
}

}  // namespace rlir::common
