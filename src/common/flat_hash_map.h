// Open-addressing hash map with dense storage, built for the collector's
// per-flow tables.
//
// std::unordered_map pays a heap node per entry and a pointer chase per
// lookup; on the ingest hot path (one lookup+insert per record, hundreds of
// thousands of records per second) that is the dominant cache-miss source.
// This map splits the classic flat-map design in two:
//
//   * a dense std::vector of entries — iteration is a linear scan, inserts
//     are a push_back, memory is 1 allocation amortized;
//   * a power-of-two slot table of u32 indexes into the dense vector,
//     linear-probed — lookups touch one cache line of slots, then the entry.
//
// Erase is swap-and-pop on the dense vector (order is NOT preserved; callers
// that need ordered output sort, which the exporter already does). The slot
// table uses tombstones, purged on the next rehash.
//
// API is the std::unordered_map subset the collect/ tier uses: operator[],
// at, find, contains, try_emplace, erase(key), erase(iterator) (returns an
// iterator that REVISITS the erased position — the swapped-in entry — so
// `it = m.erase(it)` loops visit every entry exactly once), begin/end, size,
// empty, clear, reserve. Iterators yield std::pair<Key, Value>&; treat the
// key as const (mutating it corrupts the index, same contract as any flat
// map). Inserting invalidates iterators/references (vector growth); erase
// invalidates only the erased and last entries'.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace rlir::common {

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename KeyEqual = std::equal_to<Key>>
class FlatHashMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatHashMap() = default;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  void clear() {
    entries_.clear();
    slots_.assign(slots_.size(), kEmpty);
    tombstones_ = 0;
  }

  void reserve(std::size_t n) {
    entries_.reserve(n);
    if (slot_budget(slots_.size()) < n) rebuild(slot_count_for(n));
  }

  [[nodiscard]] iterator find(const Key& key) {
    const std::size_t slot = find_slot(key);
    if (slot == kNoSlot) return entries_.end();
    return entries_.begin() + slots_[slot];
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const std::size_t slot = find_slot(key);
    if (slot == kNoSlot) return entries_.end();
    return entries_.begin() + slots_[slot];
  }
  [[nodiscard]] bool contains(const Key& key) const { return find_slot(key) != kNoSlot; }

  [[nodiscard]] Value& at(const Key& key) {
    const std::size_t slot = find_slot(key);
    if (slot == kNoSlot) throw std::out_of_range("FlatHashMap::at: key not found");
    return entries_[slots_[slot]].second;
  }
  [[nodiscard]] const Value& at(const Key& key) const {
    const std::size_t slot = find_slot(key);
    if (slot == kNoSlot) throw std::out_of_range("FlatHashMap::at: key not found");
    return entries_[slots_[slot]].second;
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    grow_if_needed();
    const auto [slot, existing] = probe_for_insert(key);
    if (existing) return {entries_.begin() + slots_[slot], false};
    if (slots_[slot] == kTombstone) --tombstones_;
    slots_[slot] = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back(std::piecewise_construct, std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    return {entries_.end() - 1, true};
  }

  Value& operator[](const Key& key) { return try_emplace(key).first->second; }

  /// Removes the entry at `pos` by swapping the last entry into its place.
  /// Returns an iterator at the same dense position (now the swapped-in
  /// entry, or end() if `pos` was last).
  iterator erase(const_iterator pos) {
    const auto index = static_cast<std::size_t>(pos - entries_.cbegin());
    const std::size_t slot = find_slot(entries_[index].first);
    slots_[slot] = kTombstone;
    ++tombstones_;
    const std::size_t last = entries_.size() - 1;
    if (index != last) {
      const std::size_t moved_slot = find_slot(entries_[last].first);
      entries_[index] = std::move(entries_[last]);
      slots_[moved_slot] = static_cast<std::uint32_t>(index);
    }
    entries_.pop_back();
    return entries_.begin() + static_cast<std::ptrdiff_t>(index);
  }

  std::size_t erase(const Key& key) {
    const std::size_t slot = find_slot(key);
    if (slot == kNoSlot) return 0;
    erase(entries_.cbegin() + slots_[slot]);
    return 1;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::uint32_t kTombstone = 0xfffffffeu;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinSlots = 16;

  /// Max entries a slot table of `slots` supports (7/8 load, tombstones
  /// included) — past this, probe chains degrade.
  [[nodiscard]] static std::size_t slot_budget(std::size_t slots) { return slots - slots / 8; }

  [[nodiscard]] static std::size_t slot_count_for(std::size_t entries) {
    std::size_t slots = kMinSlots;
    while (slot_budget(slots) < entries + 1) slots *= 2;
    return slots;
  }

  /// Slot currently mapping `key`, or kNoSlot.
  [[nodiscard]] std::size_t find_slot(const Key& key) const {
    if (slots_.empty()) return kNoSlot;
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = Hash{}(key) & mask;
    for (;;) {
      const std::uint32_t v = slots_[slot];
      if (v == kEmpty) return kNoSlot;
      if (v != kTombstone && KeyEqual{}(entries_[v].first, key)) return slot;
      slot = (slot + 1) & mask;  // a tombstone bridges the probe chain
    }
  }

  /// Slot to insert `key` at (first tombstone on the probe path, else the
  /// terminating empty), or the slot already holding it ({slot, true}).
  [[nodiscard]] std::pair<std::size_t, bool> probe_for_insert(const Key& key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = Hash{}(key) & mask;
    std::size_t first_tombstone = kNoSlot;
    for (;;) {
      const std::uint32_t v = slots_[slot];
      if (v == kEmpty) {
        return {first_tombstone == kNoSlot ? slot : first_tombstone, false};
      }
      if (v == kTombstone) {
        if (first_tombstone == kNoSlot) first_tombstone = slot;
      } else if (KeyEqual{}(entries_[v].first, key)) {
        return {slot, true};
      }
      slot = (slot + 1) & mask;
    }
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rebuild(kMinSlots);
      return;
    }
    // Count live entries AND tombstones against the budget: a probe chain
    // doesn't care which kind of non-empty slot it crawls over.
    if (entries_.size() + tombstones_ + 1 > slot_budget(slots_.size())) {
      // Grow only if live entries need it; otherwise same size (purges
      // tombstones accumulated by erase-heavy workloads).
      rebuild(slot_count_for(entries_.size()));
    }
  }

  void rebuild(std::size_t slot_count) {
    slots_.assign(slot_count, kEmpty);
    tombstones_ = 0;
    const std::size_t mask = slot_count - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t slot = Hash{}(entries_[i].first) & mask;
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask;
      slots_[slot] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<value_type> entries_;
  std::vector<std::uint32_t> slots_;
  std::size_t tombstones_ = 0;
};

}  // namespace rlir::common
