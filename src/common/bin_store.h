// Sorted flat-vector bin storage for LatencySketch.
//
// The sketch's bins were a std::map<int32, uint64> — one heap node and three
// pointers per bin, a pointer-chasing tree walk per merge touch. Per-flow
// sketches hold a few dozen bins and the collection tier merges into them
// once per record, so the container is squarely on the ingest hot path.
//
// A sorted vector of (index, count) pairs keeps the same ordered semantics
// (deterministic iteration, lowest-first collapse) with contiguous memory:
// lookups are a binary search over cache-resident pairs, and the common
// merge pattern — wire bins arrive in ascending index order into a sketch
// whose range they already overlap — hits either the append fast path or a
// short search. Inserting into the middle memmoves the tail, but new indexes
// are rare in steady state (a flow's latency range stabilizes quickly) and
// the arrays are small.
//
// Deliberately NOT a dense offset-indexed array (the classic DDSketch dense
// store): wire sketches may carry arbitrary int32 bin indexes, and a dense
// span allocation would let a hostile peer request gigabytes with two bins.
// The flat vector's footprint is bounded by bin *count*, which the wire
// format already guards.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

namespace rlir::common {

class BinStore {
 public:
  using value_type = std::pair<std::int32_t, std::uint64_t>;
  using const_iterator = std::vector<value_type>::const_iterator;

  BinStore() = default;

  /// Adds `count` to bin `index`, creating the bin if absent.
  void add(std::int32_t index, std::uint64_t count) {
    // Append / re-touch-highest fast paths: ascending-index merges (the wire
    // order) and repeated observations near a flow's steady-state latency.
    if (entries_.empty() || entries_.back().first < index) {
      entries_.emplace_back(index, count);
      return;
    }
    if (entries_.back().first == index) {
      entries_.back().second += count;
      return;
    }
    const auto it = lower_bound(index);
    if (it != entries_.end() && it->first == index) {
      it->second += count;
    } else {
      entries_.insert(it, value_type{index, count});
    }
  }

  /// Folds the lowest bin into its neighbor above — the budget-collapse
  /// step. Precondition: size() >= 2.
  void fold_lowest() {
    entries_[1].second += entries_[0].second;
    entries_.erase(entries_.begin());
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  /// Count of bin `index`; throws std::out_of_range if the bin is absent
  /// (mirrors the std::map::at contract this container replaced).
  [[nodiscard]] std::uint64_t at(std::int32_t index) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), index,
        [](const value_type& e, std::int32_t i) { return e.first < i; });
    if (it == entries_.end() || it->first != index) {
      throw std::out_of_range("BinStore::at: no such bin");
    }
    return it->second;
  }

  /// Allocated footprint of the bin array (capacity, not size — what the
  /// process actually pays).
  [[nodiscard]] std::size_t capacity_bytes() const {
    return entries_.capacity() * sizeof(value_type);
  }

  friend bool operator==(const BinStore& a, const BinStore& b) {
    return a.entries_ == b.entries_;
  }
  friend bool operator!=(const BinStore& a, const BinStore& b) { return !(a == b); }

  // Equality against the std::map representation, so oracle tests can state
  // expectations in the container the formula naturally builds.
  friend bool operator==(const BinStore& a, const std::map<std::int32_t, std::uint64_t>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end(),
                      [](const value_type& x, const auto& y) {
                        return x.first == y.first && x.second == y.second;
                      });
  }
  friend bool operator==(const std::map<std::int32_t, std::uint64_t>& a, const BinStore& b) {
    return b == a;
  }
  friend bool operator!=(const BinStore& a, const std::map<std::int32_t, std::uint64_t>& b) {
    return !(a == b);
  }
  friend bool operator!=(const std::map<std::int32_t, std::uint64_t>& a, const BinStore& b) {
    return !(b == a);
  }

 private:
  [[nodiscard]] std::vector<value_type>::iterator lower_bound(std::int32_t index) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), index,
        [](const value_type& e, std::int32_t i) { return e.first < i; });
  }

  std::vector<value_type> entries_;
};

}  // namespace rlir::common
