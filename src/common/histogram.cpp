#include "common/histogram.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rlir::common {

LogHistogram::LogHistogram(double lo, double hi, std::size_t buckets_per_decade)
    : lo_(lo) {
  if (lo <= 0.0 || hi <= lo || buckets_per_decade == 0) {
    throw std::invalid_argument("LogHistogram: need 0 < lo < hi and buckets_per_decade > 0");
  }
  log_lo_ = std::log10(lo);
  log_ratio_ = 1.0 / static_cast<double>(buckets_per_decade);
  indexer_ = Log10BucketIndexer(log_lo_, log_ratio_);
  const double decades = std::log10(hi) - log_lo_;
  const auto n = static_cast<std::size_t>(std::ceil(decades / log_ratio_));
  counts_.assign(n == 0 ? 1 : n, 0);
}

std::size_t LogHistogram::index_for(double value) const {
  // Log-free (common/log2_index.h), identical to
  // static_cast<size_t>((log10(value) - log_lo_) / log_ratio_).
  return indexer_.index(value);
}

void LogHistogram::record(double value) { record(value, 1); }

void LogHistogram::record(double value, std::uint64_t weight) {
  total_ += weight;
  if (!(value >= lo_)) {  // also catches NaN
    underflow_ += weight;
    return;
  }
  const std::size_t i = index_for(value);
  if (i >= counts_.size()) {
    overflow_ += weight;
    return;
  }
  counts_[i] += weight;
}

double LogHistogram::bucket_lower(std::size_t i) const {
  return std::pow(10.0, log_lo_ + static_cast<double>(i) * log_ratio_);
}

double LogHistogram::bucket_mid(std::size_t i) const {
  return std::pow(10.0, log_lo_ + (static_cast<double>(i) + 0.5) * log_ratio_);
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t cum = underflow_;
  if (cum > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > target) return bucket_mid(i);
  }
  return bucket_mid(counts_.size() - 1);
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  char buf[96];
  if (underflow_ > 0) {
    std::snprintf(buf, sizeof(buf), "  <%-12.4g %llu\n", lo_,
                  static_cast<unsigned long long>(underflow_));
    os << buf;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-13.4g %llu\n", bucket_mid(i),
                  static_cast<unsigned long long>(counts_[i]));
    os << buf;
  }
  if (overflow_ > 0) {
    std::snprintf(buf, sizeof(buf), "  >=top        %llu\n",
                  static_cast<unsigned long long>(overflow_));
    os << buf;
  }
  return os.str();
}

}  // namespace rlir::common
