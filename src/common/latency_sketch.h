// Mergeable relative-error quantile sketch (DDSketch-style) for latency
// distributions.
//
// Per-flow latency state must be bounded: a FlowStatsMap entry is O(1) but
// only answers mean/stddev, while a raw sample list answers quantiles at
// O(packets) memory. The sketch is the middle ground the collection tier is
// built on — logarithmic buckets sized so every quantile answer is within a
// configured relative accuracy of the true order statistic, with memory
// bounded by `max_bins` regardless of how many samples are added.
//
// Properties:
//   * add() is O(1); quantile() is O(bins);
//   * merge() of two sketches with the same accuracy equals the sketch of
//     the concatenated sample streams, bin for bin (merge is exact, so it is
//     associative and commutative — the property sharded collection needs);
//   * when the bin budget overflows, the lowest bins collapse into one,
//     degrading only low quantiles (latency monitoring cares about the upper
//     tail).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/bin_store.h"
#include "common/log2_index.h"

namespace rlir::common {

struct LatencySketchConfig {
  /// Quantile answers are within this relative error of the true order
  /// statistic (for uncollapsed bins). 0.01 = 1%.
  double relative_accuracy = 0.01;
  /// Bin budget; exceeding it collapses the lowest bins together. 0 = unbounded.
  std::size_t max_bins = 2048;
};

class LatencySketch {
 public:
  /// Map form of serialized bin state — what the owning wire decoder builds
  /// before from_parts. Internal storage is a sorted flat vector
  /// (common/bin_store.h); iteration order is identical (ascending index).
  using BinMap = std::map<std::int32_t, std::uint64_t>;

  LatencySketch() : LatencySketch(LatencySketchConfig{}) {}
  /// Throws std::invalid_argument unless 0 < relative_accuracy < 1.
  explicit LatencySketch(LatencySketchConfig config);

  /// Records one observation. Values below the minimum trackable latency
  /// (1e-3 ns — far below anything physical) land in the zero bin, including
  /// zero and negative values: latencies are nonnegative by construction and
  /// a negative estimate is an interpolation artifact best treated as ~0.
  /// Non-finite values (NaN, ±inf) are dropped entirely.
  void add(double value) { add(value, 1); }
  void add(double value, std::uint64_t count);

  /// Exact union with `other` (bin-wise count addition). Throws
  /// std::invalid_argument if relative accuracies differ; the result keeps
  /// this sketch's bin budget.
  void merge(const LatencySketch& other);

  /// Zero-copy merge of serialized sketch state: behaves exactly like
  /// `merge(from_parts(config, zero_count, sum, min, max, bins))` — bin for
  /// bin — without materializing the intermediate sketch or its BinMap.
  ///
  /// `each_bin` is invoked with a `void(std::int32_t index, std::uint64_t
  /// count)` callback and must visit every serialized bin (duplicates
  /// accumulate, as from_parts' map construction did); `binned_count` must be
  /// the sum of those counts and `bin_count` their number. `max_bins_budget`
  /// is the *serialized* config's budget: when the serialized bins exceed it,
  /// from_parts would have collapsed them before the merge, so this falls
  /// back to the materializing path to preserve exact equivalence (honest
  /// encoders never exceed their own budget).
  template <typename BinFn>
  void merge_parts(double relative_accuracy, std::size_t max_bins_budget,
                   std::uint64_t zero_count, std::uint64_t binned_count, double sum,
                   double min, double max, std::uint32_t bin_count, BinFn&& each_bin) {
    if (relative_accuracy != config_.relative_accuracy) {
      throw std::invalid_argument("LatencySketch::merge: relative accuracies differ");
    }
    if (zero_count + binned_count == 0) return;  // merge()'s empty-other early-out
    if (max_bins_budget != 0 && bin_count > max_bins_budget) {
      // from_parts would collapse under the serialized budget before merging;
      // reproduce that exactly (corrupt-encoder territory, never hot).
      BinMap bins;
      each_bin([&bins](std::int32_t index, std::uint64_t count) { bins[index] += count; });
      merge(from_parts({relative_accuracy, max_bins_budget}, zero_count, sum, min, max,
                       std::move(bins)));
      return;
    }
    if (empty()) {
      min_ = min;
      max_ = max;
    } else {
      min_ = min_ < min ? min_ : min;
      max_ = max_ > max ? max_ : max;
    }
    sum_ += sum;
    zero_count_ += zero_count;
    binned_count_ += binned_count;
    each_bin([this](std::int32_t index, std::uint64_t count) { bins_.add(index, count); });
    collapse_if_needed();
  }

  /// Value within `relative_accuracy` of the order statistic at rank
  /// floor(q * (count-1)), q clamped to [0,1]. 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return zero_count_ + binned_count_; }
  [[nodiscard]] bool empty() const { return count() == 0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return empty() ? 0.0 : sum_ / static_cast<double>(count()); }
  [[nodiscard]] double min() const { return empty() ? 0.0 : min_; }
  [[nodiscard]] double max() const { return empty() ? 0.0 : max_; }
  /// Observations that fell into the zero bin.
  [[nodiscard]] std::uint64_t zero_count() const { return zero_count_; }

  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  /// Times the bin budget forced a collapse (0 = all quantiles in-bound).
  [[nodiscard]] std::uint64_t collapses() const { return collapses_; }
  /// In-memory footprint estimate: O(bins), never O(samples).
  [[nodiscard]] std::size_t approx_bytes() const;

  [[nodiscard]] const LatencySketchConfig& config() const { return config_; }
  [[nodiscard]] const BinStore& bins() const { return bins_; }

  /// Representative value (within relative_accuracy) for a bin index from
  /// bins() — what an exposition writer needs to turn bins into bucket
  /// upper bounds.
  [[nodiscard]] double bin_value(std::int32_t index) const { return value_for(index); }

  /// Rebuilds a sketch from serialized state (the estimate-record wire
  /// format). Count is derived from the bins; collapses if `bins` exceeds
  /// the config's budget.
  [[nodiscard]] static LatencySketch from_parts(LatencySketchConfig config,
                                                std::uint64_t zero_count, double sum,
                                                double min, double max, const BinMap& bins);
  /// Same, from another sketch's bins() (round-trip/re-bucket helpers).
  [[nodiscard]] static LatencySketch from_parts(LatencySketchConfig config,
                                                std::uint64_t zero_count, double sum,
                                                double min, double max, BinStore bins);

 private:
  [[nodiscard]] std::int32_t index_for(double value) const;
  [[nodiscard]] double value_for(std::int32_t index) const;
  void collapse_if_needed();

  LatencySketchConfig config_;
  double log_gamma_ = 0.0;  // ln((1+a)/(1-a)), cached for index_for
  LogGammaCeilIndexer indexer_;  // log-free bin index, identical to the libm formula
  BinStore bins_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t binned_count_ = 0;
  std::uint64_t collapses_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rlir::common
