// Little-endian byte packing shared by every on-disk / on-wire format
// (trace files, estimate-record batches). Field-by-field packing — never a
// struct memcpy — so formats are independent of compiler padding and host
// endianness.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace rlir::common::wire {

/// Writes `v` little-endian at `p` and advances `p` past it.
template <typename T>
void put(std::uint8_t*& p, T v) {
  static_assert(std::is_integral_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    *p++ = static_cast<std::uint8_t>(static_cast<std::make_unsigned_t<T>>(v) >> (8 * i));
  }
}

/// Reads a little-endian T at `p` and advances `p` past it.
template <typename T>
[[nodiscard]] T take(const std::uint8_t*& p) {
  static_assert(std::is_integral_v<T>);
  std::make_unsigned_t<T> v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::make_unsigned_t<T>>(*p++) << (8 * i);
  }
  return static_cast<T>(v);
}

/// Doubles travel as their IEEE-754 bit pattern in a little-endian u64.
inline void put_f64(std::uint8_t*& p, double v) { put<std::uint64_t>(p, std::bit_cast<std::uint64_t>(v)); }

[[nodiscard]] inline double take_f64(const std::uint8_t*& p) {
  return std::bit_cast<double>(take<std::uint64_t>(p));
}

}  // namespace rlir::common::wire
