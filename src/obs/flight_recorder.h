// Post-incident dump: when something already went wrong, capture the
// evidence before it scrolls out of the rings.
//
// A FlightRecorder borrows a process's SpanRecorder and EventTrace and, on
// trigger (SloWatcher violation, conservation counter gone negative, an
// operator signal), renders one self-contained JSON document: the trigger
// reason, the recent events, and the span ring as an embedded Chrome trace.
// Where it goes is the caller's business — a sink callback writes it to a
// file, stderr, or a test's capture buffer.
//
// Triggers are rate-limited (kMinIntervalNs): a watcher that fires every
// evaluation tick during a sustained breach produces one dump per window,
// not one per tick.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/event_trace.h"
#include "obs/span.h"

namespace rlir::obs {

class FlightRecorder {
 public:
  /// Receives (reason, dump JSON) for each accepted trigger.
  using Sink = std::function<void(const std::string& reason, const std::string& json)>;

  /// 5 s between accepted triggers; repeats inside the window are counted
  /// but produce no dump.
  static constexpr std::int64_t kMinIntervalNs = 5'000'000'000;

  /// Either source may be null — the dump just omits that section.
  FlightRecorder(const SpanRecorder* spans, const EventTrace* events, Sink sink);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Dumps now unless inside the rate-limit window. Returns true when a
  /// dump was produced. Thread-safe.
  bool trigger(const std::string& reason);

  /// Renders the dump JSON without the rate limit or the sink — what
  /// trigger() would emit. Thread-safe.
  [[nodiscard]] std::string dump(const std::string& reason) const;

  /// Triggers accepted (dumps produced).
  [[nodiscard]] std::uint64_t dumps() const;
  /// Triggers swallowed by the rate limit.
  [[nodiscard]] std::uint64_t suppressed() const;

 private:
  const SpanRecorder* spans_;
  const EventTrace* events_;
  Sink sink_;

  mutable std::mutex mu_;
  std::int64_t last_dump_ns_ = 0;
  std::uint64_t dumps_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace rlir::obs
