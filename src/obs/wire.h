// Wire codec for observability scrapes: how a kMetrics query reply carries
// one component's full metrics + event-trace state across the RLTF framed
// transport.
//
// Layout (little-endian, strings as u16 length + bytes):
//
//   scrape:  u32 sample_count | sample... | events
//   sample:  u8 kind | str name | u32 label_count | (str key, str value)...
//            | u64 counter / i64 gauge / sketch segment (by kind)
//   events:  9 x u64 per-kind totals | u64 dropped
//            | u32 event_count | (u8 kind | i64 ts_ns | u64 value | str detail)...
//
// The sketch segment reuses the estimate-record format
// (collect::encode_sketch), so histogram scrapes merge bin-for-bin exactly
// like every other sketch in the system. Decoding is bounds-checked and
// throws std::runtime_error on truncated or implausible input, matching the
// transport tier's corruption-guard convention.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace rlir::obs {

/// One component's scrape: metrics + event trace, the unit a kMetrics
/// query reply carries and a coordinator merges.
struct Scrape {
  MetricsSnapshot metrics;
  EventTraceSnapshot events;
};

[[nodiscard]] std::size_t scrape_wire_size(const Scrape& scrape);

/// Appends the encoded scrape to `out`.
void encode_scrape(std::vector<std::uint8_t>& out, const Scrape& scrape);

/// Decodes one scrape spanning [p, end), advancing `p` past it. Throws
/// std::runtime_error on malformed input.
[[nodiscard]] Scrape decode_scrape(const std::uint8_t*& p, const std::uint8_t* end);

}  // namespace rlir::obs
