#include "obs/wire.h"

#include <limits>
#include <stdexcept>
#include <string>

#include "collect/estimate_record.h"
#include "common/wire.h"

namespace rlir::obs {

namespace {

using common::wire::put;
using common::wire::take;

// Corruption guards: far above anything a real component produces, far
// below anything that could make the decoder allocate absurdly.
constexpr std::uint32_t kMaxSamples = 1u << 20;
constexpr std::uint32_t kMaxLabels = 64;
constexpr std::uint32_t kMaxEvents = 1u << 20;

[[nodiscard]] std::size_t str_wire_size(const std::string& s) { return 2 + s.size(); }

void put_str(std::uint8_t*& p, const std::string& s) {
  if (s.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw std::invalid_argument("obs wire: string too long to encode");
  }
  put<std::uint16_t>(p, static_cast<std::uint16_t>(s.size()));
  for (char c : s) *p++ = static_cast<std::uint8_t>(c);
}

void need(const std::uint8_t* p, const std::uint8_t* end, std::size_t n) {
  if (static_cast<std::size_t>(end - p) < n) {
    throw std::runtime_error("obs wire: truncated scrape");
  }
}

[[nodiscard]] std::string take_str(const std::uint8_t*& p, const std::uint8_t* end) {
  need(p, end, 2);
  const auto len = take<std::uint16_t>(p);
  need(p, end, len);
  std::string s(reinterpret_cast<const char*>(p), len);
  p += len;
  return s;
}

[[nodiscard]] std::size_t sample_wire_size(const MetricSample& s) {
  std::size_t n = 1 + str_wire_size(s.name) + 4;
  for (const auto& [k, v] : s.labels) n += str_wire_size(k) + str_wire_size(v);
  switch (s.kind) {
    case MetricKind::kCounter:
    case MetricKind::kGauge:
      n += 8;
      break;
    case MetricKind::kHistogram:
      n += collect::sketch_wire_size(s.histogram);
      break;
  }
  return n;
}

[[nodiscard]] std::size_t events_wire_size(const EventTraceSnapshot& t) {
  std::size_t n = kEventKindCount * 8 + 8 + 4;
  for (const auto& ev : t.events) n += 1 + 8 + 8 + str_wire_size(ev.detail);
  return n;
}

}  // namespace

std::size_t scrape_wire_size(const Scrape& scrape) {
  std::size_t n = 4;
  for (const auto& s : scrape.metrics.samples) n += sample_wire_size(s);
  return n + events_wire_size(scrape.events);
}

void encode_scrape(std::vector<std::uint8_t>& out, const Scrape& scrape) {
  const std::size_t begin = out.size();
  out.resize(begin + scrape_wire_size(scrape));
  std::uint8_t* p = out.data() + begin;

  put<std::uint32_t>(p, static_cast<std::uint32_t>(scrape.metrics.samples.size()));
  for (const auto& s : scrape.metrics.samples) {
    put<std::uint8_t>(p, static_cast<std::uint8_t>(s.kind));
    put_str(p, s.name);
    put<std::uint32_t>(p, static_cast<std::uint32_t>(s.labels.size()));
    for (const auto& [k, v] : s.labels) {
      put_str(p, k);
      put_str(p, v);
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        put<std::uint64_t>(p, s.counter);
        break;
      case MetricKind::kGauge:
        put<std::int64_t>(p, s.gauge);
        break;
      case MetricKind::kHistogram:
        collect::encode_sketch(p, s.histogram);
        break;
    }
  }

  for (std::uint64_t c : scrape.events.counts) put<std::uint64_t>(p, c);
  put<std::uint64_t>(p, scrape.events.dropped);
  put<std::uint32_t>(p, static_cast<std::uint32_t>(scrape.events.events.size()));
  for (const auto& ev : scrape.events.events) {
    put<std::uint8_t>(p, static_cast<std::uint8_t>(ev.kind));
    put<std::int64_t>(p, ev.ts_ns);
    put<std::uint64_t>(p, ev.value);
    put_str(p, ev.detail);
  }

  if (p != out.data() + out.size()) {
    throw std::logic_error("obs wire: encode size mismatch");
  }
}

Scrape decode_scrape(const std::uint8_t*& p, const std::uint8_t* end) {
  Scrape scrape;

  need(p, end, 4);
  const auto sample_count = take<std::uint32_t>(p);
  if (sample_count > kMaxSamples) {
    throw std::runtime_error("obs wire: implausible sample count");
  }
  scrape.metrics.samples.reserve(sample_count);
  for (std::uint32_t i = 0; i < sample_count; ++i) {
    MetricSample s;
    need(p, end, 1);
    const auto kind = take<std::uint8_t>(p);
    if (kind < 1 || kind > 3) throw std::runtime_error("obs wire: bad metric kind");
    s.kind = static_cast<MetricKind>(kind);
    s.name = take_str(p, end);
    need(p, end, 4);
    const auto label_count = take<std::uint32_t>(p);
    if (label_count > kMaxLabels) {
      throw std::runtime_error("obs wire: implausible label count");
    }
    s.labels.reserve(label_count);
    for (std::uint32_t j = 0; j < label_count; ++j) {
      std::string k = take_str(p, end);
      std::string v = take_str(p, end);
      s.labels.emplace_back(std::move(k), std::move(v));
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        need(p, end, 8);
        s.counter = take<std::uint64_t>(p);
        break;
      case MetricKind::kGauge:
        need(p, end, 8);
        s.gauge = take<std::int64_t>(p);
        break;
      case MetricKind::kHistogram:
        s.histogram = collect::decode_sketch(p, end);
        break;
    }
    scrape.metrics.samples.push_back(std::move(s));
  }

  need(p, end, kEventKindCount * 8 + 8 + 4);
  for (auto& c : scrape.events.counts) c = take<std::uint64_t>(p);
  scrape.events.dropped = take<std::uint64_t>(p);
  const auto event_count = take<std::uint32_t>(p);
  if (event_count > kMaxEvents) {
    throw std::runtime_error("obs wire: implausible event count");
  }
  scrape.events.events.reserve(event_count);
  for (std::uint32_t i = 0; i < event_count; ++i) {
    Event ev;
    need(p, end, 1 + 8 + 8);
    const auto kind = take<std::uint8_t>(p);
    if (kind < 1 || kind > kEventKindCount) {
      throw std::runtime_error("obs wire: bad event kind");
    }
    ev.kind = static_cast<EventKind>(kind);
    ev.ts_ns = take<std::int64_t>(p);
    ev.value = take<std::uint64_t>(p);
    ev.detail = take_str(p, end);
    scrape.events.events.push_back(std::move(ev));
  }

  return scrape;
}

}  // namespace rlir::obs
