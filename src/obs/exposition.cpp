#include "obs/exposition.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

namespace rlir::obs {

namespace {

/// Doubles that hold exact integers print as integers (bucket bounds and
/// sums are usually whole numbers in tests and small deployments); anything
/// else gets 9 significant digits — the sketch is 1%-accurate, so this
/// never hides real precision.
[[nodiscard]] std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return std::string(buf);
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
void append_prom_escaped(std::string& out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// Renders {a="x",b="y"} with optional extra pair appended last (for le="").
void append_prom_labels(std::string& out, const Labels& labels,
                        const char* extra_key = nullptr,
                        std::string_view extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_prom_escaped(out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_prom_escaped(out, extra_value);
    out += '"';
  }
  out += '}';
}

void append_json_escaped(std::string& out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_string(std::string& out, std::string_view v) {
  out += '"';
  append_json_escaped(out, v);
  out += '"';
}

/// Sorted view over the samples: callers may have appended synthetic rows
/// out of order, and Prometheus TYPE grouping needs name-adjacency.
[[nodiscard]] std::vector<const MetricSample*> sorted_view(const MetricsSnapshot& snap) {
  std::vector<const MetricSample*> view;
  view.reserve(snap.samples.size());
  for (const auto& s : snap.samples) view.push_back(&s);
  std::stable_sort(view.begin(), view.end(),
                   [](const MetricSample* a, const MetricSample* b) {
                     if (a->name != b->name) return a->name < b->name;
                     return a->labels < b->labels;
                   });
  return view;
}

[[nodiscard]] const char* prom_type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

void append_counter(MetricsSnapshot& snap, std::string name, Labels labels,
                    std::uint64_t value) {
  MetricSample sample;
  sample.kind = MetricKind::kCounter;
  sample.name = std::move(name);
  sample.labels = std::move(labels);
  std::sort(sample.labels.begin(), sample.labels.end());
  sample.counter = value;
  snap.samples.push_back(std::move(sample));
}

void append_event_counters(MetricsSnapshot& snap, const EventTraceSnapshot& trace,
                           const Labels& base_labels) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    Labels labels = base_labels;
    labels.emplace_back("kind", event_kind_name(static_cast<EventKind>(i + 1)));
    append_counter(snap, "rlir_events_total", std::move(labels), trace.counts[i]);
  }
  append_counter(snap, "rlir_events_dropped_total", base_labels, trace.dropped);
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  const auto view = sorted_view(snap);
  const std::string* prev_name = nullptr;
  for (const MetricSample* s : view) {
    if (prev_name == nullptr || *prev_name != s->name) {
      out += "# TYPE ";
      out += s->name;
      out += ' ';
      out += prom_type_name(s->kind);
      out += '\n';
      prev_name = &s->name;
    }
    switch (s->kind) {
      case MetricKind::kCounter:
        out += s->name;
        append_prom_labels(out, s->labels);
        out += ' ';
        out += std::to_string(s->counter);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += s->name;
        append_prom_labels(out, s->labels);
        out += ' ';
        out += std::to_string(s->gauge);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        const auto& sk = s->histogram;
        // Cumulative buckets: the sketch zero bin is the le="0" bucket,
        // each sketch bin contributes a bucket at its representative upper
        // value (ascending by construction), then the mandatory +Inf.
        std::uint64_t cumulative = sk.zero_count();
        out += s->name;
        out += "_bucket";
        append_prom_labels(out, s->labels, "le", "0");
        out += ' ';
        out += std::to_string(cumulative);
        out += '\n';
        for (const auto& [index, count] : sk.bins()) {
          cumulative += count;
          out += s->name;
          out += "_bucket";
          append_prom_labels(out, s->labels, "le", format_number(sk.bin_value(index)));
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += s->name;
        out += "_bucket";
        append_prom_labels(out, s->labels, "le", "+Inf");
        out += ' ';
        out += std::to_string(sk.count());
        out += '\n';
        out += s->name;
        out += "_sum";
        append_prom_labels(out, s->labels);
        out += ' ';
        out += format_number(sk.sum());
        out += '\n';
        out += s->name;
        out += "_count";
        append_prom_labels(out, s->labels);
        out += ' ';
        out += std::to_string(sk.count());
        out += '\n';
        break;
      }
    }
  }
  return out;
}

namespace {

void append_json_labels(std::string& out, const Labels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':';
    append_json_string(out, v);
  }
  out += '}';
}

void append_json_metrics(std::string& out, const MetricsSnapshot& snap) {
  out += "\"metrics\":[";
  const auto view = sorted_view(snap);
  bool first = true;
  for (const MetricSample* s : view) {
    if (!first) out += ',';
    first = false;
    out += "{\"kind\":\"";
    out += metric_kind_name(s->kind);
    out += "\",\"name\":";
    append_json_string(out, s->name);
    out += ',';
    append_json_labels(out, s->labels);
    switch (s->kind) {
      case MetricKind::kCounter:
        out += ",\"value\":";
        out += std::to_string(s->counter);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":";
        out += std::to_string(s->gauge);
        break;
      case MetricKind::kHistogram: {
        const auto& sk = s->histogram;
        out += ",\"count\":";
        out += std::to_string(sk.count());
        out += ",\"sum\":";
        out += format_number(sk.sum());
        out += ",\"min\":";
        out += format_number(sk.min());
        out += ",\"max\":";
        out += format_number(sk.max());
        out += ",\"zero_count\":";
        out += std::to_string(sk.zero_count());
        out += ",\"p50\":";
        out += format_number(sk.quantile(0.50));
        out += ",\"p99\":";
        out += format_number(sk.quantile(0.99));
        out += ",\"bins\":[";
        bool first_bin = true;
        for (const auto& [index, count] : sk.bins()) {
          if (!first_bin) out += ',';
          first_bin = false;
          out += '[';
          out += std::to_string(index);
          out += ',';
          out += std::to_string(count);
          out += ']';
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += ']';
}

void append_json_events(std::string& out, const EventTraceSnapshot& trace) {
  out += "\"events\":{\"counts\":{";
  bool first = true;
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, event_kind_name(static_cast<EventKind>(i + 1)));
    out += ':';
    out += std::to_string(trace.counts[i]);
  }
  out += "},\"dropped\":";
  out += std::to_string(trace.dropped);
  out += ",\"recent\":[";
  first = true;
  for (const Event& ev : trace.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"kind\":\"";
    out += event_kind_name(ev.kind);
    out += "\",\"ts_ns\":";
    out += std::to_string(ev.ts_ns);
    out += ",\"value\":";
    out += std::to_string(ev.value);
    out += ",\"detail\":";
    append_json_string(out, ev.detail);
    out += '}';
  }
  out += "]}";
}

}  // namespace

std::string to_json(const MetricsSnapshot& snap) {
  std::string out = "{";
  append_json_metrics(out, snap);
  out += '}';
  return out;
}

std::string to_json(const MetricsSnapshot& snap, const EventTraceSnapshot& trace) {
  std::string out = "{";
  append_json_metrics(out, snap);
  out += ',';
  append_json_events(out, trace);
  out += '}';
  return out;
}

}  // namespace rlir::obs
