// Distributed request tracing: where did THIS query or batch spend its
// time, across processes?
//
// Metrics answer "how much", the event trace answers "what happened"; spans
// answer "where did the time go" — per request, per hop. Every instrumented
// stage records one Span {trace_id, span_id, parent_id, kind, start/end ns,
// label} into its process's SpanRecorder (a bounded ring, one uncontended
// mutex per record). A TraceContext (trace_id + parent span id) travels
// with the work: in the widened RLTF query payload and in the optional
// record-batch trailer (docs/WIRE.md), so a CollectorAgent's decode/ingest/
// answer spans parent to the CollectorClient span that shipped the bytes,
// and a QueryCoordinator can pull every agent's ring (kTraceSpans) and
// reassemble the cross-process tree.
//
// Tracing is OPT-IN: a null SpanRecorder* in obs::Instruments means every
// instrumentation site is a pointer check and nothing else — existing
// deployments and tests are byte-for-byte unaffected until an operator
// attaches a recorder.
//
// Ids are process-unique by construction: each recorder seeds its span-id
// counter from entropy, so ids minted on different hosts don't collide when
// a coordinator unions rings into one trace.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace rlir::obs {

/// One hop's identity inside a distributed trace: which trace, and which
/// span the next stage should parent to. trace_id == 0 means "no context"
/// (an untraced request, or a process-local span outside any trace).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

/// Which instrumented stage a span measures. Values are wire bytes
/// (kTraceSpans replies); extend at the end and bump kSpanKindCount.
enum class SpanKind : std::uint8_t {
  kClientQuery = 1,    ///< CollectorClient send_query -> reply/loss.
  kClientPump = 2,     ///< One pump() that moved bytes.
  kClientFlush = 3,    ///< Coalescing buffer sealed into a frame.
  kAgentDecode = 4,    ///< kRecordBatch payload -> record views.
  kAgentIngest = 5,    ///< Record views -> collector merge.
  kAgentAnswer = 6,    ///< kQuery decoded -> reply encoded.
  kCoordLeg = 7,       ///< One agent's leg of a coordinator fan-out.
  kCoordMerge = 8,     ///< A whole coordinator fan-out + merge.
  kEpochSeal = 9,      ///< EpochScheduler boundary: flush + drain + deliver.
  kHistoryWindow = 10, ///< SketchHistoryStore window lookup.
};
inline constexpr std::size_t kSpanKindCount = 10;

[[nodiscard]] const char* span_kind_name(SpanKind kind);
/// The {stage="..."} label value for the per-stage self-latency histograms
/// (rlir_stage_ns): decode, ingest, merge, answer, ...
[[nodiscard]] const char* span_kind_stage(SpanKind kind);

struct Span {
  /// Distributed trace this span belongs to; 0 = process-local.
  std::uint64_t trace_id = 0;
  /// Process-unique id (entropy-seeded counter, never 0 once recorded).
  std::uint64_t span_id = 0;
  /// Parent span id (same trace, possibly another process); 0 = root.
  std::uint64_t parent_id = 0;
  SpanKind kind = SpanKind::kClientQuery;
  /// Wall-clock nanoseconds since the Unix epoch (same clock as the event
  /// trace, so spans and events interleave honestly in a dump).
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  /// Free-form context ("fleet", "agent2", "epoch17"); truncated on record.
  std::string label;

  [[nodiscard]] std::int64_t duration_ns() const { return end_ns - start_ns; }
};

struct SpanRecorderSnapshot {
  /// Oldest first; at most the recorder's capacity.
  std::vector<Span> spans;
  /// Spans evicted from the ring (total - spans.size()).
  std::uint64_t dropped = 0;
  /// Spans ever recorded, including evicted ones.
  std::uint64_t total = 0;
};

/// The per-process span ring. Thread-safe: record/snapshot take one mutex
/// (uncontended in the single-owner components that use it); id minting is
/// a relaxed atomic increment.
class SpanRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;
  static constexpr std::size_t kMaxLabel = 120;

  explicit SpanRecorder(std::size_t capacity = kDefaultCapacity);
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// A fresh distributed-trace id (process-unique counter over an entropy
  /// seed; never 0).
  [[nodiscard]] std::uint64_t new_trace_id();
  /// A fresh span id (same id space; never 0).
  [[nodiscard]] std::uint64_t next_span_id();

  /// Appends one finished span (assigning span_id if the caller left it 0),
  /// feeds the stage histogram when bound, and promotes it to the slow log
  /// when over threshold. Returns the span's id.
  std::uint64_t record(Span span);

  [[nodiscard]] SpanRecorderSnapshot snapshot() const;
  /// The retained spans of one trace, oldest first.
  [[nodiscard]] std::vector<Span> for_trace(std::uint64_t trace_id) const;

  /// Registers the per-stage self-latency histograms
  /// (rlir_stage_ns{stage=...}) and rlir_slow_queries_total into `registry`
  /// so the scrape and the span ring can't disagree — record() observes
  /// both. First bind wins (a shared recorder keeps its first owner's
  /// labels); later calls are no-ops.
  void bind_metrics(MetricsRegistry* registry, const Labels& base_labels);

  /// Promote spans with duration >= threshold_ns to `trace` as kSlowSpan
  /// events (value = duration ns, detail = "stage label") and count them in
  /// rlir_slow_queries_total when metrics are bound. threshold_ns <= 0
  /// disables. `trace` may be null (count only).
  void set_slow_log(std::int64_t threshold_ns, EventTrace* trace);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Spans ever recorded.
  [[nodiscard]] std::uint64_t total() const;

  /// Wall-clock nanoseconds since the Unix epoch — the clock every span's
  /// start/end is stamped with.
  [[nodiscard]] static std::int64_t now_ns();

 private:
  const std::size_t capacity_;
  std::atomic<std::uint64_t> next_id_;

  mutable std::mutex mu_;
  std::deque<Span> ring_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;

  /// Stage histograms (index = kind - 1) + slow counter; null until bound.
  Histogram* stage_[kSpanKindCount] = {};
  Counter* slow_total_ = nullptr;
  bool bound_ = false;
  std::int64_t slow_threshold_ns_ = 0;
  EventTrace* slow_trace_ = nullptr;
};

/// RAII stage timer: starts on construction, records on finish()/destruction.
/// A null recorder makes every method a no-op, so instrumentation sites need
/// no branches of their own.
class SpanTimer {
 public:
  SpanTimer() = default;
  SpanTimer(SpanRecorder* recorder, SpanKind kind, TraceContext parent = {},
            std::string label = {});
  ~SpanTimer() { finish(); }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// This span as the parent context for child stages (pre-minted span id).
  /// Invalid when no recorder is attached.
  [[nodiscard]] TraceContext context() const;
  void set_label(std::string label);
  /// Records the span now (idempotent; the destructor calls it too).
  void finish();
  [[nodiscard]] bool active() const { return recorder_ != nullptr; }

 private:
  SpanRecorder* recorder_ = nullptr;
  Span span_;
};

// --- Chrome trace_event export ---------------------------------------------
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
// "X" complete events (ts/dur in microseconds), one pid per process, so a
// dump loads straight into chrome://tracing or Perfetto.

/// One process's spans as a complete Chrome trace JSON document.
[[nodiscard]] std::string to_chrome_trace(const std::vector<Span>& spans,
                                          const std::string& process_name = "rlir");

/// A cross-process assembled trace: each entry is (process name, its spans);
/// pid = entry index, with process_name metadata events.
[[nodiscard]] std::string to_chrome_trace(
    const std::vector<std::pair<std::string, std::vector<Span>>>& processes);

}  // namespace rlir::obs
