// The observability substrate: a thread-safe registry of named metrics.
//
// The paper's premise is that operators cannot see latency inside the
// network; this tier makes sure the reproduction can at least see *itself*.
// Every component that used to keep an ad-hoc Stats struct registers its
// counters/gauges/histograms here instead, and the Stats structs become
// views over the registry — one source of truth that a scraper, a remote
// kMetrics query, or a coordinator roll-up can all read.
//
// Design:
//   * identity = (kind, name, sorted labels). Registering the same identity
//     twice returns the SAME cell (a re-attach, not a duplicate series);
//     registering it with a different kind throws.
//   * updates are handle-based and hot-path safe: a Counter/Gauge is one
//     relaxed atomic op through a stable pointer, no lock, no lookup; a
//     Histogram is a per-cell mutex around a common::LatencySketch add
//     (uncontended in the single-owner components that use it).
//   * snapshot() is the only full-registry lock, and what every exposition
//     format (Prometheus text, JSON, the kMetrics wire reply) consumes.
//   * merge_snapshots() is the coordinator's fleet roll-up: counters sum
//     (saturating), gauges take the max, histograms union bin-wise — the
//     same exactness contract as the query tier's sketch merges.
//
// Naming scheme (see README "Observability"): rlir_<tier>_<name>, counters
// suffixed _total, instances distinguished by an {instance="..."} label.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/latency_sketch.h"

namespace rlir::obs {

enum class MetricKind : std::uint8_t { kCounter = 1, kGauge = 2, kHistogram = 3 };

[[nodiscard]] const char* metric_kind_name(MetricKind kind);

/// Label set; canonicalized (sorted by key) at registration so identity and
/// exposition ordering are deterministic.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count. add() is one relaxed atomic op — safe from any
/// thread, cheap enough for ingest hot paths.
class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (queue depth, buffered bytes, connection count).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Latency/size distribution backed by a mergeable LatencySketch. observe()
/// takes a per-cell mutex (uncontended unless several threads share one
/// histogram); snapshot() copies the sketch under it.
class Histogram {
 public:
  explicit Histogram(common::LatencySketchConfig config) : sketch_(config) {}

  void observe(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    sketch_.add(value);
  }
  [[nodiscard]] common::LatencySketch snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sketch_;
  }

 private:
  mutable std::mutex mu_;
  common::LatencySketch sketch_;
};

/// One metric's value at snapshot time. Exactly one of counter/gauge/
/// histogram is meaningful, selected by kind.
struct MetricSample {
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  Labels labels;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  common::LatencySketch histogram;
};

/// A consistent point-in-time read of a registry (or a merge of several),
/// sorted by (name, labels) — the input to every exposition writer.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the cell for (name, labels), creating it on first request.
  /// The pointer is stable for the registry's lifetime. Throws
  /// std::invalid_argument on an empty name or if the identity already
  /// exists with a different kind.
  Counter* counter(std::string_view name, Labels labels = {});
  Gauge* gauge(std::string_view name, Labels labels = {});
  /// `config` applies only when the cell is created by this call.
  Histogram* histogram(std::string_view name, Labels labels = {},
                       common::LatencySketchConfig config = {});

  /// Consistent read of every registered metric, sorted by (name, labels).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Registered series count.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Looks up / creates the entry for one identity; caller picks the cell.
  Entry& entry_for(MetricKind kind, std::string_view name, Labels&& labels,
                   const common::LatencySketchConfig* sketch_config);

  mutable std::mutex mu_;
  /// Key = name + '\x1f' + k + '\x1e' + v + ... — canonical identity; map
  /// iteration order gives snapshot() its deterministic sort for free.
  std::map<std::string, Entry> entries_;
};

/// a + b clamped to the maximum — fleet counter roll-ups must not wrap.
[[nodiscard]] constexpr std::uint64_t saturating_add_u64(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return sum < a ? ~std::uint64_t{0} : sum;
}

/// Fleet roll-up: samples with the same (kind, name, labels) merge —
/// counters sum (saturating), gauges keep the max, histograms union
/// bin-wise (exact, like every sketch merge in the system). A key appearing
/// with conflicting kinds throws std::invalid_argument. Result is sorted
/// like MetricsRegistry::snapshot().
[[nodiscard]] MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts);

}  // namespace rlir::obs
