#include "obs/log_bridge.h"

namespace rlir::obs {

namespace {
constexpr const char* kLevelNames[] = {"debug", "info", "warn", "error"};
}

LogBridge::LogBridge(MetricsRegistry& registry, EventTrace* trace) : trace_(trace) {
  for (int i = 0; i < 4; ++i) {
    by_level_[static_cast<std::size_t>(i)] =
        registry.counter("rlir_log_lines_total", {{"level", kLevelNames[i]}});
  }
  // The lambda captures raw pointers; the destructor's set_log_sink({})
  // synchronizes with any call in flight (the sink mutex), so they cannot
  // dangle while invocable.
  common::set_log_sink([this](common::LogLevel level, std::string_view msg) {
    const int idx = static_cast<int>(level);
    if (idx < 0 || idx > 3) return;
    by_level_[static_cast<std::size_t>(idx)]->increment();
    if (trace_ != nullptr && level >= common::LogLevel::kWarn) {
      trace_->record(EventKind::kLog, static_cast<std::uint64_t>(idx), msg);
    }
  });
}

LogBridge::~LogBridge() { common::set_log_sink({}); }

}  // namespace rlir::obs
