// Exposition writers: turn snapshots into scrapeable text.
//
// Two formats over the same MetricsSnapshot:
//   * to_prometheus() — Prometheus text exposition (one "# TYPE" per metric
//     name, histograms as cumulative _bucket/_sum/_count series, label
//     values escaped). Counters must already carry their _total suffix in
//     the registered name; the writer never renames.
//   * to_json() — a machine-readable dump carrying what Prometheus text
//     cannot (exact bins, min/max, the event ring with timestamps).
//
// Writers sort internally by (name, labels); callers may append synthetic
// samples (append_counter / append_event_counters) in any order.
#pragma once

#include <cstdint>
#include <string>

#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace rlir::obs {

/// Appends one synthetic counter sample — how scrape paths fold values that
/// live outside the registry (e.g. the transport AgentStats field table)
/// into a snapshot without double-registering them.
void append_counter(MetricsSnapshot& snap, std::string name, Labels labels,
                    std::uint64_t value);

/// Folds the trace's total-ever per-kind counters into the snapshot as
/// rlir_events_total{kind="..."} (+ rlir_events_dropped_total), so event
/// activity is visible to a counters-only scraper and participates in the
/// coordinator merge like any other counter.
void append_event_counters(MetricsSnapshot& snap, const EventTraceSnapshot& trace,
                           const Labels& base_labels = {});

/// Prometheus text exposition of the snapshot. Histograms expose cumulative
/// buckets: le="0" for the sketch zero bin, one bucket per sketch bin at its
/// representative upper value, then le="+Inf"; plus _sum and _count.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snap);

/// JSON object {"metrics":[...]} with exact per-sample state (histograms
/// keep their raw bins, min/max and p50/p99/p999 convenience quantiles).
[[nodiscard]] std::string to_json(const MetricsSnapshot& snap);

/// JSON object {"metrics":[...],"events":{...}} — the full observability
/// state of one component: metrics plus event counts and the recent ring.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snap,
                                  const EventTraceSnapshot& trace);

}  // namespace rlir::obs
