// Bounded ring buffer of timestamped lifecycle/protocol events.
//
// Metrics answer "how much"; the trace answers "what happened, in what
// order" — the post-mortem companion. Components append one event per
// notable transition (connect, shed, CRC poison, rebalance, ...); the ring
// keeps the most recent `capacity` events and a total-ever counter per kind
// so the scraper can tell "quiet" from "wrapped".
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rlir::obs {

enum class EventKind : std::uint8_t {
  kConnect = 1,
  kDisconnect = 2,
  kReconnect = 3,
  kShed = 4,
  kCrcPoison = 5,
  kRebalance = 6,
  kFailBack = 7,
  kEpochFlush = 8,
  kLog = 9,  ///< WARN+ log line bridged in via obs::LogBridge.
  kSloViolation = 10,  ///< Windowed SLO breach detected by collect::SloWatcher.
  kSlowSpan = 11,  ///< Span over the slow-query threshold (obs::SpanRecorder).
};
inline constexpr std::size_t kEventKindCount = 11;

[[nodiscard]] const char* event_kind_name(EventKind kind);

struct Event {
  EventKind kind = EventKind::kConnect;
  /// Wall-clock nanoseconds since the Unix epoch at record time.
  std::int64_t ts_ns = 0;
  /// Kind-specific magnitude (records shed, slots moved, epoch id, ...).
  std::uint64_t value = 0;
  /// Free-form context ("ep2", "agent3 down"), truncated to kMaxDetail.
  std::string detail;
};

struct EventTraceSnapshot {
  /// Oldest first; at most the trace's capacity.
  std::vector<Event> events;
  /// Total events ever recorded per kind (index = kind - 1), including ones
  /// the ring has since dropped.
  std::array<std::uint64_t, kEventKindCount> counts{};
  /// Events evicted from the ring (total recorded - events.size()).
  std::uint64_t dropped = 0;

  [[nodiscard]] std::uint64_t count(EventKind kind) const {
    return counts[static_cast<std::size_t>(kind) - 1];
  }
};

class EventTrace {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;
  static constexpr std::size_t kMaxDetail = 120;

  explicit EventTrace(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  /// Appends one event, stamping it with the wall clock. Thread-safe.
  void record(EventKind kind, std::uint64_t value = 0, std::string_view detail = {});

  [[nodiscard]] EventTraceSnapshot snapshot() const;

  /// Total events ever recorded for `kind` (survives ring eviction).
  [[nodiscard]] std::uint64_t count(EventKind kind) const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Event> ring_;
  std::array<std::uint64_t, kEventKindCount> counts_{};
  std::uint64_t dropped_ = 0;
};

}  // namespace rlir::obs
