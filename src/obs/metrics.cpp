#include "obs/metrics.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace rlir::obs {

namespace {

/// Separators no honest name/label contains; they only have to make the
/// identity string injective, never appear on any wire or exposition.
constexpr char kUnitSep = '\x1f';
constexpr char kRecordSep = '\x1e';

[[nodiscard]] std::string identity_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += kUnitSep;
    key += k;
    key += kRecordSep;
    key += v;
  }
  return key;
}

void canonicalize(Labels& labels) {
  std::sort(labels.begin(), labels.end());
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(
    MetricKind kind, std::string_view name, Labels&& labels,
    const common::LatencySketchConfig* sketch_config) {
  if (name.empty()) throw std::invalid_argument("MetricsRegistry: empty metric name");
  canonicalize(labels);
  const std::string key = identity_key(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                  "' re-registered as a different kind");
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(
          sketch_config != nullptr ? *sketch_config : common::LatencySketchConfig{});
      break;
  }
  return entries_.emplace(key, std::move(entry)).first->second;
}

Counter* MetricsRegistry::counter(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return entry_for(MetricKind::kCounter, name, std::move(labels), nullptr).counter.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return entry_for(MetricKind::kGauge, name, std::move(labels), nullptr).gauge.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name, Labels labels,
                                      common::LatencySketchConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  return entry_for(MetricKind::kHistogram, name, std::move(labels), &config)
      .histogram.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample sample;
    sample.kind = entry.kind;
    sample.name = entry.name;
    sample.labels = entry.labels;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        sample.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        sample.histogram = entry.histogram->snapshot();
        break;
    }
    snap.samples.push_back(std::move(sample));
  }
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
  // Same identity-key map as the registry, so the merged snapshot comes out
  // in the same deterministic order a single registry would produce.
  std::map<std::string, MetricSample> merged;
  for (const auto& part : parts) {
    for (const auto& sample : part.samples) {
      const std::string key = identity_key(sample.name, sample.labels);
      auto [it, inserted] = merged.try_emplace(key, sample);
      if (inserted) continue;
      MetricSample& into = it->second;
      if (into.kind != sample.kind) {
        throw std::invalid_argument("merge_snapshots: '" + sample.name +
                                    "' appears with conflicting kinds");
      }
      switch (sample.kind) {
        case MetricKind::kCounter:
          into.counter = saturating_add_u64(into.counter, sample.counter);
          break;
        case MetricKind::kGauge:
          into.gauge = std::max(into.gauge, sample.gauge);
          break;
        case MetricKind::kHistogram:
          into.histogram.merge(sample.histogram);
          break;
      }
    }
  }
  MetricsSnapshot snap;
  snap.samples.reserve(merged.size());
  for (auto& [key, sample] : merged) snap.samples.push_back(std::move(sample));
  return snap;
}

}  // namespace rlir::obs
