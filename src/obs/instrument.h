// How components attach to the observability tier.
//
// Every instrumented component takes an `Instruments` in its config. Left
// null (the default), the component privately owns a registry + trace, so
// nothing about its behaviour or lifetime changes for existing callers.
// Composite components (an agent wrapping a collector, a partitioned client
// wrapping endpoint clients) patch their own registry/trace into the
// children's configs, tagging each child with an `instance` label so the
// series stay distinct in one registry.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace rlir::obs {

class SpanRecorder;

/// Borrowed observability endpoints. Null members mean "own a private one".
/// The pointed-to objects must outlive the component holding this.
struct Instruments {
  MetricsRegistry* registry = nullptr;
  EventTrace* trace = nullptr;
  /// Tracing is opt-in: unlike registry/trace, a null recorder stays null
  /// (no private fallback) and every instrumentation site is a pointer
  /// check and nothing more.
  SpanRecorder* spans = nullptr;
  /// Distinguishes sibling components sharing one registry; becomes an
  /// {instance="..."} label on every series when non-empty.
  std::string id;
};

/// Member helper: resolves an Instruments into usable endpoints, owning
/// private ones where the caller did not share.
class Instrumented {
 public:
  explicit Instrumented(Instruments in) : spans_(in.spans), id_(std::move(in.id)) {
    if (in.registry != nullptr) {
      registry_ = in.registry;
    } else {
      owned_registry_ = std::make_unique<MetricsRegistry>();
      registry_ = owned_registry_.get();
    }
    if (in.trace != nullptr) {
      trace_ = in.trace;
    } else {
      owned_trace_ = std::make_unique<EventTrace>();
      trace_ = owned_trace_.get();
    }
  }

  [[nodiscard]] MetricsRegistry& registry() const { return *registry_; }
  [[nodiscard]] EventTrace& trace() const { return *trace_; }
  /// The shared span recorder, or null when tracing is off.
  [[nodiscard]] SpanRecorder* spans() const { return spans_; }
  [[nodiscard]] const std::string& id() const { return id_; }

  /// Base label set for this component's series: {{"instance", id}} when an
  /// id was assigned, empty otherwise.
  [[nodiscard]] Labels labels() const {
    Labels l;
    if (!id_.empty()) l.emplace_back("instance", id_);
    return l;
  }

  /// labels() plus one extra pair — the common "base + one dimension" case.
  [[nodiscard]] Labels labels_with(std::string key, std::string value) const {
    Labels l = labels();
    l.emplace_back(std::move(key), std::move(value));
    return l;
  }

  /// An Instruments a parent passes to a child so it shares this
  /// component's registry/trace under its own instance id.
  [[nodiscard]] Instruments child(std::string child_id) const {
    return Instruments{registry_, trace_, spans_, std::move(child_id)};
  }

 private:
  std::unique_ptr<MetricsRegistry> owned_registry_;
  std::unique_ptr<EventTrace> owned_trace_;
  MetricsRegistry* registry_ = nullptr;
  EventTrace* trace_ = nullptr;
  SpanRecorder* spans_ = nullptr;
  std::string id_;
};

}  // namespace rlir::obs
