#include "obs/event_trace.h"

#include <chrono>

namespace rlir::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kConnect: return "connect";
    case EventKind::kDisconnect: return "disconnect";
    case EventKind::kReconnect: return "reconnect";
    case EventKind::kShed: return "shed";
    case EventKind::kCrcPoison: return "crc_poison";
    case EventKind::kRebalance: return "rebalance";
    case EventKind::kFailBack: return "fail_back";
    case EventKind::kEpochFlush: return "epoch_flush";
    case EventKind::kLog: return "log";
    case EventKind::kSloViolation: return "slo_violation";
    case EventKind::kSlowSpan: return "slow_span";
  }
  return "?";
}

void EventTrace::record(EventKind kind, std::uint64_t value, std::string_view detail) {
  Event ev;
  ev.kind = kind;
  ev.ts_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count();
  ev.value = value;
  ev.detail.assign(detail.substr(0, kMaxDetail));

  std::lock_guard<std::mutex> lock(mu_);
  counts_[static_cast<std::size_t>(kind) - 1] += 1;
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    dropped_ += 1;
  }
  ring_.push_back(std::move(ev));
}

EventTraceSnapshot EventTrace::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  EventTraceSnapshot snap;
  snap.events.assign(ring_.begin(), ring_.end());
  snap.counts = counts_;
  snap.dropped = dropped_;
  return snap;
}

std::uint64_t EventTrace::count(EventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<std::size_t>(kind) - 1];
}

}  // namespace rlir::obs
