#include "obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace rlir::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

FlightRecorder::FlightRecorder(const SpanRecorder* spans, const EventTrace* events, Sink sink)
    : spans_(spans), events_(events), sink_(std::move(sink)) {}

std::string FlightRecorder::dump(const std::string& reason) const {
  std::string out = "{\"reason\":";
  append_json_string(out, reason);
  char buf[160];
  std::snprintf(buf, sizeof buf, ",\"ts_ns\":%" PRId64, SpanRecorder::now_ns());
  out += buf;

  if (events_ != nullptr) {
    const EventTraceSnapshot ev = events_->snapshot();
    std::snprintf(buf, sizeof buf, ",\"events\":{\"dropped\":%" PRIu64 ",\"recent\":[",
                  ev.dropped);
    out += buf;
    bool first = true;
    for (const auto& e : ev.events) {
      if (!first) out += ',';
      first = false;
      std::snprintf(buf, sizeof buf,
                    "\n{\"kind\":\"%s\",\"ts_ns\":%" PRId64 ",\"value\":%" PRIu64
                    ",\"detail\":",
                    event_kind_name(e.kind), e.ts_ns, e.value);
      out += buf;
      append_json_string(out, e.detail);
      out += '}';
    }
    out += "]}";
  }

  if (spans_ != nullptr) {
    const SpanRecorderSnapshot snap = spans_->snapshot();
    std::snprintf(buf, sizeof buf,
                  ",\"spans\":{\"dropped\":%" PRIu64 ",\"total\":%" PRIu64 ",\"chrome_trace\":",
                  snap.dropped, snap.total);
    out += buf;
    out += to_chrome_trace(snap.spans, "flight");
    // to_chrome_trace ends with a newline; keep the document compact.
    if (!out.empty() && out.back() == '\n') out.pop_back();
    out += '}';
  }

  out += "}\n";
  return out;
}

bool FlightRecorder::trigger(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::int64_t now = SpanRecorder::now_ns();
    if (last_dump_ns_ != 0 && now - last_dump_ns_ < kMinIntervalNs) {
      suppressed_ += 1;
      return false;
    }
    last_dump_ns_ = now;
    dumps_ += 1;
  }
  // Render and deliver outside mu_: the sink may be slow (file write), and
  // dump() only touches the sources' own locks.
  if (sink_) sink_(reason, dump(reason));
  return true;
}

std::uint64_t FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumps_;
}

std::uint64_t FlightRecorder::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

}  // namespace rlir::obs
