#include "obs/span.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <random>
#include <utility>

namespace rlir::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClientQuery: return "client_query";
    case SpanKind::kClientPump: return "client_pump";
    case SpanKind::kClientFlush: return "client_flush";
    case SpanKind::kAgentDecode: return "agent_decode";
    case SpanKind::kAgentIngest: return "agent_ingest";
    case SpanKind::kAgentAnswer: return "agent_answer";
    case SpanKind::kCoordLeg: return "coord_leg";
    case SpanKind::kCoordMerge: return "coord_merge";
    case SpanKind::kEpochSeal: return "epoch_seal";
    case SpanKind::kHistoryWindow: return "history_window";
  }
  return "?";
}

const char* span_kind_stage(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClientQuery: return "query";
    case SpanKind::kClientPump: return "pump";
    case SpanKind::kClientFlush: return "flush";
    case SpanKind::kAgentDecode: return "decode";
    case SpanKind::kAgentIngest: return "ingest";
    case SpanKind::kAgentAnswer: return "answer";
    case SpanKind::kCoordLeg: return "leg";
    case SpanKind::kCoordMerge: return "merge";
    case SpanKind::kEpochSeal: return "epoch_seal";
    case SpanKind::kHistoryWindow: return "window";
  }
  return "?";
}

namespace {

/// Entropy-seeded starting id. Recorders in different processes (or even in
/// one process) start their counters far apart, so ids stay unique across a
/// fleet without coordination — the property trace assembly's parent links
/// rely on.
std::uint64_t entropy_seed() {
  std::random_device rd;
  std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  seed ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // SplitMix64 finalizer spreads weak random_device implementations.
  seed += 0x9e3779b97f4a7c15ULL;
  seed = (seed ^ (seed >> 30)) * 0xbf58476d1ce4e5b9ULL;
  seed = (seed ^ (seed >> 27)) * 0x94d049bb133111ebULL;
  seed ^= seed >> 31;
  return seed != 0 ? seed : 1;
}

}  // namespace

SpanRecorder::SpanRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), next_id_(entropy_seed()) {}

std::uint64_t SpanRecorder::new_trace_id() { return next_span_id(); }

std::uint64_t SpanRecorder::next_span_id() {
  std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // 0 means "absent" everywhere (contexts, parents); skip it on wrap.
  while (id == 0) id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::int64_t SpanRecorder::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::uint64_t SpanRecorder::record(Span span) {
  if (span.span_id == 0) span.span_id = next_span_id();
  if (span.label.size() > kMaxLabel) span.label.resize(kMaxLabel);
  const std::int64_t dur = span.duration_ns();
  const auto kind_index = static_cast<std::size_t>(span.kind) - 1;
  const std::uint64_t id = span.span_id;

  Histogram* stage = nullptr;
  Counter* slow_counter = nullptr;
  EventTrace* slow_trace = nullptr;
  std::string slow_detail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += 1;
    if (ring_.size() == capacity_) {
      ring_.pop_front();
      dropped_ += 1;
    }
    if (kind_index < kSpanKindCount) stage = stage_[kind_index];
    if (slow_threshold_ns_ > 0 && dur >= slow_threshold_ns_) {
      slow_counter = slow_total_;
      slow_trace = slow_trace_;
      slow_detail = span_kind_stage(span.kind);
      if (!span.label.empty()) {
        slow_detail += ' ';
        slow_detail += span.label;
      }
    }
    ring_.push_back(std::move(span));
  }
  // The histogram/trace have their own locks; feeding them outside mu_
  // keeps the recorder's lock scope to the ring itself.
  if (stage != nullptr) stage->observe(static_cast<double>(dur));
  if (slow_counter != nullptr) slow_counter->increment();
  if (slow_trace != nullptr) {
    slow_trace->record(EventKind::kSlowSpan, static_cast<std::uint64_t>(dur > 0 ? dur : 0),
                       slow_detail);
  }
  return id;
}

SpanRecorderSnapshot SpanRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecorderSnapshot snap;
  snap.spans.assign(ring_.begin(), ring_.end());
  snap.dropped = dropped_;
  snap.total = total_;
  return snap;
}

std::vector<Span> SpanRecorder::for_trace(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  for (const auto& span : ring_) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

void SpanRecorder::bind_metrics(MetricsRegistry* registry, const Labels& base_labels) {
  if (registry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (bound_) return;  // first bind wins: one owner's labels, one identity
  bound_ = true;
  for (std::size_t i = 0; i < kSpanKindCount; ++i) {
    Labels labels = base_labels;
    labels.emplace_back("stage", span_kind_stage(static_cast<SpanKind>(i + 1)));
    stage_[i] = registry->histogram("rlir_stage_ns", std::move(labels));
  }
  slow_total_ = registry->counter("rlir_slow_queries_total", base_labels);
}

void SpanRecorder::set_slow_log(std::int64_t threshold_ns, EventTrace* trace) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_threshold_ns_ = threshold_ns;
  slow_trace_ = trace;
}

std::uint64_t SpanRecorder::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

SpanTimer::SpanTimer(SpanRecorder* recorder, SpanKind kind, TraceContext parent,
                     std::string label)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  span_.trace_id = parent.trace_id;
  span_.span_id = recorder_->next_span_id();
  span_.parent_id = parent.span_id;
  span_.kind = kind;
  span_.label = std::move(label);
  span_.start_ns = SpanRecorder::now_ns();
}

TraceContext SpanTimer::context() const {
  if (recorder_ == nullptr) return {};
  return TraceContext{span_.trace_id, span_.span_id};
}

void SpanTimer::set_label(std::string label) {
  if (recorder_ != nullptr) span_.label = std::move(label);
}

void SpanTimer::finish() {
  if (recorder_ == nullptr) return;
  span_.end_ns = SpanRecorder::now_ns();
  recorder_->record(std::move(span_));
  recorder_ = nullptr;
}

// --- Chrome trace_event export ---------------------------------------------

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_span_event(std::string& out, const Span& span, std::size_t pid, bool* first) {
  if (!*first) out += ",\n";
  *first = false;
  // ts/dur are microseconds with ns precision kept in the fractional part.
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                "\"pid\":%zu,\"tid\":1,\"args\":{\"trace_id\":\"%" PRIx64
                "\",\"span_id\":\"%" PRIx64 "\",\"parent_id\":\"%" PRIx64 "\",\"label\":\"",
                span_kind_name(span.kind), span_kind_stage(span.kind),
                static_cast<double>(span.start_ns) / 1e3,
                static_cast<double>(span.duration_ns() > 0 ? span.duration_ns() : 0) / 1e3,
                pid, span.trace_id, span.span_id, span.parent_id);
  out += buf;
  append_json_escaped(out, span.label);
  out += "\"}}";
}

void append_process_name(std::string& out, const std::string& name, std::size_t pid,
                         bool* first) {
  if (!*first) out += ",\n";
  *first = false;
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,\"tid\":1,"
                "\"args\":{\"name\":\"",
                pid);
  out += buf;
  append_json_escaped(out, name);
  out += "\"}}";
}

}  // namespace

std::string to_chrome_trace(
    const std::vector<std::pair<std::string, std::vector<Span>>>& processes) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t pid = 0; pid < processes.size(); ++pid) {
    append_process_name(out, processes[pid].first, pid, &first);
  }
  for (std::size_t pid = 0; pid < processes.size(); ++pid) {
    for (const auto& span : processes[pid].second) {
      append_span_event(out, span, pid, &first);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string to_chrome_trace(const std::vector<Span>& spans, const std::string& process_name) {
  return to_chrome_trace({{process_name, spans}});
}

}  // namespace rlir::obs
