// Bridges common/logging into the observability tier (satellite of the obs
// PR): every emitted log line bumps a per-level registry counter, and WARN+
// lines land in the EventTrace as kLog events — so a post-mortem scrape
// carries the log context alongside the protocol events.
//
// RAII over the single global log-sink slot: constructing installs,
// destroying uninstalls (the sink dies before its registry/trace can).
// One LogBridge at a time; constructing a second replaces the first's sink
// and the first's destructor then clears it — keep exactly one alive.
#pragma once

#include <array>

#include "common/logging.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace rlir::obs {

class LogBridge {
 public:
  /// Counters register as rlir_log_lines_total{level="debug"|...}. `trace`
  /// may be null to count levels without tracing WARN+ lines.
  LogBridge(MetricsRegistry& registry, EventTrace* trace);
  ~LogBridge();

  LogBridge(const LogBridge&) = delete;
  LogBridge& operator=(const LogBridge&) = delete;

 private:
  std::array<Counter*, 4> by_level_{};  // kDebug..kError
  EventTrace* trace_ = nullptr;
};

}  // namespace rlir::obs
