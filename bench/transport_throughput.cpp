// Transport-tier throughput baseline: how fast framed record batches move
// from a CollectorClient into a CollectorAgent's collector, over the two
// byte-stream backends:
//
//   * loopback — the in-memory pipe, client and agent on one thread
//     (protocol + framing + decode cost, no kernel);
//   * unix socket — a real AF_UNIX stream, agent on its own thread with
//     thread-per-shard ingest behind it (the shard-per-process shape).
//
// Also reports the frame overhead (wire bytes per record) so the cost of
// the framing layer over raw batch encoding is visible. Prints one
// "name value unit" row per metric; `--smoke` shrinks counts for CI;
// `--json <path>` dumps the metrics as the BENCH_transport.json artifact.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collect/exporter.h"
#include "common/rng.h"
#include "obs/exposition.h"
#include "rli/receiver.h"
#include "trace/synthetic.h"
#include "transport/agent.h"
#include "transport/client.h"
#include "transport/coordinator.h"
#include "transport/partitioned_client.h"
#include "transport/socket.h"

namespace rlir {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::max(std::chrono::duration<double>(Clock::now() - start).count(), 1e-9);
}

std::vector<std::pair<std::string, double>>& metrics() {
  static std::vector<std::pair<std::string, double>> rows;
  return rows;
}

/// The merged fleet scrape of the last partitioned run, as an obs JSON
/// object — embedded in the BENCH_transport.json artifact so a perf
/// regression comes with the observability state that explains it (shed
/// counts, queue depths, batch-size histograms).
std::string& fleet_metrics_json() {
  static std::string json;
  return json;
}

void print_metric(const std::string& name, double value, const char* unit) {
  std::printf("%-28s %14.3f %s\n", name.c_str(), value, unit);
  metrics().emplace_back(name, value);
}

bool write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < metrics().size(); ++i) {
    const auto& [name, value] = metrics()[i];
    const bool last = i + 1 == metrics().size() && fleet_metrics_json().empty();
    std::fprintf(f, "  \"%s\": %.6g%s\n", name.c_str(), value, last ? "" : ",");
  }
  if (!fleet_metrics_json().empty()) {
    std::fprintf(f, "  \"fleet_metrics\": %s\n", fleet_metrics_json().c_str());
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// One epoch's worth of records from a realistic flow-skewed workload.
std::vector<collect::EstimateRecord> make_batch(std::uint64_t target_packets) {
  trace::SyntheticConfig trace_cfg;
  trace_cfg.duration =
      timebase::Duration::milliseconds(static_cast<std::int64_t>(target_packets / 400 + 1));
  trace_cfg.seed = 42;
  trace::SyntheticTraceGenerator gen(trace_cfg);
  collect::EstimateExporter exporter(
      collect::ExporterConfig{common::LatencySketchConfig{}, 0, 0});
  common::Xoshiro256 latency_rng(7);
  for (std::uint64_t i = 0; i < target_packets; ++i) {
    auto pkt = gen.next();
    if (!pkt) break;
    const double latency_ns = latency_rng.lognormal(std::log(80e3), 0.6);
    exporter.observe(net::kNoSender,
                     rli::RliReceiver::PacketEstimate{pkt->key, pkt->ts, latency_ns});
  }
  return exporter.drain(/*epoch=*/0);
}

/// Streams `epochs` copies of the batch through a client/agent pair over
/// `make_stream`, driving the agent via `drive` (inline poll for loopback,
/// no-op for the threaded socket run). Returns records/sec.
template <typename MakeStream, typename Drive>
double run_backend(const std::vector<collect::EstimateRecord>& batch, std::uint32_t epochs,
                   transport::CollectorAgent& agent, MakeStream make_stream, Drive drive,
                   double* overhead_out) {
  transport::CollectorClientConfig client_cfg;
  // The bench measures lossless end-to-end throughput: it submits whole
  // epochs back-to-back with no pacing, so the queue must hold the full run
  // (production clients pace by epoch interval and want the default cap's
  // shed-oldest behavior instead; at full size the threaded socket stage
  // would otherwise shed by design and report loss).
  client_cfg.max_buffered_bytes = 256u << 20;
  transport::CollectorClient client(client_cfg, make_stream);
  const auto start = Clock::now();
  std::vector<collect::EstimateRecord> stamped = batch;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    for (auto& r : stamped) r.epoch = e;
    client.submit(e, stamped);
    client.pump();
    drive();
  }
  while (!client.drain(64)) drive();
  drive();
  // The clock stops when the agent's collector has merged everything —
  // which for the socket backend means waiting for the agent THREAD to
  // read what drain() only pushed into the kernel buffer, not just for the
  // collector lanes to quiesce (records_ingested() quiesces per call).
  const auto expected = static_cast<std::uint64_t>(batch.size()) * epochs;
  // 60s cap: on a loaded single-core box the agent thread can trail the
  // client by tens of seconds at full batch sizes.
  for (int i = 0; i < 600000 && agent.collector().records_ingested() < expected; ++i) {
    drive();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  const double elapsed = seconds_since(start);
  if (overhead_out != nullptr) {
    *overhead_out = static_cast<double>(client.stats().bytes_sent) /
                    (static_cast<double>(batch.size()) * epochs);
  }
  return static_cast<double>(batch.size()) * epochs / elapsed;
}

/// Streams the batch through a PartitionedClient spraying over `n_agents`
/// loopback agents (all polled inline, like the single-agent loopback run,
/// so the number isolates the partitioning/fan-out cost — not thread
/// parallelism). Emits the fleet rate plus each endpoint's records/s.
int run_partitioned(const std::vector<collect::EstimateRecord>& batch, std::uint32_t epochs,
                    std::size_t shards, std::size_t n_agents) {
  std::vector<std::unique_ptr<transport::CollectorAgent>> agents;
  for (std::size_t i = 0; i < n_agents; ++i) {
    transport::CollectorAgentConfig cfg;
    cfg.collector.shard_count = shards;
    cfg.collector.queue_capacity = 0;  // one thread: skip worker handoff
    agents.push_back(std::make_unique<transport::CollectorAgent>(cfg));
  }
  const auto poll_all = [&agents] {
    for (auto& agent : agents) agent->poll();
  };

  transport::PartitionedClient pc;
  for (std::size_t i = 0; i < n_agents; ++i) {
    pc.add_endpoint([&agents, i]() {
      auto [client_end, agent_end] = transport::make_loopback();
      agents[i]->add_connection(std::move(agent_end));
      return std::move(client_end);
    });
  }

  const auto start = Clock::now();
  std::vector<collect::EstimateRecord> stamped = batch;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    for (auto& r : stamped) r.epoch = e;
    pc.submit(e, stamped);
    pc.pump();
    poll_all();
  }
  while (!pc.drain(64)) poll_all();
  poll_all();
  const double elapsed = seconds_since(start);

  const auto prefix = "partitioned_" + std::to_string(n_agents) + "_agents";
  print_metric(prefix + "_rate",
               static_cast<double>(batch.size()) * epochs / elapsed, "records/s");
  std::uint64_t ingested = 0;
  for (std::size_t i = 0; i < n_agents; ++i) {
    ingested += agents[i]->stats().records_ingested;
    print_metric(prefix + "_endpoint_" + std::to_string(i) + "_rate",
                 static_cast<double>(pc.records_routed(i)) / elapsed, "records/s");
  }
  if (ingested != static_cast<std::uint64_t>(batch.size()) * epochs) {
    std::fprintf(stderr, "partitioned %zu-agent run lost records\n", n_agents);
    return 1;
  }

  // Capture the fleet's merged scrape (largest sweep wins: runs overwrite).
  // Local agents, so scrape() is a direct call — no kMetrics round-trip, the
  // bench clock is already stopped either way.
  std::vector<obs::Scrape> scrapes;
  for (auto& agent : agents) scrapes.push_back(agent->scrape());
  auto fleet = transport::merge_scrapes(scrapes);
  obs::append_event_counters(fleet.metrics, fleet.events);
  fleet_metrics_json() = obs::to_json(fleet.metrics);
  return 0;
}

int run(std::uint64_t target_packets, std::uint32_t epochs, std::size_t shards,
        const std::vector<std::size_t>& agent_sweep, const std::string& json_path,
        const std::string& socket_dir) {
  const auto batch = make_batch(target_packets);
  print_metric("batch_records", static_cast<double>(batch.size()), "records");

  // --- Loopback: deterministic single-thread protocol cost.
  {
    transport::CollectorAgentConfig cfg;
    cfg.collector.shard_count = shards;
    // Queueless mode: on one thread, worker handoff is pure overhead.
    cfg.collector.queue_capacity = 0;
    transport::CollectorAgent agent(cfg);
    double overhead = 0.0;
    const double rate = run_backend(
        batch, epochs, agent,
        [&agent]() {
          auto [client_end, agent_end] = transport::make_loopback();
          agent.add_connection(std::move(agent_end));
          return std::move(client_end);
        },
        [&agent]() { agent.poll(); }, &overhead);
    print_metric("loopback_rate", rate, "records/s");
    print_metric("loopback_wire_bytes_per_record", overhead, "bytes");
    if (agent.stats().records_ingested !=
        static_cast<std::uint64_t>(batch.size()) * epochs) {
      std::fprintf(stderr, "loopback lost records\n");
      return 1;
    }
  }

  // --- Partitioned fleet sweep: flow-hash spray over N loopback agents.
  for (const std::size_t n_agents : agent_sweep) {
    if (const int rc = run_partitioned(batch, epochs, shards, n_agents); rc != 0) return rc;
  }

  // --- Unix socket: the deployment shape (agent thread + shard workers).
  {
    transport::CollectorAgentConfig cfg;
    cfg.collector.shard_count = shards;
    transport::CollectorAgent agent(cfg);
    const auto path = socket_dir + "/rlir_bench_transport.sock";
    try {
      agent.set_listener(std::make_unique<transport::SocketListener>(
          transport::SocketAddress::unix_path(path)));
    } catch (const std::exception& e) {
      // Sandboxed environments without socket rights still get the loopback
      // numbers; report the skip instead of failing the whole harness.
      std::fprintf(stderr, "unix-socket stage skipped: %s\n", e.what());
      print_metric("unix_socket_rate", 0.0, "records/s (skipped)");
      if (!json_path.empty() && !write_json(json_path)) return 1;
      return 0;
    }
    std::atomic<bool> stop{false};
    std::thread agent_thread([&] { agent.run(stop, timebase::Duration::microseconds(50)); });
    const auto address = transport::SocketAddress::unix_path(path);
    const double rate = run_backend(
        batch, epochs, agent, [address]() { return transport::connect_to(address); }, []() {},
        nullptr);
    stop.store(true);
    agent_thread.join();
    print_metric("unix_socket_rate", rate, "records/s");
    if (agent.stats().records_ingested !=
        static_cast<std::uint64_t>(batch.size()) * epochs) {
      std::fprintf(stderr, "unix-socket run lost records\n");
      return 1;
    }
  }

  if (!json_path.empty() && !write_json(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace rlir

int main(int argc, char** argv) {
  std::uint64_t packets = 200'000;
  std::uint32_t epochs = 8;
  std::size_t shards = 4;
  std::vector<std::size_t> agent_sweep = {2, 4};
  std::string json_path;
  std::string socket_dir = "/tmp";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      packets = 2'000;
      epochs = 2;
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      epochs = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--agents") == 0 && i + 1 < argc) {
      // Comma-separated fleet sizes for the partitioned sweep; 0 disables.
      agent_sweep.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const auto n = std::strtoul(p, &end, 10);
        if (end == p) return 2;
        if (n > 0) agent_sweep.push_back(n);
        p = *end == ',' ? end + 1 : end;
      }
    } else if (std::strcmp(argv[i], "--socket-dir") == 0 && i + 1 < argc) {
      socket_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--packets N] [--epochs N] [--shards N] "
                   "[--agents N[,M...]] [--socket-dir DIR] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shards == 0 || epochs == 0) return 2;
  return rlir::run(packets, epochs, shards, agent_sweep, json_path, socket_dir);
}
