// Micro-benchmarks (google-benchmark) for the substrate's hot paths:
// not a paper figure — validates that the building blocks are fast enough
// for paper-scale replays (tens of millions of packets).
#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/lda.h"
#include "common/rng.h"
#include "net/hash.h"
#include "net/prefix_table.h"
#include "rli/receiver.h"
#include "sim/queue.h"
#include "timebase/clock.h"
#include "topo/ecmp.h"
#include "trace/flowmeter.h"
#include "trace/synthetic.h"

namespace {

using namespace rlir;

net::FiveTuple random_key(common::Xoshiro256& rng) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  key.dst = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  key.src_port = static_cast<std::uint16_t>(rng.next());
  key.dst_port = static_cast<std::uint16_t>(rng.next());
  key.proto = 6;
  return key;
}

void BM_FlowKeyHash(benchmark::State& state) {
  common::Xoshiro256 rng(1);
  std::vector<net::FiveTuple> keys;
  for (int i = 0; i < 1024; ++i) keys.push_back(random_key(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys[i++ & 1023].hash());
  }
}
BENCHMARK(BM_FlowKeyHash);

void BM_EcmpCrc32Select(benchmark::State& state) {
  common::Xoshiro256 rng(2);
  topo::Crc32EcmpHasher hasher;
  std::vector<net::FiveTuple> keys;
  for (int i = 0; i < 1024; ++i) keys.push_back(random_key(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.select(keys[i++ & 1023], 0x1234, 4));
  }
}
BENCHMARK(BM_EcmpCrc32Select);

void BM_ReverseEcmpCore(benchmark::State& state) {
  topo::FatTree topo(static_cast<int>(state.range(0)));
  topo::Crc32EcmpHasher hasher;
  common::Xoshiro256 rng(3);
  const auto src = topo.tor(0, 0);
  const auto dst = topo.tor(topo.pods() - 1, 0);
  std::vector<net::FiveTuple> keys;
  for (int i = 0; i < 1024; ++i) keys.push_back(random_key(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::reverse_ecmp_core(topo, hasher, keys[i++ & 1023], src, dst));
  }
}
BENCHMARK(BM_ReverseEcmpCore)->Arg(4)->Arg(16)->Arg(48);

void BM_PrefixTableLookup(benchmark::State& state) {
  net::PrefixTable<int> table;
  // One /24 per ToR of a k=48 fat-tree (1152 rules).
  for (int pod = 0; pod < 48; ++pod) {
    for (int t = 0; t < 24; ++t) {
      table.insert(net::Ipv4Prefix(net::Ipv4Address(10, static_cast<std::uint8_t>(pod),
                                                    static_cast<std::uint8_t>(t), 0),
                                   24),
                   pod * 24 + t);
    }
  }
  common::Xoshiro256 rng(4);
  std::vector<net::Ipv4Address> addrs;
  for (int i = 0; i < 1024; ++i) {
    addrs.push_back(net::Ipv4Address(10, static_cast<std::uint8_t>(rng.uniform_u64(48)),
                                     static_cast<std::uint8_t>(rng.uniform_u64(24)),
                                     static_cast<std::uint8_t>(rng.uniform_u64(254) + 1)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup_ptr(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_PrefixTableLookup);

void BM_FifoQueueOffer(benchmark::State& state) {
  sim::QueueConfig cfg;
  cfg.capacity_bytes = std::uint64_t{1} << 40;  // never drop
  sim::FifoQueue queue(cfg);
  net::Packet pkt;
  pkt.size_bytes = 750;
  std::int64_t t = 0;
  for (auto _ : state) {
    pkt.ts = timebase::TimePoint(t += 600);
    benchmark::DoNotOptimize(queue.offer(pkt, pkt.ts));
  }
}
BENCHMARK(BM_FifoQueueOffer);

void BM_SyntheticGenerate(benchmark::State& state) {
  for (auto _ : state) {
    trace::SyntheticConfig cfg;
    cfg.duration = timebase::Duration::milliseconds(10);
    cfg.offered_bps = 2.2e9;
    cfg.seed = 7;
    trace::SyntheticTraceGenerator gen(cfg);
    std::uint64_t n = 0;
    while (auto p = gen.next()) ++n;
    benchmark::DoNotOptimize(n);
    state.SetItemsProcessed(state.items_processed() + static_cast<std::int64_t>(n));
  }
}
BENCHMARK(BM_SyntheticGenerate);

void BM_FlowmeterObserve(benchmark::State& state) {
  trace::SyntheticConfig cfg;
  cfg.duration = timebase::Duration::milliseconds(50);
  cfg.offered_bps = 2.2e9;
  cfg.seed = 8;
  const auto packets = trace::SyntheticTraceGenerator(cfg).generate_all();
  for (auto _ : state) {
    trace::Flowmeter meter;
    for (const auto& p : packets) meter.observe(p);
    benchmark::DoNotOptimize(meter.active_flows());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(packets.size()));
  }
}
BENCHMARK(BM_FlowmeterObserve);

void BM_LdaRecord(benchmark::State& state) {
  baseline::LdaSketch sketch(baseline::LdaConfig{});
  common::Xoshiro256 rng(9);
  net::Packet pkt;
  pkt.key = random_key(rng);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    pkt.seq = seq++;
    sketch.record(pkt, timebase::TimePoint(static_cast<std::int64_t>(seq)));
  }
}
BENCHMARK(BM_LdaRecord);

void BM_RliReceiverPacket(benchmark::State& state) {
  timebase::PerfectClock clock;
  rli::RliReceiver receiver(rli::ReceiverConfig{}, &clock);
  common::Xoshiro256 rng(10);
  std::vector<net::FiveTuple> keys;
  for (int i = 0; i < 256; ++i) keys.push_back(random_key(rng));
  std::int64_t t = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    t += 700;
    if (n % 100 == 0) {
      net::Packet ref = net::make_reference_packet(
          1, timebase::TimePoint(t - 2000), timebase::TimePoint(t - 2000), n);
      ref.ts = timebase::TimePoint(t);
      receiver.on_packet(ref, ref.ts);
    } else {
      net::Packet pkt;
      pkt.key = keys[n & 255];
      pkt.ts = timebase::TimePoint(t);
      pkt.injected_at = timebase::TimePoint(t - 2000);
      receiver.on_packet(pkt, pkt.ts);
    }
    ++n;
  }
}
BENCHMARK(BM_RliReceiverPacket);

}  // namespace

BENCHMARK_MAIN();
