// Ablation (design decision #3 in DESIGN.md): the cost of NOT
// demultiplexing across routers, and marking vs reverse-ECMP equivalence.
//
// Quantifies Section 3.1's motivation: "packets from different senders may
// end up at the same receiver ... otherwise per-flow latency estimates at
// the receivers can be totally wrong." We run the fat-tree downstream
// experiment (core -> destination ToR segments) with:
//   * reverse-ECMP demux (RLIR, no router support needed),
//   * ToS marking demux (RLIR, needs core support),
//   * no demux (single stream - the naive partial deployment).
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.h"

int main() {
  using namespace rlir;

  std::printf("# Ablation: downstream demultiplexing strategies, k=4 fat-tree\n");
  std::printf("# segment: every core -> receiver ToR; per-flow mean relative error\n\n");
  std::printf("%-14s %9s %10s %12s %13s %13s\n", "demux", "flows", "median", "frac<=10%",
              "classified", "unclassified");

  const char* s = std::getenv("RLIR_BENCH_SCALE");
  const double scale = s != nullptr ? std::atof(s) : 1.0;

  const exp::DemuxStrategy strategies[] = {
      exp::DemuxStrategy::kReverseEcmp,
      exp::DemuxStrategy::kMarking,
      exp::DemuxStrategy::kNone,
  };
  for (const auto strategy : strategies) {
    exp::FatTreeExperimentConfig cfg;
    cfg.demux = strategy;
    cfg.duration = timebase::Duration::milliseconds(static_cast<std::int64_t>(40 * scale));
    // Heterogeneous core delays (core c is 20us*c slower): with symmetric
    // paths, wrong-stream interpolation would be coincidentally harmless.
    cfg.core_delay_step = timebase::Duration::microseconds(20);
    cfg.seed = 9;
    const auto result = exp::run_fattree_downstream_experiment(cfg);
    const auto cdf = result.report.mean_error_cdf();
    std::printf("%-14s %9zu %9.2f%% %11.1f%% %13llu %13llu\n", to_string(strategy),
                cdf.size(), 100.0 * cdf.median(), 100.0 * cdf.fraction_at_or_below(0.10),
                static_cast<unsigned long long>(result.classified_packets),
                static_cast<unsigned long long>(result.unclassified_packets));
  }
  std::printf(
      "\n# expectation: marking == reverse-ecmp (both exact); none is markedly worse\n");
  return 0;
}
