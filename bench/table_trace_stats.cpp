// Section 4.1 trace and environment statistics: the workload counts and the
// ground-truth average latencies the paper quotes for its simulation
// environment.
//
//   paper (60 s OC-192 traces): regular 22.4M packets / 1.45M flows,
//   cross 70.4M packets, ~22% utilization at the sender switch;
//   average segment latency 3.0us @67% random, 83us @93% random,
//   117us @67% bursty.
//
// Our traces are synthetic and default to a shorter horizon; the table
// reports the same quantities (packets-per-flow ratio, regular:cross volume
// ratio, utilizations, average latencies) so the regimes can be compared
// directly. Run with RLIR_BENCH_SCALE>1 for longer traces.
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.h"
#include "trace/flowmeter.h"
#include "trace/synthetic.h"

int main() {
  using namespace rlir;

  const char* s = std::getenv("RLIR_BENCH_SCALE");
  const double scale = s != nullptr ? std::atof(s) : 1.0;
  const auto duration =
      timebase::Duration::milliseconds(static_cast<std::int64_t>(400 * scale));

  std::printf("# Section 4.1: workload statistics (synthetic OC-192 substitute)\n\n");

  // --- Raw trace statistics via the YAF-like flowmeter -----------------
  trace::SyntheticConfig reg_cfg;
  reg_cfg.duration = duration;
  reg_cfg.offered_bps = 0.22 * 10e9;
  reg_cfg.seed = 2024;
  trace::SyntheticTraceGenerator reg_gen(reg_cfg);
  trace::Flowmeter meter;
  std::uint64_t reg_bytes = 0;
  while (auto p = reg_gen.next()) {
    meter.observe(*p);
    reg_bytes += p->size_bytes;
  }
  meter.flush();

  trace::SyntheticConfig cross_cfg = reg_cfg;
  cross_cfg.offered_bps = 1.0 * 10e9;
  cross_cfg.seed = 999;
  trace::SyntheticTraceGenerator cross_gen(cross_cfg);
  std::uint64_t cross_packets = 0;
  while (auto p = cross_gen.next()) ++cross_packets;

  const double pkts = static_cast<double>(meter.total_packets());
  const double flows = static_cast<double>(meter.total_flows_exported());
  std::printf("%-34s %14s %14s\n", "quantity", "this repo", "paper(60s)");
  std::printf("%-34s %14.3fs %14s\n", "trace duration", duration.sec(), "60s");
  std::printf("%-34s %14.0f %14s\n", "regular packets", pkts, "22.4M");
  std::printf("%-34s %14.0f %14s\n", "regular flows", flows, "1.45M");
  std::printf("%-34s %14.2f %14.2f\n", "packets per flow", pkts / flows, 22.4e6 / 1.45e6);
  std::printf("%-34s %14.0f %14s\n", "cross packets (offered)",
              static_cast<double>(cross_packets), "70.4M");
  std::printf("%-34s %14.2f %14.2f\n", "cross:regular packet ratio",
              static_cast<double>(cross_packets) / pkts, 70.4 / 22.4);
  std::printf("%-34s %13.1f%% %14s\n", "regular load at sender link",
              100.0 * static_cast<double>(reg_bytes) * 8.0 / (10e9 * duration.sec()), "~22%");

  // --- Ground-truth latency regimes ------------------------------------
  std::printf("\n%-34s %14s %14s\n", "environment", "avg latency", "paper");
  struct Row {
    const char* label;
    sim::CrossModel model;
    double util;
    const char* paper;
  };
  const Row rows[] = {
      {"random cross traffic @67%", sim::CrossModel::kUniform, 0.67, "3.0us"},
      {"random cross traffic @93%", sim::CrossModel::kUniform, 0.93, "83us"},
      {"bursty cross traffic @67%", sim::CrossModel::kBursty, 0.67, "117us"},
  };
  for (const auto& row : rows) {
    exp::ExperimentConfig cfg;
    cfg.cross_model = row.model;
    cfg.target_utilization = row.util;
    cfg.duration = duration;
    cfg.seed = 2024;
    const auto result = exp::run_two_hop_experiment(cfg);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fus", result.true_mean_latency_ns / 1e3);
    std::printf("%-34s %14s %14s\n", row.label, buf, row.paper);
  }
  return 0;
}
