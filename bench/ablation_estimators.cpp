// Ablation (design decision #1 in DESIGN.md): RLI's LINEAR interpolation vs
// simpler estimators — left anchor only, right anchor only, nearest anchor.
//
// Not a paper figure; validates the estimator choice the architecture
// inherits from RLI (SIGCOMM'10), which motivated interpolation by showing
// delay locality makes in-between estimates accurate.
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.h"

int main() {
  using namespace rlir;

  std::printf("# Ablation: interpolation estimator variants (static 1-and-100)\n\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "estimator", "util", "flows", "median",
              "frac<=10%");

  const char* s = std::getenv("RLIR_BENCH_SCALE");
  const double scale = s != nullptr ? std::atof(s) : 1.0;

  const rli::EstimatorKind kinds[] = {
      rli::EstimatorKind::kLinear,
      rli::EstimatorKind::kLeft,
      rli::EstimatorKind::kRight,
      rli::EstimatorKind::kNearest,
  };
  for (const double util : {0.67, 0.93}) {
    for (const auto kind : kinds) {
      exp::ExperimentConfig cfg;
      cfg.estimator = kind;
      cfg.target_utilization = util;
      cfg.duration =
          timebase::Duration::milliseconds(static_cast<std::int64_t>(400 * scale));
      cfg.seed = 31;
      const auto result = exp::run_two_hop_experiment(cfg);
      const auto cdf = result.report.mean_error_cdf();
      std::printf("%-10s %11.0f%% %12zu %11.2f%% %11.1f%%\n", to_string(kind), util * 100.0,
                  cdf.size(), 100.0 * cdf.median(),
                  100.0 * cdf.fraction_at_or_below(0.10));
    }
  }
  return 0;
}
