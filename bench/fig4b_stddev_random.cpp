// Figure 4(b): CDF of per-flow relative error of STANDARD DEVIATION
// estimates, {Adaptive, Static} x {67%, 93%}, random cross-traffic model.
//
// Paper's reported shape: same trend as the mean — at 93% utilization the
// adaptive scheme gets ~90% of flows under 10% relative error vs ~30% at
// 67%; adaptive medians differ by about an order of magnitude between the
// two utilizations.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "exp/experiment.h"

int main() {
  using namespace rlir;

  std::printf("# Figure 4(b): stddev-estimate relative error CDF, random cross traffic\n\n");

  const char* s = std::getenv("RLIR_BENCH_SCALE");
  const double scale = s != nullptr ? std::atof(s) : 1.0;

  struct Cell {
    rli::InjectionScheme scheme;
    double util;
  };
  const Cell grid[] = {
      {rli::InjectionScheme::kAdaptive, 0.93},
      {rli::InjectionScheme::kStatic, 0.93},
      {rli::InjectionScheme::kAdaptive, 0.67},
      {rli::InjectionScheme::kStatic, 0.67},
  };

  std::printf("%-22s %9s %9s %11s %11s\n", "series", "flows", "median", "frac<=10%",
              "frac<=50%");
  std::vector<std::pair<std::string, common::Cdf>> curves;
  for (const auto& cell : grid) {
    exp::ExperimentConfig cfg;
    cfg.scheme = cell.scheme;
    cfg.target_utilization = cell.util;
    cfg.duration = timebase::Duration::milliseconds(static_cast<std::int64_t>(400 * scale));
    cfg.seed = 2024;
    const auto result = exp::run_two_hop_experiment(cfg);
    const auto cdf = result.report.stddev_error_cdf();
    std::printf("%-22s %9zu %8.1f%% %10.1f%% %10.1f%%\n", cfg.label().c_str(), cdf.size(),
                100.0 * cdf.median(), 100.0 * cdf.fraction_at_or_below(0.10),
                100.0 * cdf.fraction_at_or_below(0.50));
    curves.emplace_back(cfg.label(), cdf);
  }

  std::printf("\n");
  for (const auto& [label, cdf] : curves) {
    std::printf("%s\n", common::format_cdf_table(cdf, label, 21).c_str());
  }
  return 0;
}
