// Figure 4(a): CDF of per-flow relative error of MEAN latency estimates,
// {Adaptive, Static} x {67%, 93%} bottleneck utilization, random (uniform)
// cross-traffic model.
//
// Paper's reported shape:
//   * accuracy improves with utilization (true delays grow);
//   * adaptive (pinned at 1-and-10, since the sender sees only ~22% local
//     utilization) beats static 1-and-100;
//   * static: ~70% of flows under 10% relative error at 93% utilization;
//     static medians ~4.2% @93% vs ~31% @67%;
//   * abstract headline: ~4.5% median relative error at 93% with cross
//     traffic.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "exp/experiment.h"

namespace {

double env_scale() {
  // RLIR_BENCH_SCALE stretches the simulated trace (1.0 = default 400 ms).
  const char* s = std::getenv("RLIR_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

}  // namespace

int main() {
  using namespace rlir;

  std::printf("# Figure 4(a): mean-estimate relative error CDF, random cross traffic\n");
  std::printf("# environment: two-hop pipeline (Fig 3), 10G links, regular load 22%%\n\n");

  const double scale = env_scale();

  struct Cell {
    rli::InjectionScheme scheme;
    double util;
  };
  const Cell grid[] = {
      {rli::InjectionScheme::kAdaptive, 0.93},
      {rli::InjectionScheme::kStatic, 0.93},
      {rli::InjectionScheme::kAdaptive, 0.67},
      {rli::InjectionScheme::kStatic, 0.67},
  };

  std::printf("%-22s %9s %9s %11s %11s %12s %10s\n", "series", "flows", "median",
              "frac<=10%", "frac<=50%", "true_avg_us", "meas_util");
  std::vector<std::pair<std::string, common::Cdf>> curves;
  for (const auto& cell : grid) {
    exp::ExperimentConfig cfg;
    cfg.scheme = cell.scheme;
    cfg.target_utilization = cell.util;
    cfg.cross_model = sim::CrossModel::kUniform;
    cfg.duration = timebase::Duration::milliseconds(static_cast<std::int64_t>(400 * scale));
    cfg.seed = 2024;
    const auto result = exp::run_two_hop_experiment(cfg);
    const auto cdf = result.report.mean_error_cdf();
    std::printf("%-22s %9zu %8.1f%% %10.1f%% %10.1f%% %12.2f %9.1f%%\n",
                cfg.label().c_str(), cdf.size(), 100.0 * cdf.median(),
                100.0 * cdf.fraction_at_or_below(0.10),
                100.0 * cdf.fraction_at_or_below(0.50), result.true_mean_latency_ns / 1e3,
                100.0 * result.measured_utilization);
    curves.emplace_back(cfg.label(), cdf);
  }

  std::printf("\n");
  for (const auto& [label, cdf] : curves) {
    std::printf("%s\n", common::format_cdf_table(cdf, label, 21).c_str());
  }
  return 0;
}
