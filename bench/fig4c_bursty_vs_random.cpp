// Figure 4(c): mean-estimate relative error CDF comparing the BURSTY and
// RANDOM cross-traffic models at 34% and 67% bottleneck utilization.
//
// Paper's reported shape: bursty arrivals raise true delays by more than an
// order of magnitude (117us vs 3.0us at 67% utilization), so relative errors
// drop by about an order of magnitude (1% vs 10% median at 67%). The paper's
// bursty model used 10 s injection windows in a 60 s trace and 15% selection
// probability for the 34% point; we scale the windows to the trace length.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "exp/experiment.h"

int main() {
  using namespace rlir;

  std::printf("# Figure 4(c): bursty vs random cross-traffic model, mean estimates\n\n");

  const char* s = std::getenv("RLIR_BENCH_SCALE");
  const double scale = s != nullptr ? std::atof(s) : 1.0;

  struct Cell {
    sim::CrossModel model;
    double util;
  };
  const Cell grid[] = {
      {sim::CrossModel::kBursty, 0.67},
      {sim::CrossModel::kBursty, 0.34},
      {sim::CrossModel::kUniform, 0.67},
      {sim::CrossModel::kUniform, 0.34},
  };

  std::printf("%-22s %9s %9s %11s %12s %10s\n", "series", "flows", "median", "frac<=10%",
              "true_avg_us", "meas_util");
  std::vector<std::pair<std::string, common::Cdf>> curves;
  for (const auto& cell : grid) {
    exp::ExperimentConfig cfg;
    cfg.scheme = rli::InjectionScheme::kStatic;
    cfg.cross_model = cell.model;
    cfg.target_utilization = cell.util;
    cfg.duration = timebase::Duration::milliseconds(static_cast<std::int64_t>(400 * scale));
    cfg.seed = 77;
    const auto result = exp::run_two_hop_experiment(cfg);
    const auto cdf = result.report.mean_error_cdf();
    std::printf("%-22s %9zu %8.2f%% %10.1f%% %12.2f %9.1f%%\n", cfg.label().c_str(),
                cdf.size(), 100.0 * cdf.median(), 100.0 * cdf.fraction_at_or_below(0.10),
                result.true_mean_latency_ns / 1e3, 100.0 * result.measured_utilization);
    curves.emplace_back(cfg.label(), cdf);
  }

  std::printf("\n");
  for (const auto& [label, cdf] : curves) {
    std::printf("%s\n", common::format_cdf_table(cdf, label, 21).c_str());
  }
  return 0;
}
