// Collection-tier throughput baseline: how fast estimates fold into
// sketches, how compact the wire format is, and how fast the sharded
// collector ingests record batches.
//
// Pipeline measured (the deployment data path end to end):
//   synthetic trace --stream--> exporter sketches --drain--> wire bytes
//   --decode--> sharded collector --> fleet queries
//
// Prints one "name value unit" row per metric. `--smoke` shrinks every
// count so CI can run the whole harness in well under a second; `--packets`
// and `--shards` override the defaults for manual investigation.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "collect/exporter.h"
#include "collect/sharded_collector.h"
#include "common/rng.h"
#include "trace/synthetic.h"
#include "trace/trace_file.h"

namespace rlir {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  // Floor keeps the rate divisions finite in --smoke runs.
  return std::max(std::chrono::duration<double>(Clock::now() - start).count(), 1e-9);
}

void print_metric(const char* name, double value, const char* unit) {
  std::printf("%-28s %14.3f %s\n", name, value, unit);
}

int run(std::uint64_t target_packets, std::size_t shard_count, std::uint32_t epochs) {
  // --- Stage 0: a realistic flow-skewed workload, persisted and then
  // streamed back (TraceReader::for_each keeps ingest memory flat).
  trace::SyntheticConfig trace_cfg;
  trace_cfg.duration = timebase::Duration::milliseconds(
      static_cast<std::int64_t>(target_packets / 400 + 1));
  trace_cfg.seed = 42;
  std::stringstream trace_stream;
  {
    trace::SyntheticTraceGenerator gen(trace_cfg);
    std::vector<net::Packet> packets;
    packets.reserve(target_packets);
    while (packets.size() < target_packets) {
      auto pkt = gen.next();
      if (!pkt) break;
      packets.push_back(*pkt);
    }
    trace::TraceWriter::write(trace_stream, packets);
  }

  // --- Stage 1: exporter ingest (per-packet estimate -> per-flow sketch).
  // Latencies are synthetic (log-normal around ~80us, the paper's loaded-
  // queue scale); the estimate path doesn't care where the number came from.
  collect::EstimateExporter exporter(
      collect::ExporterConfig{common::LatencySketchConfig{}, 0});
  common::Xoshiro256 latency_rng(7);
  const auto ingest_start = Clock::now();
  const std::uint64_t streamed = trace::TraceReader::for_each(
      trace_stream, [&](const net::Packet& pkt) {
        const double latency_ns = latency_rng.lognormal(std::log(80e3), 0.6);
        exporter.observe(net::kNoSender,
                         rli::RliReceiver::PacketEstimate{pkt.key, pkt.ts, latency_ns});
      });
  const double ingest_s = seconds_since(ingest_start);
  print_metric("estimates_ingested", static_cast<double>(streamed), "estimates");
  print_metric("exporter_flows", static_cast<double>(exporter.flow_count()), "flows");
  print_metric("exporter_rate", static_cast<double>(streamed) / ingest_s, "estimates/s");

  // --- Stage 2: wire format density.
  const auto records = exporter.drain(/*epoch=*/0);
  const auto bytes = collect::encode_records(records);
  print_metric("wire_bytes_per_record",
               static_cast<double>(bytes.size()) / static_cast<double>(records.size()),
               "bytes");
  print_metric("wire_bytes_per_estimate",
               static_cast<double>(bytes.size()) / static_cast<double>(streamed), "bytes");

  // --- Stage 3: collector ingest across epochs (decode + shard + merge).
  collect::CollectorConfig collector_cfg;
  collector_cfg.shard_count = shard_count;
  collect::ShardedCollector collector(collector_cfg);
  const auto collect_start = Clock::now();
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    auto batch = collect::decode_records(bytes.data(), bytes.size());
    for (auto& r : batch) r.epoch = epoch;
    collector.ingest(batch);
  }
  const double collect_s = seconds_since(collect_start);
  const double total_records = static_cast<double>(records.size()) * epochs;
  print_metric("collector_records", total_records, "records");
  print_metric("collector_rate", total_records / collect_s, "records/s");
  print_metric("collector_estimate_rate",
               static_cast<double>(collector.estimates_ingested()) / collect_s,
               "estimates/s");

  // --- Stage 4: query sanity + memory accounting.
  const auto fleet = collector.fleet();
  print_metric("fleet_p50", fleet.quantile(0.5) / 1e3, "us");
  print_metric("fleet_p99", fleet.quantile(0.99) / 1e3, "us");
  const auto top = collector.top_k_flows(3, 0.99);
  print_metric("top_flow_p99", top.empty() ? 0.0 : top.front().p99_ns / 1e3, "us");
  print_metric("collector_flows", static_cast<double>(collector.flow_count()), "flows");
  print_metric("bytes_per_flow",
               static_cast<double>(collector.approx_flow_bytes()) /
                   static_cast<double>(collector.flow_count()),
               "bytes");
  return 0;
}

}  // namespace
}  // namespace rlir

int main(int argc, char** argv) {
  std::uint64_t packets = 500'000;
  std::size_t shards = 8;
  std::uint32_t epochs = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      packets = 2'000;
      epochs = 2;
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--packets N] [--shards N]\n", argv[0]);
      return 2;
    }
  }
  return rlir::run(packets, shards, epochs);
}
