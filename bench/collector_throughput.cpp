// Collection-tier throughput baseline: how fast estimates fold into
// sketches, how compact the wire format is, how fast the sharded collector
// ingests record batches — and how much thread-per-shard concurrent ingest
// buys over the single-threaded path.
//
// Pipeline measured (the deployment data path end to end):
//   synthetic trace --stream--> exporter sketches --drain--> wire bytes
//   --decode--> sharded collector --> fleet queries
// then again with N producer threads decoding and submitting in parallel to
// a ConcurrentShardedCollector (threads-vs-throughput sweep).
//
// Prints one "name value unit" row per metric. `--smoke` shrinks every
// count so CI can run the whole harness in well under a second; `--packets`,
// `--shards`, and `--threads` override the defaults for manual
// investigation; `--json <path>` additionally dumps every metric as a flat
// JSON object (the CI perf-trajectory artifact).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "collect/concurrent_collector.h"
#include "collect/exporter.h"
#include "collect/history.h"
#include "collect/sharded_collector.h"
#include "common/rng.h"
#include "obs/span.h"
#include "trace/synthetic.h"
#include "trace/trace_file.h"

namespace rlir {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  // Floor keeps the rate divisions finite in --smoke runs.
  return std::max(std::chrono::duration<double>(Clock::now() - start).count(), 1e-9);
}

/// Accumulates every reported metric so --json can dump the whole run.
std::vector<std::pair<std::string, double>>& metrics() {
  static std::vector<std::pair<std::string, double>> rows;
  return rows;
}

void print_metric(const std::string& name, double value, const char* unit) {
  std::printf("%-28s %14.3f %s\n", name.c_str(), value, unit);
  metrics().emplace_back(name, value);
}

bool write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < metrics().size(); ++i) {
    const auto& [name, value] = metrics()[i];
    std::fprintf(f, "  \"%s\": %.6g%s\n", name.c_str(), value,
                 i + 1 < metrics().size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// Concurrent-ingest measurement: `threads` producers each decode and submit
/// `epochs` epoch-batches (total records = threads x epochs x batch) into a
/// thread-per-shard collector; the clock stops when quiesce() returns, so
/// queued work is fully merged. Returns records/sec.
double run_concurrent(const std::vector<std::uint8_t>& bytes, std::size_t batch_records,
                      std::uint32_t epochs, std::size_t shard_count, std::size_t threads,
                      std::uint64_t* fallbacks) {
  collect::ConcurrentCollectorConfig cfg;
  cfg.shard_count = shard_count;
  collect::ConcurrentShardedCollector collector(cfg);

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    producers.emplace_back([&, t] {
      for (std::uint32_t e = 0; e < epochs; ++e) {
        auto batch = collect::decode_records(bytes.data(), bytes.size());
        const auto epoch = static_cast<std::uint32_t>(t * epochs + e);
        for (auto& r : batch) r.epoch = epoch;
        collector.submit(std::move(batch));
      }
    });
  }
  for (auto& p : producers) p.join();
  collector.quiesce();
  const double elapsed = seconds_since(start);
  *fallbacks = collector.fallback_ingests();
  const double total = static_cast<double>(batch_records) * epochs * static_cast<double>(threads);
  return total / elapsed;
}

int run(std::uint64_t target_packets, std::size_t shard_count, std::uint32_t epochs,
        const std::vector<std::size_t>& thread_sweep, bool history_churn,
        const std::string& json_path) {
  // --- Stage 0: a realistic flow-skewed workload, persisted and then
  // streamed back (TraceReader::for_each keeps ingest memory flat).
  trace::SyntheticConfig trace_cfg;
  trace_cfg.duration = timebase::Duration::milliseconds(
      static_cast<std::int64_t>(target_packets / 400 + 1));
  trace_cfg.seed = 42;
  std::stringstream trace_stream;
  {
    trace::SyntheticTraceGenerator gen(trace_cfg);
    std::vector<net::Packet> packets;
    packets.reserve(target_packets);
    while (packets.size() < target_packets) {
      auto pkt = gen.next();
      if (!pkt) break;
      packets.push_back(*pkt);
    }
    trace::TraceWriter::write(trace_stream, packets);
  }

  // --- Stage 1: exporter ingest (per-packet estimate -> per-flow sketch).
  // Latencies are synthetic (log-normal around ~80us, the paper's loaded-
  // queue scale); the estimate path doesn't care where the number came from.
  collect::EstimateExporter exporter(
      collect::ExporterConfig{common::LatencySketchConfig{}, 0, 0});
  common::Xoshiro256 latency_rng(7);
  const auto ingest_start = Clock::now();
  const std::uint64_t streamed = trace::TraceReader::for_each(
      trace_stream, [&](const net::Packet& pkt) {
        const double latency_ns = latency_rng.lognormal(std::log(80e3), 0.6);
        exporter.observe(net::kNoSender,
                         rli::RliReceiver::PacketEstimate{pkt.key, pkt.ts, latency_ns});
      });
  const double ingest_s = seconds_since(ingest_start);
  print_metric("estimates_ingested", static_cast<double>(streamed), "estimates");
  print_metric("exporter_flows", static_cast<double>(exporter.flow_count()), "flows");
  print_metric("exporter_rate", static_cast<double>(streamed) / ingest_s, "estimates/s");

  // --- Stage 2: wire format density.
  const auto records = exporter.drain(/*epoch=*/0);
  const auto bytes = collect::encode_records(records);
  print_metric("wire_bytes_per_record",
               static_cast<double>(bytes.size()) / static_cast<double>(records.size()),
               "bytes");
  print_metric("wire_bytes_per_estimate",
               static_cast<double>(bytes.size()) / static_cast<double>(streamed), "bytes");

  // --- Stage 3: single-threaded collector ingest across epochs (decode +
  // shard + merge) — the baseline the concurrent sweep is judged against.
  // Uses the zero-copy view path, which is what the agent's ingest loop runs
  // in production; the owning path is measured alongside for the ladder in
  // docs/PERFORMANCE.md.
  collect::CollectorConfig collector_cfg;
  collector_cfg.shard_count = shard_count;
  collect::ShardedCollector collector(collector_cfg);
  std::vector<collect::RecordView> views;
  const auto collect_start = Clock::now();
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    views.clear();
    collect::decode_record_views_prefix(bytes.data(), bytes.size(), views);
    for (auto& v : views) {
      v.epoch = epoch;
      collector.ingest(v);
    }
  }
  const double collect_s = seconds_since(collect_start);
  const double total_records = static_cast<double>(records.size()) * epochs;
  const double serial_rate = total_records / collect_s;
  print_metric("collector_records", total_records, "records");
  print_metric("collector_rate", serial_rate, "records/s");
  print_metric("collector_estimate_rate",
               static_cast<double>(collector.estimates_ingested()) / collect_s,
               "estimates/s");

  // Owning decode path (materialized EstimateRecords, heap sketches) over the
  // same workload, so view-vs-owning stays measurable per run.
  collect::ShardedCollector owning_collector(collector_cfg);
  const auto owning_start = Clock::now();
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    auto batch = collect::decode_records(bytes.data(), bytes.size());
    for (auto& r : batch) r.epoch = epoch;
    owning_collector.ingest(batch);
  }
  const double owning_s = seconds_since(owning_start);
  print_metric("collector_rate_owning", total_records / owning_s, "records/s");

  // --- Stage 3a: the same serial view-path ingest with the time-travel
  // history store teed in — what keeping every epoch's raw delta log costs
  // on the hot path (one mutex + raw-buffer body append per record; the
  // default config keeps the bench's epochs raw, so no fold runs inside the
  // timed loop). Plain/teed runs alternate and each reports its best pass:
  // the overhead ratio is tens of ns per record, smaller than the drift
  // between two one-shot loops on a shared machine.
  const auto time_serial = [&](collect::ShardedCollector& c) {
    const auto start = Clock::now();
    for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
      views.clear();
      collect::decode_record_views_prefix(bytes.data(), bytes.size(), views);
      for (auto& v : views) {
        v.epoch = epoch;
        c.ingest(v);
      }
    }
    return seconds_since(start);
  };
  const auto best_teed = [&](const collect::HistoryConfig& cfg, double* out_bytes,
                             double* out_epochs, double* out_folds) {
    double rate = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
      collect::SketchHistoryStore history(cfg);
      collect::ShardedCollector teed(collector_cfg);
      teed.set_history(&history);
      rate = std::max(rate, total_records / time_serial(teed));
      if (out_bytes != nullptr) *out_bytes = static_cast<double>(history.approx_bytes());
      if (out_epochs != nullptr) {
        *out_epochs = static_cast<double>(history.epochs_retained());
      }
      if (out_folds != nullptr) *out_folds = static_cast<double>(history.compactions());
    }
    return rate;
  };
  double plain_rate = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    collect::ShardedCollector plain(collector_cfg);
    plain_rate = std::max(plain_rate, total_records / time_serial(plain));
  }
  double history_bytes = 0.0;
  double history_epochs = 0.0;
  const double history_rate =
      best_teed(collect::HistoryConfig{}, &history_bytes, &history_epochs, nullptr);
  print_metric("collector_rate_history", history_rate, "records/s");
  print_metric("history_overhead", plain_rate / history_rate, "x");
  print_metric("history_bytes", history_bytes, "bytes");
  print_metric("history_epochs", history_epochs, "epochs");

  // --- Stage 3a': the same serial view-path ingest with the tracing
  // recorder attached — one kAgentIngest span per epoch batch into a live
  // SpanRecorder with the stage histograms bound, which is exactly what a
  // traced agent records per delivered frame. CI gates this against the
  // baseline so the recorder stays per-batch (one mutex + one histogram
  // observe per epoch), never per-record. Alternates with plain passes and
  // reports the best, like the history tee above.
  const auto time_traced = [&](collect::ShardedCollector& c, obs::SpanRecorder& spans) {
    const auto start = Clock::now();
    for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
      views.clear();
      collect::decode_record_views_prefix(bytes.data(), bytes.size(), views);
      obs::SpanTimer span(&spans, obs::SpanKind::kAgentIngest, {},
                          "epoch" + std::to_string(epoch));
      for (auto& v : views) {
        v.epoch = epoch;
        c.ingest(v);
      }
    }
    return seconds_since(start);
  };
  double traced_rate = 0.0;
  double traced_spans = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    obs::MetricsRegistry registry;
    obs::SpanRecorder spans;
    spans.bind_metrics(&registry, {});
    collect::ShardedCollector traced(collector_cfg);
    traced_rate = std::max(traced_rate, total_records / time_traced(traced, spans));
    traced_spans = static_cast<double>(spans.total());
  }
  print_metric("collector_rate_traced", traced_rate, "records/s");
  print_metric("tracing_overhead", plain_rate / traced_rate, "x");
  print_metric("tracing_spans", traced_spans, "spans");

  // --history: re-run with tiers shrunk so EVERY epoch boundary folds the
  // raw log into the mid/coarse maps — the worst-case compaction tax (each
  // fold re-merges the whole epoch, roughly a second ingest pass). Separate
  // metrics, not baseline-gated: the ratio is workload-shaped, the hot-path
  // number above is the regression gate.
  if (history_churn) {
    collect::HistoryConfig churn_cfg;
    churn_cfg.raw_epochs = 1;
    churn_cfg.mid_window = 2;
    churn_cfg.mid_segments = 2;
    churn_cfg.coarse_window = 4;
    churn_cfg.coarse_segments = 2;
    double churn_bytes = 0.0;
    double churn_epochs = 0.0;
    double churn_folds = 0.0;
    const double churn_rate = best_teed(churn_cfg, &churn_bytes, &churn_epochs, &churn_folds);
    print_metric("history_churn_throughput", churn_rate, "records/s");
    print_metric("history_churn_overhead", plain_rate / churn_rate, "x");
    print_metric("history_churn_bytes", churn_bytes, "bytes");
    print_metric("history_churn_epochs", churn_epochs, "epochs");
    print_metric("history_churn_compactions", churn_folds, "folds");
  }

  // --- Stage 3b: threads-vs-throughput sweep over the concurrent collector
  // (thread-per-shard workers; producers decode in parallel too, exactly as
  // many networked vantage feeds would).
  for (const std::size_t threads : thread_sweep) {
    std::uint64_t fallbacks = 0;
    const double rate =
        run_concurrent(bytes, records.size(), epochs, shard_count, threads, &fallbacks);
    const std::string suffix = "_t" + std::to_string(threads);
    print_metric("mt_collector_rate" + suffix, rate, "records/s");
    print_metric("mt_speedup" + suffix, rate / serial_rate, "x");
    print_metric("mt_fallbacks" + suffix, static_cast<double>(fallbacks), "records");
  }

  // --- Stage 4: query sanity + memory accounting.
  const auto fleet = collector.fleet();
  print_metric("fleet_p50", fleet.quantile(0.5) / 1e3, "us");
  print_metric("fleet_p99", fleet.quantile(0.99) / 1e3, "us");
  const auto top = collector.top_k_flows(3, 0.99);
  print_metric("top_flow_p99", top.empty() ? 0.0 : top.front().p99_ns / 1e3, "us");
  print_metric("collector_flows", static_cast<double>(collector.flow_count()), "flows");
  print_metric("bytes_per_flow",
               static_cast<double>(collector.approx_flow_bytes()) /
                   static_cast<double>(collector.flow_count()),
               "bytes");

  if (!json_path.empty() && !write_json(json_path)) return 1;
  return 0;
}

std::vector<std::size_t> parse_threads(const char* arg) {
  // Comma-separated list, e.g. "1,2,4". Empty/invalid/absurd entries are
  // rejected by returning an empty vector (caller prints usage).
  constexpr unsigned long kMaxThreads = 1024;
  std::vector<std::size_t> out;
  const std::string text(arg);
  if (text.empty() || text.back() == ',') return {};
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(item.c_str(), &end, 10);
    // The whole token must be digits ("2;4" and "4x8" are typos, not
    // counts) and the count plausible (strtoul overflow returns ULONG_MAX).
    if (v == 0 || v > kMaxThreads || end != item.c_str() + item.size()) return {};
    out.push_back(v);
  }
  return out;
}

}  // namespace
}  // namespace rlir

int main(int argc, char** argv) {
  std::uint64_t packets = 500'000;
  std::size_t shards = 8;
  std::uint32_t epochs = 4;
  std::vector<std::size_t> thread_sweep = {1, 2, 4};
  bool history_churn = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      packets = 2'000;
      epochs = 2;
    } else if (std::strcmp(argv[i], "--history") == 0) {
      history_churn = true;
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_sweep = rlir::parse_threads(argv[++i]);
      if (thread_sweep.empty()) {
        std::fprintf(stderr, "bad --threads list (want e.g. 1,2,4)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--history] [--packets N] [--shards N] "
                   "[--threads L1,L2,...] [--json PATH]\n"
                   "  --history   shrink the history tiers so every epoch folds "
                   "(compaction churn)\n",
                   argv[0]);
      return 2;
    }
  }
  return rlir::run(packets, shards, epochs, thread_sweep, history_churn, json_path);
}
