// Figure 5: regular-packet loss-rate INCREASE caused by reference packets,
// as a function of bottleneck utilization (0.82 .. 0.98), adaptive vs
// static injection.
//
// "adaptive scheme fails to adjust reference packet injection rate when a
// bottleneck link is not the one which an RLI sender is monitoring" — so it
// keeps injecting at 1-and-10 and perturbs the traffic. Paper's reported
// shape: static stays below ~0.004% extra loss even at ~97% utilization;
// adaptive grows to ~0.06%.
//
// Method: for each utilization, run the identical workload three times —
// without references (baseline), with static 1-and-100, with adaptive — and
// report the loss-rate difference versus the baseline. Loss differences are
// tiny (1e-5..1e-3), so each point averages several seeds; scale the count
// with RLIR_BENCH_SEEDS and the trace length with RLIR_BENCH_SCALE for
// smoother curves.
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.h"

int main() {
  using namespace rlir;

  const char* s = std::getenv("RLIR_BENCH_SCALE");
  const double scale = s != nullptr ? std::atof(s) : 1.0;
  const char* ns = std::getenv("RLIR_BENCH_SEEDS");
  const int seeds = ns != nullptr ? std::atoi(ns) : 3;

  std::printf("# Figure 5: reference-packet interference (loss-rate difference)\n");
  std::printf("# baseline = same workload without reference packets; %d seed(s)/point\n\n",
              seeds);
  std::printf("%10s %12s %14s %16s %16s %14s\n", "target", "meas_util", "base_loss",
              "d_loss_static", "d_loss_adaptive", "refs_adaptive");

  for (double util = 0.82; util <= 0.981; util += 0.02) {
    double meas_util = 0.0;
    double base_loss = 0.0;
    double d_static = 0.0;
    double d_adaptive = 0.0;
    unsigned long long refs_adaptive = 0;

    for (int seed = 0; seed < seeds; ++seed) {
      exp::ExperimentConfig base;
      base.target_utilization = util;
      base.inject_references = false;
      base.duration =
          timebase::Duration::milliseconds(static_cast<std::int64_t>(400 * scale));
      base.seed = 1000 + static_cast<std::uint64_t>(seed);
      const auto r_base = exp::run_two_hop_experiment(base);

      exp::ExperimentConfig st = base;
      st.inject_references = true;
      st.scheme = rli::InjectionScheme::kStatic;
      const auto r_static = exp::run_two_hop_experiment(st);

      exp::ExperimentConfig ad = base;
      ad.inject_references = true;
      ad.scheme = rli::InjectionScheme::kAdaptive;
      const auto r_adaptive = exp::run_two_hop_experiment(ad);

      meas_util += r_base.measured_utilization;
      base_loss += r_base.regular_loss_rate;
      d_static += r_static.regular_loss_rate - r_base.regular_loss_rate;
      d_adaptive += r_adaptive.regular_loss_rate - r_base.regular_loss_rate;
      refs_adaptive += r_adaptive.references_injected;
    }
    const double n = seeds;
    std::printf("%9.0f%% %11.1f%% %13.5f%% %15.5f%% %15.5f%% %14llu\n", util * 100.0,
                100.0 * meas_util / n, 100.0 * base_loss / n, 100.0 * d_static / n,
                100.0 * d_adaptive / n, refs_adaptive / static_cast<unsigned long long>(n));
  }
  return 0;
}
