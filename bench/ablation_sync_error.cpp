// Ablation (extension beyond the paper's evaluation): sensitivity of RLIR's
// per-flow accuracy to clock-synchronization error.
//
// "Time-synchronization between RLI instances is a basic requirement, that
// can be achieved by GPS-based clock synchronization or IEEE 1588"
// (Section 2) — the paper assumes it and never quantifies the requirement.
// This bench sweeps the receiver's residual sync error (IEEE-1588-style
// sawtooth, re-synced every 10 ms) and shows *how tight* the sync must be:
// the error floor is roughly residual/true-delay, so microsecond-level slop
// is fatal at 67% utilization (~4 us delays) but immaterial at 93% (~85 us).
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.h"

int main() {
  using namespace rlir;

  std::printf("# Ablation: clock-sync residual error vs estimation accuracy\n");
  std::printf("# (static 1-and-100; IEEE-1588-style resync every 10 ms)\n\n");
  std::printf("%14s %8s %12s %12s %14s\n", "sync_residual", "util", "flows", "median",
              "frac<=10%");

  const char* s = std::getenv("RLIR_BENCH_SCALE");
  const double scale = s != nullptr ? std::atof(s) : 1.0;

  const timebase::Duration residuals[] = {
      timebase::Duration::zero(),
      timebase::Duration::nanoseconds(100),
      timebase::Duration::microseconds(1),
      timebase::Duration::microseconds(10),
  };
  for (const double util : {0.67, 0.93}) {
    for (const auto residual : residuals) {
      exp::ExperimentConfig cfg;
      cfg.target_utilization = util;
      cfg.sync_residual = residual;
      cfg.duration =
          timebase::Duration::milliseconds(static_cast<std::int64_t>(400 * scale));
      cfg.seed = 13;
      const auto result = exp::run_two_hop_experiment(cfg);
      const auto cdf = result.report.mean_error_cdf();
      std::printf("%14s %7.0f%% %12zu %11.2f%% %13.1f%%\n",
                  residual.to_string().c_str(), util * 100.0, cdf.size(),
                  100.0 * cdf.median(), 100.0 * cdf.fraction_at_or_below(0.10));
    }
  }
  std::printf(
      "\n# expectation: sub-us sync is lost in the noise at 93%% utilization but\n"
      "# dominates the error floor at 67%%, where true delays are only a few us\n");
  return 0;
}
