// Section 3.1 ("Partial Placement Complexity"): measurement-instance counts
// for RLIR at its three deployment granularities versus full RLI deployment,
// on k-ary fat-trees.
//
// Paper formulas: interface pair k+2; ToR pair k(k+2)/2; every ToR pair
// (k/2)^2 (k+1); full deployment O(k^4).
#include <cstdio>

#include "topo/placement.h"

int main() {
  using namespace rlir::topo;

  std::printf("# Section 3.1: RLIR deployment complexity (measurement instances)\n\n");
  std::printf("%4s %16s %12s %15s %17s %10s\n", "k", "interface-pair", "tor-pair",
              "all-tor-pairs", "full-deployment", "savings");

  for (const int k : {4, 8, 16, 24, 48}) {
    const PlacementRow row = placement_row(k);
    std::printf("%4d %16llu %12llu %15llu %17llu %9.2f%%\n", row.k,
                static_cast<unsigned long long>(row.interface_pair),
                static_cast<unsigned long long>(row.tor_pair),
                static_cast<unsigned long long>(row.all_tor_pairs),
                static_cast<unsigned long long>(row.full_deployment),
                100.0 * row.savings_ratio());
  }

  std::printf("\n# Example concrete plan (k=4, paper's Figure 1: S1 at T1, R3 at T7):\n");
  const FatTree topo(4);
  const auto plan = plan_interface_pair(topo, topo.tor(0, 0), topo.tor(3, 0));
  std::printf("#   instances: %llu, hosted at:",
              static_cast<unsigned long long>(plan.instance_count));
  for (const auto& node : plan.instance_nodes) std::printf(" %s", node.name(4).c_str());
  std::printf("\n#   segments:");
  for (const auto& seg : plan.segments) std::printf(" %s", seg.c_str());
  std::printf("\n");
  return 0;
}
