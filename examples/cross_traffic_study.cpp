// Cross-traffic study: how does RLIR's estimation accuracy respond to
// bottleneck utilization it cannot see?
//
// Sweeps bottleneck utilization from 30% to 95% for both injection schemes
// and both cross-traffic models, printing median relative error and the
// underlying true latencies — a compact tour of the paper's Section 4
// findings. Also compares against the LDA and Multiflow baselines at one
// operating point, showing what aggregate- and two-sample-estimators can and
// cannot do.
#include <cstdio>

#include "baseline/lda.h"
#include "baseline/multiflow.h"
#include "exp/experiment.h"
#include "rli/receiver.h"
#include "rli/sender.h"
#include "sim/pipeline.h"
#include "timebase/clock.h"
#include "trace/synthetic.h"

namespace {

void sweep() {
  using namespace rlir;
  std::printf("-- utilization sweep: median per-flow mean relative error --\n");
  std::printf("%8s %16s %16s %16s\n", "util", "static/random", "adaptive/random",
              "static/bursty");
  for (const double util : {0.30, 0.50, 0.67, 0.80, 0.93}) {
    double medians[3] = {0, 0, 0};
    int i = 0;
    for (const auto& [scheme, model] :
         {std::pair{rli::InjectionScheme::kStatic, sim::CrossModel::kUniform},
          std::pair{rli::InjectionScheme::kAdaptive, sim::CrossModel::kUniform},
          std::pair{rli::InjectionScheme::kStatic, sim::CrossModel::kBursty}}) {
      exp::ExperimentConfig cfg;
      cfg.scheme = scheme;
      cfg.cross_model = model;
      cfg.target_utilization = util;
      cfg.duration = rlir::timebase::Duration::milliseconds(200);
      cfg.seed = 4242;
      medians[i++] = exp::run_two_hop_experiment(cfg).report.median_mean_error();
    }
    std::printf("%7.0f%% %15.2f%% %15.2f%% %15.2f%%\n", util * 100.0, 100.0 * medians[0],
                100.0 * medians[1], 100.0 * medians[2]);
  }
}

void baselines() {
  using namespace rlir;
  using timebase::Duration;
  std::printf("\n-- RLI vs baselines at 93%% utilization --\n");

  trace::SyntheticConfig reg_cfg;
  reg_cfg.duration = Duration::milliseconds(200);
  reg_cfg.offered_bps = 2.2e9;
  reg_cfg.seed = 5;
  const auto regular = trace::SyntheticTraceGenerator(reg_cfg).generate_all();

  trace::SyntheticConfig cross_cfg = reg_cfg;
  cross_cfg.offered_bps = 10e9;
  cross_cfg.kind = net::PacketKind::kCross;
  cross_cfg.src_pool = net::Ipv4Prefix(net::Ipv4Address(172, 16, 0, 0), 16);
  cross_cfg.seed = 6;
  cross_cfg.first_seq = std::uint64_t{1} << 40;
  const auto cross = trace::SyntheticTraceGenerator(cross_cfg).generate_all();

  std::uint64_t reg_bytes = 0;
  for (const auto& p : regular) reg_bytes += p.size_bytes;
  std::uint64_t cross_bytes = 0;
  for (const auto& p : cross) cross_bytes += p.size_bytes;

  timebase::PerfectClock clock;
  rli::RliSender sender(rli::SenderConfig{}, &clock);
  rli::RliReceiver receiver(rli::ReceiverConfig{}, &clock);
  rli::GroundTruthTap truth;

  // Baseline instances: LDA and NetFlow at both ends of the segment.
  baseline::LdaTap lda_in(baseline::LdaConfig{}, &clock);
  baseline::LdaTap lda_out(baseline::LdaConfig{}, &clock);
  baseline::NetflowTap netflow_in(trace::FlowmeterConfig{}, &clock);
  baseline::NetflowTap netflow_out(trace::FlowmeterConfig{}, &clock);

  sim::CrossTrafficConfig inj_cfg;
  inj_cfg.selection_probability = sim::selection_for_utilization(
      0.93, 10e9, reg_cfg.duration, reg_bytes, cross_bytes);
  sim::CrossTrafficInjector injector(inj_cfg);

  sim::TwoHopPipeline pipeline{sim::PipelineConfig{}};
  pipeline.set_reference_injector(&sender);
  pipeline.set_cross_injector(&injector);
  pipeline.add_ingress_tap(&lda_in);
  pipeline.add_ingress_tap(&netflow_in);
  pipeline.add_egress_tap(&lda_out);
  pipeline.add_egress_tap(&netflow_out);
  pipeline.add_egress_tap(&receiver);
  pipeline.add_egress_tap(&truth);
  pipeline.run(regular, cross);

  common::RunningStats overall;
  for (const auto& [key, stats] : truth.per_flow()) overall.merge(stats);

  const auto rli_report = rli::AccuracyReport::compare(truth.per_flow(), receiver.per_flow());
  std::printf("true aggregate mean delay      : %.2fus\n", overall.mean() / 1e3);

  const auto lda = baseline::LdaEstimate::compute(lda_in.sketch(), lda_out.sketch());
  if (lda) {
    std::printf("LDA aggregate estimate         : %.2fus (coverage %.1f%%, %zuB state)"
                " -- aggregate only, no per-flow data\n",
                lda->mean_delay_ns / 1e3, 100.0 * lda->coverage,
                lda_in.sketch().state_bytes());
  }

  const auto mf = baseline::multiflow_estimate(netflow_in.records(), netflow_out.records());
  const auto mf_report = rli::AccuracyReport::compare(truth.per_flow(), mf.estimates);
  std::printf("Multiflow (NetFlow, 2 samples) : median per-flow error %.2f%%\n",
              100.0 * mf_report.median_mean_error());
  std::printf("RLI (this work)                : median per-flow error %.2f%%\n",
              100.0 * rli_report.median_mean_error());
}

}  // namespace

int main() {
  sweep();
  baselines();
  return 0;
}
