// Quickstart: measure per-flow latency across a congested two-switch
// segment with RLI, and compare the estimates against ground truth.
//
//   trace -> [RLI sender] -> switch1 -> (cross traffic joins) -> switch2
//                                          -> [RLI receiver]
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "rli/flow_stats.h"
#include "rli/receiver.h"
#include "rli/sender.h"
#include "sim/cross_traffic.h"
#include "sim/pipeline.h"
#include "timebase/clock.h"
#include "trace/synthetic.h"

int main() {
  using namespace rlir;
  using timebase::Duration;

  // 1. Workload: a synthetic packet trace offering ~22% of a 10G link,
  //    plus cross traffic that will congest the second switch.
  trace::SyntheticConfig regular_cfg;
  regular_cfg.duration = Duration::milliseconds(200);
  regular_cfg.offered_bps = 2.2e9;
  regular_cfg.seed = 1;
  const auto regular = trace::SyntheticTraceGenerator(regular_cfg).generate_all();

  trace::SyntheticConfig cross_cfg = regular_cfg;
  cross_cfg.offered_bps = 8.0e9;
  cross_cfg.kind = net::PacketKind::kCross;
  cross_cfg.src_pool = net::Ipv4Prefix(net::Ipv4Address(172, 16, 0, 0), 16);
  cross_cfg.seed = 2;
  const auto cross = trace::SyntheticTraceGenerator(cross_cfg).generate_all();

  // 2. Measurement instances: a static 1-and-100 RLI sender (RLIR's
  //    worst-case deployment mode) and a linear-interpolation receiver.
  timebase::PerfectClock clock;
  rli::SenderConfig sender_cfg;
  sender_cfg.scheme = rli::InjectionScheme::kStatic;
  sender_cfg.static_gap = 100;
  rli::RliSender sender(sender_cfg, &clock);
  rli::RliReceiver receiver(rli::ReceiverConfig{}, &clock);
  rli::GroundTruthTap truth;  // evaluation only — reads simulator internals

  // 3. The two-hop pipeline of the paper's Figure 3.
  sim::CrossTrafficConfig injector_cfg;
  injector_cfg.selection_probability = 0.85;  // ~90% bottleneck utilization
  sim::CrossTrafficInjector injector(injector_cfg);

  sim::TwoHopPipeline pipeline{sim::PipelineConfig{}};
  pipeline.set_reference_injector(&sender);
  pipeline.set_cross_injector(&injector);
  pipeline.add_egress_tap(&receiver);
  pipeline.add_egress_tap(&truth);
  const auto run = pipeline.run(regular, cross);

  // 4. Score the per-flow estimates.
  const auto report = rli::AccuracyReport::compare(truth.per_flow(), receiver.per_flow());
  const auto cdf = report.mean_error_cdf();

  std::printf("regular packets     : %llu (%.3f%% lost)\n",
              static_cast<unsigned long long>(run.regular_offered),
              100.0 * run.regular_loss_rate());
  std::printf("reference packets   : %llu (1-and-%u)\n",
              static_cast<unsigned long long>(sender.references_injected()),
              sender.current_gap());
  std::printf("bottleneck util     : %.1f%%\n", 100.0 * run.bottleneck_utilization());
  std::printf("flows estimated     : %zu\n", report.flow_count());
  std::printf("median rel. error   : %.2f%%\n", 100.0 * cdf.median());
  std::printf("flows within 10%%    : %.1f%%\n", 100.0 * cdf.fraction_at_or_below(0.10));
  return 0;
}
