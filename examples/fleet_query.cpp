// Fleet-wide latency queries: the full collection pipeline on a fat-tree.
//
//   taps -> RLIR receivers (4 cores upstream + 2 destination ToRs
//   downstream) -> per-flow sketches -> EstimateRecord batches (binary wire
//   format) -> ShardedCollector -> operator queries.
//
// Traffic from two pod-0 ToRs fans out to two pod-3 ToRs; one core is
// secretly slow. The example answers the questions an operator would ask a
// telemetry backend: What does latency look like fleet-wide? Per vantage
// point? Which flows are hurting the most? How expensive is the answer?
#include <cstdio>
#include <memory>
#include <vector>

#include "collect/epoch_scheduler.h"
#include "collect/fleet.h"
#include "rli/sender.h"
#include "rlir/demux.h"
#include "rlir/sender_agent.h"
#include "sim/tap.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"
#include "trace/synthetic.h"

namespace rlir {

int run_example() {
  using timebase::Duration;

  constexpr int kK = 4;
  topo::FatTree topo(kK);
  topo::Crc32EcmpHasher hasher;
  timebase::PerfectClock clock;
  topo::FatTreeSim sim(&topo, topo::FatTreeSimConfig{}, &hasher);

  const std::vector sources = {topo.tor(0, 0), topo.tor(0, 1)};
  const std::vector destinations = {topo.tor(3, 0), topo.tor(3, 1)};
  const int slow_core = 2;
  sim.add_extra_delay(topo.core(slow_core), Duration::microseconds(60));
  std::printf("fault injected: +60us at %s (the queries below surface it)\n\n",
              topo.core(slow_core).name(kK).c_str());

  // --- Measurement deployment (the paper's partial placement): senders at
  // source ToRs anchoring ToR->core segments, senders at cores anchoring
  // core->ToR segments.
  const auto cores = topo.cores();

  rlir::PrefixDemux up_demux;
  std::vector<std::unique_ptr<rlir::TorSenderAgent>> tor_senders;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(1 + i);
    cfg.static_gap = 50;
    tor_senders.push_back(std::make_unique<rlir::TorSenderAgent>(cfg, &clock, cores));
    sim.add_agent(sources[i], tor_senders.back().get());
    up_demux.add_origin(topo.host_prefix(sources[i]), cfg.id);
  }

  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> core_senders;
  std::vector<std::unique_ptr<rlir::ReverseEcmpDemux>> down_demuxes;
  for (const auto& dst : destinations) {
    down_demuxes.push_back(std::make_unique<rlir::ReverseEcmpDemux>(&topo, &hasher, dst));
  }
  for (int c = 0; c < topo.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(10 + c);
    cfg.static_gap = 50;
    core_senders.push_back(
        std::make_unique<rlir::CoreSenderAgent>(cfg, &clock, destinations));
    sim.add_agent(topo.core(c), core_senders.back().get());
    for (auto& demux : down_demuxes) demux->set_sender_at_core(c, cfg.id);
  }

  // --- The collection tier: one vantage per core, one per destination ToR.
  collect::FleetConfig fleet_cfg;
  fleet_cfg.collector.shard_count = 8;
  collect::FleetCollector fleet(fleet_cfg, &clock);
  for (const auto& core : cores) fleet.deploy(sim, core, &up_demux);
  for (std::size_t i = 0; i < destinations.size(); ++i) {
    fleet.deploy(sim, destinations[i], down_demuxes[i].get());
  }

  // Evaluation-only ground truth: the true end-to-end delay distribution at
  // the destinations (full path, vs the per-segment views RLIR measures).
  sim::DelaySketchTap truth_tap;
  for (const auto& dst : destinations) sim.add_arrival_tap(dst, &truth_tap);

  // --- Traffic: every source ToR to every destination ToR.
  std::uint64_t seed = 100;
  for (const auto& src : sources) {
    for (const auto& dst : destinations) {
      trace::SyntheticConfig cfg;
      cfg.duration = Duration::milliseconds(40);
      cfg.offered_bps = 0.8e9;
      cfg.seed = seed;
      cfg.src_pool = topo.host_prefix(src);
      cfg.dst_pool = topo.host_prefix(dst);
      cfg.first_seq = seed * 10'000'000ULL;
      for (const auto& pkt : trace::SyntheticTraceGenerator(cfg).generate_all()) {
        sim.inject_from_host(pkt);
      }
      seed += 100;
    }
  }

  // --- Scheduler-driven collection: epochs fire on a 10ms period as
  // simulated time advances (receiver flushes + exporter drains included),
  // and flows idle for >4ms are aged out of exporter tables early — no
  // manual collect_epoch calls.
  collect::EpochSchedulerConfig sched_cfg;
  sched_cfg.period = Duration::milliseconds(10);
  sched_cfg.max_flow_idle = Duration::milliseconds(4);
  collect::EpochScheduler scheduler(sched_cfg);
  fleet.attach_scheduler(scheduler);

  const Duration step = Duration::milliseconds(1);
  timebase::TimePoint t = timebase::TimePoint::zero();
  while (sim.events_pending()) {
    t += step;
    sim.run_until(t);
    scheduler.advance_to(t);
  }
  scheduler.advance_to(sim.now() + sched_cfg.period);  // final drain

  const auto records = static_cast<std::size_t>(scheduler.records_delivered());
  const auto& collector = fleet.collector();
  std::printf("scheduler: %llu epochs fired, %llu flows aged out mid-epoch\n",
              static_cast<unsigned long long>(scheduler.epochs_fired()),
              static_cast<unsigned long long>(scheduler.flows_aged_out()));

  // --- Query 1: fleet-wide latency distribution.
  const auto fleet_sketch = collector.fleet();
  std::printf("collected %zu records, %llu estimates, %zu flows, %zu vantages\n\n",
              records, static_cast<unsigned long long>(collector.estimates_ingested()),
              collector.flow_count(), collector.links().size());
  std::printf("fleet-wide latency:  p50 %8.1fus   p90 %8.1fus   p99 %8.1fus   max %8.1fus\n",
              fleet_sketch.quantile(0.5) / 1e3, fleet_sketch.quantile(0.9) / 1e3,
              fleet_sketch.quantile(0.99) / 1e3, fleet_sketch.max() / 1e3);
  std::printf("(true end-to-end:    p50 %8.1fus   p90 %8.1fus   p99 %8.1fus — full-path\n"
              " ground truth at the destinations; the fleet view above is per-segment)\n\n",
              truth_tap.sketch().quantile(0.5) / 1e3, truth_tap.sketch().quantile(0.9) / 1e3,
              truth_tap.sketch().quantile(0.99) / 1e3);

  // --- Query 2: per-vantage distributions (the slow core stands out).
  std::printf("%-10s %8s %12s %12s %12s\n", "vantage", "flows", "p50", "p99", "mean");
  for (const auto link : collector.links()) {
    const auto dist = collector.link_distribution(link);
    std::printf("%-10s %8llu %10.1fus %10.1fus %10.1fus\n",
                fleet.node(link).name(kK).c_str(),
                static_cast<unsigned long long>(dist->count()), dist->quantile(0.5) / 1e3,
                dist->quantile(0.99) / 1e3, dist->mean() / 1e3);
  }

  // --- Query 3: top-k worst flows at p99.
  std::printf("\ntop-5 worst flows by p99:\n");
  for (const auto& flow : collector.top_k_flows(5, 0.99)) {
    std::printf("  %-44s %6llu pkts  p50 %8.1fus  p99 %8.1fus\n",
                flow.key.to_string().c_str(), static_cast<unsigned long long>(flow.packets),
                flow.p50_ns / 1e3, flow.p99_ns / 1e3);
  }

  // --- Query 4: what does the answer cost? bytes/flow is bounded by the
  // sketch bin budget no matter how long a flow lives — the property that
  // lets the tier track elephants without per-sample state.
  std::printf("\nmemory: %.1f KiB of sketches for %zu flows (%.0f bytes/flow, "
              "bounded regardless of flow length)\n",
              static_cast<double>(collector.approx_flow_bytes()) / 1024.0,
              collector.flow_count(),
              static_cast<double>(collector.approx_flow_bytes()) /
                  static_cast<double>(collector.flow_count()));
  return 0;
}

}  // namespace rlir

int main() { return rlir::run_example(); }
