// The fleet-of-agents deployment shape, end to end: the fat-tree
// measurement workload from examples/fleet_query, but every epoch batch is
// SPRAYED by flow hash across N collector agents (PartitionedClient), and
// the operator's questions are answered by a QueryCoordinator that fans
// out to every agent and merges the replies — exactly, because each flow's
// records live on exactly one agent.
//
//   # against real daemons (one per terminal, or one per machine):
//   ./collector_daemon --listen unix:/tmp/rlir0.sock
//   ./collector_daemon --listen unix:/tmp/rlir1.sock
//   ./fleet_coordinator --connect unix:/tmp/rlir0.sock,unix:/tmp/rlir1.sock
//
// Run without --connect and it spins up `--agents N` (default 4)
// in-process agents over loopback pipes — same protocol bytes, no daemons.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collect/epoch_scheduler.h"
#include "collect/fleet.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "rli/sender.h"
#include "rlir/demux.h"
#include "rlir/sender_agent.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"
#include "trace/synthetic.h"
#include "transport/agent.h"
#include "transport/coordinator.h"
#include "transport/http_metrics.h"
#include "transport/partitioned_client.h"
#include "transport/socket.h"

namespace rlir {
namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int run(const std::vector<std::string>& connect_texts, std::size_t n_agents,
        bool dump_metrics, const std::string& http_text, const std::string& trace_dump) {
  using timebase::Duration;

  // --- The fleet: dialed daemons, or in-process agents on loopback pipes.
  // In-process agents get their own span rings so collect_trace() can pull
  // their side of the story; dialed daemons bring their own (see
  // collector_daemon).
  std::vector<std::unique_ptr<obs::SpanRecorder>> agent_spans;
  std::vector<std::unique_ptr<transport::CollectorAgent>> local_agents;
  std::vector<transport::CollectorClient::StreamFactory> factories;
  if (connect_texts.empty()) {
    for (std::size_t i = 0; i < n_agents; ++i) {
      agent_spans.push_back(std::make_unique<obs::SpanRecorder>());
      transport::CollectorAgentConfig acfg;
      acfg.instruments.spans = agent_spans.back().get();
      local_agents.push_back(std::make_unique<transport::CollectorAgent>(acfg));
      factories.push_back([&local_agents, i]() {
        auto [client_end, agent_end] = transport::make_loopback();
        local_agents[i]->add_connection(std::move(agent_end));
        return std::move(client_end);
      });
    }
    std::printf("no --connect given: %zu in-process agents over loopback pipes\n\n",
                n_agents);
  } else {
    for (const auto& text : connect_texts) {
      const auto address = transport::SocketAddress::parse(text);
      factories.push_back([address]() { return transport::connect_to(address); });
    }
    n_agents = factories.size();
  }
  const auto poll_local = [&local_agents] {
    for (auto& agent : local_agents) agent->poll();
  };

  transport::PartitionedClient pc;
  for (auto& factory : factories) pc.add_endpoint(factory);

  // --- The workload of examples/fleet_query: 2 source ToRs -> 2
  // destination ToRs across a k=4 fat tree, one secretly slow core.
  constexpr int kK = 4;
  topo::FatTree topo(kK);
  topo::Crc32EcmpHasher hasher;
  timebase::PerfectClock clock;
  topo::FatTreeSim sim(&topo, topo::FatTreeSimConfig{}, &hasher);

  const std::vector sources = {topo.tor(0, 0), topo.tor(0, 1)};
  const std::vector destinations = {topo.tor(3, 0), topo.tor(3, 1)};
  sim.add_extra_delay(topo.core(2), Duration::microseconds(60));
  std::printf("fault injected: +60us at %s\n", topo.core(2).name(kK).c_str());

  const auto cores = topo.cores();
  rlir::PrefixDemux up_demux;
  std::vector<std::unique_ptr<rlir::TorSenderAgent>> tor_senders;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(1 + i);
    cfg.static_gap = 50;
    tor_senders.push_back(std::make_unique<rlir::TorSenderAgent>(cfg, &clock, cores));
    sim.add_agent(sources[i], tor_senders.back().get());
    up_demux.add_origin(topo.host_prefix(sources[i]), cfg.id);
  }
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> core_senders;
  std::vector<std::unique_ptr<rlir::ReverseEcmpDemux>> down_demuxes;
  for (const auto& dst : destinations) {
    down_demuxes.push_back(std::make_unique<rlir::ReverseEcmpDemux>(&topo, &hasher, dst));
  }
  for (int c = 0; c < topo.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(10 + c);
    cfg.static_gap = 50;
    core_senders.push_back(std::make_unique<rlir::CoreSenderAgent>(cfg, &clock, destinations));
    sim.add_agent(topo.core(c), core_senders.back().get());
    for (auto& demux : down_demuxes) demux->set_sender_at_core(c, cfg.id);
  }

  collect::FleetConfig fleet_cfg;
  collect::FleetCollector fleet(fleet_cfg, &clock);
  // The fleet-tier difference: batches leave the process N ways by flow hash.
  fleet.set_batch_sink(pc.make_sink());
  for (const auto& core : cores) fleet.deploy(sim, core, &up_demux);
  for (std::size_t i = 0; i < destinations.size(); ++i) {
    fleet.deploy(sim, destinations[i], down_demuxes[i].get());
  }

  std::uint64_t seed = 100;
  for (const auto& src : sources) {
    for (const auto& dst : destinations) {
      trace::SyntheticConfig cfg;
      cfg.duration = Duration::milliseconds(40);
      cfg.offered_bps = 0.8e9;
      cfg.seed = seed;
      cfg.src_pool = topo.host_prefix(src);
      cfg.dst_pool = topo.host_prefix(dst);
      cfg.first_seq = seed * 10'000'000ULL;
      for (const auto& pkt : trace::SyntheticTraceGenerator(cfg).generate_all()) {
        sim.inject_from_host(pkt);
      }
      seed += 100;
    }
  }

  collect::EpochSchedulerConfig sched_cfg;
  sched_cfg.period = Duration::milliseconds(10);
  sched_cfg.max_flow_idle = Duration::milliseconds(4);
  collect::EpochScheduler scheduler(sched_cfg);
  fleet.attach_scheduler(scheduler);

  const Duration step = Duration::milliseconds(1);
  timebase::TimePoint t = timebase::TimePoint::zero();
  while (sim.events_pending()) {
    t += step;
    sim.run_until(t);
    scheduler.advance_to(t);
    pc.pump();
    poll_local();
  }
  scheduler.advance_to(sim.now() + sched_cfg.period);  // final drain
  for (int i = 0; i < 10000 && !pc.drain(16); ++i) poll_local();
  poll_local();

  std::printf("sprayed %llu records across %zu agents (%zu healthy):\n",
              static_cast<unsigned long long>(pc.stats().records_submitted), n_agents,
              pc.healthy_count());
  for (std::size_t i = 0; i < n_agents; ++i) {
    std::printf("  agent %zu: %10llu records routed  (%s)\n", i,
                static_cast<unsigned long long>(pc.records_routed(i)),
                pc.endpoint_healthy(i) ? "healthy" : "DOWN");
  }

  // --- Fleet queries: the coordinator fans out and merges. Every fan-out
  // below is traced end to end: merge span -> per-agent leg spans -> client
  // query spans -> agent answer spans (pulled back via collect_trace).
  obs::SpanRecorder coord_spans;
  transport::QueryCoordinatorConfig coord_cfg;
  coord_cfg.instruments.spans = &coord_spans;
  transport::QueryCoordinator coord(coord_cfg);
  for (auto& factory : factories) coord.add_agent(std::move(factory));
  if (!local_agents.empty()) coord.set_drive(poll_local);
  if (coord.connected_count() == 0) {
    std::fprintf(stderr, "no agent reachable — are the daemons running?\n");
    return 1;
  }

  const auto dist = coord.fleet();
  std::printf("\nfleet-wide latency (merged from %zu agents): "
              "p50 %8.1fus  p90 %8.1fus  p99 %8.1fus  max %8.1fus  (%llu estimates)\n",
              coord.connected_count(), dist.quantile(0.5) / 1e3, dist.quantile(0.9) / 1e3,
              dist.quantile(0.99) / 1e3, dist.max() / 1e3,
              static_cast<unsigned long long>(dist.count()));

  std::printf("\nfleet top-5 worst flows by p99:\n");
  for (const auto& [rank, flow] : coord.top_k_ranked(5, 0.99)) {
    std::printf("  %-44s %6llu pkts  p50 %8.1fus  p99 %8.1fus\n",
                flow.key.to_string().c_str(), static_cast<unsigned long long>(flow.packets),
                flow.p50_ns / 1e3, flow.p99_ns / 1e3);
  }

  std::printf("\nper-agent stats:\n");
  const auto per_agent = coord.per_agent_stats();
  for (std::size_t i = 0; i < per_agent.size(); ++i) {
    if (!per_agent[i].has_value()) {
      std::printf("  agent %zu: UNREACHABLE\n", i);
      continue;
    }
    std::printf("  agent %zu: %8llu records, %8llu estimates, %5llu flows, %3llu epochs\n", i,
                static_cast<unsigned long long>(per_agent[i]->records_ingested),
                static_cast<unsigned long long>(per_agent[i]->estimates_ingested),
                static_cast<unsigned long long>(per_agent[i]->flows),
                static_cast<unsigned long long>(per_agent[i]->epochs));
  }

  const auto totals = coord.fleet_stats();
  const auto delivered = pc.stats().records_submitted - pc.records_shed();
  const bool conserved = totals.records_ingested == delivered;
  std::printf("\nconservation: sprayed %llu records, fleet ingested %llu -> %s\n",
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(totals.records_ingested),
              conserved ? "exact" : "MISMATCH");
  if (!conserved) {
    // Lost records are exactly what the flight recorder exists for: dump the
    // coordinator's span ring + event trace as one black-box JSON document.
    obs::FlightRecorder flight(
        &coord_spans, &coord.events(),
        [](const std::string& reason, const std::string& json) {
          std::fprintf(stderr, "FLIGHT RECORDER (%s):\n%s", reason.c_str(), json.c_str());
        });
    flight.trigger("conservation-mismatch");
  }

  // --- The last fan-out, reassembled across processes: merge + legs +
  // client hops from the coordinator's ring, answer spans from each agent.
  const auto trace = coord.collect_trace();
  std::printf("\ntrace %016llx: %zu spans across %zu processes "
              "(%zu agents answered%s)\n",
              static_cast<unsigned long long>(trace.trace_id), trace.size(),
              trace.processes.size(), trace.agents_answered,
              trace.spans_dropped > 0 ? ", ring evictions — may have gaps" : "");
  if (!trace_dump.empty()) {
    const std::string json = obs::to_chrome_trace(trace.processes);
    std::FILE* out = std::fopen(trace_dump.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "fleet_coordinator: cannot write %s\n", trace_dump.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote %zu-span Chrome trace to %s (chrome://tracing, Perfetto)\n",
                trace.size(), trace_dump.c_str());
  }

  if (dump_metrics) {
    // The fleet roll-up a monitoring system would scrape: every agent's
    // registry merged (counters summed, histograms unioned bin-for-bin).
    auto scrape = coord.fleet_metrics();
    obs::append_event_counters(scrape.metrics, scrape.events);
    std::printf("\n# fleet metrics (merged from %zu agents)\n", coord.connected_count());
    std::fputs(obs::to_prometheus(scrape.metrics).c_str(), stdout);
  }

  if (!http_text.empty()) {
    // Keep serving the merged fleet scrape over HTTP until signalled — each
    // GET /metrics triggers a fresh kMetrics fan-out, so the scrape is live.
    auto http_listener = std::make_unique<transport::HttpMetricsServer>(
        std::make_unique<transport::SocketListener>(transport::SocketAddress::parse(http_text)),
        [&coord] {
          auto scrape = coord.fleet_metrics();
          obs::append_event_counters(scrape.metrics, scrape.events);
          return obs::to_prometheus(scrape.metrics);
        });
    std::printf("\nserving merged GET /metrics on %s (Ctrl-C to exit)\n", http_text.c_str());
    std::fflush(stdout);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop.load(std::memory_order_relaxed)) {
      const std::size_t served = http_listener->poll();
      poll_local();
      if (served == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return conserved ? 0 : 1;
}

}  // namespace
}  // namespace rlir

int main(int argc, char** argv) {
  std::vector<std::string> connect_texts;
  std::size_t n_agents = 4;
  bool dump_metrics = false;
  std::string http_text;
  std::string trace_dump;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        const char* comma = std::strchr(p, ',');
        connect_texts.emplace_back(p, comma != nullptr ? comma - p : std::strlen(p));
        p = comma != nullptr ? comma + 1 : p + connect_texts.back().size();
      }
    } else if (std::strcmp(argv[i], "--agents") == 0 && i + 1 < argc) {
      n_agents = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (std::strcmp(argv[i], "--http") == 0 && i + 1 < argc) {
      http_text = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-dump") == 0 && i + 1 < argc) {
      trace_dump = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--connect ADDR[,ADDR...]] [--agents N] [--metrics] [--http ADDR]\n"
                   "          [--trace-dump FILE]\n"
                   "  ADDR = tcp:HOST:PORT | unix:PATH\n"
                   "  --metrics         dump the merged fleet scrape (Prometheus text)\n"
                   "  --http ADDR       serve the merged scrape as GET /metrics until Ctrl-C\n"
                   "  --trace-dump FILE write the last query's assembled cross-process trace\n"
                   "                    as Chrome trace-event JSON\n",
                   argv[0]);
      return 2;
    }
  }
  if (n_agents == 0) return 2;
  try {
    return rlir::run(connect_texts, n_agents, dump_metrics, http_text, trace_dump);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_coordinator: %s\n", e.what());
    return 1;
  }
}
