// The client half of the shard-per-process pair: runs the same fat-tree
// measurement workload as examples/fleet_query, but instead of ingesting
// in-process, every epoch batch travels through a CollectorClient — framed,
// CRC-guarded, coalesced — to a CollectorAgent, and the operator queries
// are answered REMOTELY over the same connection.
//
//   # terminal 1
//   ./collector_daemon --listen unix:/tmp/rlir.sock
//   # terminal 2
//   ./remote_fleet_query --connect unix:/tmp/rlir.sock
//
// Run without --connect and it spins up an in-process agent on a loopback
// pipe instead — same protocol bytes, no daemon needed (the standalone demo
// and the deterministic-test configuration).
#include <atomic>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "collect/epoch_scheduler.h"
#include "collect/fleet.h"
#include "rli/sender.h"
#include "rlir/demux.h"
#include "rlir/sender_agent.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"
#include "trace/synthetic.h"
#include "transport/agent.h"
#include "transport/client.h"
#include "transport/socket.h"

namespace rlir {
namespace {

int run(const std::string& connect_text) {
  using timebase::Duration;

  // --- Transport setup: dial the daemon, or build the loopback fallback.
  std::unique_ptr<transport::CollectorAgent> local_agent;
  transport::CollectorClient::StreamFactory factory;
  if (connect_text.empty()) {
    local_agent = std::make_unique<transport::CollectorAgent>();
    factory = [&local_agent]() {
      auto [client_end, agent_end] = transport::make_loopback();
      local_agent->add_connection(std::move(agent_end));
      return std::move(client_end);
    };
    std::printf("no --connect given: using an in-process agent over a loopback pipe\n\n");
  } else {
    const auto address = transport::SocketAddress::parse(connect_text);
    factory = [address]() { return transport::connect_to(address); };
  }
  transport::CollectorClient client(transport::CollectorClientConfig{}, factory);
  if (!connect_text.empty() && !client.connected()) {
    std::fprintf(stderr, "cannot connect to %s — is collector_daemon running?\n",
                 connect_text.c_str());
    return 1;
  }

  // --- The same workload as examples/fleet_query: 2 source ToRs -> 2
  // destination ToRs across a k=4 fat tree, one secretly slow core.
  constexpr int kK = 4;
  topo::FatTree topo(kK);
  topo::Crc32EcmpHasher hasher;
  timebase::PerfectClock clock;
  topo::FatTreeSim sim(&topo, topo::FatTreeSimConfig{}, &hasher);

  const std::vector sources = {topo.tor(0, 0), topo.tor(0, 1)};
  const std::vector destinations = {topo.tor(3, 0), topo.tor(3, 1)};
  sim.add_extra_delay(topo.core(2), Duration::microseconds(60));
  std::printf("fault injected: +60us at %s\n", topo.core(2).name(kK).c_str());

  const auto cores = topo.cores();
  rlir::PrefixDemux up_demux;
  std::vector<std::unique_ptr<rlir::TorSenderAgent>> tor_senders;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(1 + i);
    cfg.static_gap = 50;
    tor_senders.push_back(std::make_unique<rlir::TorSenderAgent>(cfg, &clock, cores));
    sim.add_agent(sources[i], tor_senders.back().get());
    up_demux.add_origin(topo.host_prefix(sources[i]), cfg.id);
  }
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> core_senders;
  std::vector<std::unique_ptr<rlir::ReverseEcmpDemux>> down_demuxes;
  for (const auto& dst : destinations) {
    down_demuxes.push_back(std::make_unique<rlir::ReverseEcmpDemux>(&topo, &hasher, dst));
  }
  for (int c = 0; c < topo.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(10 + c);
    cfg.static_gap = 50;
    core_senders.push_back(std::make_unique<rlir::CoreSenderAgent>(cfg, &clock, destinations));
    sim.add_agent(topo.core(c), core_senders.back().get());
    for (auto& demux : down_demuxes) demux->set_sender_at_core(c, cfg.id);
  }

  collect::FleetConfig fleet_cfg;
  collect::FleetCollector fleet(fleet_cfg, &clock);
  // The one-line difference from fleet_query: batches leave the process.
  fleet.set_batch_sink(client.make_sink());
  for (const auto& core : cores) fleet.deploy(sim, core, &up_demux);
  for (std::size_t i = 0; i < destinations.size(); ++i) {
    fleet.deploy(sim, destinations[i], down_demuxes[i].get());
  }

  std::uint64_t seed = 100;
  for (const auto& src : sources) {
    for (const auto& dst : destinations) {
      trace::SyntheticConfig cfg;
      cfg.duration = Duration::milliseconds(40);
      cfg.offered_bps = 0.8e9;
      cfg.seed = seed;
      cfg.src_pool = topo.host_prefix(src);
      cfg.dst_pool = topo.host_prefix(dst);
      cfg.first_seq = seed * 10'000'000ULL;
      for (const auto& pkt : trace::SyntheticTraceGenerator(cfg).generate_all()) {
        sim.inject_from_host(pkt);
      }
      seed += 100;
    }
  }

  collect::EpochSchedulerConfig sched_cfg;
  sched_cfg.period = Duration::milliseconds(10);
  sched_cfg.max_flow_idle = Duration::milliseconds(4);
  collect::EpochScheduler scheduler(sched_cfg);
  fleet.attach_scheduler(scheduler);

  const Duration step = Duration::milliseconds(1);
  timebase::TimePoint t = timebase::TimePoint::zero();
  while (sim.events_pending()) {
    t += step;
    sim.run_until(t);
    scheduler.advance_to(t);
    if (local_agent != nullptr) local_agent->poll();
  }
  scheduler.advance_to(sim.now() + sched_cfg.period);  // final drain

  // Push out everything still buffered; the loopback agent polls inline.
  for (int i = 0; i < 64 && !client.drain(16); ++i) {
    if (local_agent != nullptr) local_agent->poll();
  }
  if (local_agent != nullptr) local_agent->poll();

  const auto& cs = client.stats();
  std::printf("shipped %llu records in %llu batches -> %llu frames (%llu bytes), "
              "%llu shed, %llu reconnects\n\n",
              static_cast<unsigned long long>(cs.records_submitted),
              static_cast<unsigned long long>(cs.batches_submitted),
              static_cast<unsigned long long>(cs.frames_sent),
              static_cast<unsigned long long>(cs.bytes_sent),
              static_cast<unsigned long long>(cs.records_shed),
              static_cast<unsigned long long>(cs.reconnects));

  // --- Remote queries. For the loopback configuration the agent must be
  // polled between send and reply, so drive it explicitly.
  const auto ask = [&](const transport::Query& q) {
    if (local_agent == nullptr) return client.query(q);
    client.send_query(q);
    for (int i = 0; i < 1000; ++i) {
      client.pump();
      local_agent->poll();
      if (auto reply = client.poll_reply(); reply.has_value()) return reply;
    }
    return std::optional<transport::QueryReply>{};
  };

  transport::Query fleet_q;
  fleet_q.kind = transport::QueryKind::kFleet;
  const auto fleet_reply = ask(fleet_q);
  if (!fleet_reply.has_value()) {
    std::fprintf(stderr, "fleet query got no reply\n");
    return 1;
  }
  const auto& dist = fleet_reply->fleet;
  std::printf("remote fleet-wide latency: p50 %8.1fus  p90 %8.1fus  p99 %8.1fus  max %8.1fus "
              "(%llu estimates)\n",
              dist.quantile(0.5) / 1e3, dist.quantile(0.9) / 1e3, dist.quantile(0.99) / 1e3,
              dist.max() / 1e3, static_cast<unsigned long long>(dist.count()));

  transport::Query top_q;
  top_q.kind = transport::QueryKind::kTopK;
  top_q.k = 5;
  top_q.q = 0.99;
  const auto top_reply = ask(top_q);
  if (!top_reply.has_value()) {
    std::fprintf(stderr, "top-k query got no reply\n");
    return 1;
  }
  std::printf("\nremote top-5 worst flows by p99:\n");
  for (const auto& [rank, flow] : top_reply->top) {
    std::printf("  %-44s %6llu pkts  p50 %8.1fus  p99 %8.1fus\n",
                flow.key.to_string().c_str(), static_cast<unsigned long long>(flow.packets),
                flow.p50_ns / 1e3, flow.p99_ns / 1e3);
  }

  transport::Query stats_q;
  stats_q.kind = transport::QueryKind::kStats;
  const auto stats_reply = ask(stats_q);
  if (!stats_reply.has_value()) {
    std::fprintf(stderr, "stats query got no reply\n");
    return 1;
  }
  const auto& as = stats_reply->stats;
  std::printf("\nagent: %llu records / %llu estimates across %llu flows, %llu epochs; "
              "%llu frames, %llu protocol errors\n",
              static_cast<unsigned long long>(as.records_ingested),
              static_cast<unsigned long long>(as.estimates_ingested),
              static_cast<unsigned long long>(as.flows),
              static_cast<unsigned long long>(as.epochs),
              static_cast<unsigned long long>(as.frames_received),
              static_cast<unsigned long long>(as.protocol_errors));
  const bool conserved = as.records_ingested == cs.records_submitted - cs.records_shed;
  std::printf("conservation: client shipped %llu records, agent ingested %llu -> %s\n",
              static_cast<unsigned long long>(cs.records_submitted - cs.records_shed),
              static_cast<unsigned long long>(as.records_ingested),
              conserved ? "exact" : "MISMATCH");
  return conserved ? 0 : 1;
}

}  // namespace
}  // namespace rlir

int main(int argc, char** argv) {
  std::string connect_text;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_text = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--connect (tcp:HOST:PORT | unix:PATH)]\n", argv[0]);
      return 2;
    }
  }
  try {
    return rlir::run(connect_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "remote_fleet_query: %s\n", e.what());
    return 1;
  }
}
