// Trace persistence: generate a workload once, save it, and replay it
// bit-identically — the workflow the paper uses with its fixed 1-minute
// CAIDA traces, available here without shipping any data.
//
// Also demonstrates the traffic divider (Figure 3's first block): a single
// mixed trace is split into regular and cross streams by source prefix.
#include <cstdio>

#include "rli/flow_stats.h"
#include "rli/receiver.h"
#include "rli/sender.h"
#include "sim/pipeline.h"
#include "timebase/clock.h"
#include "trace/divider.h"
#include "trace/synthetic.h"
#include "trace/trace_file.h"

namespace rlir {

int run_example() {
  using timebase::Duration;
  const std::string path = "/tmp/rlir_example_trace.bin";

  const net::Ipv4Prefix regular_pool(net::Ipv4Address(10, 0, 0, 0), 16);
  const net::Ipv4Prefix cross_pool(net::Ipv4Address(172, 16, 0, 0), 16);

  // 1. Generate a mixed workload and persist it.
  {
    trace::SyntheticConfig reg_cfg;
    reg_cfg.duration = Duration::milliseconds(100);
    reg_cfg.offered_bps = 2.2e9;
    reg_cfg.src_pool = regular_pool;
    reg_cfg.seed = 42;
    auto packets = trace::SyntheticTraceGenerator(reg_cfg).generate_all();

    trace::SyntheticConfig cross_cfg = reg_cfg;
    cross_cfg.offered_bps = 6e9;
    cross_cfg.src_pool = cross_pool;
    cross_cfg.seed = 43;
    cross_cfg.first_seq = 1'000'000'000;
    const auto cross = trace::SyntheticTraceGenerator(cross_cfg).generate_all();
    packets.insert(packets.end(), cross.begin(), cross.end());
    std::sort(packets.begin(), packets.end(),
              [](const net::Packet& a, const net::Packet& b) { return a.ts < b.ts; });

    trace::TraceWriter::write_file(path, packets);
    std::printf("wrote %zu packets to %s\n", packets.size(), path.c_str());
  }

  // 2. Reload and divide into regular vs cross by source prefix.
  const auto loaded = trace::TraceReader::read_file(path);
  trace::TrafficDivider divider;
  divider.add_regular(regular_pool);
  divider.add_cross(cross_pool);

  std::vector<net::Packet> regular;
  std::vector<net::Packet> cross;
  for (const auto& raw : loaded) {
    const net::Packet pkt = divider.divide(raw);
    (pkt.kind == net::PacketKind::kRegular ? regular : cross).push_back(pkt);
  }
  std::printf("reloaded %zu packets: %zu regular, %zu cross\n", loaded.size(),
              regular.size(), cross.size());

  // 3. Replay through the measured segment; replays are bit-identical, so
  //    results are exactly reproducible run over run.
  timebase::PerfectClock clock;
  rli::RliSender sender(rli::SenderConfig{}, &clock);
  rli::RliReceiver receiver(rli::ReceiverConfig{}, &clock);
  rli::GroundTruthTap truth;

  sim::TwoHopPipeline pipeline{sim::PipelineConfig{}};
  pipeline.set_reference_injector(&sender);
  pipeline.add_egress_tap(&receiver);
  pipeline.add_egress_tap(&truth);
  const auto run = pipeline.run(regular, cross);

  const auto report = rli::AccuracyReport::compare(truth.per_flow(), receiver.per_flow());
  std::printf("bottleneck utilization: %.1f%%\n", 100.0 * run.bottleneck_utilization());
  std::printf("flows estimated: %zu, median relative error: %.2f%%\n",
              report.flow_count(), 100.0 * report.median_mean_error());
  std::remove(path.c_str());
  return 0;
}

}  // namespace rlir

int main() { return rlir::run_example(); }
