// Fat-tree anomaly localization: the end-to-end RLIR workflow on the
// paper's Figure-1 topology.
//
// A k=4 fat-tree carries traffic from two ToRs (pods 0) to T7 (pod 3).
// RLIR instances are deployed at the ToR uplinks and at every core (the
// paper's partial placement). One core is secretly slow. The example:
//   1. wires up upstream (ToR->core) and downstream (core->ToR) measurement,
//   2. demultiplexes downstream traffic by reverse-ECMP computation,
//   3. localizes the slow switch from the per-segment estimates alone,
//   4. feeds every vantage's estimates through the collection tier and asks
//      it which flows the fault actually hurt (localization says *where*,
//      the collector says *who*).
#include <cstdio>
#include <memory>
#include <vector>

#include "collect/exporter.h"
#include "collect/sharded_collector.h"
#include "rli/receiver.h"
#include "rli/sender.h"
#include "rlir/demux.h"
#include "rlir/localization.h"
#include "rlir/receiver.h"
#include "rlir/sender_agent.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"
#include "trace/synthetic.h"

namespace rlir {

int run_example() {
  using timebase::Duration;

  constexpr int kK = 4;
  topo::FatTree topo(kK);
  topo::Crc32EcmpHasher hasher;
  timebase::PerfectClock clock;
  topo::FatTreeSim sim(&topo, topo::FatTreeSimConfig{}, &hasher);

  const auto src_a = topo.tor(0, 0);   // T1
  const auto src_b = topo.tor(0, 1);   // T2
  const auto dst = topo.tor(3, 0);     // T7

  // The fault we will have to find: core C2 (index 1) forwards slowly.
  const int slow_core = 1;
  sim.add_extra_delay(topo.core(slow_core), Duration::microseconds(80));
  std::printf("injected fault: +80us forwarding delay at %s (hidden from RLIR)\n\n",
              topo.core(slow_core).name(kK).c_str());

  // --- Downstream instrumentation: a sender at every core, receiver at T7.
  rlir::ReverseEcmpDemux demux(&topo, &hasher, dst);
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> core_senders;
  for (int c = 0; c < topo.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(10 + c);
    cfg.static_gap = 50;
    core_senders.push_back(std::make_unique<rlir::CoreSenderAgent>(
        cfg, &clock, std::vector<topo::NodeId>{dst}));
    sim.add_agent(topo.core(c), core_senders.back().get());
    demux.set_sender_at_core(c, cfg.id);
  }
  rlir::RlirReceiver down_receiver(rli::ReceiverConfig{}, &clock, &demux);
  sim.add_arrival_tap(dst, &down_receiver);
  collect::EstimateExporter down_exporter(collect::ExporterConfig{{}, /*link=*/0});
  down_exporter.attach(down_receiver);

  // --- Upstream instrumentation: senders at T1/T2, receivers at each core.
  std::vector<topo::NodeId> cores;
  for (int c = 0; c < topo.core_count(); ++c) cores.push_back(topo.core(c));
  rli::SenderConfig s1_cfg;
  s1_cfg.id = 1;
  s1_cfg.static_gap = 50;
  rlir::TorSenderAgent s1(s1_cfg, &clock, cores);
  sim.add_agent(src_a, &s1);
  rli::SenderConfig s2_cfg = s1_cfg;
  s2_cfg.id = 2;
  rlir::TorSenderAgent s2(s2_cfg, &clock, cores);
  sim.add_agent(src_b, &s2);

  rlir::PrefixDemux up_demux;
  up_demux.add_origin(topo.host_prefix(src_a), 1);
  up_demux.add_origin(topo.host_prefix(src_b), 2);
  std::vector<std::unique_ptr<rlir::RlirReceiver>> up_receivers;
  std::vector<std::unique_ptr<collect::EstimateExporter>> up_exporters;
  for (const auto& core : cores) {
    up_receivers.push_back(
        std::make_unique<rlir::RlirReceiver>(rli::ReceiverConfig{}, &clock, &up_demux));
    sim.add_arrival_tap(core, up_receivers.back().get());
    up_exporters.push_back(std::make_unique<collect::EstimateExporter>(
        collect::ExporterConfig{{}, static_cast<collect::LinkId>(up_exporters.size() + 1)}));
    up_exporters.back()->attach(*up_receivers.back());
  }

  // --- Traffic.
  for (const auto& [tor, seed] : {std::pair{src_a, 100ULL}, std::pair{src_b, 200ULL}}) {
    trace::SyntheticConfig cfg;
    cfg.duration = Duration::milliseconds(50);
    cfg.offered_bps = 1.5e9;
    cfg.seed = seed;
    cfg.src_pool = topo.host_prefix(tor);
    cfg.dst_pool = topo.host_prefix(dst);
    cfg.first_seq = seed * 10'000'000ULL;
    for (const auto& pkt : trace::SyntheticTraceGenerator(cfg).generate_all()) {
      sim.inject_from_host(pkt);
    }
  }
  sim.run();

  // --- Localization from per-segment estimates.
  rlir::AnomalyLocalizer localizer;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    localizer.add_segment("up " + src_a.name(kK) + "/" + src_b.name(kK) + "-" +
                              cores[c].name(kK),
                          up_receivers[c]->merged_estimates());
  }
  for (int c = 0; c < topo.core_count(); ++c) {
    const auto* stream = down_receiver.stream(static_cast<net::SenderId>(10 + c));
    localizer.add_segment("down " + topo.core(c).name(kK) + "-" + dst.name(kK),
                          stream != nullptr ? stream->per_flow() : rli::FlowStatsMap{});
  }

  std::printf("%-18s %8s %14s %10s\n", "segment", "flows", "median delay", "score");
  for (const auto& seg : localizer.segments()) {
    std::printf("%-18s %8zu %12.1fus %10s\n", seg.name.c_str(), seg.flows,
                seg.median_flow_delay_ns / 1e3, "");
  }
  std::printf("\nfindings (threshold 3x baseline):\n");
  for (const auto& finding : localizer.localize(3.0)) {
    std::printf("  %-18s score %6.1f %s\n", finding.segment.c_str(), finding.score,
                finding.anomalous ? "<-- ANOMALOUS" : "");
  }

  // --- Collection tier: same estimates, flow-centric answer. Every
  // vantage's sketches travel the binary wire format into the sharded
  // collector, which names the flows the slow core actually hurt.
  collect::ShardedCollector collector;
  const auto ship = [&collector](collect::EstimateExporter& exporter) {
    const auto bytes = collect::encode_records(exporter.drain(/*epoch=*/0));
    collector.ingest(collect::decode_records(bytes.data(), bytes.size()));
  };
  ship(down_exporter);
  for (auto& exporter : up_exporters) ship(*exporter);

  std::printf("\ncollector view (%zu flows, %llu estimates): worst flows by p99\n",
              collector.flow_count(),
              static_cast<unsigned long long>(collector.estimates_ingested()));
  for (const auto& flow : collector.top_k_flows(5, 0.99)) {
    std::printf("  %-44s %5llu pkts  p99 %8.1fus\n", flow.key.to_string().c_str(),
                static_cast<unsigned long long>(flow.packets), flow.p99_ns / 1e3);
  }
  return 0;
}

}  // namespace rlir

int main() { return rlir::run_example(); }
