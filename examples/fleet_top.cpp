// One-shot fleet health report: dial every collector agent, scrape its
// metrics + event trace through the kMetrics query plane, and print the
// merged roll-up the way an operator's `top` would — fleet totals first,
// then the per-agent breakdown and recent fault events.
//
//   # against running daemons:
//   ./fleet_top --connect unix:/tmp/rlir0.sock,unix:/tmp/rlir1.sock
//   ./fleet_top --connect tcp:127.0.0.1:9100 --prom   # raw Prometheus text
//
// Run without --connect and it demos against `--agents N` (default 3)
// in-process agents fed a synthetic workload over loopback pipes — same
// scrape bytes, no daemons. --prom / --json switch the output to the raw
// merged exposition (what a monitoring system would ingest).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "collect/estimate_record.h"
#include "common/rng.h"
#include "obs/exposition.h"
#include "obs/span.h"
#include "transport/agent.h"
#include "transport/coordinator.h"
#include "transport/partitioned_client.h"
#include "transport/socket.h"

namespace rlir {
namespace {

net::FiveTuple demo_key(std::uint32_t i) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i));
  key.dst = net::Ipv4Address(192, 168, 0, 1);
  key.src_port = static_cast<std::uint16_t>(3000 + i);
  key.dst_port = 443;
  key.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  return key;
}

/// Sum of every counter sample named `name` in the snapshot, across label
/// sets — the "fleet total" read of a merged scrape.
std::uint64_t counter_total(const obs::MetricsSnapshot& snap, const char* name) {
  std::uint64_t total = 0;
  for (const auto& sample : snap.samples) {
    if (sample.kind == obs::MetricKind::kCounter && sample.name == name) {
      total += sample.counter;
    }
  }
  return total;
}

/// "E1:E2" -> inclusive epoch window; false on malformed text.
bool parse_window(const char* text, std::uint32_t* first, std::uint32_t* last) {
  char* end = nullptr;
  const unsigned long e1 = std::strtoul(text, &end, 10);
  if (end == text || *end != ':') return false;
  const char* rest = end + 1;
  const unsigned long e2 = std::strtoul(rest, &end, 10);
  if (end == rest || *end != '\0') return false;
  *first = static_cast<std::uint32_t>(e1);
  *last = static_cast<std::uint32_t>(e2);
  return true;
}

int run(const std::vector<std::string>& connect_texts, std::size_t n_agents,
        bool prom, bool json, bool windowed, std::uint32_t window_first,
        std::uint32_t window_last) {
  // --- The fleet: dialed daemons, or demo agents fed a synthetic workload.
  std::vector<std::unique_ptr<obs::SpanRecorder>> agent_spans;
  std::vector<std::unique_ptr<transport::CollectorAgent>> local_agents;
  std::vector<transport::CollectorClient::StreamFactory> factories;
  if (connect_texts.empty()) {
    for (std::size_t i = 0; i < n_agents; ++i) {
      // Demo agents keep history so --window has something to answer
      // (daemons need their own --history flag) and a span ring so the
      // worst-hop report has agent-side spans (daemons always have one).
      agent_spans.push_back(std::make_unique<obs::SpanRecorder>());
      transport::CollectorAgentConfig cfg;
      cfg.enable_history = true;
      cfg.instruments.spans = agent_spans.back().get();
      local_agents.push_back(std::make_unique<transport::CollectorAgent>(cfg));
      factories.push_back([&local_agents, i]() {
        auto [client_end, agent_end] = transport::make_loopback();
        local_agents[i]->add_connection(std::move(agent_end));
        return std::move(client_end);
      });
    }
  } else {
    for (const auto& text : connect_texts) {
      const auto address = transport::SocketAddress::parse(text);
      factories.push_back([address]() { return transport::connect_to(address); });
    }
    n_agents = factories.size();
  }
  const auto poll_local = [&local_agents] {
    for (auto& agent : local_agents) agent->poll();
  };

  if (!local_agents.empty()) {
    // Demo workload: spray a few thousand records so the scrape has shape.
    transport::PartitionedClient pc;
    for (auto& factory : factories) pc.add_endpoint(factory);
    common::Xoshiro256 rng(42);
    std::vector<collect::EstimateRecord> batch;
    for (std::uint32_t i = 0; i < 4000; ++i) {
      collect::EstimateRecord r;
      r.key = demo_key(i % 64);
      r.link = i % 4;
      r.epoch = i % 8;
      r.sender = 1;
      for (int s = 0; s < 8; ++s) r.sketch.add(40e3 * rng.uniform(0.5, 1.5));
      batch.push_back(std::move(r));
    }
    pc.submit(0, batch);
    for (int i = 0; i < 10000 && !pc.drain(16); ++i) poll_local();
    poll_local();
  }

  // --- The scrape: one kMetrics fan-out, merged + per-agent. The fan-out
  // is traced (the coordinator carries a span ring), so the report can end
  // with a worst-hop breakdown pulled back through kTraceSpans.
  obs::SpanRecorder coord_spans;
  transport::QueryCoordinatorConfig coord_cfg;
  coord_cfg.instruments.spans = &coord_spans;
  transport::QueryCoordinator coord(coord_cfg);
  for (auto& factory : factories) coord.add_agent(std::move(factory));
  if (!local_agents.empty()) coord.set_drive(poll_local);
  if (coord.connected_count() == 0) {
    std::fprintf(stderr, "fleet_top: no agent reachable — are the daemons running?\n");
    return 1;
  }

  auto per_agent = coord.per_agent_scrapes();
  std::vector<obs::Scrape> answered;
  for (auto& scrape : per_agent) {
    if (scrape.has_value()) answered.push_back(*scrape);
  }
  auto fleet = transport::merge_scrapes(answered);

  if (prom || json) {
    obs::append_event_counters(fleet.metrics, fleet.events);
    std::fputs(json ? obs::to_json(fleet.metrics, fleet.events).c_str()
                    : obs::to_prometheus(fleet.metrics).c_str(),
               stdout);
    if (json) std::fputs("\n", stdout);
    return 0;
  }

  std::printf("fleet: %zu/%zu agents answered\n", answered.size(), per_agent.size());
  std::printf("  records %llu  estimates %llu  flows %llu  epochs %llu  "
              "queries %llu  protocol errors %llu\n",
              static_cast<unsigned long long>(
                  counter_total(fleet.metrics, "rlir_agent_records_ingested_total")),
              static_cast<unsigned long long>(
                  counter_total(fleet.metrics, "rlir_agent_estimates_ingested_total")),
              static_cast<unsigned long long>(
                  counter_total(fleet.metrics, "rlir_agent_flows_total")),
              static_cast<unsigned long long>(
                  counter_total(fleet.metrics, "rlir_agent_epochs_total")),
              static_cast<unsigned long long>(
                  counter_total(fleet.metrics, "rlir_agent_queries_answered_total")),
              static_cast<unsigned long long>(
                  counter_total(fleet.metrics, "rlir_agent_protocol_errors_total")));
  std::printf("  events: connect %llu  disconnect %llu  shed %llu  crc %llu  "
              "rebalance %llu  epoch-flush %llu  (dropped %llu)\n\n",
              static_cast<unsigned long long>(fleet.events.count(obs::EventKind::kConnect)),
              static_cast<unsigned long long>(fleet.events.count(obs::EventKind::kDisconnect)),
              static_cast<unsigned long long>(fleet.events.count(obs::EventKind::kShed)),
              static_cast<unsigned long long>(fleet.events.count(obs::EventKind::kCrcPoison)),
              static_cast<unsigned long long>(fleet.events.count(obs::EventKind::kRebalance)),
              static_cast<unsigned long long>(fleet.events.count(obs::EventKind::kEpochFlush)),
              static_cast<unsigned long long>(fleet.events.dropped));

  for (std::size_t i = 0; i < per_agent.size(); ++i) {
    if (!per_agent[i].has_value()) {
      std::printf("  agent %zu: UNREACHABLE\n", i);
      continue;
    }
    const auto& s = *per_agent[i];
    std::printf("  agent %zu: %8llu records  %5llu flows  %3llu epochs  "
                "%2llu conns accepted  %llu disconnects\n",
                i,
                static_cast<unsigned long long>(
                    counter_total(s.metrics, "rlir_agent_records_ingested_total")),
                static_cast<unsigned long long>(
                    counter_total(s.metrics, "rlir_agent_flows_total")),
                static_cast<unsigned long long>(
                    counter_total(s.metrics, "rlir_agent_epochs_total")),
                static_cast<unsigned long long>(
                    counter_total(s.metrics, "rlir_agent_connections_accepted_total")),
                static_cast<unsigned long long>(s.events.count(obs::EventKind::kDisconnect)));
  }

  // --- Where the scrape's time went, worst hop per stage: the coordinator's
  // merge/leg/query spans plus each agent's decode/ingest/answer spans,
  // reassembled across processes via the kTraceSpans fan-out.
  const auto trace = coord.collect_trace();
  if (trace.size() > 0) {
    struct Worst {
      const obs::Span* span = nullptr;
      const std::string* process = nullptr;
    };
    Worst worst[obs::kSpanKindCount] = {};
    for (const auto& [process, spans] : trace.processes) {
      for (const auto& s : spans) {
        auto& w = worst[static_cast<std::size_t>(s.kind) - 1];
        if (w.span == nullptr || s.duration_ns() > w.span->duration_ns()) {
          w.span = &s;
          w.process = &process;
        }
      }
    }
    std::printf("\nworst hop per stage (%zu spans across %zu processes):\n", trace.size(),
                trace.processes.size());
    for (const auto& w : worst) {
      if (w.span == nullptr) continue;
      std::printf("  %-12s %10.1fus  in %s%s%s\n", obs::span_kind_stage(w.span->kind),
                  w.span->duration_ns() / 1e3, w.process->c_str(),
                  w.span->label.empty() ? "" : "  ", w.span->label.c_str());
    }
  }

  if (windowed) {
    // Time-travel query: the kWindowFleet fan-out over each agent's history
    // store, merged bin-for-bin with honest coverage labeling.
    std::printf("\nfleet latency over epoch window [%u, %u]:\n", window_first, window_last);
    const auto result = coord.window_fleet(window_first, window_last);
    if (!result.window.covered || !result.sketch.has_value()) {
      std::printf("  no covered history — run the daemons with --history, or the window "
                  "was evicted\n");
    } else {
      const auto& sketch = *result.sketch;
      std::printf("  covered [%u, %u] (%s, %llu records)\n", result.window.first,
                  result.window.last, result.window.complete ? "complete" : "PARTIAL",
                  static_cast<unsigned long long>(result.window.records));
      std::printf("  p50 %8.1fus  p90 %8.1fus  p99 %8.1fus  max %8.1fus  (%llu estimates)\n",
                  sketch.quantile(0.5) / 1e3, sketch.quantile(0.9) / 1e3,
                  sketch.quantile(0.99) / 1e3, sketch.max() / 1e3,
                  static_cast<unsigned long long>(sketch.count()));
    }
  }
  return 0;
}

}  // namespace
}  // namespace rlir

int main(int argc, char** argv) {
  std::vector<std::string> connect_texts;
  std::size_t n_agents = 3;
  bool prom = false;
  bool json = false;
  bool windowed = false;
  std::uint32_t window_first = 0;
  std::uint32_t window_last = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        const char* comma = std::strchr(p, ',');
        connect_texts.emplace_back(p, comma != nullptr ? comma - p : std::strlen(p));
        p = comma != nullptr ? comma + 1 : p + connect_texts.back().size();
      }
    } else if (std::strcmp(argv[i], "--agents") == 0 && i + 1 < argc) {
      n_agents = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      prom = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      if (!rlir::parse_window(argv[++i], &window_first, &window_last)) {
        std::fprintf(stderr, "fleet_top: --window expects E1:E2 (epoch ids)\n");
        return 2;
      }
      windowed = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--connect ADDR[,ADDR...]] [--agents N] [--prom | --json]\n"
                   "          [--window E1:E2]\n"
                   "  ADDR = tcp:HOST:PORT | unix:PATH\n"
                   "  --prom / --json   raw merged exposition instead of the report\n"
                   "  --window E1:E2    append the fleet latency over an epoch window\n",
                   argv[0]);
      return 2;
    }
  }
  if (n_agents == 0) return 2;
  try {
    return rlir::run(connect_texts, n_agents, prom, json, windowed, window_first, window_last);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_top: %s\n", e.what());
    return 1;
  }
}
