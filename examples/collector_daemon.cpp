// The shard-per-process deployment unit: a standalone collector daemon that
// listens on a TCP or Unix-domain socket, drains framed EstimateRecord
// batches from any number of vantage-point clients into a thread-per-shard
// ConcurrentShardedCollector, and answers fleet queries in place.
//
//   ./collector_daemon --listen unix:/tmp/rlir-collector.sock
//   ./collector_daemon --listen tcp:127.0.0.1:9100 --shards 8
//
// Pair it with examples/remote_fleet_query (runs a fat-tree measurement
// workload, streams the records here, then queries), or any CollectorClient.
// Runs until SIGINT/SIGTERM, or until --idle-exit-ms of silence after the
// first connection (handy for scripted demos).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <thread>

#include "collect/slo_watcher.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "transport/agent.h"
#include "transport/http_metrics.h"
#include "transport/socket.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen (tcp:HOST:PORT | unix:PATH) [--shards N] "
               "[--idle-exit-ms MS] [--metrics] [--metrics-every EPOCHS] [--quiet]\n"
               "          [--http ADDR] [--history] [--slo-ns NS] [--slow-query-ms MS]\n"
               "  --metrics             dump the Prometheus scrape on exit\n"
               "  --metrics-every N     stderr health line every N ingested epochs (default 8)\n"
               "  --quiet               suppress the periodic health line\n"
               "  --http ADDR           serve GET /metrics, /healthz, /trace on ADDR\n"
               "  --history             keep the epoch history store (kWindow* queries)\n"
               "  --slo-ns NS           watch windowed p99 > NS per flow (implies --history)\n"
               "  --slow-query-ms MS    log spans slower than MS to the event trace\n",
               argv0);
  return 2;
}

/// One operator-readable line per N epochs: the always-on heartbeat between
/// full scrapes (kMetrics queries or the --metrics exit dump).
void print_health_line(rlir::transport::CollectorAgent& agent) {
  const auto stats = agent.stats();
  const auto events = agent.events().snapshot();
  std::fprintf(stderr,
               "collector_daemon: epochs %llu  records %llu  flows %llu  conns %zu  "
               "events[connect %llu disconnect %llu crc %llu shed %llu]\n",
               static_cast<unsigned long long>(stats.epochs),
               static_cast<unsigned long long>(stats.records_ingested),
               static_cast<unsigned long long>(stats.flows), agent.connection_count(),
               static_cast<unsigned long long>(events.count(rlir::obs::EventKind::kConnect)),
               static_cast<unsigned long long>(events.count(rlir::obs::EventKind::kDisconnect)),
               static_cast<unsigned long long>(events.count(rlir::obs::EventKind::kCrcPoison)),
               static_cast<unsigned long long>(events.count(rlir::obs::EventKind::kShed)));
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_text;
  std::size_t shards = 8;
  long idle_exit_ms = 0;  // 0 = run until signalled
  bool dump_metrics = false;
  bool quiet = false;
  unsigned long metrics_every = 8;
  std::string http_text;
  bool enable_history = false;
  double slo_ns = 0.0;
  long slow_query_ms = 0;  // 0 = slow-span logging off
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_text = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--idle-exit-ms") == 0 && i + 1 < argc) {
      idle_exit_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (std::strcmp(argv[i], "--metrics-every") == 0 && i + 1 < argc) {
      metrics_every = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--http") == 0 && i + 1 < argc) {
      http_text = argv[++i];
    } else if (std::strcmp(argv[i], "--history") == 0) {
      enable_history = true;
    } else if (std::strcmp(argv[i], "--slo-ns") == 0 && i + 1 < argc) {
      slo_ns = std::strtod(argv[++i], nullptr);
      enable_history = true;  // the watcher reads the store
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0 && i + 1 < argc) {
      slow_query_ms = std::strtol(argv[++i], nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }
  if (listen_text.empty() || shards == 0 || metrics_every == 0) return usage(argv[0]);

  using namespace rlir;
  try {
    const auto address = transport::SocketAddress::parse(listen_text);
    // Always-on self-profiling ring: decode/ingest/answer spans per frame,
    // served back through kTraceSpans and GET /trace. Declared before the
    // agent so the agent's bind in its ctor sees a live recorder.
    obs::SpanRecorder spans;
    transport::CollectorAgentConfig cfg;
    cfg.collector.shard_count = shards;
    cfg.enable_history = enable_history;
    cfg.instruments.spans = &spans;
    transport::CollectorAgent agent(cfg);
    if (slow_query_ms > 0) {
      spans.set_slow_log(slow_query_ms * 1'000'000, &agent.events());
      std::printf("collector_daemon: slow-span log at %ld ms\n", slow_query_ms);
    }
    auto listener = std::make_unique<transport::SocketListener>(address);
    std::printf("collector_daemon: listening on %s (%zu shards, thread-per-shard ingest)\n",
                listener->address().to_string().c_str(), shards);
    std::fflush(stdout);
    agent.set_listener(std::move(listener));

    std::unique_ptr<transport::HttpMetricsServer> http;
    if (!http_text.empty()) {
      auto http_listener = std::make_unique<transport::SocketListener>(
          transport::SocketAddress::parse(http_text));
      std::printf("collector_daemon: GET /metrics on %s\n",
                  http_listener->address().to_string().c_str());
      http = std::make_unique<transport::HttpMetricsServer>(
          std::move(http_listener), [&agent] {
            auto scrape = agent.scrape();
            obs::append_event_counters(scrape.metrics, scrape.events);
            return obs::to_prometheus(scrape.metrics);
          });
      const auto started = std::chrono::steady_clock::now();
      http->add_route("/healthz", [&agent, started] {
        const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
                                std::chrono::steady_clock::now() - started)
                                .count();
        const auto stats = agent.stats();
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "{\"status\":\"ok\",\"uptime_s\":%lld,\"epochs\":%llu,"
                      "\"records\":%llu}\n",
                      static_cast<long long>(uptime),
                      static_cast<unsigned long long>(stats.epochs),
                      static_cast<unsigned long long>(stats.records_ingested));
        return std::string(buf);
      });
      http->add_route("/trace", [&spans] {
        return obs::to_chrome_trace(spans.snapshot().spans, "collector_daemon");
      });
    }
    // Black-box dump on SLO violations: the span ring + recent events, as
    // one JSON document on stderr (rate-limited inside the recorder).
    obs::FlightRecorder flight(&spans, &agent.events(),
                               [](const std::string& reason, const std::string& json) {
                                 std::fprintf(stderr, "FLIGHT RECORDER (%s):\n%s",
                                              reason.c_str(), json.c_str());
                               });
    std::unique_ptr<collect::SloWatcher> watcher;
    if (slo_ns > 0.0) {
      collect::SloWatcherConfig wcfg;
      wcfg.threshold_ns = slo_ns;
      wcfg.instruments.registry = &agent.metrics();
      wcfg.instruments.trace = &agent.events();
      watcher = std::make_unique<collect::SloWatcher>(wcfg, agent.history());
      std::printf("collector_daemon: SLO watch p%.0f > %.0f ns over %zu-epoch windows\n",
                  wcfg.quantile * 100.0, slo_ns, wcfg.window_epochs);
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    // The poll loop, with idle-exit bookkeeping the library's run() doesn't
    // need: a demo daemon should end itself once its client went away.
    using Clock = std::chrono::steady_clock;
    auto last_activity = Clock::now();
    bool saw_connection = false;
    std::uint64_t next_health_epoch = metrics_every;
    while (!g_stop.load(std::memory_order_relaxed)) {
      const std::size_t frames = agent.poll();
      if (http != nullptr) http->poll();
      if (watcher != nullptr) {
        for (const auto& v : watcher->poll()) {
          std::fprintf(stderr, "SLO VIOLATION %s  p%.0f %.1fus > %.1fus  window [%u,%u]\n",
                       v.key.to_string().c_str(), watcher->config().quantile * 100.0,
                       v.value_ns / 1e3, v.threshold_ns / 1e3, v.window_first, v.window_last);
          for (const auto& f : v.findings) {
            if (f.anomalous) {
              std::fprintf(stderr, "  likely culprit: %s (score %.2f)\n", f.segment.c_str(),
                           f.score);
            }
          }
          flight.trigger("slo:" + v.key.to_string());
        }
      }
      if (agent.connection_count() > 0) saw_connection = true;
      if (frames > 0 || agent.connection_count() > 0) {
        last_activity = Clock::now();
      } else if (idle_exit_ms > 0 && saw_connection &&
                 Clock::now() - last_activity > std::chrono::milliseconds(idle_exit_ms)) {
        std::printf("collector_daemon: idle for %ld ms after last client, exiting\n",
                    idle_exit_ms);
        break;
      }
      if (!quiet && frames > 0 && agent.stats().epochs >= next_health_epoch) {
        print_health_line(agent);
        // Re-arm past the CURRENT epoch count: a burst that jumps several
        // boundaries prints one line, not one per boundary.
        next_health_epoch = (agent.stats().epochs / metrics_every + 1) * metrics_every;
      }
      if (frames == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    const auto stats = agent.stats();
    std::printf("collector_daemon: served %llu frames / %llu batches -> %llu records "
                "(%llu estimates, %llu flows), %llu queries, %llu protocol errors\n",
                static_cast<unsigned long long>(stats.frames_received),
                static_cast<unsigned long long>(stats.batches_received),
                static_cast<unsigned long long>(stats.records_ingested),
                static_cast<unsigned long long>(stats.estimates_ingested),
                static_cast<unsigned long long>(stats.flows),
                static_cast<unsigned long long>(stats.queries_answered),
                static_cast<unsigned long long>(stats.protocol_errors));
    if (dump_metrics) {
      // Same content a kMetrics query ships: registry + AgentStats field
      // table + event counters, in Prometheus text.
      auto scrape = agent.scrape();
      obs::append_event_counters(scrape.metrics, scrape.events);
      std::fputs(obs::to_prometheus(scrape.metrics).c_str(), stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "collector_daemon: %s\n", e.what());
    return 1;
  }
}
