// Placement planner: answer an operator's question — "what does it cost to
// get per-flow latency visibility between these ToRs, and where do the
// instances go?" (paper Section 3.1).
#include <cstdio>

#include "topo/placement.h"

int main() {
  using namespace rlir::topo;

  constexpr int kK = 8;
  const FatTree topo(kK);

  std::printf("fabric: k=%d fat-tree — %d ToR, %d edge, %d core switches, %d hosts\n\n",
              kK, topo.tor_count(), topo.edge_count(), topo.core_count(),
              topo.host_count());

  std::printf("deployment cost by granularity (measurement instances):\n");
  const auto row = placement_row(kK);
  std::printf("  one ToR interface pair : %6llu\n",
              static_cast<unsigned long long>(row.interface_pair));
  std::printf("  one ToR switch pair    : %6llu\n",
              static_cast<unsigned long long>(row.tor_pair));
  std::printf("  every ToR switch pair  : %6llu\n",
              static_cast<unsigned long long>(row.all_tor_pairs));
  std::printf("  full RLI deployment    : %6llu (RLIR saves %.1f%%)\n\n",
              static_cast<unsigned long long>(row.full_deployment),
              100.0 * (1.0 - row.savings_ratio()));

  // Concrete plan for a cross-pod ToR pair.
  const auto src = topo.tor(0, 0);
  const auto dst = topo.tor(kK - 1, 0);
  const auto plan = plan_interface_pair(topo, src, dst);
  std::printf("plan for %s -> %s (one interface pair):\n", src.name(kK).c_str(),
              dst.name(kK).c_str());
  std::printf("  instances: %llu at:", static_cast<unsigned long long>(plan.instance_count));
  for (const auto& node : plan.instance_nodes) std::printf(" %s", node.name(kK).c_str());
  std::printf("\n  measured segments:\n");
  for (const auto& seg : plan.segments) std::printf("    %s\n", seg.c_str());

  std::printf("\npath diversity this covers: %zu ECMP paths\n",
              topo.paths_between(src, dst).size());
  return 0;
}
