#!/usr/bin/env python3
"""Diff a bench --json output against a committed baseline.

Usage:
    tools/check_bench.py CURRENT.json BASELINE.json [--threshold 0.15]

Compares every throughput metric (keys matching ``_rate``) present in BOTH
files and exits non-zero if any regressed by more than the threshold
(default 15%). Higher is better for every compared key; other keys are
ignored: counts, byte densities, and quantiles are workload properties, not
performance, and ``_speedup`` ratios are derived from rates already being
compared (gating a ratio of two noisy numbers only doubles the noise).

Keys present in only one file are reported but never fail the check, so
adding or renaming a metric doesn't require a lockstep baseline update.

CI wires this behind a skip label (``skip-bench-check``) and a widened
threshold, because shared runners are noisy neighbors and smoke-sized runs
amplify timing jitter (the 15% default is calibrated for full-size runs on
a quiet box). A genuine regression reproduces locally with
``bench/bench_collector_throughput --json`` against ``bench/baseline/``;
a phantom one doesn't. Refresh baselines whenever a deliberate perf change
lands: take the BENCH_*.json artifacts from a green main build (same
machines the gate runs on) — or locally, the per-key minimum over a few
smoke runs — and commit them (docs/PERFORMANCE.md records the history).
"""

import argparse
import json
import re
import sys

COMPARED = re.compile(r"_rate($|_)")


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_bench: cannot read {path}: {e}")
    if not isinstance(data, dict):
        sys.exit(f"check_bench: {path}: expected a flat JSON object")
    return data


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated fractional regression (default 0.15)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    compared = sorted(
        k for k in current.keys() & baseline.keys()
        if COMPARED.search(k)
        and isinstance(current[k], (int, float))
        and isinstance(baseline[k], (int, float))
    )
    if not compared:
        sys.exit("check_bench: no comparable *_rate keys in both files")

    regressions = []
    width = max(len(k) for k in compared)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'current':>14}  {'delta':>8}")
    for key in compared:
        base, cur = float(baseline[key]), float(current[key])
        if base <= 0:
            continue  # a skipped stage (e.g. unix_socket_rate 0 in CI sandboxes)
        delta = cur / base - 1.0
        flag = ""
        if delta < -args.threshold:
            regressions.append((key, base, cur, delta))
            flag = "  << REGRESSION"
        print(f"{key:<{width}}  {base:>14.0f}  {cur:>14.0f}  {delta:>+7.1%}{flag}")

    only = sorted((current.keys() ^ baseline.keys()) & set(
        k for k in current.keys() | baseline.keys() if COMPARED.search(k)))
    for key in only:
        where = "current" if key in current else "baseline"
        print(f"note: {key} only in {where} (not compared)")

    if regressions:
        print(f"\ncheck_bench: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print(f"\ncheck_bench: OK ({len(compared)} metrics within {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
