// The tracing acceptance bar: one coordinator query against a 4-agent fleet
// must yield an assembled cross-process trace containing every hop — the
// coordinator's merge span, one leg span per agent, one client query span
// per leg, and one answer span inside each agent's own ring — with parent
// links that resolve inside the assembly and timestamps that never run
// backwards. Proven over loopback pipes AND over real Unix-domain sockets
// with each agent on its own thread (the shard-per-process shape).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "transport/agent.h"
#include "transport/byte_stream.h"
#include "transport/coordinator.h"
#include "transport/socket.h"

namespace rlir::transport {
namespace {

constexpr std::size_t kAgents = 4;

std::size_t count_kind(const AssembledTrace& trace, obs::SpanKind kind) {
  std::size_t n = 0;
  for (const auto& [name, spans] : trace.processes) {
    for (const auto& span : spans) {
      if (span.kind == kind) n += 1;
    }
  }
  return n;
}

/// The acceptance predicate, shared by both transports.
void expect_complete_trace(const AssembledTrace& trace) {
  ASSERT_NE(trace.trace_id, 0u);
  EXPECT_EQ(trace.agents_answered, kAgents);
  ASSERT_EQ(trace.processes.size(), 1 + kAgents);
  EXPECT_EQ(trace.processes[0].first, "coordinator");

  // Every hop is present: one merge, a leg + a client query per agent, and
  // an answer span in each agent's own ring.
  EXPECT_EQ(count_kind(trace, obs::SpanKind::kCoordMerge), 1u);
  EXPECT_EQ(count_kind(trace, obs::SpanKind::kCoordLeg), kAgents);
  EXPECT_EQ(count_kind(trace, obs::SpanKind::kClientQuery), kAgents);
  EXPECT_EQ(count_kind(trace, obs::SpanKind::kAgentAnswer), kAgents);
  for (std::size_t i = 0; i < kAgents; ++i) {
    EXPECT_EQ(trace.processes[1 + i].first, "agent" + std::to_string(i));
    ASSERT_EQ(trace.processes[1 + i].second.size(), 1u);
    EXPECT_EQ(trace.processes[1 + i].second[0].kind, obs::SpanKind::kAgentAnswer);
  }

  std::map<std::uint64_t, const obs::Span*> by_id;
  for (const auto& [name, spans] : trace.processes) {
    for (const auto& span : spans) {
      EXPECT_EQ(span.trace_id, trace.trace_id);
      EXPECT_NE(span.span_id, 0u);
      EXPECT_GE(span.end_ns, span.start_ns) << "span timestamps ran backwards";
      EXPECT_TRUE(by_id.emplace(span.span_id, &span).second) << "duplicate span id";
    }
  }

  // Parent links form one consistent tree: the merge is the only root, and
  // every other parent resolves to a span IN the assembly with the expected
  // hop-to-hop kind chain (merge -> leg -> client query -> agent answer).
  for (const auto& [id, span] : by_id) {
    if (span->kind == obs::SpanKind::kCoordMerge) {
      EXPECT_EQ(span->parent_id, 0u);
      continue;
    }
    const auto parent = by_id.find(span->parent_id);
    ASSERT_NE(parent, by_id.end()) << "orphan span " << span->label;
    switch (span->kind) {
      case obs::SpanKind::kCoordLeg:
        EXPECT_EQ(parent->second->kind, obs::SpanKind::kCoordMerge);
        break;
      case obs::SpanKind::kClientQuery:
        EXPECT_EQ(parent->second->kind, obs::SpanKind::kCoordLeg);
        break;
      case obs::SpanKind::kAgentAnswer:
        EXPECT_EQ(parent->second->kind, obs::SpanKind::kClientQuery);
        break;
      default:
        break;
    }
    // A child never starts before its parent (same clock per process; the
    // cross-process hops here share one host, so the bound holds).
    EXPECT_GE(span->start_ns, parent->second->start_ns);
  }

  // And the document it renders to is loadable Chrome JSON.
  const auto json = obs::to_chrome_trace(trace.processes);
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(json.find("\"agent3\""), std::string::npos);
  EXPECT_NE(json.find("\"coord_merge\""), std::string::npos);
}

TEST(TracingE2E, LoopbackFleetAssemblesEveryHop) {
  std::vector<std::unique_ptr<obs::SpanRecorder>> agent_spans;
  std::vector<std::unique_ptr<CollectorAgent>> agents;
  obs::SpanRecorder coord_spans;
  QueryCoordinatorConfig cfg;
  cfg.instruments.spans = &coord_spans;
  QueryCoordinator coord(cfg);
  for (std::size_t i = 0; i < kAgents; ++i) {
    agent_spans.push_back(std::make_unique<obs::SpanRecorder>());
    CollectorAgentConfig acfg;
    acfg.instruments.spans = agent_spans[i].get();
    agents.push_back(std::make_unique<CollectorAgent>(acfg));
    coord.add_agent([&agents, i]() {
      auto [client_end, agent_end] = make_loopback();
      agents[i]->add_connection(std::move(agent_end));
      return std::move(client_end);
    });
  }
  coord.set_drive([&agents] {
    for (auto& agent : agents) agent->poll();
  });
  ASSERT_EQ(coord.connected_count(), kAgents);

  (void)coord.fleet();  // ONE traced query against the fleet
  expect_complete_trace(coord.collect_trace());
}

TEST(TracingE2E, UnixSocketFleetAssemblesEveryHop) {
  std::vector<std::unique_ptr<SocketListener>> listeners;
  std::vector<SocketAddress> addresses;
  for (std::size_t i = 0; i < kAgents; ++i) {
    const std::string path = testing::TempDir() + "rlir_trace_" +
                             std::to_string(::getpid()) + "_" + std::to_string(i) + ".sock";
    try {
      listeners.push_back(
          std::make_unique<SocketListener>(SocketAddress::unix_path(path)));
    } catch (const std::system_error&) {
      GTEST_SKIP() << "sandbox forbids unix sockets";
    }
    addresses.push_back(listeners.back()->address());
  }

  // The deployment shape: each agent owns its thread (as it would own its
  // process) with its own span ring, reached only through the kernel.
  std::vector<std::unique_ptr<obs::SpanRecorder>> agent_spans;
  std::vector<std::unique_ptr<CollectorAgent>> agents;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kAgents; ++i) {
    agent_spans.push_back(std::make_unique<obs::SpanRecorder>());
    CollectorAgentConfig acfg;
    acfg.instruments.spans = agent_spans[i].get();
    agents.push_back(std::make_unique<CollectorAgent>(acfg));
    agents[i]->set_listener(std::move(listeners[i]));
    // Capture the stable agent pointer, not the still-growing vector — a
    // later push_back reallocates under the running thread otherwise.
    CollectorAgent* agent = agents[i].get();
    threads.emplace_back(
        [agent, &stop] { agent->run(stop, timebase::Duration::microseconds(100)); });
  }

  {
    obs::SpanRecorder coord_spans;
    QueryCoordinatorConfig cfg;
    cfg.instruments.spans = &coord_spans;
    QueryCoordinator coord(cfg);
    for (const auto& address : addresses) {
      coord.add_agent([address]() { return connect_to(address); });
    }

    (void)coord.fleet();  // ONE traced query against the fleet
    expect_complete_trace(coord.collect_trace());
  }

  stop.store(true);
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace rlir::transport
