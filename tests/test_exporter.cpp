// EstimateExporter: estimate-stream folding into per-flow sketches, sink
// attachment to both receiver kinds, and epoch drain/reset semantics.
#include "collect/exporter.h"

#include <gtest/gtest.h>

#include <vector>

#include "rlir/demux.h"
#include "timebase/clock.h"

namespace rlir::collect {
namespace {

using timebase::TimePoint;

net::FiveTuple make_key(std::uint16_t port) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(10, 0, 0, 1);
  key.dst = net::Ipv4Address(10, 9, 9, 9);
  key.src_port = port;
  return key;
}

rli::RliReceiver::PacketEstimate estimate(std::uint16_t port, double ns) {
  return rli::RliReceiver::PacketEstimate{make_key(port), TimePoint::zero(), ns};
}

TEST(EstimateExporterTest, FoldsEstimatesPerFlowAndDrainsSorted) {
  EstimateExporter exporter(ExporterConfig{{}, /*link=*/9});
  exporter.observe(1, estimate(300, 1000.0));
  exporter.observe(1, estimate(100, 2000.0));
  exporter.observe(1, estimate(300, 3000.0));
  EXPECT_EQ(exporter.flow_count(), 2u);
  EXPECT_EQ(exporter.estimates_observed(), 3u);

  const auto records = exporter.drain(/*epoch=*/4);
  ASSERT_EQ(records.size(), 2u);
  // Drained in flow-key order, stamped with link and epoch.
  EXPECT_EQ(records[0].key, make_key(100));
  EXPECT_EQ(records[1].key, make_key(300));
  for (const auto& r : records) {
    EXPECT_EQ(r.link, 9u);
    EXPECT_EQ(r.epoch, 4u);
    EXPECT_EQ(r.sender, 1);
  }
  EXPECT_EQ(records[1].sketch.count(), 2u);

  // Drain resets: the next epoch starts empty.
  EXPECT_EQ(exporter.flow_count(), 0u);
  EXPECT_TRUE(exporter.drain(5).empty());
}

TEST(EstimateExporterTest, AttachToRliReceiver) {
  timebase::PerfectClock clock;
  rli::RliReceiver receiver(rli::ReceiverConfig{}, &clock);
  EstimateExporter exporter(ExporterConfig{{}, 0});
  exporter.attach(receiver, /*sender=*/7);

  auto ref = net::make_reference_packet(7, TimePoint(0), TimePoint(0), 1);
  ref.ts = TimePoint(1000);  // delay 1000ns
  receiver.on_packet(ref, TimePoint(1000));
  net::Packet p;
  p.ts = TimePoint(1500);
  p.key = make_key(42);
  receiver.on_packet(p, TimePoint(1500));
  auto ref2 = net::make_reference_packet(7, TimePoint(2000), TimePoint(2000), 2);
  ref2.ts = TimePoint(3000);
  receiver.on_packet(ref2, TimePoint(3000));

  EXPECT_EQ(exporter.estimates_observed(), 1u);
  const auto records = exporter.drain(0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sender, 7);
  EXPECT_EQ(records[0].key, make_key(42));
}

TEST(EstimateExporterTest, AttachToRlirReceiverCarriesStreamSender) {
  timebase::PerfectClock clock;
  rlir::PrefixDemux demux;
  demux.add_origin(net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 24), 3);
  rlir::RlirReceiver receiver(rli::ReceiverConfig{}, &clock, &demux);
  EstimateExporter exporter(ExporterConfig{{}, 0});
  exporter.attach(receiver);

  auto ref = net::make_reference_packet(3, TimePoint(0), TimePoint(0), 1);
  ref.ts = TimePoint(500);
  receiver.on_packet(ref, TimePoint(500));
  net::Packet p;
  p.ts = TimePoint(700);
  p.key = make_key(8);
  receiver.on_packet(p, TimePoint(700));
  auto ref2 = net::make_reference_packet(3, TimePoint(1000), TimePoint(1000), 2);
  ref2.ts = TimePoint(1500);
  receiver.on_packet(ref2, TimePoint(1500));

  const auto records = exporter.drain(0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sender, 3);
}

}  // namespace
}  // namespace rlir::collect
