// Integration tests: clock-sync error propagation through the full
// measurement path (the ablation_sync_error bench in miniature).
#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace rlir::exp {
namespace {

using timebase::Duration;

ExperimentConfig base_config(Duration residual) {
  ExperimentConfig cfg;
  cfg.duration = Duration::milliseconds(120);
  cfg.target_utilization = 0.67;
  cfg.sync_residual = residual;
  cfg.seed = 21;
  return cfg;
}

TEST(SyncError, TinyResidualIsHarmless) {
  const auto perfect = run_two_hop_experiment(base_config(Duration::zero()));
  const auto tiny = run_two_hop_experiment(base_config(Duration::nanoseconds(50)));
  ASSERT_GT(perfect.report.flow_count(), 100u);
  // 50ns against multi-microsecond delays: indistinguishable.
  EXPECT_NEAR(tiny.report.median_mean_error(), perfect.report.median_mean_error(), 0.02);
}

TEST(SyncError, LargeResidualDegradesAccuracy) {
  const auto perfect = run_two_hop_experiment(base_config(Duration::zero()));
  const auto bad = run_two_hop_experiment(base_config(Duration::microseconds(10)));
  // 10us sync error vs ~4us true delays at 67%: accuracy collapses.
  EXPECT_GT(bad.report.median_mean_error(), 2.0 * perfect.report.median_mean_error());
}

TEST(SyncError, HighUtilizationMasksModerateResidual) {
  ExperimentConfig cfg = base_config(Duration::microseconds(1));
  cfg.target_utilization = 0.93;
  const auto with_error = run_two_hop_experiment(cfg);
  cfg.sync_residual = Duration::zero();
  const auto perfect = run_two_hop_experiment(cfg);
  // 1us against ~85us delays: error inflation must stay small.
  EXPECT_LT(with_error.report.median_mean_error(),
            perfect.report.median_mean_error() + 0.05);
}

// Monotonicity sweep: accuracy never improves as sync degrades.
class SyncResidualSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SyncResidualSweep, ErrorFloorsAtResidualOverDelay) {
  const auto residual = Duration::nanoseconds(GetParam());
  const auto result = run_two_hop_experiment(base_config(residual));
  const auto baseline = run_two_hop_experiment(base_config(Duration::zero()));
  // The sync error adds at most ~residual/true_delay to the relative error
  // (plus noise); assert a generous version of that bound.
  const double expected_extra =
      static_cast<double>(residual.ns()) / baseline.true_mean_latency_ns;
  EXPECT_LT(result.report.median_mean_error(),
            baseline.report.median_mean_error() + expected_extra + 0.1);
  EXPECT_GT(result.report.median_mean_error(),
            baseline.report.median_mean_error() - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Residuals, SyncResidualSweep,
                         ::testing::Values(100, 1'000, 5'000));

}  // namespace
}  // namespace rlir::exp
