// The fault-injection decorator itself, then the decorator driving the
// transport tier's failure paths deterministically: a bit flip on the wire
// must poison the frame and drop the connection (CRC catches it), a
// mid-frame connection cut must end in a whole-frame resend with no
// duplicates, and a backpressure stall must push the client into bounded
// buffering with oldest-first shedding — with conservation checkable at
// every step.
#include "fault_stream.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "transport/agent.h"
#include "transport/byte_stream.h"
#include "transport/client.h"
#include "transport/frame.h"

namespace rlir::transport {
namespace {

using testutil::FaultPlan;
using testutil::FaultyByteStream;
using testutil::make_faulty_loopback;

std::vector<collect::EstimateRecord> make_batch(std::size_t n, std::uint32_t epoch,
                                                std::uint64_t seed = 11) {
  common::Xoshiro256 rng(seed);
  std::vector<collect::EstimateRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    collect::EstimateRecord r;
    r.key.src = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i));
    r.key.dst = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i));
    r.key.src_port = static_cast<std::uint16_t>(1000 + i);
    r.key.dst_port = 80;
    r.epoch = epoch;
    r.link = 0;
    for (int j = 0; j < 50; ++j) r.sketch.add(rng.lognormal(9.0, 1.0));
    records.push_back(std::move(r));
  }
  return records;
}

// --- Decorator semantics ----------------------------------------------------

TEST(FaultStream, CutAfterWriteBytesKillsAtExactOffset) {
  FaultPlan plan;
  plan.cut_after_write_bytes = 4;
  auto [faulty, peer] = make_faulty_loopback(plan);
  auto* f = static_cast<FaultyByteStream*>(faulty.get());

  const std::uint8_t data[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  // Exactly the bytes before the cut point get through, never one more.
  EXPECT_EQ(faulty->write_some(data, sizeof data), 4u);
  EXPECT_TRUE(f->cut_fired());
  EXPECT_TRUE(faulty->closed());
  EXPECT_EQ(faulty->write_some(data, sizeof data), 0u);

  // The peer drains what was delivered before seeing the death.
  std::uint8_t got[10] = {};
  EXPECT_EQ(peer->read_some(got, sizeof got), 4u);
  EXPECT_EQ(std::memcmp(got, data, 4), 0);
  EXPECT_EQ(peer->read_some(got, sizeof got), 0u);
  EXPECT_TRUE(peer->closed());
}

TEST(FaultStream, FlipCorruptsExactlyOneByte) {
  FaultPlan plan;
  plan.flip_write_byte = 2;
  auto [faulty, peer] = make_faulty_loopback(plan);
  auto* f = static_cast<FaultyByteStream*>(faulty.get());

  const std::uint8_t data[8] = {'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'};
  ASSERT_EQ(faulty->write_some(data, sizeof data), sizeof data);
  EXPECT_EQ(f->flips(), 1u);

  std::uint8_t got[8] = {};
  ASSERT_EQ(peer->read_some(got, sizeof got), sizeof got);
  EXPECT_EQ(got[2], 'C' ^ 0x20);
  got[2] = 'C';
  EXPECT_EQ(std::memcmp(got, data, sizeof data), 0);
}

TEST(FaultStream, StallWindowAcceptsNothingThenResumes) {
  FaultPlan plan;
  plan.stall_after_write_bytes = 4;
  plan.stall_writes = 2;
  auto [faulty, peer] = make_faulty_loopback(plan);
  auto* f = static_cast<FaultyByteStream*>(faulty.get());

  const std::uint8_t data[4] = {1, 2, 3, 4};
  EXPECT_EQ(faulty->write_some(data, 4), 4u);
  // The stall window: zero-byte writes, connection still alive.
  EXPECT_EQ(faulty->write_some(data, 3), 0u);
  EXPECT_EQ(faulty->write_some(data, 3), 0u);
  EXPECT_FALSE(faulty->closed());
  EXPECT_EQ(f->stalled_writes(), 2u);
  // Window exhausted: flow resumes.
  EXPECT_EQ(faulty->write_some(data, 3), 3u);
  EXPECT_EQ(f->bytes_written(), 7u);
}

TEST(FaultStream, CutAfterReadBytesDropsUndrainedBytes) {
  FaultPlan plan;
  plan.cut_after_read_bytes = 6;
  auto [faulty, peer] = make_faulty_loopback(plan);

  const std::uint8_t data[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_EQ(peer->write_some(data, sizeof data), sizeof data);

  std::uint8_t got[10] = {};
  EXPECT_EQ(faulty->read_some(got, sizeof got), 6u);
  EXPECT_EQ(std::memcmp(got, data, 6), 0);
  EXPECT_TRUE(faulty->closed());
  // The four written-but-unread bytes died with the connection.
  EXPECT_EQ(faulty->read_some(got, sizeof got), 0u);
}

// --- Driving the transport tier's failure paths -----------------------------

/// Dials through a FaultyByteStream on the FIRST connection, clean loopback
/// afterwards — the shape of "one network incident, then recovery".
struct FaultyDialer {
  CollectorAgent* agent = nullptr;
  FaultPlan first_plan = {};
  int dials = 0;
  FaultyByteStream* faulty = nullptr;  // the first connection's client end

  CollectorClient::StreamFactory factory() {
    return [this]() -> std::unique_ptr<ByteStream> {
      auto [client_end, agent_end] = make_loopback();
      agent->add_connection(std::move(agent_end));
      if (dials++ == 0) {
        auto wrapped = std::make_unique<FaultyByteStream>(std::move(client_end), first_plan);
        faulty = wrapped.get();
        return wrapped;
      }
      return std::move(client_end);
    };
  }
};

TEST(FaultStream, BitFlipPoisonsFrameAndClientRecovers) {
  CollectorAgent agent;
  FaultyDialer dialer{&agent};
  // Flip a payload byte of the first frame: the frame CRC must catch it.
  dialer.first_plan.flip_write_byte = kFrameHeaderSize + 8;
  CollectorClientConfig cfg;
  cfg.reconnect_backoff_initial = 1;
  CollectorClient client(cfg, dialer.factory());

  const auto first = make_batch(10, 0);
  client.submit(0, first);
  client.flush();
  client.pump();
  ASSERT_EQ(dialer.faulty->flips(), 1u);

  // The agent sees a CRC mismatch: protocol error, connection dropped,
  // nothing ingested — a corrupt frame never half-applies.
  agent.poll();
  EXPECT_EQ(agent.protocol_errors(), 1u);
  EXPECT_EQ(agent.stats().records_ingested, 0u);

  // The client notices the death and re-dials (clean stream this time).
  // The flipped frame was already on the wire — at-most-once delivery says
  // its records are lost, not resent out of frame.
  for (int i = 0; i < 8 && !client.connected(); ++i) client.pump();
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.stats().reconnects, 1u);

  const auto second = make_batch(7, 1, 22);
  client.submit(1, second);
  ASSERT_TRUE(client.drain());
  agent.poll();
  agent.collector().quiesce();
  EXPECT_EQ(agent.stats().records_ingested, second.size());
  EXPECT_EQ(agent.protocol_errors(), 1u);
}

TEST(FaultStream, MidFrameCutResendsWholeFrameWithoutDuplicates) {
  CollectorAgent agent;
  FaultyDialer dialer{&agent};
  // Die 10 payload bytes into the first frame: the agent holds a partial
  // frame (connection death, NOT a protocol violation), the client must
  // resend the frame from byte zero on the next connection.
  dialer.first_plan.cut_after_write_bytes = kFrameHeaderSize + 10;
  CollectorClientConfig cfg;
  cfg.reconnect_backoff_initial = 1;
  CollectorClient client(cfg, dialer.factory());

  const auto batch = make_batch(10, 0);
  client.submit(0, batch);
  client.flush();
  client.pump();
  ASSERT_TRUE(dialer.faulty->cut_fired());
  agent.poll();  // partial frame + EOF: reap, no error
  EXPECT_EQ(agent.protocol_errors(), 0u);
  EXPECT_EQ(agent.stats().records_ingested, 0u);

  ASSERT_TRUE(client.drain());
  agent.poll();
  agent.collector().quiesce();
  // Exactly once: the whole frame went out on the second connection.
  EXPECT_EQ(agent.stats().records_ingested, batch.size());
  EXPECT_EQ(client.stats().records_shed, 0u);
  EXPECT_EQ(client.stats().reconnects, 1u);
}

TEST(FaultStream, StallBackpressureShedsOldestAndConservationHolds) {
  CollectorAgent agent;
  FaultyDialer dialer{&agent};
  // The connection accepts nothing, forever (within this test): pure
  // backpressure, never a death.
  dialer.first_plan.stall_after_write_bytes = 0;
  dialer.first_plan.stall_writes = 1u << 20;

  CollectorClientConfig cfg;
  cfg.coalesce_bytes = 1;  // every batch seals into its own frame
  const auto probe = collect::encode_records(make_batch(20, 0));
  cfg.max_buffered_bytes = (probe.size() + kFrameHeaderSize) * 2 + 16;
  CollectorClient client(cfg, dialer.factory());

  for (std::uint32_t e = 0; e < 5; ++e) {
    client.submit(e, make_batch(20, e));
    client.pump();
  }
  EXPECT_FALSE(client.drain(16));
  EXPECT_TRUE(client.connected());  // stalled, not dead
  EXPECT_GT(static_cast<const FaultyByteStream*>(dialer.faulty)->stalled_writes(), 0u);

  // Bounded buffering under stall: cap respected, oldest shed first, and
  // every submitted record is accounted for — shed or still queued.
  EXPECT_LE(client.buffered_bytes(), cfg.max_buffered_bytes);
  EXPECT_EQ(client.stats().batch_frames_shed, 3u);
  EXPECT_EQ(client.stats().records_shed, 60u);
  EXPECT_EQ(client.stats().records_submitted,
            client.stats().records_shed + client.queued_records());
  EXPECT_EQ(agent.stats().records_ingested, 0u);
}

}  // namespace
}  // namespace rlir::transport
