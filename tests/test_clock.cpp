// Unit tests: timebase/clock.h — clock models and sync-error bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "timebase/clock.h"

namespace rlir::timebase {
namespace {

TEST(PerfectClock, IdentityMapping) {
  const PerfectClock clock;
  EXPECT_EQ(clock.now(TimePoint(0)), TimePoint(0));
  EXPECT_EQ(clock.now(TimePoint(123'456)), TimePoint(123'456));
}

TEST(FixedOffsetClock, AddsConstantOffset) {
  const FixedOffsetClock clock(Duration::microseconds(3));
  EXPECT_EQ(clock.now(TimePoint(0)).ns(), 3'000);
  EXPECT_EQ(clock.now(TimePoint(1'000)).ns(), 4'000);
  EXPECT_EQ(clock.offset(), Duration::microseconds(3));

  const FixedOffsetClock behind(Duration::microseconds(-2));
  EXPECT_EQ(behind.now(TimePoint(10'000)).ns(), 8'000);
}

TEST(DriftingClock, LinearDrift) {
  // +1000 ppb = +1us per second.
  const DriftingClock clock(Duration::zero(), 1000.0);
  EXPECT_EQ(clock.now(TimePoint(0)), TimePoint(0));
  const auto after_1s = clock.now(TimePoint(1'000'000'000));
  EXPECT_EQ((after_1s - TimePoint(1'000'000'000)).ns(), 1'000);
}

TEST(DriftingClock, OffsetPlusDrift) {
  const DriftingClock clock(Duration::nanoseconds(500), -2000.0);
  const auto at_half_second = clock.now(TimePoint(500'000'000));
  // offset +500ns, drift -2us/s * 0.5s = -1000ns => net -500ns.
  EXPECT_EQ((at_half_second - TimePoint(500'000'000)).ns(), -500);
}

TEST(SyncedClock, ErrorStaysWithinWorstCase) {
  const SyncedClock clock(Duration::milliseconds(10), Duration::nanoseconds(200), 5000.0,
                          /*seed=*/42);
  const Duration bound = clock.worst_case_error();
  // worst case = residual 200ns + drift 5ppm * 10ms = 200 + 50000 ns? No:
  // 5000 ppb * 10ms = 50us*1e-3... verify via the accessor below instead.
  for (std::int64_t t = 0; t < 100'000'000; t += 777'777) {
    const auto err = clock.now(TimePoint(t)) - TimePoint(t);
    EXPECT_LE(std::abs(err.ns()), bound.ns()) << "at t=" << t;
  }
}

TEST(SyncedClock, WorstCaseErrorFormula) {
  const SyncedClock clock(Duration::milliseconds(10), Duration::nanoseconds(200), 5000.0, 1);
  // drift over one interval: 5000e-9 * 10e6 ns = 50 ns; + residual 200.
  EXPECT_EQ(clock.worst_case_error().ns(), 250);
}

TEST(SyncedClock, ResyncChangesResidual) {
  const SyncedClock clock(Duration::milliseconds(1), Duration::microseconds(1), 0.0, 7);
  // With zero drift, the error within one epoch is constant...
  const auto e1 = clock.now(TimePoint(100'000)) - TimePoint(100'000);
  const auto e2 = clock.now(TimePoint(900'000)) - TimePoint(900'000);
  EXPECT_EQ(e1.ns(), e2.ns());
  // ...and differs across epochs (new residual draw).
  const auto e3 = clock.now(TimePoint(1'500'000)) - TimePoint(1'500'000);
  EXPECT_NE(e1.ns(), e3.ns());
}

TEST(SyncedClock, DeterministicPerSeed) {
  const SyncedClock a(Duration::milliseconds(1), Duration::microseconds(1), 100.0, 9);
  const SyncedClock b(Duration::milliseconds(1), Duration::microseconds(1), 100.0, 9);
  const SyncedClock c(Duration::milliseconds(1), Duration::microseconds(1), 100.0, 10);
  int diff = 0;
  for (std::int64_t t = 0; t < 10'000'000; t += 333'333) {
    EXPECT_EQ(a.now(TimePoint(t)), b.now(TimePoint(t)));
    if (a.now(TimePoint(t)) != c.now(TimePoint(t))) ++diff;
  }
  EXPECT_GT(diff, 0);
}

// Sweep: the error bound holds across seeds and drift magnitudes.
class SyncedClockSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(SyncedClockSweep, BoundHolds) {
  const auto [seed, drift] = GetParam();
  const SyncedClock clock(Duration::milliseconds(5), Duration::nanoseconds(500), drift, seed);
  const auto bound = clock.worst_case_error();
  for (std::int64_t t = 0; t < 50'000'000; t += 1'234'567) {
    const auto err = clock.now(TimePoint(t)) - TimePoint(t);
    EXPECT_LE(std::abs(err.ns()), bound.ns() + 1);  // +1 for rounding
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndDrifts, SyncedClockSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(-10000.0, 0.0, 10000.0)));

}  // namespace
}  // namespace rlir::timebase
