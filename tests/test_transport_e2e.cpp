// The transport tier's acceptance bar: exporter -> CollectorClient ->
// byte stream -> CollectorAgent -> ConcurrentShardedCollector must produce
// bin-for-bin identical collector state (and identical top-k / quantile
// answers) to the in-process FleetCollector path on the same FatTreeSim
// workload — under the loopback backend and over a real Unix socket.
//
// This is the property that makes shard-per-process deployment safe: moving
// collection across a process boundary changes WHERE merging happens, never
// WHAT the answers are.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "fleet_workload.h"
#include "transport/agent.h"
#include "transport/client.h"
#include "transport/socket.h"

namespace rlir {
namespace {

constexpr std::size_t kShards = testutil::kWorkloadShards;

/// The shared workload, single-sink (this file predates the partitioned
/// fleet; its transport runs ship everything to one agent).
template <typename BetweenSteps>
collect::ShardedCollector run_workload(collect::EpochScheduler::BatchSink sink,
                                       BetweenSteps between_steps) {
  std::vector<collect::EpochScheduler::BatchSink> sinks;
  if (sink) sinks.push_back(std::move(sink));
  return testutil::run_fleet_workload(std::move(sinks), between_steps);
}

collect::ShardedCollector baseline_state() { return testutil::fleet_baseline_state(); }

void expect_identical(collect::ShardedCollector& got, collect::ShardedCollector& want) {
  testutil::expect_identical_collectors(got, want);
}

TEST(TransportE2E, LoopbackMatchesInProcessBinForBin) {
  auto want = baseline_state();

  transport::CollectorAgentConfig agent_cfg;
  agent_cfg.collector.shard_count = kShards;
  transport::CollectorAgent agent(agent_cfg);
  transport::CollectorClientConfig client_cfg;
  client_cfg.coalesce_bytes = 16u << 10;  // several seals per run: exercises splitting
  transport::CollectorClient client(client_cfg, [&agent]() {
    auto [client_end, agent_end] = transport::make_loopback();
    agent.add_connection(std::move(agent_end));
    return std::move(client_end);
  });

  run_workload(client.make_sink(), [&] {
    client.pump();
    agent.poll();
  });
  for (int i = 0; i < 100 && !client.drain(8); ++i) agent.poll();
  agent.poll();

  EXPECT_EQ(client.stats().records_shed, 0u);
  EXPECT_EQ(agent.protocol_errors(), 0u);
  auto got = agent.collector().snapshot();
  expect_identical(got, want);
}

TEST(TransportE2E, UnixSocketMatchesInProcessBinForBin) {
  const std::string path =
      testing::TempDir() + "rlir_e2e_" + std::to_string(::getpid()) + ".sock";
  std::unique_ptr<transport::SocketListener> listener;
  try {
    listener = std::make_unique<transport::SocketListener>(
        transport::SocketAddress::unix_path(path));
  } catch (const std::system_error&) {
    GTEST_SKIP() << "sandbox forbids unix sockets";
  }
  const auto address = listener->address();

  auto want = baseline_state();

  // The deployment shape: the agent owns its thread (as it would own its
  // process), the workload streams over a real kernel socket.
  transport::CollectorAgentConfig agent_cfg;
  agent_cfg.collector.shard_count = kShards;
  transport::CollectorAgent agent(agent_cfg);
  agent.set_listener(std::move(listener));
  std::atomic<bool> stop{false};
  std::thread agent_thread(
      [&] { agent.run(stop, timebase::Duration::microseconds(100)); });

  {
    transport::CollectorClient client(transport::CollectorClientConfig{},
                                      [address]() { return transport::connect_to(address); });
    ASSERT_TRUE(client.connected());
    run_workload(client.make_sink(), [&client] { client.pump(); });
    ASSERT_TRUE(client.drain(100000)) << "socket never drained";

    // Conservation check over the wire before comparing state: the stats
    // query round-trips on the same connection, so its reply proves every
    // record frame before it was processed.
    transport::Query q;
    q.kind = transport::QueryKind::kStats;
    const auto reply = client.query(q);
    ASSERT_TRUE(reply.has_value()) << "stats query got no reply";
    EXPECT_EQ(reply->stats.records_ingested, want.records_ingested());
    EXPECT_EQ(reply->stats.protocol_errors, 0u);
  }

  stop.store(true);
  agent_thread.join();

  auto got = agent.collector().snapshot();
  expect_identical(got, want);
}

TEST(TransportE2E, RemoteQueriesMatchLocalAnswers) {
  // Loopback variant, exercising the query plane end to end: fleet sketch,
  // ranked top-k, and per-flow quantiles must equal the local collector's.
  auto want = baseline_state();

  transport::CollectorAgentConfig agent_cfg;
  agent_cfg.collector.shard_count = kShards;
  transport::CollectorAgent agent(agent_cfg);
  transport::CollectorClient client(transport::CollectorClientConfig{}, [&agent]() {
    auto [client_end, agent_end] = transport::make_loopback();
    agent.add_connection(std::move(agent_end));
    return std::move(client_end);
  });
  run_workload(client.make_sink(), [&] {
    client.pump();
    agent.poll();
  });
  for (int i = 0; i < 100 && !client.drain(8); ++i) agent.poll();

  const auto ask = [&](const transport::Query& q) {
    client.send_query(q);
    std::optional<transport::QueryReply> reply;
    for (int i = 0; i < 1000 && !reply.has_value(); ++i) {
      client.pump();
      agent.poll();
      reply = client.poll_reply();
    }
    return reply;
  };

  transport::Query fleet_q;
  fleet_q.kind = transport::QueryKind::kFleet;
  const auto fleet_reply = ask(fleet_q);
  ASSERT_TRUE(fleet_reply.has_value());
  EXPECT_EQ(fleet_reply->fleet.bins(), want.fleet().bins());
  EXPECT_EQ(fleet_reply->fleet.count(), want.fleet().count());

  transport::Query top_q;
  top_q.kind = transport::QueryKind::kTopK;
  top_q.k = 10;
  top_q.q = 0.99;
  const auto top_reply = ask(top_q);
  ASSERT_TRUE(top_reply.has_value());
  const auto want_top = want.top_k_ranked(10, 0.99);
  ASSERT_EQ(top_reply->top.size(), want_top.size());
  for (std::size_t i = 0; i < want_top.size(); ++i) {
    EXPECT_EQ(top_reply->top[i].second.key, want_top[i].second.key) << "rank " << i;
    EXPECT_EQ(top_reply->top[i].first, want_top[i].first) << "rank " << i;
  }

  // Per-flow quantile for the worst flow, plus the unseen-flow case.
  transport::Query flow_q;
  flow_q.kind = transport::QueryKind::kFlowQuantile;
  flow_q.key = want_top.front().second.key;
  flow_q.q = 0.99;
  const auto flow_reply = ask(flow_q);
  ASSERT_TRUE(flow_reply.has_value());
  ASSERT_TRUE(flow_reply->quantile.has_value());
  EXPECT_EQ(*flow_reply->quantile, *want.flow_quantile(flow_q.key, 0.99));

  flow_q.key.src_port = 1;  // nobody sends from port 1 in this workload
  flow_q.key.dst_port = 1;
  const auto miss_reply = ask(flow_q);
  ASSERT_TRUE(miss_reply.has_value());
  EXPECT_FALSE(miss_reply->quantile.has_value());
}

}  // namespace
}  // namespace rlir
