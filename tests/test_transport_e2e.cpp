// The transport tier's acceptance bar: exporter -> CollectorClient ->
// byte stream -> CollectorAgent -> ConcurrentShardedCollector must produce
// bin-for-bin identical collector state (and identical top-k / quantile
// answers) to the in-process FleetCollector path on the same FatTreeSim
// workload — under the loopback backend and over a real Unix socket.
//
// This is the property that makes shard-per-process deployment safe: moving
// collection across a process boundary changes WHERE merging happens, never
// WHAT the answers are.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "collect/epoch_scheduler.h"
#include "collect/fleet.h"
#include "rli/sender.h"
#include "rlir/demux.h"
#include "rlir/sender_agent.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"
#include "trace/synthetic.h"
#include "transport/agent.h"
#include "transport/client.h"
#include "transport/socket.h"

namespace rlir {
namespace {

using timebase::Duration;

constexpr int kK = 4;
constexpr std::size_t kShards = 4;

/// Runs the standard fleet workload (2 source ToRs -> 1 destination ToR,
/// core + destination vantages, scheduler-driven epochs). Batches go to the
/// fleet's in-process collector, or to `sink` when given; `between_steps`
/// lets the transport runs drive an agent inline with the simulation.
template <typename BetweenSteps>
collect::ShardedCollector run_workload(collect::EpochScheduler::BatchSink sink,
                                       BetweenSteps between_steps) {
  topo::FatTree topo(kK);
  topo::Crc32EcmpHasher hasher;
  timebase::PerfectClock clock;
  topo::FatTreeSim sim(&topo, topo::FatTreeSimConfig{}, &hasher);

  const auto src_a = topo.tor(0, 0);
  const auto src_b = topo.tor(0, 1);
  const auto dst = topo.tor(3, 0);
  const auto cores = topo.cores();
  sim.add_extra_delay(topo.core(1), Duration::microseconds(40));

  rli::SenderConfig s1_cfg;
  s1_cfg.id = 1;
  s1_cfg.static_gap = 50;
  rlir::TorSenderAgent s1(s1_cfg, &clock, cores);
  sim.add_agent(src_a, &s1);
  rli::SenderConfig s2_cfg = s1_cfg;
  s2_cfg.id = 2;
  rlir::TorSenderAgent s2(s2_cfg, &clock, cores);
  sim.add_agent(src_b, &s2);

  rlir::PrefixDemux up_demux;
  up_demux.add_origin(topo.host_prefix(src_a), 1);
  up_demux.add_origin(topo.host_prefix(src_b), 2);

  rlir::ReverseEcmpDemux down_demux(&topo, &hasher, dst);
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> core_senders;
  for (int c = 0; c < topo.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(10 + c);
    cfg.static_gap = 50;
    core_senders.push_back(std::make_unique<rlir::CoreSenderAgent>(
        cfg, &clock, std::vector<topo::NodeId>{dst}));
    sim.add_agent(topo.core(c), core_senders.back().get());
    down_demux.set_sender_at_core(c, cfg.id);
  }

  collect::FleetConfig fleet_cfg;
  fleet_cfg.collector.shard_count = kShards;
  collect::FleetCollector fleet(fleet_cfg, &clock);
  if (sink) fleet.set_batch_sink(std::move(sink));
  for (const auto& core : cores) fleet.deploy(sim, core, &up_demux);
  fleet.deploy(sim, dst, &down_demux);

  for (const auto src : {src_a, src_b}) {
    trace::SyntheticConfig cfg;
    cfg.duration = Duration::milliseconds(20);
    cfg.offered_bps = 1.0e9;
    cfg.seed = src == src_a ? 61 : 62;
    cfg.src_pool = topo.host_prefix(src);
    cfg.dst_pool = topo.host_prefix(dst);
    cfg.first_seq = cfg.seed * 100'000'000ULL;
    for (const auto& pkt : trace::SyntheticTraceGenerator(cfg).generate_all()) {
      sim.inject_from_host(pkt);
    }
  }

  collect::EpochSchedulerConfig sched_cfg;
  sched_cfg.period = Duration::milliseconds(5);
  sched_cfg.max_flow_idle = Duration::milliseconds(2);
  collect::EpochScheduler scheduler(sched_cfg);
  fleet.attach_scheduler(scheduler);

  const Duration step = Duration::milliseconds(1);
  timebase::TimePoint t = timebase::TimePoint::zero();
  while (sim.events_pending()) {
    t += step;
    sim.run_until(t);
    scheduler.advance_to(t);
    between_steps();
  }
  scheduler.advance_to(sim.now() + sched_cfg.period);
  between_steps();

  return fleet.collector();  // empty for the transport runs (sink diverted)
}

/// The in-process ground truth every transport run is compared against.
collect::ShardedCollector baseline_state() {
  return run_workload(collect::EpochScheduler::BatchSink{}, [] {});
}

/// Bin-for-bin equality of two collectors' entire observable state.
void expect_identical(collect::ShardedCollector& got, collect::ShardedCollector& want) {
  ASSERT_GT(want.records_ingested(), 0u);
  EXPECT_EQ(got.records_ingested(), want.records_ingested());
  EXPECT_EQ(got.estimates_ingested(), want.estimates_ingested());
  EXPECT_EQ(got.flow_count(), want.flow_count());
  EXPECT_EQ(got.epochs_seen(), want.epochs_seen());

  // Fleet-wide and per-vantage distributions, exact.
  EXPECT_EQ(got.fleet().bins(), want.fleet().bins());
  EXPECT_EQ(got.fleet().count(), want.fleet().count());
  ASSERT_EQ(got.links(), want.links());
  for (const auto link : want.links()) {
    const auto got_dist = got.link_distribution(link);
    const auto want_dist = want.link_distribution(link);
    ASSERT_TRUE(got_dist.has_value());
    EXPECT_EQ(got_dist->bins(), want_dist->bins()) << "link " << link;
  }

  // Every flow's merged sketch, bin for bin (top_k with k = all flows
  // enumerates them deterministically).
  const auto all = want.top_k_flows(want.flow_count(), 0.99);
  ASSERT_EQ(all.size(), want.flow_count());
  for (const auto& flow : all) {
    const auto* got_sketch = got.flow(flow.key);
    const auto* want_sketch = want.flow(flow.key);
    ASSERT_NE(got_sketch, nullptr) << flow.key.to_string();
    EXPECT_EQ(got_sketch->bins(), want_sketch->bins()) << flow.key.to_string();
    EXPECT_EQ(got_sketch->count(), want_sketch->count()) << flow.key.to_string();
    EXPECT_EQ(got_sketch->sum(), want_sketch->sum()) << flow.key.to_string();
  }

  // And the ranked answers a higher tier would consume.
  const auto got_top = got.top_k_flows(10, 0.99);
  const auto want_top = want.top_k_flows(10, 0.99);
  ASSERT_EQ(got_top.size(), want_top.size());
  for (std::size_t i = 0; i < want_top.size(); ++i) {
    EXPECT_EQ(got_top[i].key, want_top[i].key) << "rank " << i;
    EXPECT_EQ(got_top[i].p99_ns, want_top[i].p99_ns) << "rank " << i;
  }
}

TEST(TransportE2E, LoopbackMatchesInProcessBinForBin) {
  auto want = baseline_state();

  transport::CollectorAgentConfig agent_cfg;
  agent_cfg.collector.shard_count = kShards;
  transport::CollectorAgent agent(agent_cfg);
  transport::CollectorClientConfig client_cfg;
  client_cfg.coalesce_bytes = 16u << 10;  // several seals per run: exercises splitting
  transport::CollectorClient client(client_cfg, [&agent]() {
    auto [client_end, agent_end] = transport::make_loopback();
    agent.add_connection(std::move(agent_end));
    return std::move(client_end);
  });

  run_workload(client.make_sink(), [&] {
    client.pump();
    agent.poll();
  });
  for (int i = 0; i < 100 && !client.drain(8); ++i) agent.poll();
  agent.poll();

  EXPECT_EQ(client.stats().records_shed, 0u);
  EXPECT_EQ(agent.protocol_errors(), 0u);
  auto got = agent.collector().snapshot();
  expect_identical(got, want);
}

TEST(TransportE2E, UnixSocketMatchesInProcessBinForBin) {
  const std::string path =
      testing::TempDir() + "rlir_e2e_" + std::to_string(::getpid()) + ".sock";
  std::unique_ptr<transport::SocketListener> listener;
  try {
    listener = std::make_unique<transport::SocketListener>(
        transport::SocketAddress::unix_path(path));
  } catch (const std::system_error&) {
    GTEST_SKIP() << "sandbox forbids unix sockets";
  }
  const auto address = listener->address();

  auto want = baseline_state();

  // The deployment shape: the agent owns its thread (as it would own its
  // process), the workload streams over a real kernel socket.
  transport::CollectorAgentConfig agent_cfg;
  agent_cfg.collector.shard_count = kShards;
  transport::CollectorAgent agent(agent_cfg);
  agent.set_listener(std::move(listener));
  std::atomic<bool> stop{false};
  std::thread agent_thread(
      [&] { agent.run(stop, timebase::Duration::microseconds(100)); });

  {
    transport::CollectorClient client(transport::CollectorClientConfig{},
                                      [address]() { return transport::connect_to(address); });
    ASSERT_TRUE(client.connected());
    run_workload(client.make_sink(), [&client] { client.pump(); });
    ASSERT_TRUE(client.drain(100000)) << "socket never drained";

    // Conservation check over the wire before comparing state: the stats
    // query round-trips on the same connection, so its reply proves every
    // record frame before it was processed.
    transport::Query q;
    q.kind = transport::QueryKind::kStats;
    const auto reply = client.query(q);
    ASSERT_TRUE(reply.has_value()) << "stats query got no reply";
    EXPECT_EQ(reply->stats.records_ingested, want.records_ingested());
    EXPECT_EQ(reply->stats.protocol_errors, 0u);
  }

  stop.store(true);
  agent_thread.join();

  auto got = agent.collector().snapshot();
  expect_identical(got, want);
}

TEST(TransportE2E, RemoteQueriesMatchLocalAnswers) {
  // Loopback variant, exercising the query plane end to end: fleet sketch,
  // ranked top-k, and per-flow quantiles must equal the local collector's.
  auto want = baseline_state();

  transport::CollectorAgentConfig agent_cfg;
  agent_cfg.collector.shard_count = kShards;
  transport::CollectorAgent agent(agent_cfg);
  transport::CollectorClient client(transport::CollectorClientConfig{}, [&agent]() {
    auto [client_end, agent_end] = transport::make_loopback();
    agent.add_connection(std::move(agent_end));
    return std::move(client_end);
  });
  run_workload(client.make_sink(), [&] {
    client.pump();
    agent.poll();
  });
  for (int i = 0; i < 100 && !client.drain(8); ++i) agent.poll();

  const auto ask = [&](const transport::Query& q) {
    client.send_query(q);
    std::optional<transport::QueryReply> reply;
    for (int i = 0; i < 1000 && !reply.has_value(); ++i) {
      client.pump();
      agent.poll();
      reply = client.poll_reply();
    }
    return reply;
  };

  transport::Query fleet_q;
  fleet_q.kind = transport::QueryKind::kFleet;
  const auto fleet_reply = ask(fleet_q);
  ASSERT_TRUE(fleet_reply.has_value());
  EXPECT_EQ(fleet_reply->fleet.bins(), want.fleet().bins());
  EXPECT_EQ(fleet_reply->fleet.count(), want.fleet().count());

  transport::Query top_q;
  top_q.kind = transport::QueryKind::kTopK;
  top_q.k = 10;
  top_q.q = 0.99;
  const auto top_reply = ask(top_q);
  ASSERT_TRUE(top_reply.has_value());
  const auto want_top = want.top_k_ranked(10, 0.99);
  ASSERT_EQ(top_reply->top.size(), want_top.size());
  for (std::size_t i = 0; i < want_top.size(); ++i) {
    EXPECT_EQ(top_reply->top[i].second.key, want_top[i].second.key) << "rank " << i;
    EXPECT_EQ(top_reply->top[i].first, want_top[i].first) << "rank " << i;
  }

  // Per-flow quantile for the worst flow, plus the unseen-flow case.
  transport::Query flow_q;
  flow_q.kind = transport::QueryKind::kFlowQuantile;
  flow_q.key = want_top.front().second.key;
  flow_q.q = 0.99;
  const auto flow_reply = ask(flow_q);
  ASSERT_TRUE(flow_reply.has_value());
  ASSERT_TRUE(flow_reply->quantile.has_value());
  EXPECT_EQ(*flow_reply->quantile, *want.flow_quantile(flow_q.key, 0.99));

  flow_q.key.src_port = 1;  // nobody sends from port 1 in this workload
  flow_q.key.dst_port = 1;
  const auto miss_reply = ask(flow_q);
  ASSERT_TRUE(miss_reply.has_value());
  EXPECT_FALSE(miss_reply->quantile.has_value());
}

}  // namespace
}  // namespace rlir
