// Unit tests: baseline/lda.h — the Lossy Difference Aggregator.
#include <gtest/gtest.h>

#include "baseline/lda.h"
#include "common/rng.h"
#include "timebase/clock.h"

namespace rlir::baseline {
namespace {

using timebase::Duration;
using timebase::TimePoint;

net::Packet packet_n(std::uint64_t seq) {
  net::Packet p;
  p.seq = seq;
  p.key.src = net::Ipv4Address(10, 0, 0, 1);
  p.key.src_port = static_cast<std::uint16_t>(seq * 7);
  p.kind = net::PacketKind::kRegular;
  return p;
}

LdaConfig single_bank() {
  LdaConfig cfg;
  cfg.banks = 1;
  cfg.buckets_per_bank = 256;
  return cfg;
}

TEST(LdaSketch, RejectsBadConfig) {
  LdaConfig cfg;
  cfg.banks = 0;
  EXPECT_THROW(LdaSketch{cfg}, std::invalid_argument);
  cfg = LdaConfig{};
  cfg.buckets_per_bank = 0;
  EXPECT_THROW(LdaSketch{cfg}, std::invalid_argument);
  cfg = LdaConfig{};
  cfg.sample_base = 0.5;
  EXPECT_THROW(LdaSketch{cfg}, std::invalid_argument);
}

TEST(LdaSketch, StateBytesIsSmall) {
  const LdaSketch sketch(LdaConfig{});
  // 4 banks x 1024 buckets x 16B = 64KB: the paper's "tiny state" point.
  EXPECT_EQ(sketch.state_bytes(), 4u * 1024u * 16u);
}

TEST(LdaEstimate, ExactUnderZeroLossConstantDelay) {
  LdaSketch sender(single_bank());
  LdaSketch receiver(single_bank());
  constexpr std::int64_t kDelay = 12'345;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const auto p = packet_n(i);
    sender.record(p, TimePoint(static_cast<std::int64_t>(i * 1000)));
    receiver.record(p, TimePoint(static_cast<std::int64_t>(i * 1000) + kDelay));
  }
  const auto est = LdaEstimate::compute(sender, receiver);
  ASSERT_TRUE(est);
  EXPECT_DOUBLE_EQ(est->mean_delay_ns, static_cast<double>(kDelay));
  EXPECT_EQ(est->usable_packets, 10'000u);
  EXPECT_EQ(est->unusable_buckets, 0u);
  EXPECT_DOUBLE_EQ(est->coverage, 1.0);
}

TEST(LdaEstimate, AveragesVariableDelays) {
  LdaSketch sender(single_bank());
  LdaSketch receiver(single_bank());
  common::Xoshiro256 rng(5);
  double total_delay = 0.0;
  constexpr int kN = 20'000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto p = packet_n(i);
    const auto t = static_cast<std::int64_t>(i * 1000);
    const auto delay = static_cast<std::int64_t>(rng.uniform_u64(10'000));
    total_delay += static_cast<double>(delay);
    sender.record(p, TimePoint(t));
    receiver.record(p, TimePoint(t + delay));
  }
  const auto est = LdaEstimate::compute(sender, receiver);
  ASSERT_TRUE(est);
  EXPECT_NEAR(est->mean_delay_ns, total_delay / kN, 1e-6);
}

TEST(LdaEstimate, LossInvalidatesOnlyTouchedBuckets) {
  LdaSketch sender(single_bank());
  LdaSketch receiver(single_bank());
  constexpr int kN = 10'000;
  int lost = 0;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto p = packet_n(i);
    sender.record(p, TimePoint(0));
    if (i % 100 == 7) {  // 1% loss
      ++lost;
      continue;
    }
    receiver.record(p, TimePoint(1000));
  }
  const auto est = LdaEstimate::compute(sender, receiver);
  ASSERT_TRUE(est);
  // Usable buckets still give the exact answer.
  EXPECT_DOUBLE_EQ(est->mean_delay_ns, 1000.0);
  EXPECT_GT(est->unusable_buckets, 0u);
  // Lost packets plus collateral damage (bucket-mates) reduce coverage.
  EXPECT_LT(est->coverage, 1.0);
  EXPECT_GT(est->coverage, 0.3);
  EXPECT_LE(est->usable_packets, static_cast<std::uint64_t>(kN - lost));
}

TEST(LdaEstimate, MultiBankSurvivesHeavyLoss) {
  // With 30% loss, bank 0 (sample-all) is mostly unusable, but the sampled
  // banks keep enough clean buckets to estimate.
  LdaConfig cfg;
  cfg.banks = 4;
  cfg.buckets_per_bank = 512;
  LdaSketch sender(cfg);
  LdaSketch receiver(cfg);
  common::Xoshiro256 rng(9);
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    const auto p = packet_n(i);
    sender.record(p, TimePoint(0));
    if (rng.bernoulli(0.30)) continue;
    receiver.record(p, TimePoint(2'000));
  }
  const auto est = LdaEstimate::compute(sender, receiver);
  ASSERT_TRUE(est);
  EXPECT_DOUBLE_EQ(est->mean_delay_ns, 2000.0);
  EXPECT_GT(est->usable_packets, 100u);
}

TEST(LdaEstimate, MismatchedConfigsThrow) {
  LdaConfig a = single_bank();
  LdaConfig b = single_bank();
  b.buckets_per_bank = 128;
  LdaSketch sender(a);
  LdaSketch receiver(b);
  EXPECT_THROW((void)LdaEstimate::compute(sender, receiver), std::invalid_argument);
}

TEST(LdaEstimate, NoUsableBucketsReturnsNullopt) {
  LdaSketch sender(single_bank());
  LdaSketch receiver(single_bank());
  // Everything lost: all touched buckets mismatch.
  for (std::uint64_t i = 0; i < 100; ++i) sender.record(packet_n(i), TimePoint(0));
  const auto est = LdaEstimate::compute(sender, receiver);
  EXPECT_FALSE(est);
}

TEST(LdaTap, FiltersNonRegularAndUsesClock) {
  timebase::FixedOffsetClock clock(Duration::microseconds(1));
  LdaTap tap(single_bank(), &clock);
  tap.on_packet(packet_n(1), TimePoint(0));
  net::Packet ref = packet_n(2);
  ref.kind = net::PacketKind::kReference;
  tap.on_packet(ref, TimePoint(0));
  EXPECT_EQ(tap.sketch().packets_recorded(), 1u);
  EXPECT_THROW(LdaTap(single_bank(), nullptr), std::invalid_argument);
}

TEST(LdaTap, EndToEndWithClockOffsets) {
  // Sender clock +2us, receiver clock -1us: measured delay = true - 3us.
  timebase::FixedOffsetClock send_clock(Duration::microseconds(2));
  timebase::FixedOffsetClock recv_clock(Duration::microseconds(-1));
  LdaTap sender(single_bank(), &send_clock);
  LdaTap receiver(single_bank(), &recv_clock);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto p = packet_n(i);
    sender.on_packet(p, TimePoint(static_cast<std::int64_t>(i * 100)));
    receiver.on_packet(p, TimePoint(static_cast<std::int64_t>(i * 100) + 10'000));
  }
  const auto est = LdaEstimate::compute(sender.sketch(), receiver.sketch());
  ASSERT_TRUE(est);
  EXPECT_DOUBLE_EQ(est->mean_delay_ns, 7'000.0);  // 10us - 3us sync error
}

// Sweep: sampling banks keep a decreasing share of packets.
class LdaSamplingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LdaSamplingSweep, BankSampleRatesDecrease) {
  LdaConfig cfg;
  cfg.banks = GetParam();
  cfg.buckets_per_bank = 1u << 14;  // wide: few collisions
  cfg.sample_base = 4.0;
  LdaSketch sketch(cfg);
  constexpr std::uint64_t kN = 50'000;
  for (std::uint64_t i = 0; i < kN; ++i) sketch.record(packet_n(i), TimePoint(0));

  double prev_fill = 2.0 * kN;
  for (std::size_t bank = 0; bank < cfg.banks; ++bank) {
    std::uint64_t in_bank = 0;
    for (std::size_t b = 0; b < cfg.buckets_per_bank; ++b) {
      in_bank += sketch.bucket(bank, b).count;
    }
    const double expected = static_cast<double>(kN) * std::pow(4.0, -static_cast<double>(bank));
    EXPECT_NEAR(static_cast<double>(in_bank), expected, expected * 0.15 + 20.0)
        << "bank " << bank;
    EXPECT_LT(static_cast<double>(in_bank), prev_fill);
    prev_fill = static_cast<double>(in_bank);
  }
}

INSTANTIATE_TEST_SUITE_P(Banks, LdaSamplingSweep, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace rlir::baseline
