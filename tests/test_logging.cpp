// Unit tests: common/logging.h — leveled logging.
#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"

namespace rlir::common {
namespace {

// Captures stderr for the duration of a scope.
class CaptureStderr {
 public:
  CaptureStderr() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CaptureStderr() { std::cerr.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_threshold(); }
  void TearDown() override { log_threshold() = saved_; }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, ThresholdFiltersLowerLevels) {
  log_threshold() = LogLevel::kWarn;
  CaptureStderr capture;
  log_debug("quiet");
  log_info("quiet");
  log_warn("loud");
  EXPECT_EQ(capture.text().find("quiet"), std::string::npos);
  EXPECT_NE(capture.text().find("loud"), std::string::npos);
}

TEST_F(LoggingTest, MessagesCarryLevelTag) {
  log_threshold() = LogLevel::kDebug;
  CaptureStderr capture;
  log_error("boom");
  EXPECT_NE(capture.text().find("[ERROR] boom"), std::string::npos);
}

TEST_F(LoggingTest, VariadicArgumentsConcatenate) {
  log_threshold() = LogLevel::kInfo;
  CaptureStderr capture;
  log_info("x=", 42, " y=", 1.5);
  EXPECT_NE(capture.text().find("x=42 y=1.5"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  log_threshold() = LogLevel::kOff;
  CaptureStderr capture;
  log_error("nothing");
  EXPECT_TRUE(capture.text().empty());
}

}  // namespace
}  // namespace rlir::common
