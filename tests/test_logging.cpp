// Unit tests: common/logging.h — leveled logging with a thread-safe
// (atomic) threshold.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace rlir::common {
namespace {

// Captures stderr for the duration of a scope.
class CaptureStderr {
 public:
  CaptureStderr() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CaptureStderr() { std::cerr.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_threshold(); }
  void TearDown() override { set_log_threshold(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, ThresholdFiltersLowerLevels) {
  set_log_threshold(LogLevel::kWarn);
  CaptureStderr capture;
  log_debug("quiet");
  log_info("quiet");
  log_warn("loud");
  EXPECT_EQ(capture.text().find("quiet"), std::string::npos);
  EXPECT_NE(capture.text().find("loud"), std::string::npos);
}

TEST_F(LoggingTest, MessagesCarryLevelTag) {
  set_log_threshold(LogLevel::kDebug);
  CaptureStderr capture;
  log_error("boom");
  EXPECT_NE(capture.text().find("[ERROR] boom"), std::string::npos);
}

TEST_F(LoggingTest, VariadicArgumentsConcatenate) {
  set_log_threshold(LogLevel::kInfo);
  CaptureStderr capture;
  log_info("x=", 42, " y=", 1.5);
  EXPECT_NE(capture.text().find("x=42 y=1.5"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_threshold(LogLevel::kOff);
  CaptureStderr capture;
  log_error("nothing");
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LoggingTest, ThresholdReadbackRoundTrips) {
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(LogLevel::kDebug);
  EXPECT_EQ(log_threshold(), LogLevel::kDebug);
}

// Stateless discarding streambuf: safe to write from many threads at once
// (an ostringstream capture would itself be a data race).
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int ch) override { return ch; }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

TEST_F(LoggingTest, ConcurrentThresholdFlipsAndLogsAreRaceFree) {
  // Under TSan this is the regression test for the atomic threshold: writer
  // threads flip the level while readers log. (No output assertions — the
  // interleaving is arbitrary; the property is the absence of data races.)
  NullBuffer null_buffer;
  std::streambuf* old = std::cerr.rdbuf(&null_buffer);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&go, w] {
      while (!go.load()) {}
      for (int i = 0; i < 500; ++i) {
        set_log_threshold(i % 2 == 0 ? LogLevel::kWarn : LogLevel::kOff);
        (void)w;
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&go, r] {
      while (!go.load()) {}
      for (int i = 0; i < 500; ++i) log_warn("reader ", r, " i=", i);
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();
  std::cerr.rdbuf(old);
}

}  // namespace
}  // namespace rlir::common
