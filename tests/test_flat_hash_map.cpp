// FlatHashMap: the std::unordered_map subset the collect/ tier depends on,
// checked directly and against an unordered_map oracle under a randomized
// insert/lookup/erase workload (growth, tombstone accumulation, and the
// swap-and-pop erase fixup all get exercised).
#include "common/flat_hash_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace rlir::common {
namespace {

TEST(FlatHashMap, BasicInsertFindErase) {
  FlatHashMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());

  auto [it, inserted] = m.try_emplace(1, "one");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, "one");
  auto [it2, inserted2] = m.try_emplace(1, "uno");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, "one");  // try_emplace does not overwrite

  m[2] = "two";
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(2));
  EXPECT_EQ(m.at(2), "two");
  EXPECT_THROW((void)m.at(3), std::out_of_range);

  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_EQ(m.erase(1), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_TRUE(m.contains(2));
}

TEST(FlatHashMap, IteratorEraseRevisitsSlotAndVisitsAllOnce) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 100; ++i) m[i] = i;
  // Erase the evens with the `it = m.erase(it)` loop; every entry must be
  // considered exactly once despite swap-and-pop reordering.
  std::vector<int> visited;
  for (auto it = m.begin(); it != m.end();) {
    visited.push_back(it->first);
    if (it->first % 2 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(visited.size(), 100u);
  std::sort(visited.begin(), visited.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(visited[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(m.size(), 50u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.contains(i), i % 2 != 0) << i;
}

TEST(FlatHashMap, GrowthKeepsEverything) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 10000; ++i) m[i * 2654435761u] = i;
  EXPECT_EQ(m.size(), 10000u);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const auto it = m.find(i * 2654435761u);
    ASSERT_NE(it, m.end()) << i;
    EXPECT_EQ(it->second, i);
  }
}

TEST(FlatHashMap, TombstoneHeavyWorkloadStaysCorrect) {
  // Insert/erase churn at a fixed population: tombstones accumulate and must
  // be purged by rehash without losing live entries or resurrecting dead.
  FlatHashMap<int, int> m;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 64; ++i) m[round * 64 + i] = round;
    for (int i = 0; i < 64; ++i) EXPECT_EQ(m.erase(round * 64 + i), 1u);
  }
  EXPECT_TRUE(m.empty());
  m[42] = 1;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(42), 1);
}

TEST(FlatHashMap, ClearAndReserve) {
  FlatHashMap<int, int> m;
  m.reserve(1000);
  for (int i = 0; i < 1000; ++i) m[i] = i;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), m.end());
  m[5] = 50;
  EXPECT_EQ(m.at(5), 50);
}

TEST(FlatHashMap, RandomizedOracleAgainstUnorderedMap) {
  FlatHashMap<std::uint32_t, std::uint64_t> flat;
  std::unordered_map<std::uint32_t, std::uint64_t> oracle;
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::uint32_t> keys(0, 2000);  // force collisions/reuse
  for (int op = 0; op < 200000; ++op) {
    const std::uint32_t key = keys(rng);
    switch (rng() % 4) {
      case 0:
      case 1: {  // upsert
        const std::uint64_t value = rng();
        flat[key] = value;
        oracle[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(flat.erase(key), oracle.erase(key));
        break;
      }
      default: {  // lookup
        const auto it = flat.find(key);
        const auto oit = oracle.find(key);
        ASSERT_EQ(it == flat.end(), oit == oracle.end()) << "key " << key;
        if (oit != oracle.end()) {
          EXPECT_EQ(it->second, oit->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), oracle.size());
  }
  // Full-content equivalence at the end.
  for (const auto& [key, value] : flat) {
    const auto oit = oracle.find(key);
    ASSERT_NE(oit, oracle.end());
    EXPECT_EQ(value, oit->second);
  }
}

}  // namespace
}  // namespace rlir::common
