// Unit tests: rli/receiver.h — interpolation buffer and estimators.
#include <gtest/gtest.h>

#include "rli/receiver.h"
#include "timebase/clock.h"

namespace rlir::rli {
namespace {

using timebase::Duration;
using timebase::TimePoint;

// A reference packet that arrives at `arrival_ns` having experienced
// `delay_ns` (stamp = arrival - delay, perfect clocks).
net::Packet reference(std::int64_t arrival_ns, std::int64_t delay_ns, std::uint64_t seq,
                      net::SenderId id = 1) {
  auto ref = net::make_reference_packet(id, TimePoint(arrival_ns - delay_ns),
                                        TimePoint(arrival_ns - delay_ns), seq);
  ref.ts = TimePoint(arrival_ns);
  return ref;
}

net::Packet regular(std::int64_t arrival_ns, std::uint16_t src_port = 7777) {
  net::Packet p;
  p.ts = TimePoint(arrival_ns);
  p.injected_at = TimePoint(arrival_ns - 1000);
  p.key.src = net::Ipv4Address(10, 0, 0, 1);
  p.key.dst = net::Ipv4Address(10, 1, 0, 1);
  p.key.src_port = src_port;
  p.kind = net::PacketKind::kRegular;
  return p;
}

TEST(RliReceiver, RejectsNullClock) {
  EXPECT_THROW(RliReceiver(ReceiverConfig{}, nullptr), std::invalid_argument);
}

TEST(RliReceiver, LinearInterpolationIsExactOnALine) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);

  // Anchors: delay 1000 at t=0, delay 3000 at t=1000.
  receiver.on_packet(reference(0, 1000, 0), TimePoint(0));
  std::vector<double> estimates;
  receiver.set_estimate_sink(
      [&](const RliReceiver::PacketEstimate& e) { estimates.push_back(e.estimate_ns); });

  receiver.on_packet(regular(250), TimePoint(250));
  receiver.on_packet(regular(500), TimePoint(500));
  receiver.on_packet(regular(750), TimePoint(750));
  receiver.on_packet(reference(1000, 3000, 1), TimePoint(1000));

  ASSERT_EQ(estimates.size(), 3u);
  EXPECT_DOUBLE_EQ(estimates[0], 1500.0);
  EXPECT_DOUBLE_EQ(estimates[1], 2000.0);
  EXPECT_DOUBLE_EQ(estimates[2], 2500.0);
  EXPECT_EQ(receiver.packets_estimated(), 3u);
  EXPECT_EQ(receiver.references_seen(), 2u);
}

TEST(RliReceiver, MultipleSinksAllObserveEveryEstimate) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  receiver.on_packet(reference(0, 1000, 0), TimePoint(0));

  std::vector<double> first, second;
  receiver.add_estimate_sink(
      [&](const RliReceiver::PacketEstimate& e) { first.push_back(e.estimate_ns); });
  receiver.add_estimate_sink(
      [&](const RliReceiver::PacketEstimate& e) { second.push_back(e.estimate_ns); });

  receiver.on_packet(regular(500), TimePoint(500));
  receiver.on_packet(reference(1000, 1000, 1), TimePoint(1000));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first, second);
}

TEST(RliReceiver, SetEstimateSinkReplacesAllSinks) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  receiver.on_packet(reference(0, 1000, 0), TimePoint(0));

  std::uint64_t dropped = 0, kept = 0;
  receiver.add_estimate_sink([&](const RliReceiver::PacketEstimate&) { ++dropped; });
  receiver.set_estimate_sink([&](const RliReceiver::PacketEstimate&) { ++kept; });

  receiver.on_packet(regular(500), TimePoint(500));
  receiver.on_packet(reference(1000, 1000, 1), TimePoint(1000));
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(kept, 1u);
}

TEST(RliReceiver, PacketsBeforeFirstReferenceAreUnanchored) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  receiver.on_packet(regular(10), TimePoint(10));
  receiver.on_packet(regular(20), TimePoint(20));
  receiver.on_packet(reference(100, 500, 0), TimePoint(100));
  receiver.on_packet(regular(150), TimePoint(150));
  receiver.on_packet(reference(200, 500, 1), TimePoint(200));

  EXPECT_EQ(receiver.packets_unanchored(), 2u);
  EXPECT_EQ(receiver.packets_estimated(), 1u);
}

TEST(RliReceiver, PerFlowAccumulation) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  receiver.on_packet(reference(0, 1000, 0), TimePoint(0));
  receiver.on_packet(regular(100, 1), TimePoint(100));
  receiver.on_packet(regular(200, 1), TimePoint(200));
  receiver.on_packet(regular(300, 2), TimePoint(300));
  receiver.on_packet(reference(1000, 1000, 1), TimePoint(1000));

  ASSERT_EQ(receiver.per_flow().size(), 2u);
  for (const auto& [key, stats] : receiver.per_flow()) {
    // Flat delay curve: every estimate is exactly 1000.
    EXPECT_DOUBLE_EQ(stats.mean(), 1000.0);
    EXPECT_EQ(stats.count(), key.src_port == 1 ? 2u : 1u);
  }
}

TEST(RliReceiver, EstimatorVariants) {
  const struct {
    EstimatorKind kind;
    double expected_at_250;
  } cases[] = {
      {EstimatorKind::kLinear, 1500.0},
      {EstimatorKind::kLeft, 1000.0},
      {EstimatorKind::kRight, 3000.0},
      {EstimatorKind::kNearest, 1000.0},  // 250 is nearer to 0 than to 1000
  };
  for (const auto& c : cases) {
    timebase::PerfectClock clock;
    ReceiverConfig cfg;
    cfg.estimator = c.kind;
    RliReceiver receiver(cfg, &clock);
    double estimate = -1.0;
    receiver.set_estimate_sink(
        [&](const RliReceiver::PacketEstimate& e) { estimate = e.estimate_ns; });
    receiver.on_packet(reference(0, 1000, 0), TimePoint(0));
    receiver.on_packet(regular(250), TimePoint(250));
    receiver.on_packet(reference(1000, 3000, 1), TimePoint(1000));
    EXPECT_DOUBLE_EQ(estimate, c.expected_at_250) << to_string(c.kind);
  }
}

TEST(RliReceiver, NearestPicksRightWhenCloser) {
  timebase::PerfectClock clock;
  ReceiverConfig cfg;
  cfg.estimator = EstimatorKind::kNearest;
  RliReceiver receiver(cfg, &clock);
  double estimate = -1.0;
  receiver.set_estimate_sink(
      [&](const RliReceiver::PacketEstimate& e) { estimate = e.estimate_ns; });
  receiver.on_packet(reference(0, 1000, 0), TimePoint(0));
  receiver.on_packet(regular(900), TimePoint(900));
  receiver.on_packet(reference(1000, 3000, 1), TimePoint(1000));
  EXPECT_DOUBLE_EQ(estimate, 3000.0);
}

TEST(RliReceiver, MaxIntervalGuardSkipsLongGaps) {
  timebase::PerfectClock clock;
  ReceiverConfig cfg;
  cfg.max_interval = Duration::microseconds(1);
  RliReceiver receiver(cfg, &clock);
  receiver.on_packet(reference(0, 500, 0), TimePoint(0));
  receiver.on_packet(regular(100), TimePoint(100));
  receiver.on_packet(regular(200), TimePoint(200));
  // Next reference arrives 5us later: interval exceeds the guard.
  receiver.on_packet(reference(5'000, 500, 1), TimePoint(5'000));
  EXPECT_EQ(receiver.packets_estimated(), 0u);
  EXPECT_EQ(receiver.packets_in_skipped_intervals(), 2u);

  // The late reference still restarts anchoring.
  receiver.on_packet(regular(5'100), TimePoint(5'100));
  receiver.on_packet(reference(5'500, 500, 2), TimePoint(5'500));
  EXPECT_EQ(receiver.packets_estimated(), 1u);
}

TEST(RliReceiver, FilterExcludesPackets) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  receiver.set_filter([](const net::Packet& p) { return p.key.src_port == 1; });
  receiver.on_packet(reference(0, 500, 0), TimePoint(0));
  receiver.on_packet(regular(100, 1), TimePoint(100));
  receiver.on_packet(regular(200, 2), TimePoint(200));  // filtered out
  receiver.on_packet(reference(1000, 500, 1), TimePoint(1000));
  EXPECT_EQ(receiver.packets_estimated(), 1u);
}

TEST(RliReceiver, CrossPacketsIgnoredByDefault) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  receiver.on_packet(reference(0, 500, 0), TimePoint(0));
  net::Packet cross = regular(100);
  cross.kind = net::PacketKind::kCross;
  receiver.on_packet(cross, TimePoint(100));
  receiver.on_packet(reference(1000, 500, 1), TimePoint(1000));
  EXPECT_EQ(receiver.packets_estimated(), 0u);
}

TEST(RliReceiver, ClockOffsetShiftsReferenceDelays) {
  // Receiver clock runs 2us ahead: measured probe delay = true + 2us.
  timebase::FixedOffsetClock clock(Duration::microseconds(2));
  RliReceiver receiver(ReceiverConfig{}, &clock);
  double estimate = -1.0;
  receiver.set_estimate_sink(
      [&](const RliReceiver::PacketEstimate& e) { estimate = e.estimate_ns; });
  receiver.on_packet(reference(0, 1000, 0), TimePoint(0));
  receiver.on_packet(regular(500), TimePoint(500));
  receiver.on_packet(reference(1000, 1000, 1), TimePoint(1000));
  EXPECT_DOUBLE_EQ(estimate, 3000.0);  // 1000 true + 2000 offset
}

TEST(RliReceiver, CoincidentReferencesDoNotDivideByZero) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  receiver.on_packet(reference(100, 500, 0), TimePoint(100));
  receiver.on_packet(reference(100, 900, 1), TimePoint(100));
  // Buffer was empty; just ensure no crash and anchors advanced.
  receiver.on_packet(regular(150), TimePoint(150));
  receiver.on_packet(reference(200, 900, 2), TimePoint(200));
  EXPECT_EQ(receiver.packets_estimated(), 1u);
}

// Property: the linear estimate always lies between the two anchor delays.
class InterpolationBracketSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterpolationBracketSweep, EstimateWithinAnchorRange) {
  common::Xoshiro256 rng(GetParam());
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t checked = 0;
  receiver.set_estimate_sink([&](const RliReceiver::PacketEstimate& e) {
    EXPECT_GE(e.estimate_ns, lo - 1e-9);
    EXPECT_LE(e.estimate_ns, hi + 1e-9);
    ++checked;
  });

  // Integer delays: the helper stores stamps at ns resolution, so fractional
  // delays would put the true anchor a fraction below lo.
  std::int64_t t = 0;
  double prev_delay = std::floor(rng.uniform(100.0, 10'000.0));
  receiver.on_packet(reference(t, static_cast<std::int64_t>(prev_delay), 0), TimePoint(t));
  for (std::uint64_t i = 1; i < 50; ++i) {
    const int regulars = static_cast<int>(rng.uniform_u64(20));
    const std::int64_t interval = 1000 + static_cast<std::int64_t>(rng.uniform_u64(9000));
    for (int j = 0; j < regulars; ++j) {
      const std::int64_t at = t + 1 + static_cast<std::int64_t>(
                                          rng.uniform_u64(static_cast<std::uint64_t>(interval - 1)));
      receiver.on_packet(regular(at), TimePoint(at));
    }
    t += interval;
    const double delay = std::floor(rng.uniform(100.0, 10'000.0));
    lo = std::min(prev_delay, delay);
    hi = std::max(prev_delay, delay);
    // NOTE: buffered packets may arrive out of order within the interval;
    // sort is not required by the receiver, which only reads timestamps.
    receiver.on_packet(reference(t, static_cast<std::int64_t>(delay), i), TimePoint(t));
    prev_delay = delay;
  }
  EXPECT_GT(checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpolationBracketSweep, ::testing::Values(1, 2, 3, 4));

TEST(RliReceiver, FlushEstimatesBufferedPacketsWithLeftAnchor) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  std::vector<double> estimates;
  receiver.set_estimate_sink(
      [&](const RliReceiver::PacketEstimate& e) { estimates.push_back(e.estimate_ns); });

  // Left anchor with delay 2000; two regulars buffered, no closing reference.
  receiver.on_packet(reference(0, 2000, 0), TimePoint(0));
  receiver.on_packet(regular(300), TimePoint(300));
  receiver.on_packet(regular(600), TimePoint(600));
  EXPECT_EQ(receiver.packets_estimated(), 0u);

  // The epoch-boundary flush ships them with the left anchor's delay.
  EXPECT_EQ(receiver.flush(), 2u);
  ASSERT_EQ(estimates.size(), 2u);
  EXPECT_DOUBLE_EQ(estimates[0], 2000.0);
  EXPECT_DOUBLE_EQ(estimates[1], 2000.0);
  EXPECT_EQ(receiver.packets_estimated(), 2u);
  EXPECT_EQ(receiver.packets_flushed(), 2u);

  // Empty buffer: flush is a no-op.
  EXPECT_EQ(receiver.flush(), 0u);
  EXPECT_EQ(receiver.packets_flushed(), 2u);

  // The anchor survives the flush: later packets interpolate normally.
  receiver.on_packet(regular(800), TimePoint(800));
  receiver.on_packet(reference(1000, 4000, 1), TimePoint(1000));
  ASSERT_EQ(estimates.size(), 3u);
  EXPECT_DOUBLE_EQ(estimates[2], 2000.0 + 0.8 * 2000.0);
  EXPECT_EQ(receiver.packets_estimated(), 3u);
}

TEST(RliReceiver, FlushBeforeAnyReferenceIsANoOp) {
  timebase::PerfectClock clock;
  RliReceiver receiver(ReceiverConfig{}, &clock);
  receiver.on_packet(regular(100), TimePoint(100));  // unanchored, not buffered
  EXPECT_EQ(receiver.flush(), 0u);
  EXPECT_EQ(receiver.packets_flushed(), 0u);
  EXPECT_EQ(receiver.packets_unanchored(), 1u);
}

}  // namespace
}  // namespace rlir::rli
