// Unit tests: timebase/time.h — Duration and TimePoint arithmetic.
#include <gtest/gtest.h>

#include "timebase/time.h"

namespace rlir::timebase {
namespace {

TEST(Duration, ConstructionAndAccessors) {
  EXPECT_EQ(Duration().ns(), 0);
  EXPECT_EQ(Duration::nanoseconds(7).ns(), 7);
  EXPECT_EQ(Duration::microseconds(3).ns(), 3'000);
  EXPECT_EQ(Duration::milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::zero().ns(), 0);
}

TEST(Duration, FloatingAccessors) {
  const Duration d = Duration::microseconds(1500);
  EXPECT_DOUBLE_EQ(d.us(), 1500.0);
  EXPECT_DOUBLE_EQ(d.ms(), 1.5);
  EXPECT_DOUBLE_EQ(d.sec(), 0.0015);
}

TEST(Duration, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::from_seconds(0.5e-9).ns(), 1);   // rounds up from 0.5ns
  EXPECT_EQ(Duration::from_seconds(0.4e-9).ns(), 0);
  EXPECT_EQ(Duration::from_seconds(-1.5).ns(), -1'500'000'000);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::microseconds(10);
  const Duration b = Duration::microseconds(4);
  EXPECT_EQ((a + b).ns(), 14'000);
  EXPECT_EQ((a - b).ns(), 6'000);
  EXPECT_EQ((a * 3).ns(), 30'000);
  EXPECT_EQ((3 * a).ns(), 30'000);
  EXPECT_EQ((-a).ns(), -10'000);
  EXPECT_EQ(a / b, 2);  // integer division truncates
  EXPECT_EQ((a / 4).ns(), 2'500);

  Duration c = a;
  c += b;
  EXPECT_EQ(c.ns(), 14'000);
  c -= b;
  EXPECT_EQ(c.ns(), 10'000);
  c *= 2;
  EXPECT_EQ(c.ns(), 20'000);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::nanoseconds(1), Duration::nanoseconds(2));
  EXPECT_EQ(Duration::microseconds(1), Duration::nanoseconds(1000));
  EXPECT_GE(Duration::seconds(1), Duration::milliseconds(1000));
  EXPECT_GT(Duration::zero(), Duration::nanoseconds(-1));
}

TEST(Duration, ToStringPicksUnits) {
  EXPECT_EQ(Duration::nanoseconds(5).to_string(), "5ns");
  EXPECT_EQ(Duration::microseconds(12).to_string(), "12us");
  EXPECT_EQ(Duration::milliseconds(3).to_string(), "3ms");
  EXPECT_EQ(Duration::seconds(2).to_string(), "2s");
  EXPECT_EQ(Duration::nanoseconds(-1500).to_string(), "-1.5us");
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t0 = TimePoint::zero();
  const TimePoint t1 = t0 + Duration::microseconds(5);
  EXPECT_EQ(t1.ns(), 5'000);
  EXPECT_EQ((t1 - t0).ns(), 5'000);
  EXPECT_EQ((t1 - Duration::microseconds(2)).ns(), 3'000);
  EXPECT_EQ((Duration::microseconds(2) + t1).ns(), 7'000);

  TimePoint t = t1;
  t += Duration::nanoseconds(10);
  EXPECT_EQ(t.ns(), 5'010);
  t -= Duration::nanoseconds(10);
  EXPECT_EQ(t, t1);
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint(1), TimePoint(2));
  EXPECT_EQ(TimePoint(5), TimePoint(5));
  EXPECT_GT(TimePoint::max(), TimePoint(0));
}

TEST(TransmissionTime, BasicRates) {
  // 1500B at 10 Gb/s = 1.2us.
  EXPECT_EQ(transmission_time(1500, 10e9).ns(), 1'200);
  // 64B at 1 Gb/s = 512ns.
  EXPECT_EQ(transmission_time(64, 1e9).ns(), 512);
  // Zero bytes take zero time.
  EXPECT_EQ(transmission_time(0, 10e9).ns(), 0);
}

TEST(TransmissionTime, RejectsNonPositiveRate) {
  EXPECT_THROW((void)transmission_time(100, 0.0), std::invalid_argument);
  EXPECT_THROW((void)transmission_time(100, -1e9), std::invalid_argument);
}

// Property sweep: transmission time is additive in bytes and inversely
// proportional to rate.
class TransmissionTimeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransmissionTimeSweep, LinearInBytes) {
  const std::uint64_t bytes = GetParam();
  const auto one = transmission_time(bytes, 10e9);
  const auto twice = transmission_time(2 * bytes, 10e9);
  EXPECT_NEAR(static_cast<double>(twice.ns()), 2.0 * static_cast<double>(one.ns()), 1.0);
  const auto half_rate = transmission_time(bytes, 5e9);
  EXPECT_NEAR(static_cast<double>(half_rate.ns()), 2.0 * static_cast<double>(one.ns()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Bytes, TransmissionTimeSweep,
                         ::testing::Values(40, 64, 576, 1500, 9000, 65535));

}  // namespace
}  // namespace rlir::timebase
