// Unit tests: trace/synthetic.h — the CAIDA-substitute trace generator.
#include <gtest/gtest.h>

#include <map>

#include "trace/synthetic.h"

namespace rlir::trace {
namespace {

using timebase::Duration;

SyntheticConfig small_config(std::uint64_t seed = 1) {
  SyntheticConfig cfg;
  cfg.duration = Duration::milliseconds(20);
  cfg.offered_bps = 1e9;
  cfg.seed = seed;
  return cfg;
}

TEST(SyntheticConfig, MeanPacketBytesFromMix) {
  SyntheticConfig cfg;
  cfg.size_mix = {{100, 1.0}, {300, 1.0}};
  EXPECT_DOUBLE_EQ(cfg.mean_packet_bytes(), 200.0);
  // Default tri-modal mix: 0.4*40 + 0.2*576 + 0.4*1500 = 731.2.
  EXPECT_NEAR(SyntheticConfig{}.mean_packet_bytes(), 731.2, 1e-9);
}

TEST(SyntheticConfig, FlowArrivalRateScalesWithLoad) {
  SyntheticConfig cfg;
  const double rate1 = cfg.flow_arrival_rate();
  cfg.offered_bps *= 2.0;
  EXPECT_NEAR(cfg.flow_arrival_rate(), 2.0 * rate1, 1e-6);
}

TEST(SyntheticTraceGenerator, RejectsBadConfig) {
  SyntheticConfig cfg = small_config();
  cfg.duration = Duration::zero();
  EXPECT_THROW(SyntheticTraceGenerator{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.mean_flow_packets = 0.5;
  EXPECT_THROW(SyntheticTraceGenerator{cfg}, std::invalid_argument);
}

TEST(SyntheticTraceGenerator, TimestampsAreSortedAndWithinHorizon) {
  SyntheticTraceGenerator gen(small_config());
  timebase::TimePoint last = timebase::TimePoint::zero();
  std::uint64_t count = 0;
  while (auto p = gen.next()) {
    EXPECT_GE(p->ts, last);
    EXPECT_LE(p->ts, timebase::TimePoint::zero() + Duration::milliseconds(20));
    EXPECT_EQ(p->ts, p->injected_at);
    last = p->ts;
    ++count;
  }
  EXPECT_GT(count, 100u);
  EXPECT_EQ(count, gen.packets_emitted());
}

TEST(SyntheticTraceGenerator, DeterministicPerSeed) {
  auto a = SyntheticTraceGenerator(small_config(5)).generate_all();
  auto b = SyntheticTraceGenerator(small_config(5)).generate_all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
    EXPECT_EQ(a[i].seq, b[i].seq);
  }
  auto c = SyntheticTraceGenerator(small_config(6)).generate_all();
  EXPECT_NE(a.size(), c.size());
}

TEST(SyntheticTraceGenerator, OfferedLoadRealizedUpToTailTruncation) {
  // Heavy-tailed flows are cut at the horizon, so short traces under-realize
  // the asymptotic offered load (documented in SyntheticConfig::offered_bps):
  // the realized fraction sits well below 1 but is substantial and stable.
  SyntheticConfig cfg = small_config();
  cfg.duration = Duration::milliseconds(200);
  cfg.offered_bps = 2.2e9;
  std::uint64_t bytes = 0;
  SyntheticTraceGenerator gen(cfg);
  while (auto p = gen.next()) bytes += p->size_bytes;
  const double realized = static_cast<double>(bytes) * 8.0 / cfg.duration.sec() / 2.2e9;
  EXPECT_GT(realized, 0.5);
  EXPECT_LT(realized, 1.1);
}

TEST(SyntheticTraceGenerator, OfferedLoadExactWithoutHeavyTail) {
  // With the tail capped well below the horizon, achieved ~= offered.
  SyntheticConfig cfg = small_config();
  cfg.duration = Duration::milliseconds(200);
  cfg.offered_bps = 1e9;
  cfg.max_flow_packets = 60;            // <= 60 pkts * ~250us gap << 200ms
  cfg.mean_packet_gap = Duration::microseconds(100);
  std::uint64_t bytes = 0;
  SyntheticTraceGenerator gen(cfg);
  while (auto p = gen.next()) bytes += p->size_bytes;
  const double realized = static_cast<double>(bytes) * 8.0 / cfg.duration.sec() / 1e9;
  EXPECT_NEAR(realized, 1.0, 0.12);
}

TEST(SyntheticTraceGenerator, AddressesComeFromConfiguredPools) {
  SyntheticConfig cfg = small_config();
  cfg.src_pool = net::Ipv4Prefix(net::Ipv4Address(10, 7, 0, 0), 24);
  cfg.dst_pool = net::Ipv4Prefix(net::Ipv4Address(10, 9, 0, 0), 24);
  SyntheticTraceGenerator gen(cfg);
  while (auto p = gen.next()) {
    EXPECT_TRUE(cfg.src_pool.contains(p->key.src)) << p->key.src.to_string();
    EXPECT_TRUE(cfg.dst_pool.contains(p->key.dst)) << p->key.dst.to_string();
  }
}

TEST(SyntheticTraceGenerator, SizesComeFromTheMix) {
  SyntheticConfig cfg = small_config();
  cfg.duration = Duration::milliseconds(100);
  std::map<std::uint32_t, std::uint64_t> counts;
  SyntheticTraceGenerator gen(cfg);
  while (auto p = gen.next()) ++counts[p->size_bytes];
  ASSERT_EQ(counts.size(), 3u);
  const double total = static_cast<double>(gen.packets_emitted());
  EXPECT_NEAR(static_cast<double>(counts[40]) / total, 0.4, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[576]) / total, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[1500]) / total, 0.4, 0.03);
}

TEST(SyntheticTraceGenerator, FlowSizeSkew) {
  SyntheticConfig cfg = small_config();
  cfg.duration = Duration::milliseconds(300);
  SyntheticTraceGenerator gen(cfg);
  std::unordered_map<net::FiveTuple, std::uint64_t> per_flow;
  while (auto p = gen.next()) ++per_flow[p->key];
  ASSERT_GT(per_flow.size(), 100u);

  // Heavy tail: most flows are below the mean, a few are far above.
  std::uint64_t total = 0;
  std::uint64_t max_flow = 0;
  for (const auto& [key, n] : per_flow) {
    total += n;
    max_flow = std::max(max_flow, n);
  }
  const double mean = static_cast<double>(total) / static_cast<double>(per_flow.size());
  std::size_t below_mean = 0;
  for (const auto& [key, n] : per_flow) {
    if (static_cast<double>(n) < mean) ++below_mean;
  }
  EXPECT_GT(static_cast<double>(below_mean) / static_cast<double>(per_flow.size()), 0.6);
  EXPECT_GT(static_cast<double>(max_flow), 4.0 * mean);
}

TEST(SyntheticTraceGenerator, KindAndSeqConfig) {
  SyntheticConfig cfg = small_config();
  cfg.kind = net::PacketKind::kCross;
  cfg.first_seq = 5000;
  SyntheticTraceGenerator gen(cfg);
  auto first = gen.next();
  ASSERT_TRUE(first);
  EXPECT_EQ(first->kind, net::PacketKind::kCross);
  EXPECT_EQ(first->seq, 5000u);
  auto second = gen.next();
  ASSERT_TRUE(second);
  EXPECT_EQ(second->seq, 5001u);
}

TEST(SyntheticTraceGenerator, BurstTrainsWhenEnabled) {
  SyntheticConfig cfg = small_config();
  cfg.burst_probability = 1.0;  // every intra-flow gap is a burst gap
  cfg.burst_gap = Duration::microseconds(2);
  SyntheticTraceGenerator gen(cfg);
  std::unordered_map<net::FiveTuple, timebase::TimePoint> last_ts;
  std::uint64_t checked = 0;
  while (auto p = gen.next()) {
    const auto it = last_ts.find(p->key);
    if (it != last_ts.end()) {
      EXPECT_EQ((p->ts - it->second).ns(), 2'000);
      ++checked;
    }
    last_ts[p->key] = p->ts;
  }
  EXPECT_GT(checked, 100u);
}

// Sweep: realized volume grows linearly with offered load (the truncation
// factor is load-independent, so the ratio achieved/offered is stable).
class LoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweep, VolumeScalesLinearly) {
  SyntheticConfig base = small_config(3);
  base.duration = Duration::milliseconds(400);

  const auto realized = [&](double offered) {
    SyntheticConfig cfg = base;
    cfg.offered_bps = offered;
    SyntheticTraceGenerator gen(cfg);
    std::uint64_t bytes = 0;
    while (auto p = gen.next()) bytes += p->size_bytes;
    return static_cast<double>(bytes) * 8.0 / cfg.duration.sec();
  };

  const double at_reference = realized(1e9) / 1e9;
  const double at_param = realized(GetParam()) / GetParam();
  EXPECT_NEAR(at_param / at_reference, 1.0, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweep, ::testing::Values(0.5e9, 2.2e9, 5e9));

}  // namespace
}  // namespace rlir::trace
