// Unit tests: rli/sender.h — reference-packet injection schemes.
#include <gtest/gtest.h>

#include "rli/sender.h"
#include "timebase/clock.h"

namespace rlir::rli {
namespace {

using timebase::Duration;
using timebase::TimePoint;

net::Packet regular_at(std::int64_t ts_ns, std::uint32_t bytes = 1000) {
  net::Packet p;
  p.ts = TimePoint(ts_ns);
  p.size_bytes = bytes;
  p.kind = net::PacketKind::kRegular;
  return p;
}

TEST(RliSender, RejectsBadConfig) {
  timebase::PerfectClock clock;
  EXPECT_THROW(RliSender(SenderConfig{}, nullptr), std::invalid_argument);

  SenderConfig cfg;
  cfg.static_gap = 0;
  EXPECT_THROW(RliSender(cfg, &clock), std::invalid_argument);

  cfg = SenderConfig{};
  cfg.adaptive_min_gap = 0;
  EXPECT_THROW(RliSender(cfg, &clock), std::invalid_argument);

  cfg = SenderConfig{};
  cfg.adaptive_max_gap = 5;  // < min (10)
  EXPECT_THROW(RliSender(cfg, &clock), std::invalid_argument);

  cfg = SenderConfig{};
  cfg.util_window = Duration::zero();
  EXPECT_THROW(RliSender(cfg, &clock), std::invalid_argument);
}

TEST(RliSender, StaticInjectsEveryNth) {
  timebase::PerfectClock clock;
  SenderConfig cfg;
  cfg.scheme = InjectionScheme::kStatic;
  cfg.static_gap = 10;
  RliSender sender(cfg, &clock);

  int refs = 0;
  for (int i = 1; i <= 100; ++i) {
    const auto ref = sender.on_regular_packet(regular_at(i * 1000));
    if (ref) {
      ++refs;
      // Every 10th packet triggers one.
      EXPECT_EQ(i % 10, 0) << "at packet " << i;
    }
  }
  EXPECT_EQ(refs, 10);
  EXPECT_EQ(sender.references_injected(), 10u);
  EXPECT_EQ(sender.regular_observed(), 100u);
}

TEST(RliSender, ReferenceCarriesIdStampAndSeq) {
  timebase::FixedOffsetClock clock(Duration::microseconds(5));
  SenderConfig cfg;
  cfg.scheme = InjectionScheme::kStatic;
  cfg.static_gap = 1;
  cfg.id = 42;
  cfg.ref_packet_bytes = 80;
  RliSender sender(cfg, &clock);

  const auto ref1 = sender.on_regular_packet(regular_at(1000));
  ASSERT_TRUE(ref1);
  EXPECT_TRUE(ref1->is_reference());
  EXPECT_EQ(ref1->sender, 42);
  EXPECT_EQ(ref1->size_bytes, 80u);
  EXPECT_EQ(ref1->ts, TimePoint(1000));           // wire instant = trigger's
  EXPECT_EQ(ref1->ref_stamp, TimePoint(6000));    // stamped by the skewed clock
  EXPECT_EQ(ref1->seq, 0u);

  const auto ref2 = sender.on_regular_packet(regular_at(2000));
  ASSERT_TRUE(ref2);
  EXPECT_EQ(ref2->seq, 1u);
}

TEST(RliSender, AdaptiveStaysAtMinGapWhenLinkQuiet) {
  // ~22% utilization: the paper notes this "always triggers the highest
  // injection rate (1-and-10)".
  timebase::PerfectClock clock;
  SenderConfig cfg;
  cfg.scheme = InjectionScheme::kAdaptive;
  cfg.link_bps = 10e9;
  RliSender sender(cfg, &clock);

  // 22% of 10G = 275MB/s; send 1000B packets every 3.6us for 50ms.
  for (int i = 0; i < 14'000; ++i) {
    (void)sender.on_regular_packet(regular_at(static_cast<std::int64_t>(i) * 3'636));
  }
  EXPECT_NEAR(sender.estimated_utilization(), 0.22, 0.05);
  EXPECT_EQ(sender.current_gap(), cfg.adaptive_min_gap);
}

TEST(RliSender, AdaptiveBacksOffWhenLinkBusy) {
  timebase::PerfectClock clock;
  SenderConfig cfg;
  cfg.scheme = InjectionScheme::kAdaptive;
  cfg.link_bps = 10e9;
  RliSender sender(cfg, &clock);

  // ~96% utilization: 1500B packets back to back (1.25us apart).
  for (int i = 0; i < 50'000; ++i) {
    (void)sender.on_regular_packet(
        regular_at(static_cast<std::int64_t>(i) * 1'250, 1500));
  }
  EXPECT_GT(sender.estimated_utilization(), 0.85);
  EXPECT_GT(sender.current_gap(), 150u);
  EXPECT_LE(sender.current_gap(), cfg.adaptive_max_gap);
}

TEST(RliSender, AdaptiveGapIsMonotoneInUtilization) {
  // Feed increasing load levels into fresh senders; gaps must not decrease.
  timebase::PerfectClock clock;
  std::uint32_t last_gap = 0;
  for (const double util : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    SenderConfig cfg;
    cfg.scheme = InjectionScheme::kAdaptive;
    cfg.link_bps = 10e9;
    RliSender sender(cfg, &clock);
    const double gap_ns = 1500.0 * 8.0 / (util * 10.0);  // ns between 1500B pkts
    for (int i = 0; i < 30'000; ++i) {
      (void)sender.on_regular_packet(
          regular_at(static_cast<std::int64_t>(i * gap_ns), 1500));
    }
    EXPECT_GE(sender.current_gap(), last_gap) << "at util " << util;
    last_gap = sender.current_gap();
  }
  EXPECT_GT(last_gap, 100u);
}

TEST(RliSender, UtilizationDecaysWhenLinkGoesQuiet) {
  timebase::PerfectClock clock;
  SenderConfig cfg;
  cfg.scheme = InjectionScheme::kAdaptive;
  cfg.link_bps = 10e9;
  RliSender sender(cfg, &clock);
  // Busy burst...
  for (int i = 0; i < 20'000; ++i) {
    (void)sender.on_regular_packet(regular_at(static_cast<std::int64_t>(i) * 1'250, 1500));
  }
  const double busy = sender.estimated_utilization();
  // ...then a long quiet gap (many empty windows), then one packet.
  (void)sender.on_regular_packet(regular_at(500'000'000, 1500));
  EXPECT_LT(sender.estimated_utilization(), busy / 4.0);
}

// Sweep: static gap n yields floor(N/n) references over N packets.
class StaticGapSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StaticGapSweep, InjectionCountExact) {
  timebase::PerfectClock clock;
  SenderConfig cfg;
  cfg.scheme = InjectionScheme::kStatic;
  cfg.static_gap = GetParam();
  RliSender sender(cfg, &clock);
  constexpr int kN = 3'000;
  for (int i = 0; i < kN; ++i) {
    (void)sender.on_regular_packet(regular_at(i * 1000));
  }
  EXPECT_EQ(sender.references_injected(), static_cast<std::uint64_t>(kN) / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Gaps, StaticGapSweep, ::testing::Values(1, 10, 100, 300, 1000));

}  // namespace
}  // namespace rlir::rli
