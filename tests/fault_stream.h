// Fault-injection decorator for transport tests: wraps any ByteStream and
// misbehaves on schedule, so client/agent/coordinator failure paths can be
// driven deterministically instead of hoping a real network hiccups.
//
// Faults (all byte/call-counted, so runs are reproducible):
//   * cut_after_write_bytes  — the connection dies after accepting K bytes
//     on the write path (stream closes; the peer drains what was already
//     delivered, like a socket close);
//   * flip_write_byte        — the Nth byte written is bit-flipped in
//     transit (CRC/decoder corruption paths);
//   * stall_after_write_bytes + stall_writes — after K bytes, the next S
//     write_some calls accept nothing (backpressure window: exercises
//     bounded buffers and shedding), then flow resumes;
//   * cut_after_read_bytes   — the connection dies after the READER got K
//     bytes, dropping whatever was written but not yet read (the
//     "close overtakes data" reordering a kernel can deliver).
//
// Wrap the end whose behavior you want to poison: the client's end for
// send-path faults, the agent's end for delivery-path faults.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "transport/byte_stream.h"

namespace rlir::transport::testutil {

struct FaultPlan {
  static constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

  /// Close the stream once this many bytes were accepted by write_some.
  std::size_t cut_after_write_bytes = kNever;
  /// XOR 0x20 into the byte at this write-path offset (0-based).
  std::size_t flip_write_byte = kNever;
  /// After this many written bytes, the next `stall_writes` write_some
  /// calls accept 0 bytes.
  std::size_t stall_after_write_bytes = kNever;
  std::size_t stall_writes = 0;
  /// Close the stream once this many bytes were handed to read_some —
  /// bytes already written but unread die with it.
  std::size_t cut_after_read_bytes = kNever;
};

class FaultyByteStream final : public ByteStream {
 public:
  FaultyByteStream(std::unique_ptr<ByteStream> inner, FaultPlan plan)
      : inner_(std::move(inner)), plan_(plan) {}

  std::size_t write_some(const std::uint8_t* data, std::size_t size) override {
    if (written_ >= plan_.cut_after_write_bytes) {
      cut();
      return 0;
    }
    if (written_ >= plan_.stall_after_write_bytes && stalled_ < plan_.stall_writes) {
      stalled_ += 1;
      return 0;
    }
    // Never write past the cut point: the connection dies exactly there.
    const std::size_t allowed =
        std::min(size, plan_.cut_after_write_bytes - written_);
    std::size_t n = 0;
    if (plan_.flip_write_byte != FaultPlan::kNever &&
        written_ <= plan_.flip_write_byte && plan_.flip_write_byte < written_ + allowed) {
      std::vector<std::uint8_t> corrupted(data, data + allowed);
      corrupted[plan_.flip_write_byte - written_] ^= 0x20;
      flips_ += 1;
      n = inner_->write_some(corrupted.data(), corrupted.size());
      // A short write that didn't cover the flipped byte must un-count the
      // flip so the next attempt corrupts it instead.
      if (written_ + n <= plan_.flip_write_byte) flips_ -= 1;
    } else {
      n = inner_->write_some(data, allowed);
    }
    written_ += n;
    if (written_ >= plan_.cut_after_write_bytes) cut();
    return n;
  }

  std::size_t read_some(std::uint8_t* data, std::size_t size) override {
    if (read_ >= plan_.cut_after_read_bytes) {
      cut();
      return 0;
    }
    const std::size_t allowed = std::min(size, plan_.cut_after_read_bytes - read_);
    const std::size_t n = inner_->read_some(data, allowed);
    read_ += n;
    if (read_ >= plan_.cut_after_read_bytes) cut();
    return n;
  }

  [[nodiscard]] bool closed() const override { return cut_ || inner_->closed(); }

  void close() override { inner_->close(); }

  /// Kills the connection NOW — for tests that cut at a condition the plan
  /// can't express in bytes (e.g. "once the pipe is quiescent").
  void cut_now() { cut(); }

  // --- Fault accounting ----------------------------------------------------

  [[nodiscard]] std::size_t bytes_written() const { return written_; }
  [[nodiscard]] std::size_t bytes_read() const { return read_; }
  [[nodiscard]] bool cut_fired() const { return cut_; }
  [[nodiscard]] std::size_t flips() const { return flips_; }
  [[nodiscard]] std::size_t stalled_writes() const { return stalled_; }

 private:
  void cut() {
    // An abrupt death, not a graceful shutdown: this end reports closed()
    // immediately (cut_), and closing the inner stream makes the peer see
    // EOF after draining what was already delivered.
    cut_ = true;
    inner_->close();
  }

  std::unique_ptr<ByteStream> inner_;
  FaultPlan plan_;
  std::size_t written_ = 0;
  std::size_t read_ = 0;
  std::size_t flips_ = 0;
  std::size_t stalled_ = 0;
  bool cut_ = false;
};

/// Convenience: wraps a fresh loopback pair with a fault plan on the FIRST
/// end; returns {faulty_end, clean_peer_end}.
inline std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>> make_faulty_loopback(
    FaultPlan plan, std::size_t capacity = 0) {
  auto [a, b] = make_loopback(capacity);
  return {std::make_unique<FaultyByteStream>(std::move(a), plan), std::move(b)};
}

}  // namespace rlir::transport::testutil
