// Unit tests: topo/fattree.h — topology structure and addressing.
#include <gtest/gtest.h>

#include <set>

#include "topo/fattree.h"

namespace rlir::topo {
namespace {

TEST(FatTree, RejectsInvalidK) {
  EXPECT_THROW(FatTree(0), std::invalid_argument);
  EXPECT_THROW(FatTree(3), std::invalid_argument);
  EXPECT_THROW(FatTree(-4), std::invalid_argument);
  EXPECT_THROW(FatTree(256), std::invalid_argument);
}

TEST(FatTree, K4CountsMatchPaperFigure1) {
  // The paper's Figure 1: 8 ToRs (T1..T8), 8 edges (E1..E8), 4 cores.
  const FatTree topo(4);
  EXPECT_EQ(topo.tor_count(), 8);
  EXPECT_EQ(topo.edge_count(), 8);
  EXPECT_EQ(topo.core_count(), 4);
  EXPECT_EQ(topo.switch_count(), 20);
  EXPECT_EQ(topo.pods(), 4);
  EXPECT_EQ(topo.tors_per_pod(), 2);
  EXPECT_EQ(topo.host_count(), 16);
}

TEST(FatTree, SwitchEnumerationCoversEveryNodeOnce) {
  const FatTree topo(4);

  const auto cores = topo.cores();
  ASSERT_EQ(cores.size(), 4u);
  for (int c = 0; c < topo.core_count(); ++c) EXPECT_EQ(cores[c], topo.core(c));

  const auto switches = topo.switches();
  ASSERT_EQ(switches.size(), 20u);
  // Flat-index order, each node exactly once, round-tripping flat_index.
  for (std::size_t i = 0; i < switches.size(); ++i) {
    EXPECT_EQ(topo.flat_index(switches[i]), i);
  }
}

TEST(FatTree, PaperNodeNames) {
  const FatTree topo(4);
  EXPECT_EQ(topo.tor(0, 0).name(4), "T1");
  EXPECT_EQ(topo.tor(0, 1).name(4), "T2");
  EXPECT_EQ(topo.tor(3, 0).name(4), "T7");
  EXPECT_EQ(topo.tor(3, 1).name(4), "T8");
  EXPECT_EQ(topo.edge(0, 0).name(4), "E1");
  EXPECT_EQ(topo.edge(3, 1).name(4), "E8");
  EXPECT_EQ(topo.core(0).name(4), "C1");
  EXPECT_EQ(topo.core(3).name(4), "C4");
}

TEST(FatTree, NodeAccessorsValidateRanges) {
  const FatTree topo(4);
  EXPECT_THROW((void)topo.tor(4, 0), std::out_of_range);
  EXPECT_THROW((void)topo.tor(0, 2), std::out_of_range);
  EXPECT_THROW((void)topo.edge(-1, 0), std::out_of_range);
  EXPECT_THROW((void)topo.core(4), std::out_of_range);
  EXPECT_THROW((void)topo.core_for(2, 0), std::out_of_range);
  EXPECT_THROW((void)topo.edge_position_for_core(7), std::out_of_range);
}

TEST(FatTree, CoreEdgePositionConsistency) {
  const FatTree topo(8);
  for (int c = 0; c < topo.core_count(); ++c) {
    const int pos = topo.edge_position_for_core(c);
    bool found = false;
    for (int j = 0; j < topo.k() / 2; ++j) {
      if (topo.core_for(pos, j) == topo.core(c)) found = true;
    }
    EXPECT_TRUE(found) << "core " << c;
  }
}

TEST(FatTree, AdjacencyRules) {
  const FatTree topo(4);
  // ToR <-> edge within the same pod only.
  EXPECT_TRUE(topo.adjacent(topo.tor(0, 0), topo.edge(0, 0)));
  EXPECT_TRUE(topo.adjacent(topo.edge(0, 1), topo.tor(0, 0)));  // symmetric
  EXPECT_FALSE(topo.adjacent(topo.tor(0, 0), topo.edge(1, 0)));
  // Edge <-> core only at the matching position.
  EXPECT_TRUE(topo.adjacent(topo.edge(0, 0), topo.core(0)));
  EXPECT_TRUE(topo.adjacent(topo.edge(0, 0), topo.core(1)));
  EXPECT_FALSE(topo.adjacent(topo.edge(0, 0), topo.core(2)));
  EXPECT_TRUE(topo.adjacent(topo.edge(0, 1), topo.core(2)));
  // No ToR-core or same-tier links.
  EXPECT_FALSE(topo.adjacent(topo.tor(0, 0), topo.core(0)));
  EXPECT_FALSE(topo.adjacent(topo.tor(0, 0), topo.tor(0, 1)));
  EXPECT_FALSE(topo.adjacent(topo.core(0), topo.core(1)));
}

TEST(FatTree, NeighborsMatchAdjacency) {
  const FatTree topo(4);
  const auto check = [&](NodeId node, std::size_t expected) {
    const auto neighbors = topo.neighbors(node);
    EXPECT_EQ(neighbors.size(), expected) << node.name(4);
    for (const auto& n : neighbors) {
      EXPECT_TRUE(topo.adjacent(node, n)) << node.name(4) << "-" << n.name(4);
    }
  };
  check(topo.tor(0, 0), 2);   // k/2 edges
  check(topo.edge(0, 0), 4);  // k/2 tors + k/2 cores
  check(topo.core(0), 4);     // one edge per pod
}

TEST(FatTree, HostAddressing) {
  const FatTree topo(4);
  const auto t1 = topo.tor(0, 0);
  EXPECT_EQ(topo.host_prefix(t1).to_string(), "10.0.0.0/24");
  EXPECT_EQ(topo.host_prefix(topo.tor(3, 1)).to_string(), "10.3.1.0/24");
  EXPECT_EQ(topo.host_address(t1, 0), net::Ipv4Address(10, 0, 0, 1));
  EXPECT_THROW((void)topo.host_address(t1, 254), std::out_of_range);
  EXPECT_THROW((void)topo.host_prefix(topo.core(0)), std::invalid_argument);
}

TEST(FatTree, TorForAddressInvertsHostAddress) {
  const FatTree topo(4);
  for (int pod = 0; pod < topo.pods(); ++pod) {
    for (int t = 0; t < topo.tors_per_pod(); ++t) {
      const auto tor = topo.tor(pod, t);
      EXPECT_EQ(topo.tor_for_address(topo.host_address(tor, 3)), tor);
    }
  }
  EXPECT_FALSE(topo.tor_for_address(net::Ipv4Address(11, 0, 0, 1)));
  EXPECT_FALSE(topo.tor_for_address(net::Ipv4Address(10, 5, 0, 1)));  // pod 5 absent
  EXPECT_FALSE(topo.tor_for_address(net::Ipv4Address(10, 0, 2, 1)));  // tor 2 absent
}

TEST(FatTree, PathsBetweenSameTor) {
  const FatTree topo(4);
  const auto paths = topo.paths_between(topo.tor(0, 0), topo.tor(0, 0));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 1u);
}

TEST(FatTree, PathsBetweenSamePod) {
  const FatTree topo(4);
  const auto paths = topo.paths_between(topo.tor(0, 0), topo.tor(0, 1));
  ASSERT_EQ(paths.size(), 2u);  // k/2
  for (const auto& path : paths) {
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[1].tier, Tier::kEdge);
    EXPECT_TRUE(topo.adjacent(path[0], path[1]));
    EXPECT_TRUE(topo.adjacent(path[1], path[2]));
  }
}

TEST(FatTree, PathsBetweenCrossPod) {
  const FatTree topo(4);
  const auto paths = topo.paths_between(topo.tor(0, 0), topo.tor(3, 0));
  ASSERT_EQ(paths.size(), 4u);  // (k/2)^2
  std::set<int> cores_used;
  for (const auto& path : paths) {
    ASSERT_EQ(path.size(), 5u);
    EXPECT_EQ(path[2].tier, Tier::kCore);
    cores_used.insert(path[2].index);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(topo.adjacent(path[i], path[i + 1]));
    }
  }
  EXPECT_EQ(cores_used.size(), 4u);  // every core reachable
}

TEST(FatTree, UpwardAndDownwardPathsAreUniqueAndValid) {
  const FatTree topo(4);
  const auto up = topo.upward_path(topo.tor(0, 0), topo.core(2));
  ASSERT_EQ(up.size(), 3u);
  EXPECT_EQ(up[1], topo.edge(0, 1));  // core 2 hangs off edge position 1
  const auto down = topo.downward_path(topo.core(2), topo.tor(3, 0));
  ASSERT_EQ(down.size(), 3u);
  EXPECT_EQ(down[1], topo.edge(3, 1));
}

// Sweep: structural invariants hold across fabric sizes.
class FatTreeSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeSizeSweep, CountsAndFlatIndexRoundTrip) {
  const int k = GetParam();
  const FatTree topo(k);
  EXPECT_EQ(topo.tor_count(), k * k / 2);
  EXPECT_EQ(topo.edge_count(), k * k / 2);
  EXPECT_EQ(topo.core_count(), k * k / 4);

  for (std::size_t flat = 0; flat < static_cast<std::size_t>(topo.switch_count()); ++flat) {
    const NodeId node = topo.from_flat_index(flat);
    EXPECT_EQ(topo.flat_index(node), flat);
  }
  EXPECT_THROW((void)topo.from_flat_index(static_cast<std::size_t>(topo.switch_count())),
               std::out_of_range);
}

TEST_P(FatTreeSizeSweep, CrossPodPathCount) {
  const int k = GetParam();
  const FatTree topo(k);
  const auto paths = topo.paths_between(topo.tor(0, 0), topo.tor(k - 1, 0));
  EXPECT_EQ(paths.size(), static_cast<std::size_t>((k / 2) * (k / 2)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FatTreeSizeSweep, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace rlir::topo
