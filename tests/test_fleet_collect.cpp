// End-to-end collection tier over a fat-tree: taps -> RLIR receivers ->
// estimate records (through the binary wire format) -> sharded collector ->
// queries. The acceptance bar: the collector's sketched answers must match
// the unsharded FlowStatsMap ground truth exactly on counts/means and within
// the sketch's configured relative error on quantiles, with per-flow memory
// O(sketch size) rather than O(samples).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "collect/fleet.h"
#include "common/stats.h"
#include "rli/sender.h"
#include "rlir/demux.h"
#include "rlir/sender_agent.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"
#include "trace/synthetic.h"

namespace rlir {
namespace {

using timebase::Duration;
using topo::FatTree;
using topo::NodeId;

class FleetCollectTest : public ::testing::Test {
 protected:
  static constexpr int kK = 4;

  FleetCollectTest()
      : topo_(kK),
        src_a_(topo_.tor(0, 0)),
        src_b_(topo_.tor(0, 1)),
        dst_(topo_.tor(3, 0)) {}

  std::vector<net::Packet> make_traffic(NodeId from, NodeId to, double offered_bps,
                                        std::uint64_t seed, Duration duration) {
    trace::SyntheticConfig cfg;
    cfg.duration = duration;
    cfg.offered_bps = offered_bps;
    cfg.seed = seed;
    cfg.src_pool = topo_.host_prefix(from);
    cfg.dst_pool = topo_.host_prefix(to);
    cfg.first_seq = seed * 100'000'000ULL;
    return trace::SyntheticTraceGenerator(cfg).generate_all();
  }

  FatTree topo_;
  NodeId src_a_;
  NodeId src_b_;
  NodeId dst_;
  topo::Crc32EcmpHasher hasher_;
  timebase::PerfectClock clock_;
};

TEST_F(FleetCollectTest, CollectorMatchesUnshardedGroundTruth) {
  topo::FatTreeSim sim(&topo_, topo::FatTreeSimConfig{}, &hasher_);
  const Duration duration = Duration::milliseconds(30);

  // --- Upstream instrumentation: senders at the source ToRs, fleet
  // vantages at every core (prefix demux by origin ToR).
  const auto cores = topo_.cores();

  rli::SenderConfig s1_cfg;
  s1_cfg.id = 1;
  s1_cfg.static_gap = 50;
  rlir::TorSenderAgent s1(s1_cfg, &clock_, cores);
  sim.add_agent(src_a_, &s1);
  rli::SenderConfig s2_cfg = s1_cfg;
  s2_cfg.id = 2;
  rlir::TorSenderAgent s2(s2_cfg, &clock_, cores);
  sim.add_agent(src_b_, &s2);

  rlir::PrefixDemux up_demux;
  up_demux.add_origin(topo_.host_prefix(src_a_), 1);
  up_demux.add_origin(topo_.host_prefix(src_b_), 2);

  // --- Downstream instrumentation: senders at every core, one more fleet
  // vantage at the destination ToR (reverse-ECMP demux).
  rlir::ReverseEcmpDemux down_demux(&topo_, &hasher_, dst_);
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> core_senders;
  for (int c = 0; c < topo_.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(10 + c);
    cfg.static_gap = 50;
    core_senders.push_back(
        std::make_unique<rlir::CoreSenderAgent>(cfg, &clock_, std::vector<NodeId>{dst_}));
    sim.add_agent(topo_.core(c), core_senders.back().get());
    down_demux.set_sender_at_core(c, cfg.id);
  }

  // --- The collection tier under test.
  collect::FleetConfig fleet_cfg;
  const double accuracy = fleet_cfg.collector.sketch.relative_accuracy;
  collect::FleetCollector fleet(fleet_cfg, &clock_);
  for (const auto& core : cores) fleet.deploy(sim, core, &up_demux);
  const auto down_link = fleet.deploy(sim, dst_, &down_demux);
  ASSERT_EQ(fleet.vantage_count(), cores.size() + 1);
  EXPECT_EQ(fleet.node(down_link), dst_);

  // Shadow capture of every per-packet estimate, fleet-wide: the exact
  // sample sets the sketched quantiles are judged against.
  std::unordered_map<net::FiveTuple, std::vector<double>> samples;
  for (collect::LinkId link = 0; link < fleet.vantage_count(); ++link) {
    fleet.receiver(link).add_estimate_sink(
        [&samples](net::SenderId, const rli::RliReceiver::PacketEstimate& pe) {
          samples[pe.key].push_back(pe.estimate_ns);
        });
  }

  for (const auto& pkt : make_traffic(src_a_, dst_, 1.2e9, 61, duration)) {
    sim.inject_from_host(pkt);
  }
  for (const auto& pkt : make_traffic(src_b_, dst_, 1.2e9, 62, duration)) {
    sim.inject_from_host(pkt);
  }
  sim.run();

  const auto records = fleet.collect_epoch(/*epoch=*/0);
  ASSERT_GT(records, 0u);
  const auto& collector = fleet.collector();
  EXPECT_EQ(collector.records_ingested(), records);
  EXPECT_EQ(collector.epoch_count(), 1u);

  // --- Acceptance: sketched answers vs the unbounded classic aggregation.
  const auto truth = fleet.unsharded_estimates();
  ASSERT_GT(truth.size(), 100u);
  EXPECT_EQ(collector.flow_count(), truth.size());

  std::uint64_t total_estimates = 0;
  std::size_t quantile_checked = 0;
  for (const auto& [key, stats] : truth) {
    const auto* sketch = collector.flow(key);
    ASSERT_NE(sketch, nullptr) << key.to_string();
    // Counts are exact; means agree to fp noise (same samples, different
    // summation order).
    EXPECT_EQ(sketch->count(), stats.count()) << key.to_string();
    EXPECT_NEAR(sketch->mean(), stats.mean(), 1e-6 * std::max(1.0, std::abs(stats.mean())));
    EXPECT_EQ(sketch->max(), stats.max()) << key.to_string();
    total_estimates += stats.count();

    // Quantiles within the sketch's configured relative-error bound of the
    // true order statistic.
    auto it = samples.find(key);
    ASSERT_NE(it, samples.end());
    ASSERT_EQ(it->second.size(), stats.count());
    if (it->second.size() < 20) continue;
    std::vector<double> sorted = it->second;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.5, 0.9, 0.99}) {
      const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
      const double expected = sorted[rank];
      const auto got = collector.flow_quantile(key, q);
      ASSERT_TRUE(got.has_value());
      if (expected > 1.0) {
        EXPECT_NEAR(*got, expected, accuracy * expected * (1.0 + 1e-9))
            << key.to_string() << " q=" << q;
      }
      ++quantile_checked;
    }
  }
  EXPECT_GT(quantile_checked, 100u);
  EXPECT_EQ(collector.estimates_ingested(), total_estimates);

  // --- Memory: per-flow state is O(sketch bins), never O(samples). (The
  // dedicated million-sample bound lives in test_sharded_collector; here we
  // check the property held on real measurement traffic.)
  std::uint64_t largest_flow = 0;
  for (const auto& [key, stats] : truth) {
    largest_flow = std::max(largest_flow, stats.count());
    const auto* sketch = collector.flow(key);
    EXPECT_LE(sketch->bin_count(), sketch->config().max_bins);
  }
  ASSERT_GT(largest_flow, 200u);  // the heavy-tailed workload has big flows
  for (const auto& [key, stats] : truth) {
    if (stats.count() != largest_flow) continue;
    const auto* sketch = collector.flow(key);
    // The heaviest flow keeps fewer bins than samples: bins are bounded by
    // the delay dynamic range, not the packet count.
    EXPECT_LT(sketch->bin_count(), stats.count());
    break;
  }

  // --- Fleet-level queries answer over every vantage.
  EXPECT_EQ(collector.links().size(), fleet.vantage_count());
  const auto fleet_sketch = collector.fleet();
  EXPECT_EQ(fleet_sketch.count(), total_estimates);
  const auto top = collector.top_k_flows(10, 0.99);
  ASSERT_EQ(top.size(), 10u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].p99_ns, top[i].p99_ns);
  }
  // The worst flow's p99 can't exceed the fleet-wide max.
  EXPECT_LE(top[0].p99_ns, fleet_sketch.max() * (1.0 + accuracy));
}

TEST_F(FleetCollectTest, SchedulerDrivenCollectionLosesNoEstimate) {
  // attach_scheduler replaces the by-hand collect_epoch loop: stepped
  // simulation time drives epoch boundaries, receiver flushes, and idle-flow
  // aging. The conservation law under test: every estimate any vantage
  // produces (including boundary flushes and aged-out flows) reaches the
  // collector exactly once.
  topo::FatTreeSim sim(&topo_, topo::FatTreeSimConfig{}, &hasher_);
  const auto cores = topo_.cores();

  rli::SenderConfig s_cfg;
  s_cfg.id = 1;
  s_cfg.static_gap = 50;
  rlir::TorSenderAgent sender(s_cfg, &clock_, cores);
  sim.add_agent(src_a_, &sender);
  rlir::PrefixDemux demux;
  demux.add_origin(topo_.host_prefix(src_a_), 1);

  collect::FleetCollector fleet(collect::FleetConfig{}, &clock_);
  for (const auto& core : cores) fleet.deploy(sim, core, &demux);

  // Shadow count of every estimate delivered by every vantage's receiver.
  std::uint64_t observed = 0;
  for (collect::LinkId link = 0; link < fleet.vantage_count(); ++link) {
    fleet.receiver(link).add_estimate_sink(
        [&observed](net::SenderId, const rli::RliReceiver::PacketEstimate&) { ++observed; });
  }

  collect::EpochSchedulerConfig sched_cfg;
  sched_cfg.period = Duration::milliseconds(5);
  sched_cfg.max_flow_idle = Duration::milliseconds(2);
  collect::EpochScheduler scheduler(sched_cfg);
  fleet.attach_scheduler(scheduler);

  const Duration horizon = Duration::milliseconds(25);
  for (const auto& pkt : make_traffic(src_a_, dst_, 1.0e9, 81, horizon)) {
    sim.inject_from_host(pkt);
  }
  // Step simulation and scheduler in lockstep, finer than the period.
  const Duration step = Duration::milliseconds(1);
  timebase::TimePoint t = timebase::TimePoint::zero();
  while (sim.events_pending()) {
    t += step;
    sim.run_until(t);
    scheduler.advance_to(t);
  }
  // Close out the final (partial) epoch.
  scheduler.advance_to(sim.now() + sched_cfg.period);

  const auto& collector = fleet.collector();
  ASSERT_GT(observed, 1000u);
  EXPECT_EQ(collector.estimates_ingested(), observed);
  EXPECT_EQ(scheduler.records_delivered(), collector.records_ingested());
  EXPECT_GE(scheduler.epochs_fired(), 4u);  // ~25ms of traffic / 5ms period
  EXPECT_GE(collector.epoch_count(), 4u);
  // Every vantage exporter ends empty: drained by boundaries, not leaks.
  EXPECT_GT(collector.flow_count(), 0u);
  EXPECT_EQ(collector.flow_count(), fleet.unsharded_estimates().size());
}

TEST_F(FleetCollectTest, EpochsAccumulateAcrossCollections) {
  // Two traffic phases drained as separate epochs into the same collector:
  // per-flow state must equal the union, and both epochs must be visible.
  topo::FatTreeSim sim(&topo_, topo::FatTreeSimConfig{}, &hasher_);
  const auto cores = topo_.cores();

  rli::SenderConfig s_cfg;
  s_cfg.id = 1;
  s_cfg.static_gap = 50;
  rlir::TorSenderAgent sender(s_cfg, &clock_, cores);
  sim.add_agent(src_a_, &sender);
  rlir::PrefixDemux demux;
  demux.add_origin(topo_.host_prefix(src_a_), 1);

  collect::FleetCollector fleet(collect::FleetConfig{}, &clock_);
  for (const auto& core : cores) fleet.deploy(sim, core, &demux);

  // Phase 1 runs and drains as epoch 0; phase 2 is injected with timestamps
  // shifted past the first run's horizon (the event queue rejects scheduling
  // in the past) and drains as epoch 1.
  for (const auto& pkt : make_traffic(src_a_, dst_, 1.0e9, 71, Duration::milliseconds(15))) {
    sim.inject_from_host(pkt);
  }
  sim.run();
  const auto epoch0 = fleet.collect_epoch(0);
  ASSERT_GT(epoch0, 0u);
  const auto flows_after_0 = fleet.collector().flow_count();

  const auto phase2_offset = (sim.now() - timebase::TimePoint::zero()) +
                             Duration::microseconds(10);
  for (auto pkt : make_traffic(src_a_, dst_, 1.0e9, 72, Duration::milliseconds(15))) {
    pkt.ts += phase2_offset;
    sim.inject_from_host(pkt);
  }
  sim.run();
  const auto epoch1 = fleet.collect_epoch(1);
  ASSERT_GT(epoch1, 0u);

  EXPECT_EQ(fleet.collector().epoch_count(), 2u);
  EXPECT_GE(fleet.collector().flow_count(), flows_after_0);
  EXPECT_EQ(fleet.collector().records_ingested(), epoch0 + epoch1);

  // After the second drain the classic aggregation (which never resets)
  // still matches the collector's totals.
  std::uint64_t truth_estimates = 0;
  for (const auto& [key, stats] : fleet.unsharded_estimates()) truth_estimates += stats.count();
  EXPECT_EQ(fleet.collector().estimates_ingested(), truth_estimates);
  EXPECT_EQ(fleet.collector().flow_count(), fleet.unsharded_estimates().size());
}

}  // namespace
}  // namespace rlir
