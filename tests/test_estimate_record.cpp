// EstimateRecord wire format: byte-exact round-trips, stream/byte-buffer
// equivalence, and rejection of bad magic, wrong versions, truncation, and
// corrupt bin counts.
#include "collect/estimate_record.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.h"

namespace rlir::collect {
namespace {

net::FiveTuple make_key(std::uint32_t i) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i));
  key.dst = net::Ipv4Address(192, 168, 1, static_cast<std::uint8_t>(i + 1));
  key.src_port = static_cast<std::uint16_t>(1000 + i);
  key.dst_port = 80;
  key.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  return key;
}

std::vector<EstimateRecord> make_batch(std::size_t n) {
  common::Xoshiro256 rng(11);
  std::vector<EstimateRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    EstimateRecord r;
    r.key = make_key(static_cast<std::uint32_t>(i));
    r.link = static_cast<LinkId>(i % 5);
    r.sender = static_cast<net::SenderId>(i % 3 + 1);
    r.epoch = static_cast<std::uint32_t>(i / 4);
    for (int j = 0; j < 200; ++j) r.sketch.add(rng.lognormal(9.0, 1.0));
    records.push_back(std::move(r));
  }
  return records;
}

void expect_equal(const EstimateRecord& a, const EstimateRecord& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.link, b.link);
  EXPECT_EQ(a.sender, b.sender);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.sketch.bins(), b.sketch.bins());
  EXPECT_EQ(a.sketch.count(), b.sketch.count());
  EXPECT_EQ(a.sketch.zero_count(), b.sketch.zero_count());
  EXPECT_EQ(a.sketch.sum(), b.sketch.sum());
  EXPECT_EQ(a.sketch.min(), b.sketch.min());
  EXPECT_EQ(a.sketch.max(), b.sketch.max());
  EXPECT_EQ(a.sketch.config().relative_accuracy, b.sketch.config().relative_accuracy);
  EXPECT_EQ(a.sketch.config().max_bins, b.sketch.config().max_bins);
}

TEST(EstimateRecordTest, RoundTripBatch) {
  const auto batch = make_batch(10);
  const auto bytes = encode_records(batch);
  const auto decoded = decode_records(bytes.data(), bytes.size());
  ASSERT_EQ(decoded.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) expect_equal(batch[i], decoded[i]);
}

TEST(EstimateRecordTest, RoundTripEmptyBatchAndEmptySketch) {
  const auto none = decode_records(encode_records({}).data(), encode_records({}).size());
  EXPECT_TRUE(none.empty());

  EstimateRecord empty_sketch;
  empty_sketch.key = make_key(1);
  const std::vector<EstimateRecord> batch{empty_sketch};
  const auto bytes = encode_records(batch);
  const auto decoded = decode_records(bytes.data(), bytes.size());
  ASSERT_EQ(decoded.size(), 1u);
  expect_equal(batch[0], decoded[0]);
  EXPECT_TRUE(decoded[0].sketch.empty());
}

TEST(EstimateRecordTest, ZeroBinSurvivesRoundTrip) {
  EstimateRecord r;
  r.key = make_key(2);
  r.sketch.add(0.0, 13);
  r.sketch.add(500.0);
  const auto bytes = encode_records({r});
  const auto decoded = decode_records(bytes.data(), bytes.size());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].sketch.zero_count(), 13u);
  EXPECT_EQ(decoded[0].sketch.count(), 14u);
}

TEST(EstimateRecordTest, StreamMatchesByteBuffer) {
  const auto batch = make_batch(4);
  std::stringstream stream;
  write_records(stream, batch);
  const auto via_stream = read_records(stream);
  ASSERT_EQ(via_stream.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) expect_equal(batch[i], via_stream[i]);
}

TEST(EstimateRecordTest, WireSizeMatchesEncoding) {
  const auto batch = make_batch(3);
  std::size_t expected = 16;  // header
  for (const auto& r : batch) expected += wire_size(r);
  EXPECT_EQ(encode_records(batch).size(), expected);
}

TEST(EstimateRecordTest, RejectsBadMagic) {
  auto bytes = encode_records(make_batch(1));
  bytes[0] = 'X';
  EXPECT_THROW(decode_records(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(EstimateRecordTest, RejectsUnsupportedVersion) {
  auto bytes = encode_records(make_batch(1));
  bytes[4] = 0xff;  // version field, little-endian low byte
  EXPECT_THROW(decode_records(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(EstimateRecordTest, RejectsTruncation) {
  const auto bytes = encode_records(make_batch(3));
  // Every possible truncation point must throw, not crash or mis-decode.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{15}, std::size_t{16},
                          std::size_t{40}, bytes.size() - 1}) {
    EXPECT_THROW(decode_records(bytes.data(), cut), std::runtime_error) << "cut=" << cut;
  }
}

TEST(EstimateRecordTest, RejectsTrailingGarbage) {
  auto bytes = encode_records(make_batch(2));
  bytes.push_back(0xab);
  EXPECT_THROW(decode_records(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(EstimateRecordTest, RejectsImplausibleBinCount) {
  // A batch claiming one record whose bin count is absurd (bit flip /
  // corruption) must be rejected by the guard, not attempt the allocation.
  EstimateRecord r;
  r.key = make_key(3);
  r.sketch.add(100.0);
  auto bytes = encode_records({r});
  // bin_count is the last 4 bytes of the fixed part: header 16 + fixed 71.
  const std::size_t bin_count_offset = 16 + 71 - 4;
  bytes[bin_count_offset + 3] = 0xff;
  EXPECT_THROW(decode_records(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(EstimateRecordTest, RejectsNonFiniteMoments) {
  EstimateRecord r;
  r.key = make_key(6);
  r.sketch.add(100.0);
  auto bytes = encode_records({r});
  // sum f64 sits after key(13)+link(4)+sender(2)+epoch(4)+accuracy(8)+
  // max_bins(4)+zero_count(8); all-ones is a NaN bit pattern.
  const std::size_t sum_offset = 16 + 13 + 4 + 2 + 4 + 8 + 4 + 8;
  for (std::size_t i = 0; i < 8; ++i) bytes[sum_offset + i] = 0xff;
  EXPECT_THROW(decode_records(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(EstimateRecordTest, RejectsCorruptAccuracy) {
  EstimateRecord r;
  r.key = make_key(4);
  r.sketch.add(100.0);
  auto bytes = encode_records({r});
  // relative_accuracy f64 sits after key(13)+link(4)+sender(2)+epoch(4).
  const std::size_t accuracy_offset = 16 + 13 + 4 + 2 + 4;
  for (std::size_t i = 0; i < 8; ++i) bytes[accuracy_offset + i] = 0;  // accuracy = 0.0
  EXPECT_THROW(decode_records(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(EstimateRecordTest, MergedDecodedSketchMatchesOriginal) {
  // Decode-then-merge equals merge-then-decode: what sharded collection does.
  common::Xoshiro256 rng(12);
  EstimateRecord a, b;
  a.key = b.key = make_key(5);
  for (int i = 0; i < 500; ++i) {
    a.sketch.add(rng.lognormal(9.0, 1.0));
    b.sketch.add(rng.lognormal(10.0, 0.5));
  }
  auto direct = a.sketch;
  direct.merge(b.sketch);

  const auto bytes = encode_records({a, b});
  auto decoded = decode_records(bytes.data(), bytes.size());
  decoded[0].sketch.merge(decoded[1].sketch);
  EXPECT_EQ(decoded[0].sketch.bins(), direct.bins());
  EXPECT_EQ(decoded[0].sketch.count(), direct.count());
}

TEST(EstimateRecordTest, PrefixDecodeReportsBytesConsumed) {
  const auto batch = make_batch(4);
  const auto bytes = encode_records(batch);
  const auto decoded = decode_records_prefix(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
  ASSERT_EQ(decoded.records.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) expect_equal(decoded.records[i], batch[i]);
}

TEST(EstimateRecordTest, PrefixDecodeWalksBackToBackBatches) {
  // The streaming shape the transport tier ships: several batches
  // concatenated in one buffer, consumed without re-scanning.
  const std::vector<std::vector<EstimateRecord>> batches = {make_batch(3), make_batch(1),
                                                            make_batch(5)};
  std::vector<std::uint8_t> wire;
  for (const auto& b : batches) {
    const auto bytes = encode_records(b);
    wire.insert(wire.end(), bytes.begin(), bytes.end());
  }

  std::size_t offset = 0;
  std::size_t batch_index = 0;
  while (offset < wire.size()) {
    const auto decoded = decode_records_prefix(wire.data() + offset, wire.size() - offset);
    ASSERT_LT(batch_index, batches.size());
    ASSERT_EQ(decoded.records.size(), batches[batch_index].size());
    for (std::size_t i = 0; i < decoded.records.size(); ++i) {
      expect_equal(decoded.records[i], batches[batch_index][i]);
    }
    offset += decoded.bytes_consumed;
    ++batch_index;
  }
  EXPECT_EQ(offset, wire.size());
  EXPECT_EQ(batch_index, batches.size());
}

TEST(EstimateRecordTest, PrefixDecodeStillRejectsTruncation) {
  const auto bytes = encode_records(make_batch(2));
  EXPECT_THROW(decode_records_prefix(bytes.data(), bytes.size() - 1), std::runtime_error);
  EXPECT_THROW(decode_records_prefix(bytes.data(), 3), std::runtime_error);
}

}  // namespace
}  // namespace rlir::collect
