// ConcurrentShardedCollector: thread-per-shard ingest must converge to
// exactly the state a serial ShardedCollector reaches on the same records —
// bin for bin — regardless of producer count, queue pressure (fallback
// path), or the queueless mutex-per-shard mode. quiesce() is the barrier
// that makes queries consistent; these tests are the TSan job's main
// workload.
#include "collect/concurrent_collector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace rlir::collect {
namespace {

net::FiveTuple make_key(std::uint32_t i) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(10, 1, static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i));
  key.dst = net::Ipv4Address(192, 168, 0, 1);
  key.src_port = static_cast<std::uint16_t>(2000 + i);
  key.dst_port = 443;
  key.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  return key;
}

EstimateRecord make_record(std::uint32_t flow, LinkId link, std::uint32_t epoch,
                           double latency_base, common::Xoshiro256& rng, int samples = 20) {
  EstimateRecord r;
  r.key = make_key(flow);
  r.link = link;
  r.epoch = epoch;
  r.sender = 1;
  for (int i = 0; i < samples; ++i) r.sketch.add(latency_base * rng.uniform(0.5, 1.5));
  return r;
}

/// A deterministic workload: `count` records over `flows` flows, 4 links,
/// 3 epochs. Seeded per caller so producers can each own a disjoint slice.
std::vector<EstimateRecord> make_workload(std::uint64_t seed, std::uint32_t count,
                                          std::uint32_t flows) {
  common::Xoshiro256 rng(seed);
  std::vector<EstimateRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    records.push_back(
        make_record(i % flows, i % 4, i % 3, 20e3 + 1e3 * (i % flows), rng, 10));
  }
  return records;
}

/// The equivalence oracle: serial collector state vs concurrent snapshot,
/// compared exactly (counts, per-flow bins, fleet bins, top-k ordering).
void expect_equal_state(ShardedCollector& serial, ShardedCollector snapshot,
                        std::uint32_t flows) {
  EXPECT_EQ(snapshot.flow_count(), serial.flow_count());
  EXPECT_EQ(snapshot.records_ingested(), serial.records_ingested());
  EXPECT_EQ(snapshot.estimates_ingested(), serial.estimates_ingested());
  EXPECT_EQ(snapshot.epoch_count(), serial.epoch_count());
  EXPECT_EQ(snapshot.fleet().bins(), serial.fleet().bins());
  for (std::uint32_t f = 0; f < flows; ++f) {
    const auto* a = snapshot.flow(make_key(f));
    const auto* b = serial.flow(make_key(f));
    ASSERT_EQ(a == nullptr, b == nullptr) << "flow " << f;
    if (a != nullptr && b != nullptr) {
      EXPECT_EQ(a->bins(), b->bins()) << "flow " << f;
    }
  }
  const auto top_a = snapshot.top_k_flows(10, 0.99);
  const auto top_b = serial.top_k_flows(10, 0.99);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (std::size_t i = 0; i < top_a.size(); ++i) {
    EXPECT_EQ(top_a[i].key, top_b[i].key) << "rank " << i;
    EXPECT_EQ(top_a[i].p99_ns, top_b[i].p99_ns) << "rank " << i;
  }
}

TEST(ConcurrentCollectorTest, ZeroShardsThrows) {
  ConcurrentCollectorConfig cfg;
  cfg.shard_count = 0;
  EXPECT_THROW(ConcurrentShardedCollector{cfg}, std::invalid_argument);
}

TEST(ConcurrentCollectorTest, BadTopKQuantileThrows) {
  ConcurrentCollectorConfig cfg;
  cfg.top_k_quantile = 1.5;
  EXPECT_THROW(ConcurrentShardedCollector{cfg}, std::invalid_argument);
}

TEST(ConcurrentCollectorTest, SingleProducerMatchesSerialExactly) {
  constexpr std::uint32_t kFlows = 50;
  const auto records = make_workload(1, 400, kFlows);

  ShardedCollector serial(CollectorConfig{4, {}});
  serial.ingest(records);

  ConcurrentCollectorConfig cfg;
  cfg.shard_count = 4;
  ConcurrentShardedCollector concurrent(cfg);
  concurrent.submit(records);

  expect_equal_state(serial, concurrent.snapshot(), kFlows);
}

TEST(ConcurrentCollectorTest, ManyProducersMatchSerialExactly) {
  constexpr std::uint32_t kFlows = 120;
  constexpr int kProducers = 8;
  std::vector<std::vector<EstimateRecord>> slices;
  ShardedCollector serial(CollectorConfig{4, {}});
  for (int p = 0; p < kProducers; ++p) {
    slices.push_back(make_workload(100 + p, 300, kFlows));
    serial.ingest(slices.back());
  }

  ConcurrentCollectorConfig cfg;
  cfg.shard_count = 4;
  cfg.queue_capacity = 64;  // small enough that producers race the workers
  ConcurrentShardedCollector concurrent(cfg);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&concurrent, slice = slices[p]]() mutable {
      for (auto& r : slice) concurrent.submit(std::move(r));
    });
  }
  for (auto& t : producers) t.join();

  expect_equal_state(serial, concurrent.snapshot(), kFlows);
}

TEST(ConcurrentCollectorTest, FullQueueTakesFallbackPathAndStaysExact) {
  constexpr std::uint32_t kFlows = 40;
  const auto records = make_workload(7, 600, kFlows);
  ShardedCollector serial(CollectorConfig{2, {}});
  serial.ingest(records);

  ConcurrentCollectorConfig cfg;
  cfg.shard_count = 2;
  cfg.queue_capacity = 1;  // essentially every submission collides
  ConcurrentShardedCollector concurrent(cfg);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&concurrent, &records, p] {
      for (std::size_t i = p; i < records.size(); i += 4) concurrent.submit(records[i]);
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_GT(concurrent.fallback_ingests(), 0u);
  expect_equal_state(serial, concurrent.snapshot(), kFlows);
}

TEST(ConcurrentCollectorTest, QueuelessModeIsMutexPerShardAndStaysExact) {
  constexpr std::uint32_t kFlows = 40;
  const auto records = make_workload(9, 500, kFlows);
  ShardedCollector serial(CollectorConfig{4, {}});
  serial.ingest(records);

  ConcurrentCollectorConfig cfg;
  cfg.shard_count = 4;
  cfg.queue_capacity = 0;  // no worker threads: submit() merges inline
  ConcurrentShardedCollector concurrent(cfg);
  EXPECT_FALSE(concurrent.threaded());
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&concurrent, &records, p] {
      for (std::size_t i = p; i < records.size(); i += 4) concurrent.submit(records[i]);
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(concurrent.fallback_ingests(), 0u);
  expect_equal_state(serial, concurrent.snapshot(), kFlows);
}

TEST(ConcurrentCollectorTest, QueriesQuiesceImplicitly) {
  common::Xoshiro256 rng(11);
  ConcurrentShardedCollector collector;
  const auto record = make_record(3, 0, 0, 80e3, rng, 50);
  collector.submit(record);
  // No explicit quiesce: the query itself must observe the submission.
  const auto summary = collector.flow_summary(record.key);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->packets, record.sketch.count());
  EXPECT_EQ(collector.flow_quantile(record.key, 0.5), record.sketch.quantile(0.5));
  EXPECT_EQ(collector.records_ingested(), 1u);
}

TEST(ConcurrentCollectorTest, LinkAndFleetQueriesMergeAcrossLanes) {
  common::Xoshiro256 rng(12);
  ConcurrentShardedCollector collector;
  common::LatencySketch link0_direct, link1_direct;
  for (std::uint32_t i = 0; i < 30; ++i) {
    auto r = make_record(i, i % 2, 0, i % 2 == 0 ? 10e3 : 200e3, rng, 10);
    (i % 2 == 0 ? link0_direct : link1_direct).merge(r.sketch);
    collector.submit(std::move(r));
  }
  EXPECT_EQ(collector.links(), (std::vector<LinkId>{0, 1}));
  const auto link0 = collector.link_distribution(0);
  ASSERT_TRUE(link0.has_value());
  EXPECT_EQ(link0->bins(), link0_direct.bins());
  EXPECT_FALSE(collector.link_distribution(42).has_value());
  auto fleet_direct = link0_direct;
  fleet_direct.merge(link1_direct);
  EXPECT_EQ(collector.fleet().bins(), fleet_direct.bins());
}

TEST(ConcurrentCollectorTest, AccuracyMismatchThrowsOnSubmittingThread) {
  ConcurrentShardedCollector collector;
  EstimateRecord r;
  r.key = make_key(1);
  r.sketch = common::LatencySketch(common::LatencySketchConfig{0.05, 128});
  r.sketch.add(100.0);
  EXPECT_THROW(collector.submit(std::move(r)), std::invalid_argument);
  EXPECT_EQ(collector.flow_count(), 0u);
  EXPECT_EQ(collector.records_ingested(), 0u);
}

TEST(ConcurrentCollectorTest, ShardFlowCountsCoverAllLanes) {
  const auto records = make_workload(21, 300, 80);
  ConcurrentCollectorConfig cfg;
  cfg.shard_count = 4;
  ConcurrentShardedCollector collector(cfg);
  collector.submit(records);
  const auto counts = collector.shard_flow_counts();
  ASSERT_EQ(counts.size(), 4u);
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  EXPECT_EQ(total, collector.flow_count());
  EXPECT_EQ(collector.flow_count(), 80u);
  EXPECT_EQ(collector.epoch_count(), 3u);
}

TEST(ConcurrentCollectorTest, QuiesceIsABarrierForConcurrentReaders) {
  // One writer streams records while a reader repeatedly queries; every
  // query must see internally consistent (quiesced) state and never crash
  // or race. The final state must be exact.
  constexpr std::uint32_t kFlows = 60;
  const auto records = make_workload(33, 1'000, kFlows);
  ShardedCollector serial(CollectorConfig{4, {}});
  serial.ingest(records);

  ConcurrentCollectorConfig cfg;
  cfg.shard_count = 4;
  cfg.queue_capacity = 32;
  ConcurrentShardedCollector concurrent(cfg);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (const auto& r : records) concurrent.submit(r);
    done.store(true);
  });
  std::uint64_t last_records = 0;
  while (!done.load()) {
    const std::uint64_t n = concurrent.records_ingested();
    EXPECT_GE(n, last_records);  // monotone under a single writer
    last_records = n;
    (void)concurrent.fleet();
    (void)concurrent.top_k_flows(5, 0.99);
  }
  writer.join();

  expect_equal_state(serial, concurrent.snapshot(), kFlows);
}

}  // namespace
}  // namespace rlir::collect
