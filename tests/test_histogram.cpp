// Unit tests: common/histogram.h — log-scale histogram.
#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"

namespace rlir::common {
namespace {

TEST(LogHistogram, RejectsBadConfig) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 5), std::invalid_argument);
  EXPECT_THROW(LogHistogram(-1.0, 10.0, 5), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 5), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(LogHistogram, BucketCountCoversRange) {
  // 1..1e6 with 10 buckets/decade = 60 buckets.
  const LogHistogram h(1.0, 1e6, 10);
  EXPECT_EQ(h.bucket_count(), 60u);
}

TEST(LogHistogram, UnderflowAndOverflow) {
  LogHistogram h(10.0, 1000.0, 10);
  h.record(5.0);
  h.record(2000.0);
  h.record(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(LogHistogram, NanGoesToUnderflow) {
  LogHistogram h(1.0, 100.0, 5);
  h.record(std::nan(""));
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(LogHistogram, BucketEdgesAreGeometric) {
  const LogHistogram h(1.0, 1000.0, 1);  // one bucket per decade
  EXPECT_NEAR(h.bucket_lower(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bucket_lower(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bucket_lower(2), 100.0, 1e-9);
  // Geometric midpoint of [1,10) is sqrt(10).
  EXPECT_NEAR(h.bucket_mid(0), std::sqrt(10.0), 1e-9);
}

TEST(LogHistogram, RecordPlacesInRightBucket) {
  LogHistogram h(1.0, 1000.0, 1);
  h.record(2.0);    // decade [1,10)
  h.record(20.0);   // decade [10,100)
  h.record(200.0);  // decade [100,1000)
  h.record(3.0);
  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 1u);
  EXPECT_EQ(h.bucket_value(2), 1u);
}

TEST(LogHistogram, WeightedRecord) {
  LogHistogram h(1.0, 100.0, 1);
  h.record(5.0, 10);
  EXPECT_EQ(h.total_count(), 10u);
  EXPECT_EQ(h.bucket_value(0), 10u);
}

TEST(LogHistogram, QuantileApproximatesDistribution) {
  LogHistogram h(1.0, 1e6, 20);
  // 1000 values at 100, 1000 at 10000.
  for (int i = 0; i < 1000; ++i) h.record(100.0);
  for (int i = 0; i < 1000; ++i) h.record(10000.0);
  EXPECT_NEAR(h.quantile(0.25), 100.0, 15.0);
  EXPECT_NEAR(h.quantile(0.75), 10000.0, 1500.0);
  EXPECT_EQ(h.quantile(0.0), h.quantile(-1.0));  // clamped
}

TEST(LogHistogram, QuantileOnEmpty) {
  const LogHistogram h(1.0, 100.0, 5);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, ToStringListsNonEmptyBuckets) {
  LogHistogram h(1.0, 1000.0, 1);
  h.record(0.5);
  h.record(50.0);
  h.record(5000.0);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("<"), std::string::npos);
  EXPECT_NE(s.find(">=top"), std::string::npos);
}

}  // namespace
}  // namespace rlir::common
