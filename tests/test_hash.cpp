// Unit tests: net/hash.h — hash primitives.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string_view>

#include "net/hash.h"

namespace rlir::net {
namespace {

std::span<const std::byte> bytes_of(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

TEST(Crc32c, KnownTestVector) {
  // The canonical CRC-32C check value: crc32c("123456789") = 0xE3069283.
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(crc32c(bytes_of("")), 0u);
}

TEST(Crc32c, SeedChaining) {
  // Hashing "ab" then "cd" with chaining equals hashing "abcd".
  const auto first = crc32c(bytes_of("ab"));
  const auto chained = crc32c(bytes_of("cd"), first);
  EXPECT_EQ(chained, crc32c(bytes_of("abcd")));
}

TEST(Fnv1a64, StableKnownValue) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(fnv1a64(bytes_of("")), 0xcbf29ce484222325ULL);
  // "a" = basis ^ 'a' * prime (well-known value).
  EXPECT_EQ(fnv1a64(bytes_of("a")), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a64, ValueOverload) {
  const std::uint32_t v = 0x12345678;
  const auto h1 = fnv1a64_value(v);
  const auto h2 = fnv1a64_value(v);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, fnv1a64_value(std::uint32_t{0x12345679}));
}

TEST(JenkinsLookup3, DeterministicAndSeedSensitive) {
  const auto a = jenkins_lookup3(bytes_of("hello world"));
  EXPECT_EQ(a, jenkins_lookup3(bytes_of("hello world")));
  EXPECT_NE(a, jenkins_lookup3(bytes_of("hello world"), 1));
  EXPECT_NE(a, jenkins_lookup3(bytes_of("hello worle")));
}

TEST(JenkinsLookup3, AllLengthsUpTo32) {
  // Exercises every tail-length branch (1..12+ bytes).
  std::set<std::uint32_t> hashes;
  std::string s;
  for (int len = 0; len <= 32; ++len) {
    hashes.insert(jenkins_lookup3(bytes_of(s)));
    s.push_back(static_cast<char>('a' + (len % 26)));
  }
  // All 33 prefixes should hash distinctly (no collisions expected here).
  EXPECT_EQ(hashes.size(), 33u);
}

TEST(XorFold16, FoldsHalves) {
  EXPECT_EQ(xor_fold16(0x12345678u), 0x1234u ^ 0x5678u);
  EXPECT_EQ(xor_fold16(0xffff0000u), 0xffffu);
  EXPECT_EQ(xor_fold16(0u), 0u);
}

TEST(Mix64, BijectiveSample) {
  // mix64 is a bijection; sampled values must be distinct and non-trivial.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    seen.insert(mix64(i));
  }
  EXPECT_EQ(seen.size(), 10'000u);
  EXPECT_EQ(mix64(0), 0u);  // the SplitMix64 finalizer fixes zero
  EXPECT_NE(mix64(1), 0u);
}

TEST(Mix64, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  constexpr int kTrials = 64;
  for (int bit = 0; bit < kTrials; ++bit) {
    const std::uint64_t a = mix64(0x0123456789abcdefULL);
    const std::uint64_t b = mix64(0x0123456789abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / kTrials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

// Distribution sweep: each hash spreads sequential inputs evenly over 16
// bins (the property ECMP and LDA bucketing rely on).
enum class HashKind { kCrc, kJenkins, kFnv };

class HashDistributionSweep : public ::testing::TestWithParam<HashKind> {};

TEST_P(HashDistributionSweep, BalancedBins) {
  constexpr int kBins = 16;
  constexpr int kN = 64'000;
  std::vector<int> bins(kBins, 0);
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto data = std::as_bytes(std::span<const std::uint64_t, 1>(&i, 1));
    std::uint64_t h = 0;
    switch (GetParam()) {
      case HashKind::kCrc: h = crc32c(data); break;
      case HashKind::kJenkins: h = jenkins_lookup3(data); break;
      case HashKind::kFnv: h = fnv1a64(data); break;
    }
    ++bins[h % kBins];
  }
  const double expected = static_cast<double>(kN) / kBins;
  for (const int count : bins) {
    EXPECT_NEAR(count, expected, expected * 0.10);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, HashDistributionSweep,
                         ::testing::Values(HashKind::kCrc, HashKind::kJenkins,
                                           HashKind::kFnv));

}  // namespace
}  // namespace rlir::net
