// EpochScheduler: grid-aligned epoch firing, bit-identical batches across
// replays (the determinism contract of the collection tier), idle-flow
// aging bounds, exporter max_flows cap, and the wall-clock driver thread
// (a TSan workload together with test_concurrent_collector).
#include "collect/epoch_scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "collect/sharded_collector.h"
#include "common/rng.h"

namespace rlir::collect {
namespace {

using timebase::Duration;
using timebase::TimePoint;

net::FiveTuple make_key(std::uint32_t i) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(10, 2, static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i));
  key.dst = net::Ipv4Address(192, 168, 1, 1);
  key.src_port = static_cast<std::uint16_t>(3000 + i);
  key.dst_port = 80;
  key.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  return key;
}

rli::RliReceiver::PacketEstimate estimate_at(std::uint32_t flow, std::int64_t t_ns,
                                             double latency_ns) {
  return rli::RliReceiver::PacketEstimate{make_key(flow), TimePoint(t_ns), latency_ns};
}

/// A seeded estimate schedule: `count` estimates at strictly increasing
/// times over [0, horizon), cycling through `flows` flows.
struct ScheduledEstimate {
  std::int64_t t_ns;
  std::uint32_t flow;
  double latency_ns;
};
std::vector<ScheduledEstimate> make_schedule(std::uint64_t seed, std::size_t count,
                                             std::uint32_t flows, std::int64_t horizon_ns) {
  common::Xoshiro256 rng(seed);
  std::vector<ScheduledEstimate> events;
  events.reserve(count);
  const std::int64_t step = horizon_ns / static_cast<std::int64_t>(count);
  for (std::size_t i = 0; i < count; ++i) {
    events.push_back(ScheduledEstimate{static_cast<std::int64_t>(i) * step + 1,
                                       static_cast<std::uint32_t>(i) % flows,
                                       rng.uniform(10e3, 200e3)});
  }
  return events;
}

/// Replays a schedule through an exporter + scheduler, encoding every
/// delivered batch; returns the concatenated wire bytes (the determinism
/// fingerprint) and the delivered epoch sequence.
struct ReplayResult {
  std::vector<std::uint8_t> wire;
  std::vector<std::uint32_t> epochs;
  std::uint64_t aged = 0;
};
ReplayResult replay(const std::vector<ScheduledEstimate>& events, Duration period,
                    Duration max_idle, std::int64_t advance_step_ns) {
  EstimateExporter exporter(ExporterConfig{{}, /*link=*/5, /*max_flows=*/0});
  EpochSchedulerConfig cfg;
  cfg.period = period;
  cfg.max_flow_idle = max_idle;
  EpochScheduler scheduler(cfg);
  scheduler.add_exporter(&exporter);
  ReplayResult result;
  scheduler.add_sink([&result](std::uint32_t epoch, const std::vector<EstimateRecord>& batch) {
    result.epochs.push_back(epoch);
    const auto bytes = encode_records(batch);
    result.wire.insert(result.wire.end(), bytes.begin(), bytes.end());
  });

  // Drive sim time on a fixed cadence independent of event times: the
  // scheduler's grid, not the call pattern, decides epoch boundaries.
  std::int64_t now = 0;
  for (const auto& ev : events) {
    while (now < ev.t_ns) {
      now = std::min(ev.t_ns, now + advance_step_ns);
      scheduler.advance_to(TimePoint(now));
    }
    exporter.observe(1, estimate_at(ev.flow, ev.t_ns, ev.latency_ns));
  }
  scheduler.advance_to(TimePoint(now + period.ns()));  // final drain boundary
  result.aged = scheduler.flows_aged_out();
  return result;
}

TEST(EpochSchedulerTest, NonPositivePeriodThrows) {
  EpochSchedulerConfig cfg;
  cfg.period = Duration::zero();
  EXPECT_THROW(EpochScheduler{cfg}, std::invalid_argument);
}

TEST(EpochSchedulerTest, FiresOncePerGridBoundaryRegardlessOfCallPattern) {
  EstimateExporter exporter(ExporterConfig{{}, 0, 0});
  EpochSchedulerConfig cfg;
  cfg.period = Duration::milliseconds(1);
  EpochScheduler scheduler(cfg);
  scheduler.add_exporter(&exporter);

  // Many tiny advances, then one huge one: boundary count only depends on
  // how much simulated time passed.
  for (int i = 1; i <= 10; ++i) {
    scheduler.advance_to(TimePoint(Duration::microseconds(100 * i).ns()));
  }
  EXPECT_EQ(scheduler.epochs_fired(), 1u);  // crossed 1ms once
  scheduler.advance_to(TimePoint(Duration::milliseconds(5).ns()));
  EXPECT_EQ(scheduler.epochs_fired(), 5u);
  // Re-advancing to the past (or the same time) is a no-op.
  scheduler.advance_to(TimePoint(Duration::milliseconds(3).ns()));
  EXPECT_EQ(scheduler.epochs_fired(), 5u);
  EXPECT_EQ(scheduler.next_epoch(), 5u);
}

TEST(EpochSchedulerTest, SameSeedAndPeriodYieldBitIdenticalBatches) {
  const auto events = make_schedule(/*seed=*/77, /*count=*/400, /*flows=*/23,
                                    /*horizon_ns=*/Duration::milliseconds(8).ns());
  const auto a = replay(events, Duration::milliseconds(1), Duration::zero(),
                        Duration::microseconds(50).ns());
  const auto b = replay(events, Duration::milliseconds(1), Duration::zero(),
                        Duration::microseconds(50).ns());
  ASSERT_FALSE(a.wire.empty());
  EXPECT_EQ(a.wire, b.wire);
  EXPECT_EQ(a.epochs, b.epochs);
}

TEST(EpochSchedulerTest, AdvanceCadenceDoesNotChangeBatches) {
  // Same workload driven with 50us advances vs 400us advances: boundaries
  // are on the period grid either way, so the delivered record stream is
  // byte-identical (aging off; with aging on, eviction instants legitimately
  // depend on when the scheduler gets to look at the clock).
  const auto events = make_schedule(/*seed=*/78, /*count=*/300, /*flows=*/17,
                                    /*horizon_ns=*/Duration::milliseconds(6).ns());
  const auto fine = replay(events, Duration::milliseconds(1), Duration::zero(),
                           Duration::microseconds(50).ns());
  const auto coarse = replay(events, Duration::milliseconds(1), Duration::zero(),
                             Duration::microseconds(400).ns());
  EXPECT_EQ(fine.wire, coarse.wire);
  EXPECT_EQ(fine.epochs, coarse.epochs);
}

TEST(EpochSchedulerTest, DrainedBatchesReachACollectorWithEpochIndices) {
  EstimateExporter exporter(ExporterConfig{{}, /*link=*/2, 0});
  EpochSchedulerConfig cfg;
  cfg.period = Duration::milliseconds(1);
  EpochScheduler scheduler(cfg);
  scheduler.add_exporter(&exporter);
  ShardedCollector collector;
  scheduler.add_sink([&collector](std::uint32_t, const std::vector<EstimateRecord>& batch) {
    collector.ingest(batch);
  });

  exporter.observe(1, estimate_at(0, Duration::microseconds(100).ns(), 50e3));
  exporter.observe(1, estimate_at(1, Duration::microseconds(200).ns(), 60e3));
  scheduler.advance_to(TimePoint(Duration::milliseconds(1).ns()));  // epoch 0
  exporter.observe(1, estimate_at(0, Duration::microseconds(1200).ns(), 70e3));
  scheduler.advance_to(TimePoint(Duration::milliseconds(2).ns()));  // epoch 1

  EXPECT_EQ(collector.records_ingested(), 3u);
  EXPECT_EQ(collector.flow_count(), 2u);
  EXPECT_EQ(collector.epoch_count(), 2u);
  EXPECT_EQ(scheduler.records_delivered(), 3u);
  EXPECT_EQ(exporter.flow_count(), 0u);  // drained
}

TEST(EpochSchedulerTest, IdleFlowsAgeOutEarlyAndNothingIsLost) {
  EstimateExporter exporter(ExporterConfig{{}, /*link=*/3, 0});
  EpochSchedulerConfig cfg;
  cfg.period = Duration::milliseconds(10);  // long epoch
  cfg.max_flow_idle = Duration::milliseconds(1);
  EpochScheduler scheduler(cfg);
  scheduler.add_exporter(&exporter);
  ShardedCollector collector;
  std::uint64_t aging_batches = 0;
  scheduler.add_sink([&](std::uint32_t, const std::vector<EstimateRecord>& batch) {
    collector.ingest(batch);
    ++aging_batches;
  });

  // Flow 0 sends once at t=0.1ms and goes quiet; flow 1 keeps sending.
  exporter.observe(1, estimate_at(0, Duration::microseconds(100).ns(), 40e3));
  for (int i = 1; i <= 8; ++i) {
    exporter.observe(1, estimate_at(1, Duration::microseconds(500 * i).ns(), 50e3));
    scheduler.advance_to(TimePoint(Duration::microseconds(500 * i).ns()));
  }

  // Flow 0 was idle > 1ms mid-epoch: evicted, shipped, memory freed — while
  // the active flow stays resident. No boundary has fired yet.
  EXPECT_EQ(scheduler.epochs_fired(), 0u);
  EXPECT_EQ(scheduler.flows_aged_out(), 1u);
  EXPECT_EQ(exporter.flows_aged_out(), 1u);
  EXPECT_EQ(exporter.flow_count(), 1u);
  EXPECT_EQ(collector.flow_count(), 1u);
  ASSERT_NE(collector.flow(make_key(0)), nullptr);

  // The epoch boundary drains the survivor; every estimate is accounted for.
  scheduler.advance_to(TimePoint(Duration::milliseconds(10).ns()));
  EXPECT_EQ(scheduler.epochs_fired(), 1u);
  EXPECT_EQ(collector.flow_count(), 2u);
  EXPECT_EQ(collector.estimates_ingested(), 9u);
  EXPECT_GE(aging_batches, 2u);  // at least: one aging batch + one drain
}

TEST(EpochSchedulerTest, ExporterMaxFlowsCapEvictsLruIntoNextDrain) {
  EstimateExporter exporter(ExporterConfig{{}, /*link=*/4, /*max_flows=*/2});
  exporter.observe(1, estimate_at(0, 1'000, 10e3));
  exporter.observe(1, estimate_at(1, 2'000, 20e3));
  EXPECT_EQ(exporter.flow_count(), 2u);

  // Flow 2 arrives at the cap: flow 0 (least recently active) is evicted
  // into the pending buffer, not dropped.
  exporter.observe(1, estimate_at(2, 3'000, 30e3));
  EXPECT_EQ(exporter.flow_count(), 2u);
  EXPECT_EQ(exporter.pending_eviction_count(), 1u);
  EXPECT_EQ(exporter.flows_cap_evicted(), 1u);

  // Re-observing the evicted flow restarts it (second record, same flow).
  exporter.observe(1, estimate_at(0, 4'000, 15e3));
  EXPECT_EQ(exporter.flows_cap_evicted(), 2u);  // flow 1 evicted this time

  const auto records = exporter.drain(/*epoch=*/9);
  ASSERT_EQ(records.size(), 4u);  // flows {0(evicted), 1(evicted), 0, 2}
  EXPECT_EQ(exporter.flow_count(), 0u);
  EXPECT_EQ(exporter.pending_eviction_count(), 0u);
  std::uint64_t estimates = 0;
  for (const auto& r : records) {
    EXPECT_EQ(r.epoch, 9u);
    estimates += r.sketch.count();
    // Drained in flow-key order.
  }
  EXPECT_EQ(estimates, 4u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].key, records[i].key);
  }
}

TEST(EpochSchedulerTest, CapEvictionsShipAtEveryAdvanceNotJustBoundaries) {
  // A burst of new flows at a capped exporter must not pile evicted
  // sketches up until the epoch boundary: the scheduler ships the pending
  // buffer at every advance, so exporter memory stays bounded by the cap
  // plus one advance step's burst.
  EstimateExporter exporter(ExporterConfig{{}, /*link=*/7, /*max_flows=*/2});
  EpochSchedulerConfig cfg;
  cfg.period = Duration::milliseconds(10);
  EpochScheduler scheduler(cfg);
  scheduler.add_exporter(&exporter);
  ShardedCollector collector;
  scheduler.add_sink([&collector](std::uint32_t, const std::vector<EstimateRecord>& batch) {
    collector.ingest(batch);
  });

  // Six distinct flows against a cap of 2: four get evicted into pending.
  for (std::uint32_t f = 0; f < 6; ++f) {
    exporter.observe(1, estimate_at(f, Duration::microseconds(100 * (f + 1)).ns(), 25e3));
  }
  EXPECT_EQ(exporter.flow_count(), 2u);
  EXPECT_EQ(exporter.pending_eviction_count(), 4u);

  // Mid-epoch advance (no boundary yet): pending ships and is freed.
  scheduler.advance_to(TimePoint(Duration::milliseconds(1).ns()));
  EXPECT_EQ(scheduler.epochs_fired(), 0u);
  EXPECT_EQ(exporter.pending_eviction_count(), 0u);
  EXPECT_EQ(collector.records_ingested(), 4u);

  // The boundary drains the two live flows; all six estimates arrive.
  scheduler.advance_to(TimePoint(Duration::milliseconds(10).ns()));
  EXPECT_EQ(collector.estimates_ingested(), 6u);
  EXPECT_EQ(collector.flow_count(), 6u);
}

TEST(EpochSchedulerTest, ManualFireUsesSequentialEpochIndices) {
  EpochSchedulerConfig cfg;
  cfg.period = Duration::milliseconds(1);
  cfg.first_epoch = 10;
  EpochScheduler scheduler(cfg);
  EXPECT_EQ(scheduler.fire_epoch(), 10u);
  EXPECT_EQ(scheduler.fire_epoch(), 11u);
  EXPECT_EQ(scheduler.next_epoch(), 12u);
  EXPECT_EQ(scheduler.epochs_fired(), 2u);
}

TEST(EpochSchedulerTest, WallClockModeFiresPeriodicallyAndStopsCleanly) {
  EstimateExporter exporter(ExporterConfig{{}, /*link=*/6, 0});
  EpochSchedulerConfig cfg;
  cfg.period = Duration::milliseconds(1);
  EpochScheduler scheduler(cfg);
  scheduler.add_exporter(&exporter);
  ShardedCollector collector;
  scheduler.add_sink([&collector](std::uint32_t, const std::vector<EstimateRecord>& batch) {
    collector.ingest(batch);
  });

  scheduler.start(Duration::milliseconds(2));
  EXPECT_TRUE(scheduler.running());
  EXPECT_THROW(scheduler.start(Duration::milliseconds(2)), std::logic_error);

  // Producer feeds the exporter under pause() — the wall-clock drain must
  // never observe a half-applied estimate (TSan enforces this).
  for (int i = 0; i < 40; ++i) {
    {
      const auto lock = scheduler.pause();
      exporter.observe(1, estimate_at(static_cast<std::uint32_t>(i % 5),
                                      1'000 * (i + 1), 30e3));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.stop();
  EXPECT_FALSE(scheduler.running());
  const auto fired = scheduler.epochs_fired();
  EXPECT_GE(fired, 1u);

  // Stop is idempotent and firing has ceased.
  scheduler.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(scheduler.epochs_fired(), fired);

  // Whatever was observed before the last drain reached the collector;
  // a final manual fire accounts for the remainder.
  scheduler.fire_epoch();
  EXPECT_EQ(collector.estimates_ingested(), 40u);
  EXPECT_EQ(collector.flow_count(), 5u);
}

}  // namespace
}  // namespace rlir::collect
