// Unit tests: trace/divider.h — regular/cross classification.
#include <gtest/gtest.h>

#include "trace/divider.h"

namespace rlir::trace {
namespace {

net::Packet packet_from(net::Ipv4Address src) {
  net::Packet p;
  p.key.src = src;
  p.kind = net::PacketKind::kRegular;  // pre-set kind must not matter
  return p;
}

TEST(TrafficDivider, ClassifiesBySourcePrefix) {
  TrafficDivider divider;
  divider.add_regular(net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 16));
  divider.add_cross(net::Ipv4Prefix(net::Ipv4Address(172, 16, 0, 0), 16));

  EXPECT_EQ(divider.classify(packet_from(net::Ipv4Address(10, 0, 3, 4))),
            net::PacketKind::kRegular);
  EXPECT_EQ(divider.classify(packet_from(net::Ipv4Address(172, 16, 9, 9))),
            net::PacketKind::kCross);
  EXPECT_EQ(divider.rule_count(), 2u);
}

TEST(TrafficDivider, UnknownSourceDefaultsToCross) {
  TrafficDivider divider;
  divider.add_regular(net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 16));
  EXPECT_EQ(divider.classify(packet_from(net::Ipv4Address(192, 168, 1, 1))),
            net::PacketKind::kCross);
}

TEST(TrafficDivider, LongestPrefixDecides) {
  TrafficDivider divider;
  divider.add_cross(net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 8));
  divider.add_regular(net::Ipv4Prefix(net::Ipv4Address(10, 5, 0, 0), 16));
  EXPECT_EQ(divider.classify(packet_from(net::Ipv4Address(10, 5, 1, 1))),
            net::PacketKind::kRegular);
  EXPECT_EQ(divider.classify(packet_from(net::Ipv4Address(10, 6, 1, 1))),
            net::PacketKind::kCross);
}

TEST(TrafficDivider, DivideStampsKind) {
  TrafficDivider divider;
  divider.add_regular(net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 8));
  net::Packet p = packet_from(net::Ipv4Address(10, 1, 1, 1));
  p.kind = net::PacketKind::kCross;
  const net::Packet out = divider.divide(p);
  EXPECT_EQ(out.kind, net::PacketKind::kRegular);
  // Other fields pass through untouched.
  EXPECT_EQ(out.key, p.key);
}

}  // namespace
}  // namespace rlir::trace
