// Unit tests: net/packet.h — the packet metadata record and reference-packet
// construction.
#include <gtest/gtest.h>

#include <string>

#include "net/packet.h"
#include "timebase/time.h"

namespace rlir::net {
namespace {

using timebase::Duration;
using timebase::TimePoint;

TEST(PacketKindName, CoversAllKinds) {
  EXPECT_STREQ(to_string(PacketKind::kRegular), "regular");
  EXPECT_STREQ(to_string(PacketKind::kCross), "cross");
  EXPECT_STREQ(to_string(PacketKind::kReference), "reference");
}

TEST(Packet, DefaultsAreRegularAndUnowned) {
  Packet p;
  EXPECT_EQ(p.kind, PacketKind::kRegular);
  EXPECT_FALSE(p.is_reference());
  EXPECT_EQ(p.sender, kNoSender);
  EXPECT_EQ(p.tos, 0);
  EXPECT_EQ(p.seq, 0u);
  EXPECT_EQ(p.size_bytes, 0u);
  EXPECT_EQ(p.ts, TimePoint::zero());
  EXPECT_EQ(p.injected_at, TimePoint::zero());
}

TEST(Packet, TrueDelayIsTsMinusInjection) {
  Packet p;
  p.injected_at = TimePoint(1'000);
  p.ts = TimePoint(4'500);
  EXPECT_EQ(p.true_delay(), Duration(3'500));

  // ts is mutated by each queue; true_delay tracks it.
  p.ts += Duration::microseconds(2);
  EXPECT_EQ(p.true_delay(), Duration(5'500));
}

TEST(Packet, ToStringMentionsKindSeqAndSize) {
  Packet p;
  p.seq = 42;
  p.size_bytes = 1500;
  const std::string s = p.to_string();
  EXPECT_NE(s.find("regular"), std::string::npos);
  EXPECT_NE(s.find("seq=42"), std::string::npos);
  EXPECT_NE(s.find("1500B"), std::string::npos);
}

TEST(MakeReferencePacket, StampsSenderTimeAndKind) {
  const TimePoint now(7'000'000);
  const TimePoint stamp(7'000'250);  // skewed sender clock
  const Packet p = make_reference_packet(/*id=*/3, now, stamp, /*seq=*/99);

  EXPECT_TRUE(p.is_reference());
  EXPECT_EQ(p.kind, PacketKind::kReference);
  EXPECT_EQ(p.sender, 3);
  EXPECT_EQ(p.ts, now);
  EXPECT_EQ(p.injected_at, now);
  EXPECT_EQ(p.ref_stamp, stamp);
  EXPECT_EQ(p.seq, 99u);
  // Probes are minimum-size by default (they carry only a timestamp).
  EXPECT_EQ(p.size_bytes, 64u);
  EXPECT_EQ(p.true_delay(), Duration::zero());
}

TEST(MakeReferencePacket, HonorsCustomSize) {
  const Packet p =
      make_reference_packet(/*id=*/1, TimePoint::zero(), TimePoint::zero(), /*seq=*/0,
                            /*size_bytes=*/128);
  EXPECT_EQ(p.size_bytes, 128u);
}

TEST(MakeReferencePacket, ToStringIncludesSenderAndStamp) {
  const Packet p = make_reference_packet(/*id=*/5, TimePoint(1), TimePoint(2), /*seq=*/7);
  const std::string s = p.to_string();
  EXPECT_NE(s.find("reference"), std::string::npos);
  EXPECT_NE(s.find("sender=5"), std::string::npos);
  EXPECT_NE(s.find("stamp="), std::string::npos);
}

}  // namespace
}  // namespace rlir::net
