// Unit tests: rlir/segment_truth.h — entry/exit delay tracking.
#include <gtest/gtest.h>

#include "rlir/segment_truth.h"

namespace rlir::rlir {
namespace {

using timebase::TimePoint;

net::Packet packet(std::uint64_t seq, std::int64_t ts_ns, std::uint16_t port = 1,
                   net::PacketKind kind = net::PacketKind::kRegular) {
  net::Packet p;
  p.seq = seq;
  p.ts = TimePoint(ts_ns);
  p.key.src_port = port;
  p.kind = kind;
  return p;
}

TEST(SegmentTruth, ComputesEntryToExitDelay) {
  SegmentTruth truth;
  truth.entry_tap().on_packet(packet(1, 100), TimePoint(100));
  truth.entry_tap().on_packet(packet(2, 200), TimePoint(200));
  truth.exit_tap().on_packet(packet(1, 600), TimePoint(600));
  truth.exit_tap().on_packet(packet(2, 900), TimePoint(900));

  EXPECT_EQ(truth.matched_packets(), 2u);
  EXPECT_EQ(truth.pending_entries(), 0u);
  ASSERT_EQ(truth.per_flow().size(), 1u);
  const auto& stats = truth.per_flow().begin()->second;
  EXPECT_DOUBLE_EQ(stats.mean(), 600.0);  // (500 + 700) / 2
}

TEST(SegmentTruth, PerFlowSeparation) {
  SegmentTruth truth;
  truth.entry_tap().on_packet(packet(1, 0, 1), TimePoint(0));
  truth.entry_tap().on_packet(packet(2, 0, 2), TimePoint(0));
  truth.exit_tap().on_packet(packet(1, 100, 1), TimePoint(100));
  truth.exit_tap().on_packet(packet(2, 300, 2), TimePoint(300));
  ASSERT_EQ(truth.per_flow().size(), 2u);
}

TEST(SegmentTruth, UnseenExitCounted) {
  SegmentTruth truth;
  truth.exit_tap().on_packet(packet(9, 500), TimePoint(500));
  EXPECT_EQ(truth.unmatched_exits(), 1u);
  EXPECT_EQ(truth.matched_packets(), 0u);
  EXPECT_TRUE(truth.per_flow().empty());
}

TEST(SegmentTruth, EntriesWithoutExitStayPending) {
  SegmentTruth truth;
  truth.entry_tap().on_packet(packet(1, 0), TimePoint(0));
  truth.entry_tap().on_packet(packet(2, 0), TimePoint(0));
  truth.exit_tap().on_packet(packet(1, 100), TimePoint(100));
  // Packet 2 was ECMP'd elsewhere or dropped.
  EXPECT_EQ(truth.pending_entries(), 1u);
  EXPECT_EQ(truth.matched_packets(), 1u);
}

TEST(SegmentTruth, DefaultFilterIgnoresNonRegular) {
  SegmentTruth truth;
  truth.entry_tap().on_packet(packet(1, 0, 1, net::PacketKind::kReference), TimePoint(0));
  truth.entry_tap().on_packet(packet(2, 0, 1, net::PacketKind::kCross), TimePoint(0));
  truth.exit_tap().on_packet(packet(1, 100, 1, net::PacketKind::kReference), TimePoint(100));
  EXPECT_EQ(truth.matched_packets(), 0u);
  EXPECT_EQ(truth.unmatched_exits(), 0u);
  EXPECT_EQ(truth.pending_entries(), 0u);
}

TEST(SegmentTruth, CustomFilter) {
  SegmentTruth truth([](const net::Packet& p) { return p.key.src_port == 7; });
  truth.entry_tap().on_packet(packet(1, 0, 7), TimePoint(0));
  truth.entry_tap().on_packet(packet(2, 0, 8), TimePoint(0));
  truth.exit_tap().on_packet(packet(1, 50, 7), TimePoint(50));
  truth.exit_tap().on_packet(packet(2, 50, 8), TimePoint(50));
  EXPECT_EQ(truth.matched_packets(), 1u);
}

TEST(SegmentTruth, ReentryOverwritesEntryTime) {
  // A retransmitted seq (or re-observation) takes the latest entry stamp.
  SegmentTruth truth;
  truth.entry_tap().on_packet(packet(1, 0), TimePoint(0));
  truth.entry_tap().on_packet(packet(1, 100), TimePoint(100));
  truth.exit_tap().on_packet(packet(1, 250), TimePoint(250));
  ASSERT_EQ(truth.matched_packets(), 1u);
  EXPECT_DOUBLE_EQ(truth.per_flow().begin()->second.mean(), 150.0);
}

}  // namespace
}  // namespace rlir::rlir
