// The framed message layer: exact round-trips under arbitrary stream
// chunking, and rejection of every corruption class the protocol guards
// against — bad magic, wrong version, unknown type, reserved bits,
// implausible lengths, and payload CRC mismatches.
#include "transport/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace rlir::transport {
namespace {

std::vector<std::uint8_t> payload_of(std::size_t n, std::uint8_t start = 0) {
  std::vector<std::uint8_t> p(n);
  std::iota(p.begin(), p.end(), start);
  return p;
}

TEST(TransportFrame, RoundTripsOneFrame) {
  const auto payload = payload_of(257);
  const auto bytes = encode_frame(FrameType::kRecordBatch, payload);
  EXPECT_EQ(bytes.size(), kFrameHeaderSize + payload.size());

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kRecordBatch);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(TransportFrame, RoundTripsEmptyPayload) {
  const auto bytes = encode_frame(FrameType::kQuery, std::vector<std::uint8_t>{});
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kQuery);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(TransportFrame, ReassemblesByteAtATime) {
  // The harshest chunking a byte stream can produce: one byte per feed.
  const auto payload = payload_of(64, 7);
  const auto bytes = encode_frame(FrameType::kQueryReply, payload);
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    EXPECT_FALSE(decoder.next().has_value()) << "frame completed early at byte " << i;
  }
  decoder.feed(&bytes.back(), 1);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
}

TEST(TransportFrame, SplitsCoalescedFrames) {
  // Several frames in one feed — the normal case after a large read.
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 5; ++i) {
    const auto bytes = encode_frame(FrameType::kRecordBatch,
                                    payload_of(static_cast<std::size_t>(10 * i + 1)));
    wire.insert(wire.end(), bytes.begin(), bytes.end());
  }
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  for (int i = 0; i < 5; ++i) {
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value()) << "frame " << i;
    EXPECT_EQ(frame->payload.size(), static_cast<std::size_t>(10 * i + 1));
  }
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(TransportFrame, TruncatedFrameStaysPending) {
  const auto bytes = encode_frame(FrameType::kRecordBatch, payload_of(100));
  // Every proper prefix is "incomplete", never "corrupt".
  for (std::size_t cut : {std::size_t{1}, kFrameHeaderSize - 1, kFrameHeaderSize,
                          bytes.size() - 1}) {
    FrameDecoder decoder;
    decoder.feed(bytes.data(), cut);
    EXPECT_FALSE(decoder.next().has_value()) << "cut=" << cut;
    EXPECT_EQ(decoder.buffered_bytes(), cut);
  }
}

TEST(TransportFrame, RejectsBadMagic) {
  auto bytes = encode_frame(FrameType::kRecordBatch, payload_of(8));
  bytes[0] ^= 0xff;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(TransportFrame, RejectsWrongVersion) {
  auto bytes = encode_frame(FrameType::kRecordBatch, payload_of(8));
  bytes[4] = kFrameVersion + 1;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(TransportFrame, RejectsUnknownType) {
  auto bytes = encode_frame(FrameType::kRecordBatch, payload_of(8));
  bytes[5] = 0x7f;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(TransportFrame, RejectsNonzeroReserved) {
  auto bytes = encode_frame(FrameType::kRecordBatch, payload_of(8));
  bytes[6] = 1;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(TransportFrame, RejectsImplausibleLength) {
  auto bytes = encode_frame(FrameType::kRecordBatch, payload_of(8));
  // Length field is bytes 8..11 little-endian; claim ~4 GiB.
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0xff;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(TransportFrame, RejectsCorruptPayload) {
  auto bytes = encode_frame(FrameType::kRecordBatch, payload_of(64));
  bytes[kFrameHeaderSize + 20] ^= 0x01;  // one flipped payload bit
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(TransportFrame, PoisonedDecoderKeepsThrowing) {
  auto bad = encode_frame(FrameType::kRecordBatch, payload_of(8));
  bad[0] ^= 0xff;
  FrameDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  EXPECT_THROW(decoder.next(), FrameError);
  // Feeding good bytes afterwards cannot resurrect the stream: there is no
  // resync point, so the decoder stays failed.
  const auto good = encode_frame(FrameType::kQuery, payload_of(4));
  decoder.feed(good.data(), good.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

}  // namespace
}  // namespace rlir::transport
