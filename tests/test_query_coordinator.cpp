// QueryCoordinator: the merge math in isolation (exact sketch unions,
// worst-first top-k merging with duplicate resolution, saturating stats
// sums), then the coordinator fanning real queries over loopback
// connections to live agents — answers must equal a single collector that
// ingested everything, including for a flow split across agents and for a
// fleet with an unreachable member (partial truth, never double counting).
#include "transport/coordinator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "transport/agent.h"
#include "transport/byte_stream.h"

namespace rlir::transport {
namespace {

std::vector<collect::EstimateRecord> make_batch(std::size_t n, std::uint32_t epoch,
                                                std::uint64_t seed, std::uint16_t port_base) {
  common::Xoshiro256 rng(seed);
  std::vector<collect::EstimateRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    collect::EstimateRecord r;
    r.key.src = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i));
    r.key.dst = net::Ipv4Address(10, 1, 0, 1);
    r.key.src_port = static_cast<std::uint16_t>(port_base + i);
    r.key.dst_port = 80;
    r.epoch = epoch;
    r.link = static_cast<collect::LinkId>(i % 2);
    for (int j = 0; j < 30; ++j) r.sketch.add(rng.lognormal(9.0, 1.0));
    records.push_back(std::move(r));
  }
  return records;
}

void expect_same_sketch(const common::LatencySketch& got, const common::LatencySketch& want) {
  EXPECT_EQ(got.bins(), want.bins());
  EXPECT_EQ(got.count(), want.count());
  // Bins and counts merge exactly; the moment sum is a double accumulated
  // in a different order on each side (merge reassociates the additions),
  // so it is equal only up to rounding.
  EXPECT_NEAR(got.sum(), want.sum(), 1e-9 * std::max(1.0, want.sum()));
}

// --- Merge helpers in isolation ---------------------------------------------

TEST(CoordinatorMerge, FleetSketchUnionIsExact) {
  common::Xoshiro256 rng(5);
  std::vector<common::LatencySketch> parts(3);
  common::LatencySketch want;
  for (auto& part : parts) {
    for (int i = 0; i < 200; ++i) {
      const double v = rng.lognormal(9.0, 1.5);
      part.add(v);
      want.add(v);
    }
  }
  expect_same_sketch(merge_fleet_sketches(parts), want);
  EXPECT_EQ(merge_fleet_sketches({}).count(), 0u);
}

TEST(CoordinatorMerge, FleetSketchUnionRejectsAccuracyMismatch) {
  common::LatencySketchConfig coarse;
  coarse.relative_accuracy = 0.1;
  std::vector<common::LatencySketch> parts;
  parts.emplace_back();
  parts.emplace_back(coarse);
  parts[0].add(100.0);
  parts[1].add(100.0);
  EXPECT_THROW(merge_fleet_sketches(parts), std::invalid_argument);
}

TEST(CoordinatorMerge, SaturatingAddClampsAtMax) {
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  static_assert(saturating_add(1, 2) == 3);
  static_assert(saturating_add(kMax, 1) == kMax);
  static_assert(saturating_add(kMax, kMax) == kMax);
  static_assert(saturating_add(0, kMax) == kMax);
}

TEST(CoordinatorMerge, AgentStatsSumFieldWiseAndSaturate) {
  AgentStats a;
  a.records_ingested = 10;
  a.flows = 3;
  a.protocol_errors = 1;
  AgentStats b;
  b.records_ingested = 32;
  b.flows = std::numeric_limits<std::uint64_t>::max();
  const auto total = merge_agent_stats({a, b});
  EXPECT_EQ(total.records_ingested, 42u);
  EXPECT_EQ(total.flows, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(total.protocol_errors, 1u);
}

collect::RankedFlowSummary ranked(std::uint16_t port, double rank) {
  collect::RankedFlowSummary entry;
  entry.first = rank;
  entry.second.key.src = net::Ipv4Address(10, 0, 0, 1);
  entry.second.key.dst = net::Ipv4Address(10, 1, 0, 1);
  entry.second.key.src_port = port;
  entry.second.key.dst_port = 80;
  entry.second.p99_ns = rank;
  return entry;
}

TEST(CoordinatorMerge, TopKDisjointPartsMergeWorstFirst) {
  const std::vector<std::vector<collect::RankedFlowSummary>> parts = {
      {ranked(1, 900.0), ranked(2, 500.0)},
      {ranked(3, 700.0), ranked(4, 100.0)},
      {ranked(5, 800.0)},
  };
  const auto merged = merge_ranked_top_k(parts, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].second.key.src_port, 1);
  EXPECT_EQ(merged[1].second.key.src_port, 5);
  EXPECT_EQ(merged[2].second.key.src_port, 3);
  // k larger than the union: everything, still sorted.
  EXPECT_EQ(merge_ranked_top_k(parts, 100).size(), 5u);
}

TEST(CoordinatorMerge, TopKDuplicatesResolveExactlyOrWorstWins) {
  const std::vector<std::vector<collect::RankedFlowSummary>> parts = {
      {ranked(7, 300.0)},
      {ranked(7, 400.0)},
  };
  // Without a resolver the worse rank is kept (deterministic fallback).
  auto merged = merge_ranked_top_k(parts, 4);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].first, 400.0);

  // With a resolver the duplicate is re-derived (e.g. from the merged
  // sketch: 300 + 400 worth of records might rank at 650).
  merged = merge_ranked_top_k(parts, 4, [](const net::FiveTuple& key) {
    return collect::RankedFlowSummary{650.0, collect::FlowSummary{key, 60, 0, 0, 650.0, 0}};
  });
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].first, 650.0);
  EXPECT_EQ(merged[0].second.packets, 60u);
}

TEST(CoordinatorMerge, SummarizeFlowMatchesCollectorDerivation) {
  collect::ShardedCollector collector;
  const auto batch = make_batch(5, 0, 7, 2000);
  collector.ingest(batch);
  const auto top = collector.top_k_ranked(5, 0.99);
  ASSERT_EQ(top.size(), 5u);
  for (const auto& [rank, want] : top) {
    const auto* sketch = collector.flow(want.key);
    ASSERT_NE(sketch, nullptr);
    const auto got = summarize_flow(want.key, *sketch);
    EXPECT_EQ(got.packets, want.packets);
    EXPECT_EQ(got.mean_ns, want.mean_ns);
    EXPECT_EQ(got.p50_ns, want.p50_ns);
    EXPECT_EQ(got.p99_ns, want.p99_ns);
    EXPECT_EQ(got.max_ns, want.max_ns);
    EXPECT_EQ(rank, want.p99_ns);  // ranked at q = 0.99
  }
}

// --- The coordinator over live loopback agents ------------------------------

struct AgentPair {
  AgentPair() {
    for (auto& agent : agents) agent = std::make_unique<CollectorAgent>();
  }

  QueryCoordinator::StreamFactory factory(std::size_t i) {
    return [this, i]() -> std::unique_ptr<ByteStream> {
      auto [coord_end, agent_end] = make_loopback();
      agents[i]->add_connection(std::move(agent_end));
      return std::move(coord_end);
    };
  }

  void attach(QueryCoordinator& coord) {
    coord.add_agent(factory(0));
    coord.add_agent(factory(1));
    coord.set_drive([this] {
      agents[0]->poll();
      agents[1]->poll();
    });
  }

  std::array<std::unique_ptr<CollectorAgent>, 2> agents;
};

TEST(QueryCoordinator, MergesDisjointAgentsToSingleCollectorAnswers) {
  // Disjoint flow sets on two agents (what PartitionedClient guarantees),
  // one single collector with everything as ground truth.
  const auto batch_a = make_batch(20, 0, 31, 1000);
  const auto batch_b = make_batch(20, 1, 32, 4000);
  collect::ShardedCollector want;
  want.ingest(batch_a);
  want.ingest(batch_b);

  AgentPair fleet;
  fleet.agents[0]->collector().submit(batch_a);
  fleet.agents[1]->collector().submit(batch_b);

  QueryCoordinator coord;
  fleet.attach(coord);
  EXPECT_EQ(coord.agent_count(), 2u);
  EXPECT_EQ(coord.connected_count(), 2u);

  expect_same_sketch(coord.fleet(), want.fleet());

  // Ranked top-k: identical keys, ranks, and summaries.
  const auto got_top = coord.top_k_ranked(10, 0.99);
  const auto want_top = want.top_k_ranked(10, 0.99);
  ASSERT_EQ(got_top.size(), want_top.size());
  for (std::size_t i = 0; i < want_top.size(); ++i) {
    EXPECT_EQ(got_top[i].second.key, want_top[i].second.key) << "rank " << i;
    EXPECT_EQ(got_top[i].first, want_top[i].first) << "rank " << i;
    EXPECT_EQ(got_top[i].second.packets, want_top[i].second.packets) << "rank " << i;
  }

  // Per-flow sketch and quantile, including a flow nobody has seen.
  const auto& probe = batch_b.front().key;
  const auto sketch = coord.flow_sketch(probe);
  ASSERT_TRUE(sketch.has_value());
  expect_same_sketch(*sketch, *want.flow(probe));
  EXPECT_EQ(coord.flow_quantile(probe, 0.5), want.flow_quantile(probe, 0.5));
  net::FiveTuple unseen = probe;
  unseen.dst_port = 9999;
  EXPECT_FALSE(coord.flow_sketch(unseen).has_value());
  EXPECT_FALSE(coord.flow_quantile(unseen, 0.5).has_value());

  // Links: both agents contribute to both links; the union is exact.
  const auto links = coord.link_distributions();
  ASSERT_EQ(links.size(), want.links().size());
  for (const auto& [link, dist] : links) {
    const auto want_dist = want.link_distribution(link);
    ASSERT_TRUE(want_dist.has_value()) << "link " << link;
    expect_same_sketch(dist, *want_dist);
  }

  // Stats plane: per-agent truth and the saturating fleet sum.
  const auto per_agent = coord.per_agent_stats();
  ASSERT_EQ(per_agent.size(), 2u);
  ASSERT_TRUE(per_agent[0].has_value());
  ASSERT_TRUE(per_agent[1].has_value());
  EXPECT_EQ(per_agent[0]->records_ingested, batch_a.size());
  EXPECT_EQ(per_agent[1]->records_ingested, batch_b.size());
  EXPECT_EQ(coord.fleet_stats().records_ingested, want.records_ingested());
  EXPECT_EQ(coord.stats().agent_failures, 0u);
  EXPECT_EQ(coord.stats().replies_merged, coord.stats().queries_sent);
}

TEST(QueryCoordinator, FlowSplitAcrossAgentsStillAnswersExactly) {
  // The rebalance edge case: the SAME flows have records on both agents.
  // Quantiles and top-k must still equal the single-collector answers —
  // via the merged flow sketch, never by double counting summaries.
  const auto batch_a = make_batch(10, 0, 41, 1000);
  const auto batch_b = make_batch(10, 1, 42, 1000);  // same keys, new samples
  collect::ShardedCollector want;
  want.ingest(batch_a);
  want.ingest(batch_b);
  ASSERT_EQ(want.flow_count(), 10u);  // genuinely overlapping

  AgentPair fleet;
  fleet.agents[0]->collector().submit(batch_a);
  fleet.agents[1]->collector().submit(batch_b);
  QueryCoordinator coord;
  fleet.attach(coord);

  // k covering every flow: each agent's list then contains all candidates,
  // so the merged answer is exactly answerable even though the flows'
  // local ranks differ wildly from their true combined ranks. (For k <
  // flow_count over OVERLAPPING partitions no coordinator can promise
  // containment — that's why PartitionedClient keeps partitions disjoint.)
  const auto got_top = coord.top_k_ranked(10, 0.99);
  const auto want_top = want.top_k_ranked(10, 0.99);
  ASSERT_EQ(got_top.size(), want_top.size());
  for (std::size_t i = 0; i < want_top.size(); ++i) {
    EXPECT_EQ(got_top[i].second.key, want_top[i].second.key) << "rank " << i;
    EXPECT_EQ(got_top[i].first, want_top[i].first) << "rank " << i;
    EXPECT_EQ(got_top[i].second.packets, want_top[i].second.packets) << "rank " << i;
  }
  const auto& probe = batch_a.front().key;
  expect_same_sketch(*coord.flow_sketch(probe), *want.flow(probe));
  EXPECT_EQ(coord.flow_quantile(probe, 0.99), want.flow_quantile(probe, 0.99));
}

TEST(QueryCoordinator, UnreachableAgentYieldsPartialTruth) {
  const auto batch = make_batch(15, 0, 51, 1000);
  collect::ShardedCollector want;
  want.ingest(batch);

  CollectorAgent live;
  live.collector().submit(batch);
  QueryCoordinatorConfig cfg;
  cfg.reply_rounds = 32;  // the dead agent times out quickly
  QueryCoordinator coord(cfg);
  coord.add_agent([&live]() -> std::unique_ptr<ByteStream> {
    auto [coord_end, agent_end] = make_loopback();
    live.add_connection(std::move(agent_end));
    return std::move(coord_end);
  });
  coord.add_agent([]() -> std::unique_ptr<ByteStream> { return nullptr; });
  coord.set_drive([&live] { live.poll(); });

  // Answers cover the reachable fleet exactly; the miss is counted.
  expect_same_sketch(coord.fleet(), want.fleet());
  EXPECT_GE(coord.stats().agent_failures, 1u);
  const auto per_agent = coord.per_agent_stats();
  ASSERT_EQ(per_agent.size(), 2u);
  EXPECT_TRUE(per_agent[0].has_value());
  EXPECT_FALSE(per_agent[1].has_value());
  EXPECT_EQ(coord.fleet_stats().records_ingested, batch.size());

  QueryCoordinatorConfig zero_rounds;
  zero_rounds.reply_rounds = 0;
  EXPECT_THROW(QueryCoordinator{zero_rounds}, std::invalid_argument);
}

}  // namespace
}  // namespace rlir::transport
