// CRC-32C engine dispatch: the hardware and software paths must be
// indistinguishable byte-for-byte — same digests on standard vectors,
// random buffers, and the adversarial shapes (empty, unaligned, >64KiB)
// a transport frame can present — and the software fallback must be
// force-selectable so CI covers it even on CRC-capable runners.
#include "net/hash.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <vector>

namespace rlir::net {
namespace {

std::span<const std::byte> bytes_of(std::string_view text) {
  return std::as_bytes(std::span<const char>(text.data(), text.size()));
}

/// Bit-at-a-time reference (the definition, independent of both shipped
/// implementations).
std::uint32_t crc32c_reference(std::span<const std::byte> data, std::uint32_t seed = 0) {
  constexpr std::uint32_t kPoly = 0x82f63b78u;
  std::uint32_t crc = ~seed;
  for (const std::byte b : data) {
    crc ^= static_cast<std::uint32_t>(b);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
  }
  return ~crc;
}

/// Restores the startup engine whatever a test does.
class EngineGuard {
 public:
  EngineGuard() : saved_(active_crc32c_engine()) {}
  ~EngineGuard() { set_crc32c_engine(saved_); }

 private:
  Crc32cEngine saved_;
};

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::byte> buf(n);
  for (auto& b : buf) b = static_cast<std::byte>(rng() & 0xff);
  return buf;
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / iSCSI test vectors.
  EXPECT_EQ(crc32c_software(bytes_of("123456789")), 0xe3069283u);
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c_software(zeros), 0x8a9136aau);
  const std::vector<std::byte> ones(32, std::byte{0xff});
  EXPECT_EQ(crc32c_software(ones), 0x62a8ab43u);
}

TEST(Crc32c, SoftwareMatchesBitwiseReference) {
  for (const std::size_t n : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 63u, 64u, 255u, 1021u}) {
    const auto buf = random_bytes(n, 0x5eed + n);
    EXPECT_EQ(crc32c_software(buf), crc32c_reference(buf)) << "length " << n;
    EXPECT_EQ(crc32c_software(buf, 0xdeadbeef), crc32c_reference(buf, 0xdeadbeef))
        << "seeded, length " << n;
  }
}

TEST(Crc32c, HardwareMatchesSoftware) {
  if (!crc32c_hardware_available()) {
    GTEST_SKIP() << "no CRC instruction on this CPU/build";
  }
  const EngineGuard guard;
  ASSERT_EQ(set_crc32c_engine(Crc32cEngine::kHardware), Crc32cEngine::kHardware);
  // Every length around the 8-byte block boundaries, plus bulk sizes.
  for (std::size_t n = 0; n <= 40; ++n) {
    const auto buf = random_bytes(n, 0xc0ffee + n);
    EXPECT_EQ(crc32c(buf), crc32c_software(buf)) << "length " << n;
  }
  for (const std::size_t n : {4096u, 65535u, 65536u, 65537u, 262144u}) {
    const auto buf = random_bytes(n, 0xbade + n);
    EXPECT_EQ(crc32c(buf), crc32c_software(buf)) << "length " << n;
    EXPECT_EQ(crc32c(buf, 0x1234abcd), crc32c_software(buf, 0x1234abcd)) << "length " << n;
  }
}

TEST(Crc32c, HardwareMatchesSoftwareUnaligned) {
  if (!crc32c_hardware_available()) {
    GTEST_SKIP() << "no CRC instruction on this CPU/build";
  }
  const EngineGuard guard;
  set_crc32c_engine(Crc32cEngine::kHardware);
  const auto buf = random_bytes(4096 + 16, 0xa110d);
  for (std::size_t offset = 0; offset < 9; ++offset) {
    for (const std::size_t n : {0u, 1u, 5u, 8u, 17u, 1000u, 4096u}) {
      const std::span<const std::byte> view(buf.data() + offset, n);
      EXPECT_EQ(crc32c(view), crc32c_software(view)) << "offset " << offset << " length " << n;
    }
  }
}

TEST(Crc32c, DigestsChain) {
  const auto buf = random_bytes(1000, 7);
  const std::span<const std::byte> whole(buf);
  for (const std::size_t split : {0u, 1u, 8u, 500u, 999u, 1000u}) {
    const auto head = whole.subspan(0, split);
    const auto tail = whole.subspan(split);
    EXPECT_EQ(crc32c_software(tail, crc32c_software(head)), crc32c_software(whole));
    if (crc32c_hardware_available()) {
      const EngineGuard guard;
      set_crc32c_engine(Crc32cEngine::kHardware);
      EXPECT_EQ(crc32c(tail, crc32c(head)), crc32c(whole));
    }
  }
}

TEST(Crc32c, SoftwareEngineIsForceSelectable) {
  const EngineGuard guard;
  EXPECT_EQ(set_crc32c_engine(Crc32cEngine::kSoftware), Crc32cEngine::kSoftware);
  EXPECT_EQ(active_crc32c_engine(), Crc32cEngine::kSoftware);
  const auto buf = random_bytes(1234, 99);
  EXPECT_EQ(crc32c(buf), crc32c_reference(buf));
  // kAuto restores detection; whichever engine that picks, digests agree.
  const auto restored = set_crc32c_engine(Crc32cEngine::kAuto);
  EXPECT_EQ(restored, crc32c_hardware_available() ? Crc32cEngine::kHardware
                                                  : Crc32cEngine::kSoftware);
  EXPECT_EQ(crc32c(buf), crc32c_reference(buf));
}

TEST(Crc32c, HardwareRequestWithoutHardwareKeepsSoftware) {
  if (crc32c_hardware_available()) {
    GTEST_SKIP() << "CPU has the instruction; the downgrade path is moot here";
  }
  const EngineGuard guard;
  EXPECT_EQ(set_crc32c_engine(Crc32cEngine::kHardware), Crc32cEngine::kSoftware);
}

}  // namespace
}  // namespace rlir::net
