// Unit tests: common/rng.h — deterministic generators and distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace rlir::common {
namespace {

TEST(SplitMix64, DeterministicFromSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicFromSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~std::uint64_t{0});
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRange) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, UniformU64RespectsBound) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.uniform_u64(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
  EXPECT_EQ(rng.uniform_u64(0), 0u);
  EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(6);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Xoshiro256, ExponentialMean) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);  // mean = 1/rate
}

TEST(Xoshiro256, ParetoMinimumAndMean) {
  Xoshiro256 rng(8);
  const double alpha = 2.5;
  const double xm = 3.0;
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.pareto(alpha, xm);
    ASSERT_GE(v, xm);
    sum += v;
  }
  // mean = alpha*xm/(alpha-1) = 5.0; heavy tail => generous tolerance.
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(Xoshiro256, NormalMoments) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Xoshiro256, LognormalPositive) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 10'000; ++i) ASSERT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Xoshiro256, GeometricMean) {
  Xoshiro256 rng(11);
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.geometric(p));
  // failures before success: mean = (1-p)/p = 3.
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
  EXPECT_EQ(rng.geometric(1.0), 0u);
}

// Distribution sweep: uniform_u64 over different bounds has ~uniform bins.
class UniformU64Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformU64Sweep, BinsAreBalanced) {
  const std::uint64_t bound = GetParam();
  Xoshiro256 rng(12 + bound);
  std::vector<int> bins(bound, 0);
  const int kN = 20'000 * static_cast<int>(bound);
  for (int i = 0; i < kN; ++i) ++bins[rng.uniform_u64(bound)];
  const double expected = static_cast<double>(kN) / static_cast<double>(bound);
  for (const int count : bins) {
    EXPECT_NEAR(count, expected, expected * 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformU64Sweep, ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace rlir::common
