// MetricsRegistry: identity semantics (same (kind, name, sorted labels) =
// same cell; kind conflict throws), snapshot determinism, merge_snapshots'
// fleet roll-up math, and the concurrency contract — counters/histograms
// hammered from four threads while a scraper reads (the TSan job's obs
// workload).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rlir::obs {
namespace {

TEST(MetricsRegistry, SameIdentityReturnsSameCell) {
  MetricsRegistry r;
  Counter* a = r.counter("rlir_test_total", {{"instance", "x"}});
  Counter* b = r.counter("rlir_test_total", {{"instance", "x"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(r.size(), 1u);
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST(MetricsRegistry, LabelOrderDoesNotChangeIdentity) {
  MetricsRegistry r;
  Counter* a = r.counter("rlir_test_total", {{"b", "2"}, {"a", "1"}});
  Counter* b = r.counter("rlir_test_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MetricsRegistry, DifferentLabelsAreDifferentSeries) {
  MetricsRegistry r;
  Counter* a = r.counter("rlir_test_total", {{"instance", "x"}});
  Counter* b = r.counter("rlir_test_total", {{"instance", "y"}});
  Counter* c = r.counter("rlir_test_total");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(r.size(), 3u);
}

TEST(MetricsRegistry, KindConflictThrows) {
  MetricsRegistry r;
  r.counter("rlir_test");
  EXPECT_THROW(r.gauge("rlir_test"), std::invalid_argument);
  EXPECT_THROW(r.histogram("rlir_test"), std::invalid_argument);
  EXPECT_THROW(r.counter(""), std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotSortedByNameThenLabels) {
  MetricsRegistry r;
  r.counter("rlir_b_total");
  r.gauge("rlir_a_gauge", {{"instance", "z"}});
  r.gauge("rlir_a_gauge", {{"instance", "a"}});
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "rlir_a_gauge");
  EXPECT_EQ(snap.samples[0].labels[0].second, "a");
  EXPECT_EQ(snap.samples[1].name, "rlir_a_gauge");
  EXPECT_EQ(snap.samples[1].labels[0].second, "z");
  EXPECT_EQ(snap.samples[2].name, "rlir_b_total");
}

TEST(MetricsRegistry, SnapshotCarriesValues) {
  MetricsRegistry r;
  r.counter("rlir_c_total")->add(7);
  r.gauge("rlir_g")->set(-4);
  r.histogram("rlir_h")->observe(100.0);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].counter, 7u);
  EXPECT_EQ(snap.samples[1].gauge, -4);
  EXPECT_EQ(snap.samples[2].histogram.count(), 1u);
}

TEST(SaturatingAdd, ClampsAtMax) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  EXPECT_EQ(saturating_add_u64(2, 3), 5u);
  EXPECT_EQ(saturating_add_u64(kMax, 1), kMax);
  EXPECT_EQ(saturating_add_u64(kMax - 1, 5), kMax);
}

TEST(MergeSnapshots, CountersSumGaugesMaxHistogramsUnion) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("rlir_c_total")->add(10);
  b.counter("rlir_c_total")->add(32);
  a.gauge("rlir_g")->set(5);
  b.gauge("rlir_g")->set(9);
  a.histogram("rlir_h")->observe(10e3);
  b.histogram("rlir_h")->observe(500e3);
  const auto merged = merge_snapshots({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.samples.size(), 3u);
  EXPECT_EQ(merged.samples[0].counter, 42u);
  EXPECT_EQ(merged.samples[1].gauge, 9);
  // Bin-for-bin union: exactly what one sketch fed both values holds.
  common::LatencySketch expected;
  expected.add(10e3);
  expected.add(500e3);
  EXPECT_EQ(merged.samples[2].histogram.bins(), expected.bins());
}

TEST(MergeSnapshots, DisjointSeriesPassThroughSorted) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("rlir_z_total")->add(1);
  b.counter("rlir_a_total")->add(2);
  const auto merged = merge_snapshots({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.samples.size(), 2u);
  EXPECT_EQ(merged.samples[0].name, "rlir_a_total");
  EXPECT_EQ(merged.samples[1].name, "rlir_z_total");
}

TEST(MergeSnapshots, KindConflictThrows) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("rlir_x");
  b.gauge("rlir_x");
  EXPECT_THROW(merge_snapshots({a.snapshot(), b.snapshot()}),
               std::invalid_argument);
}

TEST(MergeSnapshots, MatchesSingleRegistrySnapshotOrdering) {
  // The merge of per-agent snapshots must be indistinguishable (order and
  // identity) from one registry that held every series.
  MetricsRegistry parts0;
  MetricsRegistry parts1;
  MetricsRegistry whole;
  for (const char* name : {"rlir_m_total", "rlir_n_total"}) {
    for (const char* inst : {"a", "b"}) {
      whole.counter(name, {{"instance", inst}})->add(1);
    }
    parts0.counter(name, {{"instance", "a"}})->add(1);
    parts1.counter(name, {{"instance", "b"}})->add(1);
  }
  const auto merged = merge_snapshots({parts0.snapshot(), parts1.snapshot()});
  const auto direct = whole.snapshot();
  ASSERT_EQ(merged.samples.size(), direct.samples.size());
  for (std::size_t i = 0; i < merged.samples.size(); ++i) {
    EXPECT_EQ(merged.samples[i].name, direct.samples[i].name);
    EXPECT_EQ(merged.samples[i].labels, direct.samples[i].labels);
    EXPECT_EQ(merged.samples[i].counter, direct.samples[i].counter);
  }
}

// The TSan workload: four writers on shared cells while a scraper snapshots
// concurrently. Correctness = no race reports AND exact final totals.
TEST(MetricsRegistryThreaded, ConcurrentWritesAndScrapes) {
  MetricsRegistry r;
  Counter* counter = r.counter("rlir_hot_total");
  Gauge* gauge = r.gauge("rlir_hot_gauge");
  Histogram* hist = r.histogram("rlir_hot_hist");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter->increment();
        gauge->set(static_cast<std::int64_t>(i));
        if (i % 64 == 0) hist->observe(1e3 * static_cast<double>(t + 1));
      }
    });
  }
  std::thread scraper([&] {
    for (int i = 0; i < 200; ++i) {
      const auto snap = r.snapshot();
      ASSERT_EQ(snap.samples.size(), 3u);
      // Monotone counter (sorted last by name): any read <= the final total.
      EXPECT_LE(snap.samples[2].counter, kThreads * kPerThread);
    }
  });
  for (auto& w : writers) w.join();
  scraper.join();

  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(hist->snapshot().count(), kThreads * ((kPerThread + 63) / 64));
}

}  // namespace
}  // namespace rlir::obs
