// Unit tests: sim/injector.h — the ReferenceInjector interface contract, via
// a minimal 1-and-n test implementation and the production RliSender used
// polymorphically through the base pointer.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "net/packet.h"
#include "rli/sender.h"
#include "sim/injector.h"
#include "timebase/clock.h"
#include "timebase/time.h"

namespace rlir::sim {
namespace {

using timebase::TimePoint;

net::Packet regular_packet(std::uint64_t seq, TimePoint ts) {
  net::Packet p;
  p.seq = seq;
  p.ts = ts;
  p.injected_at = ts;
  p.size_bytes = 1000;
  return p;
}

// Minimal conforming implementation: one probe after every n regular packets,
// stamped with the observed packet's ts.
class EveryNInjector final : public ReferenceInjector {
 public:
  explicit EveryNInjector(std::uint32_t n) : n_(n) {}

  [[nodiscard]] std::optional<net::Packet> on_regular_packet(
      const net::Packet& packet) override {
    if (++count_ % n_ != 0) return std::nullopt;
    return net::make_reference_packet(/*id=*/7, packet.ts, packet.ts, next_seq_++);
  }

 private:
  std::uint32_t n_;
  std::uint64_t count_ = 0;
  std::uint64_t next_seq_ = 0;
};

TEST(ReferenceInjector, EveryNInjectsAtTheConfiguredGap) {
  EveryNInjector impl(3);
  ReferenceInjector* injector = &impl;  // exercise virtual dispatch

  int probes = 0;
  for (std::uint64_t i = 0; i < 9; ++i) {
    auto ref = injector->on_regular_packet(regular_packet(i, TimePoint(i * 100)));
    if ((i + 1) % 3 == 0) {
      ASSERT_TRUE(ref.has_value()) << "expected probe after packet " << i;
      EXPECT_TRUE(ref->is_reference());
      EXPECT_EQ(ref->sender, 7);
      // The probe rides directly behind the packet that triggered it.
      EXPECT_EQ(ref->ts, TimePoint(i * 100));
      ++probes;
    } else {
      EXPECT_FALSE(ref.has_value()) << "unexpected probe after packet " << i;
    }
  }
  EXPECT_EQ(probes, 3);
}

TEST(ReferenceInjector, RliSenderWorksThroughTheBasePointer) {
  timebase::PerfectClock clock;
  rli::SenderConfig cfg;
  cfg.scheme = rli::InjectionScheme::kStatic;
  cfg.static_gap = 10;
  rli::RliSender sender(cfg, &clock);
  ReferenceInjector* injector = &sender;

  std::uint64_t probes = 0;
  const std::uint64_t regulars = 100;
  for (std::uint64_t i = 0; i < regulars; ++i) {
    auto ref = injector->on_regular_packet(
        regular_packet(i, TimePoint(static_cast<std::int64_t>(i) * 1'000)));
    if (ref.has_value()) {
      EXPECT_TRUE(ref->is_reference());
      EXPECT_EQ(ref->sender, cfg.id);
      ++probes;
    }
  }
  // Static 1-and-10 over 100 regular packets: exactly 10 probes.
  EXPECT_EQ(probes, 10u);
  EXPECT_EQ(sender.references_injected(), probes);
  EXPECT_EQ(sender.regular_observed(), regulars);
}

TEST(ReferenceInjector, ProbeSequenceNumbersAreDistinct) {
  EveryNInjector impl(1);
  ReferenceInjector* injector = &impl;
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto ref = injector->on_regular_packet(regular_packet(i, TimePoint(i)));
    ASSERT_TRUE(ref.has_value());
    if (!first) {
      EXPECT_NE(ref->seq, prev_seq);
    }
    prev_seq = ref->seq;
    first = false;
  }
}

}  // namespace
}  // namespace rlir::sim
